//! Vendored, minimal benchmark harness, API-compatible with the subset
//! of `criterion` this workspace uses: `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Bencher::iter`
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Methodology: one calibration pass sizes the iteration count so a
//! measurement lasts roughly `CRITERION_TARGET_MS` (default 100 ms),
//! then three timed passes are taken and the median per-iteration time
//! is reported. No statistics, plots or baselines — numbers print to
//! stdout, which is all the head-to-head micro-benches here need.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Drives one measurement: call [`Bencher::iter`] with the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` for the harness-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

fn target_time() -> Duration {
    let ms = std::env::var("CRITERION_TARGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100u64);
    Duration::from_millis(ms)
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one(label: &str, mut routine: impl FnMut(&mut Bencher)) {
    // Calibration: one iteration to size the measurement loop.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let per_iter_ns = b.elapsed.as_nanos().max(1);
    let iters = (target_time().as_nanos() / per_iter_ns).clamp(1, 10_000_000) as u64;

    let mut samples = Vec::with_capacity(3);
    for _ in 0..3 {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{label:<56} time: {:>12}   ({iters} iters/sample)",
        format_time(samples[1])
    );
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run `routine` as benchmark `id` of this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), routine);
        self
    }

    /// Run `routine` with a borrowed input as benchmark `id`.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), |b| routine(b, input));
        self
    }

    /// End the group (parity with the real API; nothing to flush).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&id.id, routine);
        self
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("CRITERION_TARGET_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        let mut count = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(12.3), "12.3 ns");
        assert_eq!(format_time(12_300.0), "12.30 µs");
        assert_eq!(format_time(12_300_000.0), "12.30 ms");
    }
}
