//! Vendored, minimal re-implementation of the subset of `rand` 0.9 the
//! workspace uses: a seedable `StdRng` plus `random`, `random_bool` and
//! `random_range` on integer/float ranges. Deterministic by construction
//! (the generators only ever run from explicit seeds).

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from the full value domain.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics when the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The random-number-generation interface: everything is derived from
/// [`Rng::next_u64`].
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T`'s full domain (`f64` in `[0, 1)`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// A uniformly random value from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard generator: `xorshift64*` seeded through `splitmix64`.
/// Not cryptographic; statistically fine for workload generation.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 step so that small seeds (0, 1, 2, …) diverge.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        StdRng {
            state: if z == 0 { 0x9e37_79b9_7f4a_7c15 } else { z },
        }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// The conventional `rand::prelude` re-exports.
pub mod prelude {
    pub use crate::{Rng, SeedableRng, StdRng};
}

/// `rand::rngs` module for compatibility with `rand::rngs::StdRng` paths.
pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..9);
            assert!((3..9).contains(&x));
            let y = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = rng.random_range(1u32..=3);
            assert!((1..=3).contains(&z));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
