//! Vendored, minimal libc bindings: exactly the symbols the workspace
//! uses (`clock_gettime` with `CLOCK_THREAD_CPUTIME_ID`). The system C
//! library is linked implicitly by std on unix targets.

#![cfg(unix)]
#![allow(non_camel_case_types)]

/// C `int`.
pub type c_int = i32;
/// C `long`.
pub type c_long = i64;
/// Seconds since the epoch / of an interval.
pub type time_t = i64;
/// A clock identifier for `clock_gettime`.
pub type clockid_t = c_int;

/// Per-thread CPU-time clock (Linux value; identical on the targets this
/// workspace builds for).
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;

/// `struct timespec`.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct timespec {
    /// Whole seconds.
    pub tv_sec: time_t,
    /// Nanoseconds in `0..1_000_000_000`.
    pub tv_nsec: c_long,
}

extern "C" {
    /// POSIX `clock_gettime(2)`.
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cputime_clock_ticks() {
        let mut ts = timespec::default();
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        assert_eq!(rc, 0);
        let first = (ts.tv_sec, ts.tv_nsec);
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(31).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        assert_eq!(rc, 0);
        assert!((ts.tv_sec, ts.tv_nsec) > first);
    }
}
