//! Test-runner configuration and failure reporting.

use std::cell::Cell;

/// Configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The configured case count, overridable via `PROPTEST_CASES`.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// Prints which case failed when a property-test body panics (there is
/// no shrinking in the vendored harness; the RNG is deterministic, so
/// the case index pinpoints the input).
pub struct FailureGuard {
    name: &'static str,
    case: u32,
    armed: Cell<bool>,
}

impl FailureGuard {
    /// Arm the guard for one case.
    pub fn new(name: &'static str, case: u32) -> Self {
        FailureGuard {
            name,
            case,
            armed: Cell::new(true),
        }
    }

    /// The case finished without panicking.
    pub fn disarm(&self) {
        self.armed.set(false);
    }
}

impl Drop for FailureGuard {
    fn drop(&mut self) {
        if self.armed.get() && std::thread::panicking() {
            eprintln!(
                "proptest: {} failed at case {} (deterministic input; \
                 rerun reproduces it exactly)",
                self.name, self.case
            );
        }
    }
}
