//! String strategies from regex-like patterns.
//!
//! `&'static str` literals act as strategies, supporting the small regex
//! subset the workspace uses: literal characters, character classes
//! `[a-z 0-9_]` (ranges and single characters, no negation), and the
//! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (`*`/`+` bounded at 8).
//! Unsupported syntax panics at generation time with a clear message.

use crate::strategy::{Strategy, TestRng};

#[derive(Clone, Debug)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated range in {pattern:?}"));
                        assert!(lo <= hi, "inverted range in {pattern:?}");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty class in {pattern:?}");
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
            ),
            '.' | '(' | ')' | '|' => {
                panic!("unsupported regex syntax {c:?} in {pattern:?} (vendored proptest)")
            }
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.parse().expect("bad repetition"),
                        n.parse().expect("bad repetition"),
                    ),
                    None => {
                        let n = spec.parse().expect("bad repetition");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted repetition in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let n = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..n {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.below(ranges.len())];
                        let span = hi as u32 - lo as u32 + 1;
                        let c = char::from_u32(lo as u32 + rng.below(span as usize) as u32)
                            .expect("class range stays in valid chars");
                        out.push(c);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::for_case("class", 0);
        let s = "[a-z ]{0,6}";
        let mut lens = Vec::new();
        for _ in 0..300 {
            let v = Strategy::generate(&s, &mut rng);
            lens.push(v.chars().count());
            assert!(v.chars().all(|c| c.is_ascii_lowercase() || c == ' '));
        }
        assert!(lens.contains(&0));
        assert!(lens.contains(&6));
        assert!(lens.iter().all(|&l| l <= 6));
    }

    #[test]
    fn literals_and_optional() {
        let mut rng = TestRng::for_case("lit", 0);
        let s = "ab?c{2}";
        for _ in 0..50 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v == "abcc" || v == "acc", "got {v:?}");
        }
    }
}
