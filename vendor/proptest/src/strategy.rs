//! The `Strategy` trait and the core combinators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator state for one test case.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fresh RNG for case `case` of the named test: deterministic
    /// across runs, distinct across tests and cases.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1_0000_01b3);
        }
        h ^= case as u64;
        // splitmix64 finalizer.
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        TestRng {
            state: if h == 0 { 0x9e37_79b9_7f4a_7c15 } else { h },
        }
    }

    /// The next 64 random bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generate a value, then a second strategy from it, then the final
    /// value from that strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// Generate the `UnionN` structs behind `prop_oneof!`: a uniform choice
/// among N strategies sharing one value type. Generic (rather than
/// boxed) arms keep type inference flowing through the arms exactly as
/// the real crate's `TupleUnion` does.
macro_rules! define_union {
    ($(#[$doc:meta])* $name:ident, $count:expr, $($field:ident: $ty:ident => $idx:pat),+) => {
        $(#[$doc])*
        pub struct $name<$($ty),+> {
            $(#[doc = "One arm."] pub $field: $ty),+
        }

        impl<V, $($ty: Strategy<Value = V>),+> Strategy for $name<$($ty),+> {
            type Value = V;

            fn generate(&self, rng: &mut TestRng) -> V {
                match rng.below($count) {
                    $($idx => self.$field.generate(rng),)+
                    _ => unreachable!(),
                }
            }
        }
    };
}

define_union!(
    /// Uniform choice between two strategies.
    Union2, 2, a: A => 0, b: B => 1
);
define_union!(
    /// Uniform choice among three strategies.
    Union3, 3, a: A => 0, b: B => 1, c: C => 2
);
define_union!(
    /// Uniform choice among four strategies.
    Union4, 4, a: A => 0, b: B => 1, c: C => 2, d: D => 3
);
define_union!(
    /// Uniform choice among five strategies.
    Union5, 5, a: A => 0, b: B => 1, c: C => 2, d: D => 3, e: E => 4
);
define_union!(
    /// Uniform choice among six strategies.
    Union6, 6, a: A => 0, b: B => 1, c: C => 2, d: D => 3, e: E => 4, f: F => 5
);
define_union!(
    /// Uniform choice among seven strategies.
    Union7, 7, a: A => 0, b: B => 1, c: C => 2, d: D => 3, e: E => 4, f: F => 5, g: G => 6
);
define_union!(
    /// Uniform choice among eight strategies.
    Union8, 8, a: A => 0, b: B => 1, c: C => 2, d: D => 3, e: E => 4, f: F => 5, g: G => 6,
    h: H => 7
);

/// Always the same (cloned) value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T`'s full domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_compose() {
        let mut rng = TestRng::for_case("ranges_and_tuples", 0);
        let s = (1usize..5, -3i64..3).prop_map(|(a, b)| (a, b));
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!((-3..3).contains(&b));
        }
    }

    #[test]
    fn flat_map_threads_the_intermediate() {
        let mut rng = TestRng::for_case("flat_map", 0);
        let s = (2usize..6).prop_flat_map(|n| (0..n).prop_map(move |i| (n, i)));
        for _ in 0..200 {
            let (n, i) = s.generate(&mut rng);
            assert!(i < n);
        }
    }

    #[test]
    fn union_covers_every_arm() {
        let mut rng = TestRng::for_case("union", 0);
        let s = Union3 {
            a: Just(1u32),
            b: Just(2u32),
            c: Just(3u32),
        };
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        let mut c = TestRng::for_case("t", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
