//! Option strategies: `proptest::option::of`.

use crate::strategy::{Strategy, TestRng};

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Match proptest's default: None roughly a quarter of the time.
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `Some` of the inner strategy most of the time, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_both_variants() {
        let mut rng = TestRng::for_case("both", 0);
        let s = of(0u32..10);
        let vals: Vec<_> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
        assert!(vals.iter().flatten().all(|&x| x < 10));
    }
}
