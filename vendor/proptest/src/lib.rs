//! Vendored, minimal property-testing harness, API-compatible with the
//! subset of `proptest` this workspace uses: `Strategy` with
//! `prop_map`/`prop_flat_map`, range/tuple/`Just`/`any` strategies,
//! `collection::vec`, `option::of`, simple regex string strategies, the
//! `proptest!`/`prop_oneof!`/`prop_assert*!` macros and
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real crate: generation is driven by a fixed
//! deterministic RNG per (test, case) pair and there is **no shrinking**
//! — on failure the case index and seed are printed so the exact input
//! can be regenerated. Set `PROPTEST_CASES` to override case counts.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The conventional `proptest::prelude` re-exports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...)` runs
/// `cases` times with fresh generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr;
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                for case in 0..cases {
                    let mut rng = $crate::strategy::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let guard =
                        $crate::test_runner::FailureGuard::new(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    // The body runs in a `Result` context so early
                    // rejection via `return Ok(())` works as in the real
                    // crate; assertion macros panic directly.
                    let outcome = (move || -> ::std::result::Result<(), ::std::string::String> {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("proptest case rejected with error: {message}");
                    }
                    guard.disarm();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Choose uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($a:expr $(,)?) => {
        $a
    };
    ($a:expr, $b:expr $(,)?) => {
        $crate::strategy::Union2 { a: $a, b: $b }
    };
    ($a:expr, $b:expr, $c:expr $(,)?) => {
        $crate::strategy::Union3 {
            a: $a,
            b: $b,
            c: $c,
        }
    };
    ($a:expr, $b:expr, $c:expr, $d:expr $(,)?) => {
        $crate::strategy::Union4 {
            a: $a,
            b: $b,
            c: $c,
            d: $d,
        }
    };
    ($a:expr, $b:expr, $c:expr, $d:expr, $e:expr $(,)?) => {
        $crate::strategy::Union5 {
            a: $a,
            b: $b,
            c: $c,
            d: $d,
            e: $e,
        }
    };
    ($a:expr, $b:expr, $c:expr, $d:expr, $e:expr, $f:expr $(,)?) => {
        $crate::strategy::Union6 {
            a: $a,
            b: $b,
            c: $c,
            d: $d,
            e: $e,
            f: $f,
        }
    };
    ($a:expr, $b:expr, $c:expr, $d:expr, $e:expr, $f:expr, $g:expr $(,)?) => {
        $crate::strategy::Union7 {
            a: $a,
            b: $b,
            c: $c,
            d: $d,
            e: $e,
            f: $f,
            g: $g,
        }
    };
    ($a:expr, $b:expr, $c:expr, $d:expr, $e:expr, $f:expr, $g:expr, $h:expr $(,)?) => {
        $crate::strategy::Union8 {
            a: $a,
            b: $b,
            c: $c,
            d: $d,
            e: $e,
            f: $f,
            g: $g,
            h: $h,
        }
    };
}

/// Assert inside a property test (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
