//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// An inclusive size interval for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo {
            self.lo
        } else {
            self.lo + rng.below(self.hi - self.lo + 1)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end.saturating_sub(1).max(r.start),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: (*r.end()).max(*r.start()),
        }
    }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_respect_the_range() {
        let mut rng = TestRng::for_case("sizes", 0);
        let s = vec(0u32..5, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn exact_and_inclusive_sizes() {
        let mut rng = TestRng::for_case("exact", 0);
        assert_eq!(vec(0u32..5, 4).generate(&mut rng).len(), 4);
        let s = vec(0u32..5, 1..=2);
        for _ in 0..50 {
            assert!((1..=2).contains(&s.generate(&mut rng).len()));
        }
    }

    #[test]
    fn empty_size_range_yields_lo() {
        // `0..0` degenerates to always-empty rather than panicking.
        let mut rng = TestRng::for_case("empty", 0);
        assert!(vec(0u32..5, 0..0).generate(&mut rng).is_empty());
    }
}
