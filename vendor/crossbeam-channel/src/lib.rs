//! Vendored, minimal re-implementation of the subset of
//! `crossbeam-channel` the workspace uses: `unbounded()` channels with
//! cloneable senders, blocking `recv` and non-blocking `try_recv`.
//!
//! Built on a `Mutex<VecDeque>` + `Condvar` instead of crossbeam's
//! lock-free internals — same semantics (FIFO, disconnect on last sender
//! drop), adequate throughput for the coordinator/worker message rates
//! this workspace produces (the hot payloads are batched).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// The sending half of an unbounded channel. Cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue a message. Fails only when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        let mut q = self.shared.queue.lock().unwrap();
        q.push_back(value);
        drop(q);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::Relaxed);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake blocked receivers so they observe
            // the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.queue.lock().unwrap();
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self.shared.ready.wait(q).unwrap();
        }
    }

    /// Pop a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.queue.lock().unwrap();
        if let Some(v) = q.pop_front() {
            return Ok(v);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_try_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receiver() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
