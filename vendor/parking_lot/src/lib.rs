//! Vendored, minimal re-implementation of the `parking_lot` API subset
//! the workspace uses: `Mutex` and `RwLock` whose lock methods return
//! guards directly (no `Result`). Built on std's poisoning locks; a
//! poisoned lock propagates the original panic rather than deadlocking.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
