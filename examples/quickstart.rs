//! Quickstart: define GFDs, check satisfiability and implication,
//! sequentially and in parallel.
//!
//! Run with: `cargo run --release --example quickstart`

use gfd::prelude::*;

fn main() {
    let mut vocab = Vocab::new();

    // ── 1. Define rules in the text format ────────────────────────────
    // phi_a: every product's price equals its listed price.
    // phi_b: discounted products have price 80.
    // phi_c: discounted products have listed price 100.
    let doc = gfd::dsl::parse_document(
        r#"
        gfd phi_a {
          pattern {
            node p: product
            node l: listing
            edge p -listedAs-> l
          }
          then { p.price = l.price }
        }
        gfd phi_b {
          pattern { node p: product }
          when { p.discounted = true }
          then { p.price = 80 }
        }
        gfd phi_c {
          pattern {
            node p: product
            node l: listing
            edge p -listedAs-> l
          }
          when { p.discounted = true }
          then { l.price = 100 }
        }
        "#,
        &mut vocab,
    )
    .expect("rules parse");
    let sigma = doc.gfds;
    println!("Σ has {} GFDs:", sigma.len());
    print!("{}", sigma.display_all(&vocab));

    // ── 2. Satisfiability ──────────────────────────────────────────────
    // phi_b and phi_c interact through phi_a: a discounted, listed
    // product would need price 80 = l.price = 100. But note the premise:
    // only *discounted* products conflict, and a model may simply avoid
    // the `discounted = true` binding — so Σ is satisfiable.
    let sat = gfd::seq_sat(&sigma);
    println!("\nSeqSat: satisfiable = {}", sat.is_satisfiable());
    let model = sat.model().expect("satisfiable");
    println!(
        "model: {} nodes, {} edges, {} attributes (a Σ-bounded population of GΣ)",
        model.node_count(),
        model.edge_count(),
        model.attr_count()
    );

    // The parallel algorithm agrees and reports its run metrics.
    let par = gfd::par_sat(&sigma, &ParConfig::with_workers(4));
    println!(
        "ParSat(p=4): satisfiable = {}, units = {}, matches = {}",
        par.is_satisfiable(),
        par.metrics.units_generated,
        par.metrics.matches,
    );

    // ── 3. Implication ─────────────────────────────────────────────────
    // From phi_a + phi_b + phi_c: a discounted listed product implies
    // l.price = 100 AND p.price = 80 — and transitively p.price = l.price
    // = ... inconsistent! So "discounted listed products do not exist" is
    // implied: Σ |= (pattern, discounted = true → false).
    let phi = gfd::dsl::parse_gfd(
        r#"
        gfd no_discounted_listing {
          pattern {
            node p: product
            node l: listing
            edge p -listedAs-> l
          }
          when { p.discounted = true }
          then { false }
        }
        "#,
        &mut vocab,
    )
    .expect("probe parses");
    let imp = gfd::seq_imp(&sigma, &phi);
    println!("\nSeqImp: Σ |= {} ? {}", phi.name, imp.is_implied());
    let par = gfd::par_imp(&sigma, &phi, &ParConfig::with_workers(4));
    println!(
        "ParImp(p=4): agrees = {}",
        par.is_implied() == imp.is_implied()
    );

    // Something Σ does not imply:
    let free = gfd::dsl::parse_gfd(
        "gfd unrelated { pattern { node p: product } then { p.weight = 1 } }",
        &mut vocab,
    )
    .unwrap();
    println!(
        "SeqImp: Σ |= {} ? {}",
        free.name,
        gfd::seq_imp(&sigma, &free).is_implied()
    );

    // ── 4. Error detection on a data graph ─────────────────────────────
    let data = gfd::dsl::parse_document(
        r#"
        graph shop {
          node p1: product { price = 90, discounted = true }
          node l1: listing { price = 90 }
          edge p1 -listedAs-> l1
        }
        "#,
        &mut vocab,
    )
    .unwrap();
    let graph = &data.graphs[0].1;
    let violations = gfd::find_violations(graph, &sigma, 10);
    println!(
        "\nerror detection: {} violation(s) in the shop graph (phi_b: discounted price must be 80)",
        violations.len()
    );
    for v in &violations {
        println!("  violated: {}", sigma[v.gfd].display(&vocab));
    }
    assert!(!violations.is_empty());
}
