//! Rule-set minimization via the implication analysis.
//!
//! The paper's motivation for implication checking: "eliminate redundant
//! GFDs that are entailed by others — an optimization strategy to speed
//! up error detection". This example computes a non-redundant cover of a
//! rule set and shows the saved validation work on a data graph.
//!
//! Run with: `cargo run --release --example rule_minimization`

use gfd::gen::{plant_violation, random_graph, Dataset, GraphGenConfig, Schema};
use gfd::prelude::*;
use std::time::Instant;

fn main() {
    let mut vocab = Vocab::new();

    // A hand-written rule set with planted redundancy.
    let doc = gfd::dsl::parse_document(
        r#"
        # Base rule: any entity with a profile shares its trust level.
        gfd base {
          pattern {
            node x: _
            node p: profile
            edge x -hasProfile-> p
          }
          then { x.trust = p.trust }
        }

        # Redundant: the same rule restricted to persons (wildcard covers it).
        gfd base_person {
          pattern {
            node x: person
            node p: profile
            edge x -hasProfile-> p
          }
          then { x.trust = p.trust }
        }

        # Redundant: adds an extra premise to the base rule.
        gfd base_weaker {
          pattern {
            node x: _
            node p: profile
            edge x -hasProfile-> p
          }
          when { x.verified = true }
          then { x.trust = p.trust }
        }

        # Independent rule 1: verified profiles have high trust.
        gfd verified_high {
          pattern { node p: profile }
          when { p.verified = true }
          then { p.trust = "high" }
        }

        # Redundant combination: verified profiles of verified users give
        # the user high trust (follows from base + verified_high).
        gfd combo {
          pattern {
            node x: _
            node p: profile
            edge x -hasProfile-> p
          }
          when { p.verified = true }
          then { x.trust = "high" }
        }

        # Non-obvious redundancy: two profiles of one entity agree on
        # trust. Implied by `base` alone, via transitivity through x:
        # x.trust = p.trust and x.trust = q.trust force p.trust = q.trust.
        gfd unique_trust {
          pattern {
            node x: _
            node p: profile
            node q: profile
            edge x -hasProfile-> p
            edge x -hasProfile-> q
          }
          then { p.trust = q.trust }
        }
        "#,
        &mut vocab,
    )
    .expect("rules parse");
    let sigma = doc.gfds;
    println!("input: {} rules", sigma.len());

    // Greedy cover: drop every rule implied by the remaining ones.
    let t0 = Instant::now();
    let mut keep: Vec<bool> = vec![true; sigma.len()];
    for i in 0..sigma.len() {
        let candidate = &sigma.as_slice()[i];
        let rest: GfdSet = sigma
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i && keep[*j])
            .map(|(_, (_, g))| g.clone())
            .collect();
        let implied = gfd::seq_imp(&rest, candidate).is_implied();
        if implied {
            keep[i] = false;
            println!("  - dropping `{}` (implied by the rest)", candidate.name);
        }
    }
    let cover: GfdSet = sigma
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|((_, g), _)| g.clone())
        .collect();
    println!(
        "cover: {} rules (computed in {:?})",
        cover.len(),
        t0.elapsed()
    );
    assert!(cover.len() < sigma.len(), "expected redundancy to be found");

    // The cover is equivalent: both directions of implication hold.
    for (_, g) in sigma.iter() {
        assert!(
            gfd::seq_imp(&cover, g).is_implied(),
            "cover must imply `{}`",
            g.name
        );
    }
    println!("equivalence verified: cover |= Σ and Σ |= cover");

    // Error detection with the cover finds the same violations faster
    // (fewer patterns to match).
    let schema = Schema::new(Dataset::Tiny, &mut vocab);
    let mut graph = random_graph(
        &schema,
        &GraphGenConfig {
            nodes: 400,
            edges: 900,
            attr_prob: 0.3,
            seed: 17,
        },
    );
    for (i, (_, g)) in cover.iter().enumerate() {
        plant_violation(&mut graph, g, &schema, i as u64);
    }

    let t_full = Instant::now();
    let v_full = gfd::find_violations(&graph, &sigma, usize::MAX);
    let t_full = t_full.elapsed();
    let t_cover = Instant::now();
    let v_cover = gfd::find_violations(&graph, &cover, usize::MAX);
    let t_cover = t_cover.elapsed();
    println!(
        "\nerror detection on {} nodes: full set {} violations in {:?}, cover {} violations in {:?}",
        graph.node_count(),
        v_full.len(),
        t_full,
        v_cover.len(),
        t_cover,
    );
    // Every violation of the full set is caught by a cover rule on the
    // same graph (the cover is equivalent, so a clean graph under the
    // cover is clean under Σ).
    assert!(!v_cover.is_empty());
}
