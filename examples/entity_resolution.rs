//! Entity resolution with recursively-defined keys (GEDs whose
//! consequence is an id literal — §IX of the paper, keys per [27]).
//!
//! The scenario: a music knowledge base ingested from two sources, with
//! duplicate artists, albums and record labels. Keys identify duplicates
//! — but the album key requires *the same artist entity*, so albums can
//! only merge after artists do, and labels only after albums: resolution
//! is recursive, taking multiple fixpoint rounds.
//!
//! Run with: `cargo run --release --example entity_resolution`

use gfd::ged::{resolve_entities, Ged, GedLiteral, Key};
use gfd::prelude::*;

fn main() {
    let mut vocab = Vocab::new();
    let artist = vocab.label("artist");
    let album = vocab.label("album");
    let label_l = vocab.label("recordLabel");
    let by = vocab.label("by");
    let released_on = vocab.label("releasedOn");
    let name = vocab.attr("name");
    let title = vocab.attr("title");
    let year = vocab.attr("year");

    // ── 1. A dirty graph: every entity ingested twice ───────────────────
    let mut g = Graph::new();
    let duplicate_entity = |g: &mut Graph, label, attr, value: &str| {
        let a = g.add_node(label);
        let b = g.add_node(label);
        g.set_attr(a, attr, Value::str(value));
        g.set_attr(b, attr, Value::str(value));
        (a, b)
    };
    let (ar1, ar2) = duplicate_entity(&mut g, artist, name, "Miles Davis");
    let (al1, al2) = duplicate_entity(&mut g, album, title, "Kind of Blue");
    let (lb1, lb2) = duplicate_entity(&mut g, label_l, name, "Columbia");
    // Divergent source data: only one copy knows the year.
    g.set_attr(al1, year, Value::int(1959));
    g.set_attr(al2, year, Value::int(1958)); // a data-entry error
                                             // Each source wired its own copies together.
    g.add_edge(al1, by, ar1);
    g.add_edge(al2, by, ar2);
    g.add_edge(al1, released_on, lb1);
    g.add_edge(al2, released_on, lb2);

    println!(
        "dirty graph: {} nodes, {} edges ({} artists, {} albums, {} labels)",
        g.node_count(),
        g.edge_count(),
        2,
        2,
        2
    );

    // ── 2. Keys ──────────────────────────────────────────────────────────
    // artist key: same name → same artist. (A simplification — real KBs
    // use richer evidence; the point is the recursion below.)
    let mut p = Pattern::new();
    let x = p.add_node(artist, "x");
    let y = p.add_node(artist, "y");
    let artist_key = Key::new(Ged::conjunctive(
        "artist-by-name",
        p,
        vec![GedLiteral::eq_attr(x, name, y, name)],
        vec![GedLiteral::id(x, y)],
    ));

    // album key: same title AND the same artist *entity* → same album.
    let mut p = Pattern::new();
    let x = p.add_node(album, "x");
    let y = p.add_node(album, "y");
    let a = p.add_node(artist, "a");
    p.add_edge(x, by, a);
    p.add_edge(y, by, a);
    let album_key = Key::new(Ged::conjunctive(
        "album-by-title-and-artist",
        p,
        vec![GedLiteral::eq_attr(x, title, y, title)],
        vec![GedLiteral::id(x, y)],
    ));

    // label key: same name AND released the same album entity.
    let mut p = Pattern::new();
    let x = p.add_node(label_l, "x");
    let y = p.add_node(label_l, "y");
    let al = p.add_node(album, "al");
    p.add_edge(al, released_on, x);
    p.add_edge(al, released_on, y);
    let label_key = Key::new(Ged::conjunctive(
        "label-by-name-and-album",
        p,
        vec![GedLiteral::eq_attr(x, name, y, name)],
        vec![GedLiteral::id(x, y)],
    ));

    for key in [&artist_key, &album_key, &label_key] {
        println!("key: {}", key.ged.display(&vocab));
    }

    // ── 3. Resolve ───────────────────────────────────────────────────────
    let r = resolve_entities(&g, &[artist_key, album_key, label_key]);
    println!(
        "\nresolved in {} round(s): {} merges, {} nodes remain",
        r.rounds,
        r.merges,
        r.resolved.node_count()
    );
    assert_eq!(
        r.resolved.node_count(),
        3,
        "one artist, one album, one label"
    );
    assert!(
        r.rounds >= 3,
        "labels merge only after albums, which merge only after artists"
    );
    assert_eq!(r.class_of[ar1.index()], r.class_of[ar2.index()]);
    assert_eq!(r.class_of[al1.index()], r.class_of[al2.index()]);
    assert_eq!(r.class_of[lb1.index()], r.class_of[lb2.index()]);

    // ── 4. Merging surfaced a data-quality problem ───────────────────────
    println!("\nattribute conflicts found while merging:");
    for c in &r.conflicts {
        println!(
            "  resolved node n{} attribute `{}`: kept {:?}, dropped {:?}",
            c.node.index(),
            vocab.attr_name(c.attr),
            c.kept,
            c.dropped
        );
    }
    assert_eq!(r.conflicts.len(), 1, "the two album years disagree");
}
