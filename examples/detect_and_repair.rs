//! Detect-and-repair: load a SNAP-style edge list, run the parallel
//! violation detector, apply suggested repairs, verify the graph is
//! clean — then keep the result **live under traffic**: apply a delta
//! batch and re-detect incrementally (`gfd-incr`) instead of from
//! scratch. The full error-detection workflow the paper's introduction
//! motivates (ϕ1–ϕ3 on DBpedia), extended to a streaming graph.
//!
//! Run with: `cargo run --release --example detect_and_repair`

use gfd::detect::{detect_deps as detect, suggest_repairs, DetectConfig};
use gfd::incr::{DeltaBatch, IncrConfig, IncrementalDetector};
use gfd::io::{load_edge_list, load_node_table, EdgeListOptions};
use gfd::prelude::*;

fn main() {
    let mut vocab = Vocab::new();

    // ── 1. Load the data the way it actually ships: edge list + node
    //       table (Pokec's distribution format). ─────────────────────────
    let edges = "\
# mini knowledge-base extract
0 1 locateIn      # Bamburi airport  -> Bamburi (city)
1 0 partOf        # Bamburi (city)   -> Bamburi airport  (the error of ϕ1!)
2 3 topSpeed      # tank -> speed record A
2 4 topSpeed      # tank -> speed record B
5 6 president     # Botswana -> president
5 7 vicePresident # Botswana -> vice president
";
    let table = "\
0 place   name=\"Bamburi airport\"
1 place   name=Bamburi
2 vehicle name=tank
3 speed   val=\"24.076\"
4 speed   val=\"33.336\"
5 country name=Botswana
6 person  nationality=Botswana
7 person  nationality=Tswana
";
    let (mut graph, mut ids) =
        load_edge_list(edges, &mut vocab, &EdgeListOptions::default()).expect("edges load");
    load_node_table(table, &mut graph, &mut ids, &mut vocab).expect("table loads");
    println!(
        "loaded {} nodes, {} edges, {} attributes",
        graph.node_count(),
        graph.edge_count(),
        graph.attr_count()
    );

    // ── 2. The paper's Example 1 rules, in the DSL ───────────────────────
    let doc = gfd::dsl::parse_document(
        r#"
        gfd phi1 {                       # a place cannot contain its container
          pattern {
            node x: place
            node y: place
            edge x -locateIn-> y
            edge y -partOf-> x
          }
          then { false }
        }
        gfd phi2 {                       # topSpeed is a functional property
          pattern {
            node x: _
            node y: speed
            node z: speed
            edge x -topSpeed-> y
            edge x -topSpeed-> z
          }
          then { y.val = z.val }
        }
        gfd phi3 {                       # president & vice share nationality
          pattern {
            node c: country
            node p: person
            node v: person
            edge c -president-> p
            edge c -vicePresident-> v
          }
          then { p.nationality = v.nationality }
        }
        "#,
        &mut vocab,
    )
    .expect("rules parse");
    // The detection stack speaks the generalized rule layer: lift the
    // parsed GFDs into a `DepSet` (GGDs would slot in alongside).
    let sigma = DepSet::from_gfds(doc.gfds);

    // ── 3. Parallel detection with per-rule statistics ───────────────────
    let config = DetectConfig::with_workers(4);
    let report = detect(&graph, &sigma, &config);
    println!("\n{}", report.summary(&sigma, &vocab));
    // ϕ1 and ϕ3 catch one violation each; ϕ2 catches the two symmetric
    // (y, z) orderings of the tank's conflicting speed records.
    assert_eq!(report.violations.len(), 4);
    for v in &report.violations {
        print!("{}", v.explain(&graph, &sigma, &vocab));
        for r in suggest_repairs(&graph, &sigma, v, &vocab) {
            println!("  candidate repair: {}", r.description);
        }
    }

    // ── 4. Repair loop: fix one violation, re-detect, repeat ─────────────
    // Repairs must be recomputed against the *current* graph — one fix
    // (e.g. equalizing the two speed values) can resolve several
    // violations at once, or change what the right fix for the next one
    // is. A real cleaning system would rank candidates; we take the
    // first suggestion each round.
    let mut repaired = graph.clone();
    let mut rounds = 0;
    loop {
        let rep = detect(&repaired, &sigma, &config);
        if rep.is_clean() {
            break;
        }
        let v = &rep.violations[0];
        let repairs = suggest_repairs(&repaired, &sigma, v, &vocab);
        let chosen = repairs.first().expect("every violation has a repair");
        println!("applying: {}", chosen.description);
        gfd::detect::repair::apply_repair(&mut repaired, chosen);
        rounds += 1;
        assert!(rounds <= 10, "repair loop did not converge");
    }

    // ── 5. Verify the repaired graph is clean ────────────────────────────
    let after = detect(&repaired, &sigma, &config);
    println!(
        "\nafter {rounds} repair(s): {} violation(s) — graph {}",
        after.violations.len(),
        if after.is_clean() {
            "is clean"
        } else {
            "still dirty"
        }
    );
    assert!(after.is_clean());

    // ── 6. Live traffic: apply a delta batch, re-detect incrementally ────
    // The knowledge base keeps changing after the cleaning pass. Instead
    // of re-freezing and re-detecting the whole graph per update, an
    // IncrementalDetector keeps the violation set live: each batch only
    // re-reasons the pivots within pattern radius of the touched nodes.
    let mut live =
        IncrementalDetector::new(repaired.clone(), sigma.clone(), IncrConfig::with_workers(4));
    assert!(live.is_clean());

    // A new speed record arrives for the tank — and disagrees with the
    // existing one (ϕ2 again), plus a place-containment cycle (ϕ1).
    let mut batch = DeltaBatch::new();
    batch.add_node(vocab.label("speed")); // n8
    batch.set_attr(
        gfd::graph::NodeId::new(8),
        vocab.attr("val"),
        Value::str("99.9"),
    );
    batch.add_edge(
        gfd::graph::NodeId::new(2),
        vocab.label("topSpeed"),
        gfd::graph::NodeId::new(8),
    );
    let report = live.apply(&batch);
    println!(
        "\ndelta batch: {} op(s) → {} dirty node(s), {} of {} pivot(s) re-run, \
         {} violation(s) now live",
        batch.len(),
        report.dirty_nodes,
        report.rerun_pivots,
        live.graph().node_count(),
        report.violations_total,
    );
    // The conflicting record violates ϕ2 against each older speed value,
    // in both (y, z) orders: 4 new violations.
    assert_eq!(report.violations_total, 4);

    // The incremental result is exactly what a from-scratch detect sees.
    let from_scratch = detect(live.graph(), &sigma, &config);
    assert_eq!(from_scratch.violations.len(), live.violations().len());

    // Deleting the bogus record restores cleanliness — again touching
    // only the dirty region.
    let mut fix = DeltaBatch::new();
    fix.del_edge(
        gfd::graph::NodeId::new(2),
        vocab.label("topSpeed"),
        gfd::graph::NodeId::new(8),
    );
    let report = live.apply(&fix);
    println!(
        "after deleting the bogus edge: {} violation(s) — stream {}",
        report.violations_total,
        if live.is_clean() {
            "is clean"
        } else {
            "still dirty"
        }
    );
    assert!(live.is_clean());
}
