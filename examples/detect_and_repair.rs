//! Detect-and-repair: load a SNAP-style edge list, run the parallel
//! violation detector, apply suggested repairs, verify the graph is
//! clean — the full error-detection workflow the paper's introduction
//! motivates (ϕ1–ϕ3 on DBpedia).
//!
//! Run with: `cargo run --release --example detect_and_repair`

use gfd::detect::{detect, suggest_repairs, DetectConfig};
use gfd::io::{load_edge_list, load_node_table, EdgeListOptions};
use gfd::prelude::*;

fn main() {
    let mut vocab = Vocab::new();

    // ── 1. Load the data the way it actually ships: edge list + node
    //       table (Pokec's distribution format). ─────────────────────────
    let edges = "\
# mini knowledge-base extract
0 1 locateIn      # Bamburi airport  -> Bamburi (city)
1 0 partOf        # Bamburi (city)   -> Bamburi airport  (the error of ϕ1!)
2 3 topSpeed      # tank -> speed record A
2 4 topSpeed      # tank -> speed record B
5 6 president     # Botswana -> president
5 7 vicePresident # Botswana -> vice president
";
    let table = "\
0 place   name=\"Bamburi airport\"
1 place   name=Bamburi
2 vehicle name=tank
3 speed   val=\"24.076\"
4 speed   val=\"33.336\"
5 country name=Botswana
6 person  nationality=Botswana
7 person  nationality=Tswana
";
    let (mut graph, mut ids) =
        load_edge_list(edges, &mut vocab, &EdgeListOptions::default()).expect("edges load");
    load_node_table(table, &mut graph, &mut ids, &mut vocab).expect("table loads");
    println!(
        "loaded {} nodes, {} edges, {} attributes",
        graph.node_count(),
        graph.edge_count(),
        graph.attr_count()
    );

    // ── 2. The paper's Example 1 rules, in the DSL ───────────────────────
    let doc = gfd::dsl::parse_document(
        r#"
        gfd phi1 {                       # a place cannot contain its container
          pattern {
            node x: place
            node y: place
            edge x -locateIn-> y
            edge y -partOf-> x
          }
          then { false }
        }
        gfd phi2 {                       # topSpeed is a functional property
          pattern {
            node x: _
            node y: speed
            node z: speed
            edge x -topSpeed-> y
            edge x -topSpeed-> z
          }
          then { y.val = z.val }
        }
        gfd phi3 {                       # president & vice share nationality
          pattern {
            node c: country
            node p: person
            node v: person
            edge c -president-> p
            edge c -vicePresident-> v
          }
          then { p.nationality = v.nationality }
        }
        "#,
        &mut vocab,
    )
    .expect("rules parse");
    let sigma = doc.gfds;

    // ── 3. Parallel detection with per-rule statistics ───────────────────
    let config = DetectConfig::with_workers(4);
    let report = detect(&graph, &sigma, &config);
    println!("\n{}", report.summary(&sigma, &vocab));
    // ϕ1 and ϕ3 catch one violation each; ϕ2 catches the two symmetric
    // (y, z) orderings of the tank's conflicting speed records.
    assert_eq!(report.violations.len(), 4);
    for v in &report.violations {
        print!("{}", v.explain(&graph, &sigma, &vocab));
        for r in suggest_repairs(&graph, &sigma, v, &vocab) {
            println!("  candidate repair: {}", r.description);
        }
    }

    // ── 4. Repair loop: fix one violation, re-detect, repeat ─────────────
    // Repairs must be recomputed against the *current* graph — one fix
    // (e.g. equalizing the two speed values) can resolve several
    // violations at once, or change what the right fix for the next one
    // is. A real cleaning system would rank candidates; we take the
    // first suggestion each round.
    let mut repaired = graph.clone();
    let mut rounds = 0;
    loop {
        let rep = detect(&repaired, &sigma, &config);
        if rep.is_clean() {
            break;
        }
        let v = &rep.violations[0];
        let repairs = suggest_repairs(&repaired, &sigma, v, &vocab);
        let chosen = repairs.first().expect("every violation has a repair");
        println!("applying: {}", chosen.description);
        gfd::detect::repair::apply_repair(&mut repaired, chosen);
        rounds += 1;
        assert!(rounds <= 10, "repair loop did not converge");
    }

    // ── 5. Verify the repaired graph is clean ────────────────────────────
    let after = detect(&repaired, &sigma, &config);
    println!(
        "\nafter {rounds} repair(s): {} violation(s) — graph {}",
        after.violations.len(),
        if after.is_clean() {
            "is clean"
        } else {
            "still dirty"
        }
    );
    assert!(after.is_clean());
}
