//! Reasoning with GEDs: built-in order predicates and disjunction (the
//! §IX extension), on a compliance-rules scenario.
//!
//! A retail platform encodes pricing policy as GEDs:
//!   r1: every listed product has 0 < price
//!   r2: discounted products: price < 50 ∨ clearance = true
//!   r3: clearance products have price < 20
//!
//! We ask the reasoner two kinds of questions:
//!   * satisfiability — is the policy self-consistent? (can all rules
//!     hold on one catalogue?)
//!   * implication — does the policy already entail a proposed new rule,
//!     making it redundant?
//!
//! Run with: `cargo run --release --example ged_reasoning`

use gfd::ged::{ged_implies, ged_sat, CmpOp, Ged, GedLiteral, GedSet};
use gfd::prelude::*;

fn product_pattern(vocab: &mut Vocab) -> Pattern {
    let product = vocab.label("product");
    let mut p = Pattern::new();
    p.add_node(product, "p");
    p
}

fn main() {
    let mut vocab = Vocab::new();
    let price = vocab.attr("price");
    let discounted = vocab.attr("discounted");
    let clearance = vocab.attr("clearance");
    let p = gfd::graph::VarId::new(0);

    // ── 1. The policy ────────────────────────────────────────────────────
    let r1 = Ged::conjunctive(
        "positive-price",
        product_pattern(&mut vocab),
        vec![],
        vec![GedLiteral::cmp_const(p, price, CmpOp::Gt, 0i64)],
    );
    let r2 = Ged::new(
        "discount-policy",
        product_pattern(&mut vocab),
        vec![GedLiteral::eq_const(p, discounted, true)],
        vec![
            vec![GedLiteral::cmp_const(p, price, CmpOp::Lt, 50i64)],
            vec![GedLiteral::eq_const(p, clearance, true)],
        ],
    );
    let r3 = Ged::conjunctive(
        "clearance-price",
        product_pattern(&mut vocab),
        vec![GedLiteral::eq_const(p, clearance, true)],
        vec![GedLiteral::cmp_const(p, price, CmpOp::Lt, 20i64)],
    );
    let sigma = GedSet::from_vec(vec![r1, r2, r3]);
    println!("policy:");
    for (_, ged) in sigma.iter() {
        println!("  {}", ged.display(&vocab));
    }

    // ── 2. Satisfiability: the policy is consistent ──────────────────────
    let out = ged_sat(&sigma);
    println!("\npolicy satisfiable: {}", out.is_satisfiable());
    assert!(out.is_satisfiable());
    if let Some(w) = out.witness() {
        println!(
            "witness catalogue: {} node(s), {} attribute(s)",
            w.node_count(),
            w.attr_count()
        );
    }

    // ── 3. An inconsistent amendment is caught ───────────────────────────
    // "every discounted product costs at least 60" contradicts r2+r3:
    // price ≥ 60 kills the <50 branch, forcing clearance, forcing <20.
    let bad = Ged::conjunctive(
        "minimum-discount-price",
        product_pattern(&mut vocab),
        vec![GedLiteral::eq_const(p, discounted, true)],
        vec![GedLiteral::cmp_const(p, price, CmpOp::Ge, 60i64)],
    );
    let mut amended = sigma.clone();
    // The amendment alone is fine; the *interaction* is the problem —
    // but only when a discounted product can exist. Add the business
    // assumption that discounted products exist:
    let seed = Ged::conjunctive(
        "discounts-exist",
        product_pattern(&mut vocab),
        vec![],
        vec![GedLiteral::eq_const(p, discounted, true)],
    );
    amended.push(bad);
    amended.push(seed);
    let out = ged_sat(&amended);
    println!(
        "policy + minimum-discount-price + discounts-exist satisfiable: {}",
        out.is_satisfiable()
    );
    assert!(!out.is_satisfiable());

    // ── 4. Implication: redundant proposals are detected ─────────────────
    // "discounted clearance products cost less than 30" — already implied
    // (clearance forces price < 20 < 30).
    let proposal = Ged::conjunctive(
        "clearance-discount-under-30",
        product_pattern(&mut vocab),
        vec![
            GedLiteral::eq_const(p, discounted, true),
            GedLiteral::eq_const(p, clearance, true),
        ],
        vec![GedLiteral::cmp_const(p, price, CmpOp::Lt, 30i64)],
    );
    let implied = ged_implies(&sigma, &proposal).is_implied();
    println!("\nΣ |= {} ? {}", proposal.name, implied);
    assert!(implied, "redundant: clearance already caps price at 20");

    // A genuinely new rule is not implied.
    let novel = Ged::conjunctive(
        "discount-under-40",
        product_pattern(&mut vocab),
        vec![GedLiteral::eq_const(p, discounted, true)],
        vec![GedLiteral::cmp_const(p, price, CmpOp::Lt, 40i64)],
    );
    let implied = ged_implies(&sigma, &novel).is_implied();
    println!("Σ |= {} ? {}", novel.name, implied);
    assert!(!implied, "a discounted product may cost 45");

    // A tautology is implied by anything (needs Y-literal branching).
    let taut = Ged::new(
        "price-totality",
        product_pattern(&mut vocab),
        vec![GedLiteral::cmp_const(p, price, CmpOp::Gt, 0i64)],
        vec![
            vec![GedLiteral::cmp_const(p, price, CmpOp::Lt, 100i64)],
            vec![GedLiteral::cmp_const(p, price, CmpOp::Ge, 100i64)],
        ],
    );
    let implied = ged_implies(&GedSet::new(), &taut).is_implied();
    println!("∅ |= {} ? {}", taut.name, implied);
    assert!(implied);
}
