//! Knowledge-base cleaning: the paper's motivating DBpedia scenario
//! (Example 1, rules ϕ1–ϕ3).
//!
//! 1. Validate the rule set itself with the satisfiability analysis
//!    ("check whether Σ is dirty before using it to detect errors").
//! 2. Detect the paper's actual DBpedia inconsistencies in a small
//!    knowledge graph: the Bamburi-airport cycle, the two-top-speed tank,
//!    and the Botswana nationality mismatch.
//!
//! Run with: `cargo run --release --example knowledge_cleaning`

use gfd::prelude::*;

const RULES: &str = r#"
# phi1: a place located in another place cannot contain it (cyclic pattern).
gfd phi1 {
  pattern {
    node x: place
    node y: place
    edge x -locateIn-> y
    edge y -partOf-> x
  }
  then { false }
}

# phi2: topSpeed is a functional property — one object, one top speed.
gfd phi2 {
  pattern {
    node x: _
    node y: speed
    node z: speed
    edge x -topSpeed-> y
    edge x -topSpeed-> z
  }
  then { y.val = z.val }
}

# phi3: the president and vice-president of one country share a
# nationality.
gfd phi3 {
  pattern {
    node x: person
    node y: person
    node z: country
    edge x -president-> z
    edge y -vicePresident-> z
  }
  when { x.c = y.c }
  then { x.nationality = y.nationality }
}
"#;

const DIRTY_KB: &str = r#"
graph dbpedia {
  # The Bamburi cycle (caught by phi1).
  node bamburi_airport: place { name = "Bamburi airport" }
  node bamburi: place { name = "Bamburi" }
  edge bamburi_airport -locateIn-> bamburi
  edge bamburi -partOf-> bamburi_airport

  # The tank with two top speeds (caught by phi2).
  node tank: vehicle { name = "tank" }
  node s1: speed { val = "24.076" }
  node s2: speed { val = "33.336" }
  edge tank -topSpeed-> s1
  edge tank -topSpeed-> s2

  # Botswana's president and vice-president (caught by phi3).
  node pres: person { c = "Botswana", nationality = "Botswana" }
  node vice: person { c = "Botswana", nationality = "Tswana" }
  node botswana: country { name = "Botswana" }
  edge pres -president-> botswana
  edge vice -vicePresident-> botswana

  # Clean facts that must NOT be flagged.
  node nairobi: place { name = "Nairobi" }
  node kenya: place { name = "Kenya" }
  edge nairobi -locateIn-> kenya
  node car: vehicle { name = "car" }
  node s3: speed { val = "200" }
  edge car -topSpeed-> s3
}
"#;

fn main() {
    let mut vocab = Vocab::new();
    let sigma = gfd::dsl::parse_document(RULES, &mut vocab)
        .expect("rules parse")
        .gfds;

    // Step 1: validate the rules before trusting them.
    //
    // The paper's model definition (§IV) demands that a model *hosts a
    // match of every pattern*. An unconditional denial like phi1 can then
    // never be part of a satisfiable set: any model must contain the
    // forbidden cycle and immediately violates it. The satisfiability
    // analysis flags exactly that:
    let sat_all = gfd::seq_sat(&sigma);
    println!(
        "rule validation: Σ = {{phi1, phi2, phi3}} is {} (phi1 denies its own scope pattern — \
         the model condition (b) of §IV cannot hold)",
        if sat_all.is_satisfiable() {
            "consistent"
        } else {
            "NOT satisfiable"
        }
    );
    assert!(!sat_all.is_satisfiable());

    // The conditional rules phi2 and phi3 are jointly consistent:
    let conditional: GfdSet = sigma
        .iter()
        .filter(|(_, g)| !g.is_denial())
        .map(|(_, g)| g.clone())
        .collect();
    let sat = gfd::seq_sat(&conditional);
    println!(
        "rule validation: {{phi2, phi3}} is {} — safe to use for detection",
        if sat.is_satisfiable() {
            "consistent"
        } else {
            "inconsistent"
        }
    );
    assert!(sat.is_satisfiable());

    // Redundancy check via implication: phi2 restricted to vehicles is
    // subsumed by phi2 and need not be added.
    let phi2_vehicles = gfd::dsl::parse_gfd(
        r#"
        gfd phi2_vehicles {
          pattern {
            node x: vehicle
            node y: speed
            node z: speed
            edge x -topSpeed-> y
            edge x -topSpeed-> z
          }
          then { y.val = z.val }
        }
        "#,
        &mut vocab,
    )
    .unwrap();
    // Note: the wildcard in phi2 matches `vehicle`, so phi2 |= the
    // restricted rule.
    let redundant = gfd::seq_imp(&sigma, &phi2_vehicles).is_implied();
    println!("optimization: phi2_vehicles is redundant (implied by Σ): {redundant}");
    assert!(redundant);

    // Step 2: detect inconsistencies in the knowledge graph.
    let doc = gfd::dsl::parse_document(DIRTY_KB, &mut vocab).expect("kb parses");
    let kb = &doc.graphs[0].1;
    println!(
        "\nknowledge graph: {} entities, {} links",
        kb.node_count(),
        kb.edge_count()
    );

    let violations = gfd::find_violations(kb, &sigma, 100);
    println!("found {} violation(s):", violations.len());
    for v in &violations {
        let gfd = &sigma[v.gfd];
        let entities: Vec<String> = gfd
            .pattern
            .vars()
            .map(|var| {
                let node = v.m[var.index()];
                let name = vocab
                    .find_attr("name")
                    .and_then(|a| kb.attr(node, a))
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| format!("{node}"));
                format!("{} = {}", gfd.pattern.var_name(var), name)
            })
            .collect();
        println!("  {} violated by [{}]", gfd.name, entities.join(", "));
    }
    // One per planted error family (phi2 finds the symmetric match twice).
    assert!(violations.len() >= 3);

    // The clean facts are untouched: removing the three dirty families
    // leaves a graph that satisfies Σ.
    let clean = gfd::dsl::parse_document(
        r#"
        graph clean {
          node nairobi: place { name = "Nairobi" }
          node kenya: place { name = "Kenya" }
          edge nairobi -locateIn-> kenya
          node car: vehicle { name = "car" }
          node s3: speed { val = "200" }
          edge car -topSpeed-> s3
        }
        "#,
        &mut vocab,
    )
    .unwrap();
    let ok = gfd::graph_satisfies_all(&clean.graphs[0].1, &sigma);
    println!("\nclean subgraph satisfies Σ: {ok}");
    assert!(ok);
}
