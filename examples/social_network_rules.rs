//! Parallel reasoning over a social-network rule set (the paper's Pokec
//! scenario, §VII): validate a large mined-style rule set with `ParSat`,
//! then run implication probes with `ParImp`, reporting run metrics.
//!
//! Run with: `cargo run --release --example social_network_rules`

use gfd::gen::{real_life_workload, Dataset};
use gfd::prelude::*;
use std::time::Duration;

fn main() {
    // A Pokec-like workload: 269 node types, 11 edge types, mined-style
    // rules with shared seed patterns (so the rules interact).
    let size = 300;
    let workload = real_life_workload(Dataset::Pokec, size, 7, None);
    println!(
        "workload: {} rules over the {} schema, |Σ| = {} size units",
        workload.sigma.len(),
        workload.name,
        workload.sigma.total_size()
    );

    // Sequential reference.
    let seq = gfd::seq_sat(&workload.sigma);
    println!(
        "\nSeqSat: satisfiable = {} in {:?} ({} matches, {} pending, {} rechecks)",
        seq.is_satisfiable(),
        seq.stats.elapsed,
        seq.stats.matches,
        seq.stats.pending,
        seq.stats.rechecks,
    );

    // Parallel runs with growing worker counts.
    println!("\nParSat scalability (makespan = max per-worker CPU time):");
    println!(
        "{:>3}  {:>10}  {:>10}  {:>9}  {:>7}  {:>7}",
        "p", "wall", "makespan", "imbalance", "units", "splits"
    );
    for p in [1, 2, 4, 8] {
        let cfg = ParConfig::with_workers(p).with_ttl(Duration::from_millis(20));
        let r = gfd::par_sat(&workload.sigma, &cfg);
        assert_eq!(r.is_satisfiable(), seq.is_satisfiable());
        println!(
            "{:>3}  {:>10.2?}  {:>10.2?}  {:>9.2}  {:>7}  {:>7}",
            p,
            r.metrics.elapsed,
            r.metrics.makespan().unwrap_or_default(),
            r.metrics.imbalance().unwrap_or(f64::NAN),
            r.metrics.units_dispatched,
            r.metrics.units_split,
        );
    }

    // An unsatisfiable variant: early termination kicks in.
    let dirty = real_life_workload(Dataset::Pokec, size, 7, Some(3));
    let r = gfd::par_sat(
        &dirty.sigma,
        &ParConfig::with_workers(4).with_ttl(Duration::from_millis(20)),
    );
    println!(
        "\nwith an injected conflict chain: satisfiable = {}, early_terminated = {}",
        r.is_satisfiable(),
        r.metrics.early_terminated
    );
    assert!(!r.is_satisfiable());

    // Implication probes in parallel.
    println!("\nParImp on {} probes:", workload.probes.len());
    let cfg = ParConfig::with_workers(4).with_ttl(Duration::from_millis(20));
    for probe in &workload.probes {
        let r = gfd::par_imp(&workload.sigma, &probe.phi, &cfg);
        println!(
            "  {:<28} implied = {:<5} (expected {:<5}) wall = {:?}",
            probe.phi.name,
            r.is_implied(),
            probe.expect_implied,
            r.metrics.elapsed
        );
        assert_eq!(r.is_implied(), probe.expect_implied);
    }
}
