//! Incremental ≡ from-scratch equivalence: random delta streams applied
//! through `gfd-incr` must leave exactly the violation set a full
//! re-freeze + `gfd_detect::detect` computes on the mutated graph, at
//! p ∈ {1, 4}, after every batch — including deletion-heavy streams.
//!
//! This is the contract the whole streaming pipeline stands on: the
//! dirty-frontier argument (DESIGN.md §8) says nothing outside the
//! re-run region can change, and this suite is where that claim meets
//! arbitrary topology + attribute churn.

use gfd::detect::{detect, DetectConfig, ViolationRecord};
use gfd::gen::{delta_stream, random_graph, DeltaStreamConfig, GraphGenConfig, Schema};
use gfd::incr::{IncrConfig, IncrementalDetector};
use gfd::prelude::*;
use proptest::prelude::*;

/// Concrete rules of radius 0, 1 and 2 over the Tiny schema: a constant
/// check, an equality across an edge, and an equality across a 2-path.
fn rules(schema: &Schema) -> GfdSet {
    let t0 = schema.node_labels()[0];
    let t1 = schema.node_labels()[1 % schema.node_labels().len()];
    let e0 = schema.edge_labels()[0];
    let e1 = schema.edge_labels()[1 % schema.edge_labels().len()];
    let a0 = schema.attrs()[0];
    let a1 = schema.attrs()[1 % schema.attrs().len()];

    let mut p1 = Pattern::new();
    let x = p1.add_node(t0, "x");
    let r1 = Gfd::new(
        "const",
        p1,
        vec![],
        vec![Literal::eq_const(x, a0, gfd::gen::canonical_value(a0))],
    );

    let mut p2 = Pattern::new();
    let x = p2.add_node(t0, "x");
    let y = p2.add_node(t1, "y");
    p2.add_edge(x, e0, y);
    let r2 = Gfd::new("edge-eq", p2, vec![], vec![Literal::eq_attr(x, a0, y, a0)]);

    let mut p3 = Pattern::new();
    let x = p3.add_node(LabelId::WILDCARD, "x");
    let y = p3.add_node(t1, "y");
    let z = p3.add_node(LabelId::WILDCARD, "z");
    p3.add_edge(x, e0, y);
    p3.add_edge(y, e1, z);
    let r3 = Gfd::new("path-eq", p3, vec![], vec![Literal::eq_attr(x, a1, z, a1)]);

    GfdSet::from_vec(vec![r1, r2, r3])
}

fn violation_keys(vs: &[ViolationRecord]) -> Vec<(gfd::graph::GfdId, Box<[NodeId]>)> {
    vs.iter().map(|v| (v.gfd, v.m.clone())).collect()
}

/// Drive one stream through both pipelines and compare after each batch.
fn check_stream(seed: u64, stream_cfg: DeltaStreamConfig, compact_fraction: f64) {
    let mut vocab = Vocab::new();
    let schema = Schema::new(gfd::gen::Dataset::Tiny, &mut vocab);
    let graph = random_graph(
        &schema,
        &GraphGenConfig {
            nodes: 40,
            edges: 120,
            attr_prob: 0.6,
            seed,
        },
    );
    let sigma = rules(&schema);
    let batches = delta_stream(&graph, &schema, &stream_cfg);

    for p in [1usize, 4] {
        let mut incr = IncrementalDetector::new(
            graph.clone(),
            sigma.clone(),
            IncrConfig {
                detect: DetectConfig::with_workers(p),
                compact_fraction,
            },
        );
        let mut reference = graph.clone();
        for (i, batch) in batches.iter().enumerate() {
            incr.apply(batch);
            batch.apply_to_graph(&mut reference);
            let full = detect(&reference, &sigma, &DetectConfig::with_workers(p));
            assert_eq!(
                violation_keys(incr.violations()),
                violation_keys(&full.violations),
                "divergence at p={p}, batch {i}, seed {seed}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mixed streams: inserts, deletes, attribute writes, new nodes.
    #[test]
    fn incremental_equals_full_redetect(seed in 0u64..1_000_000) {
        check_stream(
            seed,
            DeltaStreamConfig {
                batches: 3,
                edge_fraction: 0.05,
                seed: seed ^ 0x5eed,
                ..Default::default()
            },
            0.25,
        );
    }

    /// Deletion-heavy streams (tombstone-dominated overlays).
    #[test]
    fn deletion_heavy_streams_stay_equivalent(seed in 0u64..1_000_000) {
        let mut cfg = DeltaStreamConfig::deletion_heavy(seed ^ 0xde1);
        cfg.batches = 3;
        cfg.edge_fraction = 0.08;
        check_stream(seed, cfg, 0.25);
    }

    /// A tiny compaction threshold forces a re-freeze nearly every
    /// batch: compaction must be invisible to the result.
    #[test]
    fn aggressive_compaction_is_invisible(seed in 0u64..1_000_000) {
        check_stream(
            seed,
            DeltaStreamConfig {
                batches: 3,
                edge_fraction: 0.05,
                seed: seed ^ 0xc0,
                ..Default::default()
            },
            0.001,
        );
    }
}
