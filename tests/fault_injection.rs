//! Fault-injection suite: every failpoint site (DESIGN.md §11.3) fired
//! on purpose, proving the failure semantics each layer promises.
//!
//! * the scheduler isolates unit panics — `RunOutcome::Aborted`, all
//!   workers joined, no hang, no poisoned state, at every worker count
//!   (`GFD_EQ_WORKERS` pins one; CI sweeps 2 and 8);
//! * the reasoning drivers map an abort to their unknown arm, never to a
//!   wrong definite verdict;
//! * parsers fail with structured errors, the compactor defers work, and
//!   a crash between batches is recoverable from a checkpoint with a
//!   byte-identical final state.
//!
//! The failpoint registry is process-global, so every test here holds
//! the `SERIAL` lock and disarms on entry and exit.

use gfd::chase::{dep_sat_with_config, ChaseConfig, DepSatOutcome};
use gfd::core::{sat_with_config, Interrupt, ReasonConfig};
use gfd::incr::{IncrConfig, IncrementalDetector};
use gfd::io::{checkpoint_to_string, parse_checkpoint, Checkpoint};
use gfd::prelude::*;
use gfd::runtime::{
    failpoint, run_scheduler_with, DispatchMode, RunOutcome, SchedOptions, SchedRun, Task,
    WorkerCtx,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Process-global failpoint registry ⇒ the suite must not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    let g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::disarm_all();
    g
}

/// Worker counts to sweep: `GFD_EQ_WORKERS=n` pins one (the CI matrix),
/// the default covers a small and a large pool.
fn worker_counts() -> Vec<usize> {
    match std::env::var("GFD_EQ_WORKERS") {
        Ok(v) => vec![v.parse().expect("GFD_EQ_WORKERS must be an integer")],
        Err(_) => vec![2, 8],
    }
}

/// A minimal workload: each unit sleeps briefly (long enough that idle
/// workers reach their steal path) and bumps a counter.
struct SleepTask {
    executed: AtomicU64,
    retryable: bool,
}

impl SleepTask {
    fn new(retryable: bool) -> Self {
        SleepTask {
            executed: AtomicU64::new(0),
            retryable,
        }
    }
}

impl Task for SleepTask {
    type Unit = u32;
    type Worker = ();

    fn worker(&self, _id: usize) -> Self::Worker {}

    fn run_unit(&self, _w: &mut Self::Worker, _unit: u32, _ctx: &WorkerCtx<'_, u32>) {
        std::thread::sleep(Duration::from_millis(2));
        self.executed.fetch_add(1, Ordering::SeqCst);
    }

    fn describe_unit(&self, unit: &u32) -> String {
        format!("sleep-unit-{unit}")
    }

    fn clone_unit(&self, unit: &u32) -> Option<u32> {
        self.retryable.then_some(*unit)
    }
}

fn run_sleep_task(task: &SleepTask, units: usize, workers: usize, retries: u32) -> SchedRun<()> {
    let stop = AtomicBool::new(false);
    run_scheduler_with(
        task,
        (0..units as u32).collect(),
        workers,
        DispatchMode::WorkStealing,
        &stop,
        SchedOptions {
            unit_retries: retries,
            ..SchedOptions::default()
        },
    )
}

#[test]
fn forced_unit_panic_aborts_cleanly_at_every_worker_count() {
    let _g = serial();
    for p in worker_counts() {
        failpoint::arm("sched/unit=1").unwrap();
        let task = SleepTask::new(false);
        // Returning at all proves every worker joined (no hang); the
        // other units may or may not have run before cancellation.
        let run = run_sleep_task(&task, 16, p, 0);
        let RunOutcome::Aborted(info) = &run.outcome else {
            panic!("p={p}: expected Aborted, got {:?}", run.outcome);
        };
        assert!(info.unit.starts_with("sleep-unit-"), "{info}");
        assert!(info.payload.contains("sched/unit"), "{info}");
        assert_eq!(run.workers.len(), p, "p={p}: partial states returned");
        failpoint::disarm_all();

        // The scheduler state is not poisoned: a fresh run at the same
        // width completes every unit.
        let task = SleepTask::new(false);
        let run = run_sleep_task(&task, 16, p, 0);
        assert_eq!(run.outcome, RunOutcome::Completed, "p={p}");
        assert_eq!(task.executed.load(Ordering::SeqCst), 16, "p={p}");
    }
}

#[test]
fn panicked_unit_is_requeued_once_then_aborts() {
    let _g = serial();
    // One retry budget, one forced panic: the requeued clone succeeds.
    failpoint::arm("sched/unit=1").unwrap();
    let task = SleepTask::new(true);
    let run = run_sleep_task(&task, 8, 2, 1);
    assert_eq!(
        run.outcome,
        RunOutcome::Completed,
        "retry absorbs the panic"
    );
    assert_eq!(run.units_panicked, 1);
    assert_eq!(run.units_retried, 1);
    assert_eq!(task.executed.load(Ordering::SeqCst), 8);
    failpoint::disarm_all();

    // Every attempt panics (seeded denominator 1) against a budget of
    // one retry: the second failure of some unit aborts the run.
    failpoint::arm("sched/unit=~1:1").unwrap();
    let task = SleepTask::new(true);
    let run = run_sleep_task(&task, 8, 2, 1);
    assert!(run.outcome.is_aborted(), "{:?}", run.outcome);
    assert!(run.units_retried >= 1, "the retry path was exercised");
    failpoint::disarm_all();
}

#[test]
fn dispatch_and_steal_failpoints_abort_cleanly() {
    let _g = serial();
    // A panic while *acquiring* a unit (outside any unit envelope) must
    // still cancel the run and join every worker.
    failpoint::arm("sched/dispatch=1").unwrap();
    let task = SleepTask::new(false);
    let run = run_sleep_task(&task, 16, 2, 0);
    let RunOutcome::Aborted(info) = &run.outcome else {
        panic!("expected Aborted, got {:?}", run.outcome);
    };
    assert_eq!(info.unit, "<dispatch>", "{info}");
    assert!(info.payload.contains("sched/dispatch"), "{info}");
    failpoint::disarm_all();

    // Same for the steal path: with more workers than units, idle
    // workers must attempt steals while the slow units run.
    failpoint::arm("sched/steal=~1:7").unwrap();
    let task = SleepTask::new(false);
    let run = run_sleep_task(&task, 4, 8, 0);
    let RunOutcome::Aborted(info) = &run.outcome else {
        panic!("expected Aborted, got {:?}", run.outcome);
    };
    assert!(info.payload.contains("sched/steal"), "{info}");
    failpoint::disarm_all();
}

/// Steal storm on the raw scheduler: instant units at eight workers, so
/// the pool spends most of the run racing top-CAS claims on each other's
/// Chase–Lev deques. Every unit must execute exactly once per round (no
/// loss, no duplication across lost CAS races), and `units_stolen` must
/// count only successful claims.
#[test]
fn steal_storm_executes_every_unit_exactly_once() {
    let _g = serial();

    struct CountTask {
        executed: AtomicU64,
    }
    impl Task for CountTask {
        type Unit = u32;
        type Worker = ();
        fn worker(&self, _id: usize) -> Self::Worker {}
        fn run_unit(&self, _w: &mut Self::Worker, _unit: u32, _ctx: &WorkerCtx<'_, u32>) {
            self.executed.fetch_add(1, Ordering::SeqCst);
        }
        fn describe_unit(&self, unit: &u32) -> String {
            format!("count-unit-{unit}")
        }
    }

    let mut total_stolen = 0u64;
    for _round in 0..8 {
        let task = CountTask {
            executed: AtomicU64::new(0),
        };
        let stop = AtomicBool::new(false);
        let run = run_scheduler_with(
            &task,
            (0..512u32).collect(),
            8,
            DispatchMode::WorkStealing,
            &stop,
            SchedOptions::default(),
        );
        assert_eq!(run.outcome, RunOutcome::Completed);
        assert_eq!(task.executed.load(Ordering::SeqCst), 512);
        assert_eq!(run.units_executed, 512);
        assert!(run.units_stolen <= 512, "{}", run.units_stolen);
        total_stolen += run.units_stolen;
    }
    assert!(
        total_stolen > 0,
        "eight rounds at p=8 must steal at least once"
    );
}

/// Steal storm through the chase: the conflict-heavy workload at eight
/// workers with TTL zero and singleton batches (maximal splitting). A
/// seeded `sched/steal` failpoint mid-storm maps to a clean unknown;
/// disarmed, the same storm lands on the serial fixpoint bit for bit.
#[test]
fn steal_storm_chase_stays_invariant_under_failpoints() {
    let _g = serial();
    let mut vocab = Vocab::new();
    let deps = gfd::gen::ggd_overlap_workload(
        &gfd::gen::GgdGenConfig {
            chain_depth: 2,
            gen_per_tier: 2,
            fanout: 2,
            literal_rules: 2,
            seed: 23,
        },
        &mut vocab,
    );
    let storm_cfg = ChaseConfig {
        workers: 8,
        ttl: Duration::ZERO,
        batch: 1,
        ..ChaseConfig::default()
    };

    failpoint::arm("sched/steal=~1:10").unwrap();
    let r = dep_sat_with_config(&deps, &storm_cfg);
    failpoint::disarm_all();
    match &r.outcome {
        DepSatOutcome::Interrupted(Interrupt::Aborted(msg)) => {
            assert!(msg.contains("sched/steal"), "{msg}")
        }
        other => panic!("expected an interrupted chase, got {other:?}"),
    }
    assert!(r.is_unknown(), "an aborted storm has no verdict");

    let base = dep_sat_with_config(&deps, &ChaseConfig::default());
    assert!(base.is_satisfiable());
    let r = dep_sat_with_config(&deps, &storm_cfg);
    assert!(r.is_satisfiable(), "no sticky state after disarm");
    assert_eq!(r.stats.rounds, base.stats.rounds);
    assert_eq!(r.stats.generated_nodes, base.stats.generated_nodes);
    assert!(r.stats.apply_conflicts > 0, "{:?}", r.stats);
}

#[test]
fn reasoning_driver_maps_a_unit_panic_to_unknown() {
    let _g = serial();
    let mut vocab = Vocab::new();
    let sigma = gfd::dsl::parse_document(
        "gfd a { pattern { node x: t } then { x.v = 1 } }\n\
         gfd b { pattern { node y: u } then { y.w = 2 } }\n\
         gfd c { pattern { node z: t } then { z.u = 3 } }\n",
        &mut vocab,
    )
    .unwrap()
    .gfds;
    for p in worker_counts() {
        failpoint::arm("sched/unit=1").unwrap();
        let r = sat_with_config(&sigma, &ReasonConfig::with_workers(p));
        match r.interrupt() {
            Some(Interrupt::Aborted(msg)) => {
                assert!(msg.contains("sched/unit"), "p={p}: {msg}")
            }
            other => panic!("p={p}: expected an abort interrupt, got {other:?}"),
        }
        assert!(r.stats.units_panicked >= 1, "p={p}");
        failpoint::disarm_all();

        // Disarmed, the same set gets its real verdict — no sticky state.
        let r = sat_with_config(&sigma, &ReasonConfig::with_workers(p));
        assert!(r.is_satisfiable(), "p={p}");
    }
}

#[test]
fn chase_apply_failpoint_interrupts_the_chase() {
    let _g = serial();
    let mut vocab = Vocab::new();
    let sigma = gfd::dsl::parse_document(
        "ggd has_team { pattern { node x: person } \
         create { node m: team edge x -memberOf-> m } }\n",
        &mut vocab,
    )
    .unwrap()
    .deps;
    failpoint::arm("chase/apply=1").unwrap();
    let r = dep_sat_with_config(&sigma, &ChaseConfig::default());
    failpoint::disarm_all();
    match &r.outcome {
        DepSatOutcome::Interrupted(Interrupt::Aborted(msg)) => {
            assert!(msg.contains("chase/apply"), "{msg}")
        }
        other => panic!("expected an interrupted chase, got {other:?}"),
    }
    assert!(r.is_unknown(), "an interrupted chase has no verdict");

    // Disarmed, the chase terminates with a model.
    let r = dep_sat_with_config(&sigma, &ChaseConfig::default());
    assert!(r.is_satisfiable());
}

#[test]
fn deltalog_failpoint_is_a_structured_error() {
    let _g = serial();
    failpoint::arm("io/deltalog=1").unwrap();
    let mut vocab = Vocab::new();
    let e = gfd::io::parse_delta_log("batch\nnode t\n", &mut vocab).unwrap_err();
    assert!(e.to_string().contains("failpoint io/deltalog"), "{e}");
    failpoint::disarm_all();
    assert!(gfd::io::parse_delta_log("batch\nnode t\n", &mut vocab).is_ok());
}

#[test]
fn cli_surfaces_a_deltalog_fault_as_exit_2() {
    let _g = serial();
    let dir = std::env::temp_dir().join("gfd-fault-cli");
    std::fs::create_dir_all(&dir).unwrap();
    let rules = dir.join("rules.gfd");
    std::fs::write(
        &rules,
        "graph g { node a: t { v = 1 } }\n\
         gfd r { pattern { node x: t } then { x.v = 1 } }\n",
    )
    .unwrap();
    let log = dir.join("log.delta");
    std::fs::write(&log, "batch\nattr 0 v=2\n").unwrap();
    let argv: Vec<String> = [
        "detect",
        rules.to_str().unwrap(),
        "--stream",
        log.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    failpoint::arm("io/deltalog=1").unwrap();
    let (mut out, mut err) = (Vec::new(), Vec::new());
    let code = gfd_cli::run_with_err(&argv, &mut out, &mut err);
    failpoint::disarm_all();
    assert_eq!(code, 2);
    let err = String::from_utf8(err).unwrap();
    assert!(err.starts_with("error:"), "{err}");
    assert!(err.contains("failpoint io/deltalog"), "{err}");

    // Disarmed, the same invocation replays the log and finds the
    // injected violation (exit 1 = violations, not an error).
    let (mut out, mut err) = (Vec::new(), Vec::new());
    let code = gfd_cli::run_with_err(&argv, &mut out, &mut err);
    assert_eq!(code, 1, "{}", String::from_utf8_lossy(&out));
}

/// Shared streaming fixture: a two-node graph, one cross-edge equality
/// rule, and a three-batch delta log that breaks it, extends it with a
/// new node, then partially heals it.
fn stream_fixture(vocab: &mut Vocab) -> (gfd::dsl::Document, Vec<gfd::graph::DeltaBatch>) {
    let doc = gfd::dsl::parse_document(
        "graph g {\n\
           node a: t { v = 1 }\n\
           node b: t { v = 1 }\n\
           edge a -e-> b\n\
         }\n\
         gfd same {\n\
           pattern { node x: t node y: t edge x -e-> y }\n\
           then { x.v = y.v }\n\
         }\n",
        vocab,
    )
    .unwrap();
    let log = "batch\nattr 1 v=2\nbatch\nnode t\nattr 2 v=1\nedge 1 e 2\nbatch\ndel 0 e 1\n";
    let n = doc.graphs[0].1.node_count();
    let batches = gfd::io::parse_delta_log_for(log, vocab, n).unwrap();
    (doc, batches)
}

#[test]
fn compact_failpoint_defers_compaction_without_changing_answers() {
    let _g = serial();
    let mut vocab = Vocab::new();
    let (doc, batches) = stream_fixture(&mut vocab);
    let graph = doc.graphs[0].1.clone();
    let config = IncrConfig {
        compact_fraction: 0.0, // compact after every batch with an overlay
        ..IncrConfig::default()
    };
    let mut faulted = IncrementalDetector::new(graph.clone(), doc.deps.clone(), config.clone());
    let mut clean = IncrementalDetector::new(graph, doc.deps.clone(), config);

    // Batch 1 is attribute-only: no overlay, nothing to compact.
    faulted.apply(&batches[0]);
    clean.apply(&batches[0]);

    // Batch 2 adds topology; the fired failpoint defers the re-freeze on
    // the faulted detector while the clean twin compacts on schedule —
    // and both report the same violations (the fault degrades locality,
    // never answers).
    failpoint::arm("incr/compact=1").unwrap();
    let rep = faulted.apply(&batches[1]);
    failpoint::disarm_all();
    assert!(!rep.compacted, "the fired failpoint defers the re-freeze");
    let rep = clean.apply(&batches[1]);
    assert!(rep.compacted, "the clean twin compacts on schedule");
    assert_eq!(faulted.violations(), clean.violations());

    // The deferred fold happens on the next batch with overlay work.
    let rep = faulted.apply(&batches[2]);
    assert!(rep.compacted, "deferred work runs one batch later");
    clean.apply(&batches[2]);
    assert_eq!(faulted.violations(), clean.violations());
}

/// String-attribute streaming fixture for the interning change: the
/// delta stream carries unicode strings, an empty string, and an
/// attr-overwrite, so a resumed process must re-intern checkpointed
/// values (the GFDCKPT `value` section) before replaying the tail.
fn string_stream_fixture(vocab: &mut Vocab) -> (gfd::dsl::Document, Vec<gfd::graph::DeltaBatch>) {
    let doc = gfd::dsl::parse_document(
        "graph g {\n\
           node a: t { city = \"León\" }\n\
           node b: t { city = \"León\" }\n\
           edge a -e-> b\n\
         }\n\
         gfd same_city {\n\
           pattern { node x: t node y: t edge x -e-> y }\n\
           then { x.city = y.city }\n\
         }\n",
        vocab,
    )
    .unwrap();
    let log = "batch\nattr 1 city=\"Zürich\"\nbatch\nnode t\nattr 2 city=\"\"\nedge 1 e 2\n\
               batch\nattr 1 city=\"León\"\n";
    let n = doc.graphs[0].1.node_count();
    let batches = gfd::io::parse_delta_log_for(log, vocab, n).unwrap();
    (doc, batches)
}

/// The interning variant of the crash-recovery test: kill between
/// batches of a string-heavy delta stream, resume from the checkpoint in
/// a fresh process (fresh `Vocab`, global `ValueTable` already warm with
/// unrelated ids), and require the final checkpoint bytes to match the
/// uninterrupted run exactly.
#[test]
fn crash_recovery_with_string_attrs_stays_byte_identical() {
    let _g = serial();

    let mut vocab = Vocab::new();
    let (doc, batches) = string_stream_fixture(&mut vocab);
    let mut full = IncrementalDetector::new(
        doc.graphs[0].1.clone(),
        doc.deps.clone(),
        IncrConfig::default(),
    );
    for b in &batches {
        full.apply(b);
    }
    let reference = checkpoint_to_string(
        &Checkpoint {
            batches_applied: batches.len(),
            graph: full.graph().clone(),
            violations: full.violations().to_vec(),
        },
        &vocab,
    );
    assert!(
        reference.contains("value \"León\"") && reference.contains("value \"\""),
        "checkpoint must persist the interned strings (unicode and empty):\n{reference}"
    );

    // Crashed process: killed between batch 2 and batch 3.
    let saved = {
        let mut vocab = Vocab::new();
        let (doc, batches) = string_stream_fixture(&mut vocab);
        let mut incr = IncrementalDetector::new(
            doc.graphs[0].1.clone(),
            doc.deps.clone(),
            IncrConfig::default(),
        );
        failpoint::arm("test/kill=3").unwrap();
        let mut persisted = None;
        for (i, b) in batches.iter().enumerate() {
            if failpoint::triggered("test/kill") {
                break;
            }
            incr.apply(b);
            persisted = Some(checkpoint_to_string(
                &Checkpoint {
                    batches_applied: i + 1,
                    graph: incr.graph().clone(),
                    violations: incr.violations().to_vec(),
                },
                &vocab,
            ));
        }
        failpoint::disarm_all();
        persisted.expect("two batches applied before the kill")
    };

    // Recovery process: the checkpoint's `value` section re-interns the
    // strings before the attrs bind them, then the tail replays.
    let mut vocab = Vocab::new();
    let (doc, batches) = string_stream_fixture(&mut vocab);
    let ckpt = parse_checkpoint(&saved, &mut vocab).unwrap();
    assert_eq!(ckpt.batches_applied, 2, "killed before batch 3");
    let applied = ckpt.batches_applied;
    let mut resumed = IncrementalDetector::from_parts(
        ckpt.graph,
        doc.deps.clone(),
        ckpt.violations,
        IncrConfig::default(),
    );
    for b in batches.iter().skip(applied) {
        resumed.apply(b);
    }
    let recovered = checkpoint_to_string(
        &Checkpoint {
            batches_applied: batches.len(),
            graph: resumed.graph().clone(),
            violations: resumed.violations().to_vec(),
        },
        &vocab,
    );
    assert_eq!(recovered, reference, "resume must be byte-identical");
}

#[test]
fn crash_between_batches_resumes_byte_identical_from_checkpoint() {
    let _g = serial();

    // Reference: the uninterrupted replay, rendered as checkpoint bytes.
    let mut vocab = Vocab::new();
    let (doc, batches) = stream_fixture(&mut vocab);
    let mut full = IncrementalDetector::new(
        doc.graphs[0].1.clone(),
        doc.deps.clone(),
        IncrConfig::default(),
    );
    for b in &batches {
        full.apply(b);
    }
    let reference = checkpoint_to_string(
        &Checkpoint {
            batches_applied: batches.len(),
            graph: full.graph().clone(),
            violations: full.violations().to_vec(),
        },
        &vocab,
    );

    // Crashed process: the `test/kill` failpoint models a kill between
    // batch 2 and batch 3; only the persisted checkpoint survives.
    let saved = {
        let mut vocab = Vocab::new();
        let (doc, batches) = stream_fixture(&mut vocab);
        let mut incr = IncrementalDetector::new(
            doc.graphs[0].1.clone(),
            doc.deps.clone(),
            IncrConfig::default(),
        );
        failpoint::arm("test/kill=3").unwrap();
        let mut persisted = None;
        for (i, b) in batches.iter().enumerate() {
            if failpoint::triggered("test/kill") {
                break;
            }
            incr.apply(b);
            persisted = Some(checkpoint_to_string(
                &Checkpoint {
                    batches_applied: i + 1,
                    graph: incr.graph().clone(),
                    violations: incr.violations().to_vec(),
                },
                &vocab,
            ));
        }
        failpoint::disarm_all();
        persisted.expect("two batches applied before the kill")
    };

    // Recovery process: fresh vocabulary, re-parsed rules and log, state
    // rebuilt from the checkpoint, remaining batches replayed.
    let mut vocab = Vocab::new();
    let (doc, batches) = stream_fixture(&mut vocab);
    let ckpt = parse_checkpoint(&saved, &mut vocab).unwrap();
    assert_eq!(ckpt.batches_applied, 2, "killed before batch 3");
    let applied = ckpt.batches_applied;
    let mut resumed = IncrementalDetector::from_parts(
        ckpt.graph,
        doc.deps.clone(),
        ckpt.violations,
        IncrConfig::default(),
    );
    for b in batches.iter().skip(applied) {
        resumed.apply(b);
    }
    let recovered = checkpoint_to_string(
        &Checkpoint {
            batches_applied: batches.len(),
            graph: resumed.graph().clone(),
            violations: resumed.violations().to_vec(),
        },
        &vocab,
    );
    assert_eq!(recovered, reference, "resume must be byte-identical");
}
