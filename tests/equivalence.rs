//! Cross-algorithm equivalence: SeqSat ≡ ParSat ≡ chase_sat and
//! SeqImp ≡ ParImp ≡ chase_imp on randomized inputs.
//!
//! The generators here produce *raw* random GFDs (constants drawn from a
//! two-value pool), so both satisfiable and unsatisfiable sets, and both
//! implied and non-implied probes, arise naturally.

use gfd::prelude::*;
use proptest::prelude::*;

/// A small random GFD over ≤3 labels, ≤2 attributes, constants {0, 1}.
fn arb_gfd(max_k: usize) -> impl Strategy<Value = Gfd> {
    (
        1usize..=max_k,
        proptest::collection::vec((0usize..4, 1u32..3, 0usize..4), 0..5),
        proptest::collection::vec(
            (
                0usize..4,
                0u32..2,
                proptest::option::of(0i64..2),
                0usize..4,
                0u32..2,
            ),
            0..3,
        ),
        proptest::collection::vec(
            (
                0usize..4,
                0u32..2,
                proptest::option::of(0i64..2),
                0usize..4,
                0u32..2,
            ),
            1..3,
        ),
        0u32..3, // extra label entropy
    )
        .prop_map(move |(k, edges, pre, post, label_seed)| {
            let mut p = Pattern::new();
            for i in 0..k {
                // Label 0 is the wildcard; 1..=3 concrete.
                let l = (i as u32 + label_seed) % 4;
                p.add_node(LabelId(l), format!("x{i}"));
            }
            for (s, l, d) in edges {
                p.add_edge(VarId::new(s % k), LabelId(l), VarId::new(d % k));
            }
            let mk = |items: Vec<(usize, u32, Option<i64>, usize, u32)>| {
                items
                    .into_iter()
                    .map(|(v, a, c, v2, a2)| match c {
                        Some(c) => Literal::eq_const(VarId::new(v % k), AttrId(a), Value::Int(c)),
                        None => Literal::eq_attr(
                            VarId::new(v % k),
                            AttrId(a),
                            VarId::new(v2 % k),
                            AttrId(a2),
                        ),
                    })
                    .collect::<Vec<_>>()
            };
            Gfd::new("g", p, mk(pre), mk(post))
        })
}

fn arb_sigma() -> impl Strategy<Value = GfdSet> {
    proptest::collection::vec(arb_gfd(3), 1..5).prop_map(GfdSet::from_vec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// All three satisfiability implementations give the same verdict, and
    /// positive verdicts come with verified models.
    #[test]
    fn satisfiability_equivalence(sigma in arb_sigma()) {
        let seq = gfd::seq_sat(&sigma);
        let chase = gfd::chase_sat(&sigma);
        prop_assert_eq!(seq.is_satisfiable(), chase.is_satisfiable());
        let par = gfd::par_sat(&sigma, &ParConfig::with_workers(2));
        prop_assert_eq!(seq.is_satisfiable(), par.is_satisfiable());
        if let Some(model) = seq.model() {
            prop_assert!(gfd::graph_satisfies_all(model, &sigma),
                "SeqSat's model must satisfy Σ");
        }
        if let SatOutcome::Satisfiable(model) = &par.outcome {
            prop_assert!(gfd::graph_satisfies_all(model, &sigma),
                "ParSat's model must satisfy Σ");
        }
    }

    /// All three implication implementations agree.
    #[test]
    fn implication_equivalence(sigma in arb_sigma(), phi in arb_gfd(3)) {
        let seq = gfd::seq_imp(&sigma, &phi);
        let chase = gfd::chase_imp(&sigma, &phi);
        prop_assert_eq!(seq.is_implied(), chase.is_implied(),
            "seq {:?} vs chase {:?}", seq.outcome, chase.outcome);
        let par = gfd::par_imp(&sigma, &phi, &ParConfig::with_workers(2));
        prop_assert_eq!(seq.is_implied(), par.is_implied(),
            "seq {:?} vs par {:?}", seq.outcome, par.outcome);
    }

    /// Ordering and pruning options never change answers (Church–Rosser).
    #[test]
    fn options_do_not_change_answers(sigma in arb_sigma(), phi in arb_gfd(2)) {
        use gfd::core::{seq_sat_with, seq_imp_with, ReasonOptions};
        let baseline_sat = gfd::seq_sat(&sigma).is_satisfiable();
        let baseline_imp = gfd::seq_imp(&sigma, &phi).is_implied();
        for (dep, prune) in [(false, false), (false, true), (true, false)] {
            let opts = ReasonOptions {
                use_dependency_order: dep,
                prune_components: prune,
            };
            prop_assert_eq!(seq_sat_with(&sigma, &opts).is_satisfiable(), baseline_sat);
            prop_assert_eq!(seq_imp_with(&sigma, &phi, &opts).is_implied(), baseline_imp);
        }
    }

    /// Implication respects the semantic definition on witnesses: if
    /// Σ |= ϕ then every model of Σ we can build satisfies ϕ.
    #[test]
    fn implied_gfds_hold_in_models(sigma in arb_sigma(), phi in arb_gfd(2)) {
        let imp = gfd::seq_imp(&sigma, &phi);
        let sat = gfd::seq_sat(&sigma);
        if imp.is_implied() {
            if let Some(model) = sat.model() {
                prop_assert!(gfd::graph_satisfies(model, &phi),
                    "Σ |= ϕ but a model of Σ violates ϕ");
            }
        }
    }
}

/// Satisfiable-by-construction workloads agree across algorithms too
/// (deterministic, heavier than the proptest cases).
#[test]
fn generated_workload_equivalence() {
    for seed in 0..3 {
        let w = gfd::gen::synthetic_workload(25, 4, 3, seed);
        let seq = gfd::seq_sat(&w.sigma);
        assert!(seq.is_satisfiable());
        for p in [1, 3] {
            assert!(gfd::par_sat(&w.sigma, &ParConfig::with_workers(p)).is_satisfiable());
        }
        for probe in &w.probes {
            let expected = probe.expect_implied;
            assert_eq!(gfd::seq_imp(&w.sigma, &probe.phi).is_implied(), expected);
            assert_eq!(gfd::chase_imp(&w.sigma, &probe.phi).is_implied(), expected);
            assert_eq!(
                gfd::par_imp(&w.sigma, &probe.phi, &ParConfig::with_workers(2)).is_implied(),
                expected
            );
        }
    }
}
