//! The small model properties (Theorems 1 and 3) hold of what the
//! implementation actually builds: models are Σ-bounded populations of
//! the canonical graph, and implication verdicts come from (Σ,ϕ)-bounded
//! partial enforcements.

use gfd::core::CanonicalGraph;
use gfd::prelude::*;

fn workload(seed: u64) -> gfd::gen::Workload {
    gfd::gen::synthetic_workload(30, 5, 3, seed)
}

#[test]
fn models_are_populations_of_the_canonical_graph() {
    for seed in 0..3 {
        let w = workload(seed);
        let (canon, _) = CanonicalGraph::for_sigma(&w.sigma);
        let r = gfd::seq_sat(&w.sigma);
        let model = r.model().expect("satisfiable by construction");
        // Same topology: the population only adds attributes (Theorem 1).
        assert_eq!(model.node_count(), canon.graph.node_count());
        assert_eq!(model.edge_count(), canon.graph.edge_count());
        for v in canon.graph.nodes() {
            assert_eq!(model.label(v), canon.graph.label(v));
        }
    }
}

#[test]
fn models_are_sigma_bounded() {
    for seed in 0..3 {
        let w = workload(seed);
        let r = gfd::seq_sat(&w.sigma);
        let model = r.model().unwrap();
        let sigma_size = w.sigma.total_size();
        // |G| = nodes + edges + attributes is in O(|Σ|); the canonical
        // graph is the union of the patterns and every attribute entry is
        // forced by some literal occurrence, so a factor-2 bound is a safe
        // concrete witness of the O(|Σ|) property.
        assert!(
            model.size() <= 2 * sigma_size,
            "model size {} exceeds 2·|Σ| = {}",
            model.size(),
            2 * sigma_size
        );
    }
}

#[test]
fn model_attribute_values_are_sigma_constants_or_fresh() {
    
    use gfd::core::Operand;
    for seed in 0..3 {
        let w = workload(seed);
        let r = gfd::seq_sat(&w.sigma);
        let model = r.model().unwrap();
        // Collect the constants appearing in Σ.
        let mut constants: Vec<ValueId> = Vec::new();
        for (_, g) in w.sigma.iter() {
            for lit in g.premise.iter().chain(&g.consequence) {
                if let Operand::Const(c) = &lit.rhs {
                    constants.push(*c);
                }
            }
        }
        for v in model.nodes() {
            for (_, value) in model.attrs(v) {
                assert!(
                    gfd::core::model::is_fresh_id(*value) || constants.contains(value),
                    "model value {value:?} is neither a Σ constant nor fresh"
                );
            }
        }
    }
}

#[test]
fn unsat_witness_names_a_real_conflict() {
    let mut vocab = Vocab::new();
    let sigma = gfd::dsl::parse_document(
        "gfd a { pattern { node x: t } then { x.v = 1 } }
         gfd b { pattern { node x: t } then { x.v = 2 } }",
        &mut vocab,
    )
    .unwrap()
    .gfds;
    let r = gfd::seq_sat(&sigma);
    match &r.outcome {
        SatOutcome::Unsatisfiable(conflict) => {
            assert_ne!(conflict.existing, conflict.incoming);
            assert!(conflict.gfd.is_some());
        }
        other => panic!("must be unsatisfiable, got {other:?}"),
    }
}

#[test]
fn implication_canonical_graph_is_phi_sized() {
    let mut vocab = Vocab::new();
    let phi = gfd::dsl::parse_gfd(
        "gfd phi { pattern { node x: t  node y: t  edge x -e-> y } when { x.a = 1 } then { y.a = 1 } }",
        &mut vocab,
    )
    .unwrap();
    let (canon, mut eqx) = CanonicalGraph::for_phi(&phi).unwrap();
    assert_eq!(canon.graph.node_count(), phi.pattern.node_count());
    assert_eq!(canon.graph.edge_count(), phi.pattern.edge_count());
    // EqX holds exactly the premise keys.
    assert_eq!(eqx.key_count(), 1);
    assert!(eqx.deduces_const(
        (NodeId::new(0), vocab.find_attr("a").unwrap()),
        ValueId::of(1i64)
    ));
}

#[test]
fn enforcement_length_is_bounded() {
    // Corollary to the proof of Theorem 3: |EqH| ≤ |Q|·|Σ| keys. Verify
    // on generated workloads by running SeqImp and inspecting the stats.
    for seed in 0..3 {
        let w = workload(seed);
        for probe in &w.probes {
            let r = gfd::seq_imp(&w.sigma, &probe.phi);
            // The pending index can hold at most one entry per processed
            // match; rechecks are bounded by pending × keys. These are
            // loose sanity bounds that would catch runaway fixpoints.
            assert!(r.stats.pending <= r.stats.matches);
            let bound = (r.stats.matches + 1) * (w.sigma.total_size() as u64 + 1);
            assert!(r.stats.rechecks <= bound);
        }
    }
}
