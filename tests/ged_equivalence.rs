//! Cross-crate equivalence: the GED reasoner restricted to plain GFDs
//! must agree with the core algorithms — `ged_sat` ≡ `seq_sat` and
//! `ged_implies` ≡ `seq_imp` on lifted rule sets. This pins the §IX
//! extension to the paper's base semantics.
//!
//! Since the scheduler port, the suite also pins the branch-parallel
//! driver to the sequential search: every worker count (`GFD_EQ_WORKERS`
//! overrides the default `{1, 2, 8}` sweep, the same convention as
//! `scheduler_equivalence`), both dispatch modes, and TTL-zero forced
//! splitting must produce the sequential answers, including on
//! budget-capped rule sets where both sides must report "unknown".

use gfd::ged::driver::{ged_implies_with_config, ged_sat_with_config, GedReasonConfig};
use gfd::ged::{ged_implies, ged_sat, CmpOp, Ged, GedLiteral, GedSet};
use gfd::parallel::DispatchMode;
use gfd::prelude::*;
use std::time::Duration;

fn lift(sigma: &GfdSet) -> GedSet {
    GedSet::from_vec(sigma.iter().map(|(_, g)| Ged::from_gfd(g)).collect())
}

/// Worker counts to sweep: `GFD_EQ_WORKERS=n` pins a single count (the CI
/// matrix), default is {1, 2, 8}.
fn worker_counts() -> Vec<usize> {
    match std::env::var("GFD_EQ_WORKERS") {
        Ok(v) => vec![v.parse().expect("GFD_EQ_WORKERS must be an integer")],
        Err(_) => vec![1, 2, 8],
    }
}

/// Scheduler configs to sweep per worker count: TTL-zero forces a split
/// attempt after every explored branch, in both dispatch modes.
fn sched_configs(p: usize) -> Vec<GedReasonConfig> {
    [DispatchMode::WorkStealing, DispatchMode::Coordinator]
        .into_iter()
        .map(|dispatch| {
            GedReasonConfig::with_workers(p)
                .with_ttl(Duration::ZERO)
                .with_dispatch(dispatch)
        })
        .collect()
}

/// Small hand-built rule sets with known answers, as DSL documents.
const CASES: &[(&str, bool)] = &[
    // The paper's Example 2, ϕ5/ϕ6: same wildcard node, conflicting
    // constants.
    (
        "gfd phi5 { pattern { node x: _ } then { x.A = 0 } }
         gfd phi6 { pattern { node x: _ } then { x.A = 1 } }",
        false,
    ),
    // One rule alone is satisfiable.
    ("gfd phi5 { pattern { node x: _ } then { x.A = 0 } }", true),
    // Premise-guarded conflict: avoidable by not binding the premise.
    (
        "gfd a { pattern { node x: t } when { x.g = 1 } then { x.A = 0 } }
         gfd b { pattern { node x: t } when { x.g = 1 } then { x.A = 1 } }",
        true,
    ),
    // ∅-premise chain forcing the conflict through two hops (Example 4
    // flavour).
    (
        "gfd r1 { pattern { node x: t } then { x.B = 1 } }
         gfd r2 { pattern { node x: t } when { x.B = 1 } then { x.C = 1 } }
         gfd r3 { pattern { node x: t } when { x.C = 1 } then { x.A = 1 } }
         gfd r4 { pattern { node x: t } then { x.A = 0 } }",
        false,
    ),
    // Cross-pattern interaction: concrete labels vs wildcard.
    (
        "gfd w { pattern { node x: _ } then { x.A = 7 } }
         gfd c { pattern { node x: place } then { x.A = 7 } }",
        true,
    ),
    // Attribute-equality transitivity conflict.
    (
        "gfd e1 { pattern { node x: t } then { x.A = x.B } }
         gfd e2 { pattern { node x: t } then { x.B = 5 } }
         gfd e3 { pattern { node x: t } then { x.A = 6 } }",
        false,
    ),
];

#[test]
fn hand_built_sat_cases_agree() {
    for (src, expected) in CASES {
        let mut vocab = Vocab::new();
        let sigma = gfd::dsl::parse_document(src, &mut vocab).unwrap().gfds;
        let core = gfd::seq_sat(&sigma).is_satisfiable();
        let ged = ged_sat(&lift(&sigma)).is_satisfiable();
        assert_eq!(core, *expected, "core wrong on:\n{src}");
        assert_eq!(ged, *expected, "ged wrong on:\n{src}");
    }
}

#[test]
fn generated_workloads_sat_agree() {
    // Satisfiable-by-construction mined-style sets, and conflict-chain
    // variants, at a size the branching GED search handles comfortably.
    for seed in [1u64, 7, 23] {
        let w = gfd::gen::real_life_workload(gfd::gen::Dataset::Tiny, 8, seed, None);
        let core = gfd::seq_sat(&w.sigma).is_satisfiable();
        let ged = ged_sat(&lift(&w.sigma)).is_satisfiable();
        assert_eq!(core, ged, "sat diverged on satisfiable seed {seed}");
        assert!(core, "workload should be satisfiable");

        let w = gfd::gen::real_life_workload(gfd::gen::Dataset::Tiny, 8, seed, Some(2));
        let core = gfd::seq_sat(&w.sigma).is_satisfiable();
        let ged = ged_sat(&lift(&w.sigma)).is_satisfiable();
        assert_eq!(core, ged, "sat diverged on unsat seed {seed}");
        assert!(!core, "chain workload should be unsatisfiable");
    }
}

#[test]
fn generated_probes_imp_agree() {
    for seed in [3u64, 11] {
        let w = gfd::gen::synthetic_workload(10, 3, 2, seed);
        let sigma_ged = lift(&w.sigma);
        for probe in &w.probes {
            let core = gfd::seq_imp(&w.sigma, &probe.phi).is_implied();
            let ged = ged_implies(&sigma_ged, &Ged::from_gfd(&probe.phi)).is_implied();
            assert_eq!(
                core, ged,
                "imp diverged on probe {} (seed {seed})",
                probe.phi.name
            );
            assert_eq!(core, probe.expect_implied, "probe label wrong");
        }
    }
}

#[test]
fn implication_cases_agree() {
    let cases = [
        // ϕ13 flavour: chained deduction.
        (
            "gfd r1 { pattern { node x: t } when { x.A = 1 } then { x.B = 2 } }
             gfd r2 { pattern { node x: t } when { x.B = 2 } then { x.C = 3 } }",
            "gfd phi { pattern { node x: t } when { x.A = 1 } then { x.C = 3 } }",
            true,
        ),
        // ϕ14 flavour: premise inconsistent with Σ.
        (
            "gfd r1 { pattern { node x: t } then { x.A = 1 } }",
            "gfd phi { pattern { node x: t } when { x.A = 0 } then { x.Z = 9 } }",
            true,
        ),
        // Not implied: nothing forces the consequence.
        (
            "gfd r1 { pattern { node x: t } when { x.A = 1 } then { x.B = 2 } }",
            "gfd phi { pattern { node x: t } when { x.A = 1 } then { x.C = 3 } }",
            false,
        ),
        // Pattern-structure sensitivity: the premise pattern has an edge
        // the rule's pattern does not need.
        (
            "gfd r1 { pattern { node x: t node y: t edge x -e-> y } then { x.A = 1 } }",
            "gfd phi { pattern { node x: t } then { x.A = 1 } }",
            false,
        ),
    ];
    for (sigma_src, phi_src, expected) in cases {
        let mut vocab = Vocab::new();
        let sigma = gfd::dsl::parse_document(sigma_src, &mut vocab)
            .unwrap()
            .gfds;
        let phi = gfd::dsl::parse_gfd(phi_src, &mut vocab).unwrap();
        let core = gfd::seq_imp(&sigma, &phi).is_implied();
        let ged = ged_implies(&lift(&sigma), &Ged::from_gfd(&phi)).is_implied();
        assert_eq!(core, expected, "core wrong on:\n{sigma_src}\n|= {phi_src}");
        assert_eq!(ged, expected, "ged wrong on:\n{sigma_src}\n|= {phi_src}");
    }
}

/// The scheduled search at every worker count, dispatch mode, and with
/// TTL-zero forced splitting agrees with the sequential `ged_sat` on
/// satisfiable and unsatisfiable sets.
#[test]
fn scheduled_sat_agrees_with_sequential() {
    let mut cases: Vec<GedSet> = Vec::new();
    for (src, _) in CASES {
        let mut vocab = Vocab::new();
        cases.push(lift(
            &gfd::dsl::parse_document(src, &mut vocab).unwrap().gfds,
        ));
    }
    for seed in [1u64, 23] {
        let w = gfd::gen::real_life_workload(gfd::gen::Dataset::Tiny, 8, seed, None);
        cases.push(lift(&w.sigma));
        let w = gfd::gen::real_life_workload(gfd::gen::Dataset::Tiny, 8, seed, Some(2));
        cases.push(lift(&w.sigma));
    }
    for (i, sigma) in cases.iter().enumerate() {
        let expected = ged_sat(sigma).is_satisfiable();
        for p in worker_counts() {
            for cfg in sched_configs(p) {
                let run = ged_sat_with_config(sigma, &cfg);
                let out = run.outcome.expect("within budget");
                assert_eq!(
                    out.is_satisfiable(),
                    expected,
                    "sat diverged: case {i} p={p} {:?}",
                    cfg.dispatch
                );
                // Any witness a parallel run extracts must be a model.
                if let Some(wit) = out.witness() {
                    for (_, ged) in sigma.iter() {
                        assert!(
                            gfd::ged::ged_graph_satisfies(wit, ged),
                            "case {i} p={p}: witness violates {}",
                            ged.name
                        );
                    }
                }
            }
        }
    }
}

/// Implication with disjunctions, order predicates and id literals —
/// the branching cases the GFD driver never sees — is worker-count,
/// dispatch-mode and split-order invariant.
#[test]
fn scheduled_imp_agrees_with_sequential() {
    let mut vocab = Vocab::new();
    let a = vocab.attr("A");
    let email = vocab.attr("email");
    let person = vocab.label("person");
    let x = gfd::graph::VarId::new(0);
    let y = gfd::graph::VarId::new(1);
    let wildcard = || {
        let mut p = Pattern::new();
        p.add_node(gfd::graph::LabelId::WILDCARD, "x");
        p
    };
    let two_persons = || {
        let mut p = Pattern::new();
        p.add_node(person, "x");
        p.add_node(person, "y");
        p
    };
    // (Σ, ψ) pairs exercising every branch source: consequence
    // disjunction, premise-literal splitting, Y-literal splitting, node
    // merging via keys.
    let cases: Vec<(GedSet, Ged)> = vec![
        (
            GedSet::from_vec(vec![Ged::new(
                "dis",
                wildcard(),
                vec![],
                vec![
                    vec![GedLiteral::eq_const(x, a, 1i64)],
                    vec![GedLiteral::eq_const(x, a, 2i64)],
                ],
            )]),
            Ged::conjunctive(
                "ge1",
                wildcard(),
                vec![],
                vec![GedLiteral::cmp_const(x, a, CmpOp::Ge, 1i64)],
            ),
        ),
        (
            GedSet::new(),
            Ged::new(
                "taut",
                wildcard(),
                vec![GedLiteral::cmp_const(x, a, CmpOp::Ge, 0i64)],
                vec![
                    vec![GedLiteral::cmp_const(x, a, CmpOp::Le, 5i64)],
                    vec![GedLiteral::cmp_const(x, a, CmpOp::Ge, 3i64)],
                ],
            ),
        ),
        (
            GedSet::new(),
            Ged::new(
                "narrow",
                wildcard(),
                vec![GedLiteral::cmp_const(x, a, CmpOp::Ge, 0i64)],
                vec![
                    vec![GedLiteral::cmp_const(x, a, CmpOp::Le, 3i64)],
                    vec![GedLiteral::cmp_const(x, a, CmpOp::Ge, 5i64)],
                ],
            ),
        ),
        (
            GedSet::from_vec(vec![Ged::conjunctive(
                "email-key",
                two_persons(),
                vec![GedLiteral::eq_attr(x, email, y, email)],
                vec![GedLiteral::id(x, y)],
            )]),
            Ged::conjunctive(
                "sym",
                two_persons(),
                vec![GedLiteral::eq_attr(y, email, x, email)],
                vec![GedLiteral::id(y, x)],
            ),
        ),
    ];
    for (i, (sigma, phi)) in cases.iter().enumerate() {
        let expected = ged_implies(sigma, phi).is_implied();
        for p in worker_counts() {
            for cfg in sched_configs(p) {
                let run = ged_implies_with_config(sigma, phi, &cfg);
                assert_eq!(
                    run.outcome.expect("within budget").is_implied(),
                    expected,
                    "imp diverged: case {i} p={p} {:?}",
                    cfg.dispatch
                );
            }
        }
    }
    // The generated probe sweep, scheduled.
    for seed in [3u64, 11] {
        let w = gfd::gen::synthetic_workload(10, 3, 2, seed);
        let sigma_ged = lift(&w.sigma);
        for probe in &w.probes {
            let phi = Ged::from_gfd(&probe.phi);
            for p in worker_counts() {
                let cfg = GedReasonConfig::with_workers(p).with_ttl(Duration::ZERO);
                let run = ged_implies_with_config(&sigma_ged, &phi, &cfg);
                assert_eq!(
                    run.outcome.expect("within budget").is_implied(),
                    probe.expect_implied,
                    "probe {} seed {seed} p={p}",
                    probe.phi.name
                );
            }
        }
    }
}

/// A branch budget that falls short of the (unsatisfiable) choice tree
/// must report "unknown" — never a wrong answer, never a panic — at
/// every worker count. The tree needs 3 visits; the budget allows 2.
#[test]
fn budget_capped_runs_agree_on_unknown() {
    let mut vocab = Vocab::new();
    let a = vocab.attr("A");
    let x = gfd::graph::VarId::new(0);
    let mk_dis = |name: &str, lo: i64| {
        let mut p = Pattern::new();
        p.add_node(gfd::graph::LabelId::WILDCARD, "x");
        Ged::new(
            name,
            p,
            vec![],
            vec![
                vec![GedLiteral::eq_const(x, a, lo)],
                vec![GedLiteral::eq_const(x, a, lo + 1)],
            ],
        )
    };
    let sigma = GedSet::from_vec(vec![mk_dis("d0", 0), mk_dis("d1", 2)]);
    // Sanity: with the full budget the set is unsatisfiable everywhere.
    assert!(!ged_sat(&sigma).is_satisfiable());
    for p in worker_counts() {
        for cfg in sched_configs(p) {
            let capped = cfg.clone().with_max_branches(2);
            let run = ged_sat_with_config(&sigma, &capped);
            assert!(
                run.outcome.is_none(),
                "p={p} {:?}: capped run should be unknown",
                capped.dispatch
            );
            let full = ged_sat_with_config(&sigma, &cfg);
            assert!(!full.outcome.expect("within budget").is_satisfiable());
        }
    }
}

#[test]
fn ged_witness_satisfies_lifted_sigma() {
    // When the GED search extracts a witness for a satisfiable lifted
    // set, the witness must satisfy every (GED) rule.
    let mut vocab = Vocab::new();
    let sigma = gfd::dsl::parse_document(
        "gfd r1 { pattern { node x: t node y: t edge x -e-> y } then { x.A = 1, y.B = x.A } }
         gfd r2 { pattern { node x: t } then { x.C = 2 } }",
        &mut vocab,
    )
    .unwrap()
    .gfds;
    let lifted = lift(&sigma);
    let out = ged_sat(&lifted);
    assert!(out.is_satisfiable());
    let w = out.witness().expect("integer-valued: witness extracts");
    for (_, ged) in lifted.iter() {
        assert!(
            gfd::ged::ged_graph_satisfies(w, ged),
            "witness violates {}",
            ged.name
        );
    }
}
