//! Cross-crate equivalence: the GED reasoner restricted to plain GFDs
//! must agree with the core algorithms — `ged_sat` ≡ `seq_sat` and
//! `ged_implies` ≡ `seq_imp` on lifted rule sets. This pins the §IX
//! extension to the paper's base semantics.

use gfd::ged::{ged_implies, ged_sat, Ged, GedSet};
use gfd::prelude::*;

fn lift(sigma: &GfdSet) -> GedSet {
    GedSet::from_vec(sigma.iter().map(|(_, g)| Ged::from_gfd(g)).collect())
}

/// Small hand-built rule sets with known answers, as DSL documents.
const CASES: &[(&str, bool)] = &[
    // The paper's Example 2, ϕ5/ϕ6: same wildcard node, conflicting
    // constants.
    (
        "gfd phi5 { pattern { node x: _ } then { x.A = 0 } }
         gfd phi6 { pattern { node x: _ } then { x.A = 1 } }",
        false,
    ),
    // One rule alone is satisfiable.
    ("gfd phi5 { pattern { node x: _ } then { x.A = 0 } }", true),
    // Premise-guarded conflict: avoidable by not binding the premise.
    (
        "gfd a { pattern { node x: t } when { x.g = 1 } then { x.A = 0 } }
         gfd b { pattern { node x: t } when { x.g = 1 } then { x.A = 1 } }",
        true,
    ),
    // ∅-premise chain forcing the conflict through two hops (Example 4
    // flavour).
    (
        "gfd r1 { pattern { node x: t } then { x.B = 1 } }
         gfd r2 { pattern { node x: t } when { x.B = 1 } then { x.C = 1 } }
         gfd r3 { pattern { node x: t } when { x.C = 1 } then { x.A = 1 } }
         gfd r4 { pattern { node x: t } then { x.A = 0 } }",
        false,
    ),
    // Cross-pattern interaction: concrete labels vs wildcard.
    (
        "gfd w { pattern { node x: _ } then { x.A = 7 } }
         gfd c { pattern { node x: place } then { x.A = 7 } }",
        true,
    ),
    // Attribute-equality transitivity conflict.
    (
        "gfd e1 { pattern { node x: t } then { x.A = x.B } }
         gfd e2 { pattern { node x: t } then { x.B = 5 } }
         gfd e3 { pattern { node x: t } then { x.A = 6 } }",
        false,
    ),
];

#[test]
fn hand_built_sat_cases_agree() {
    for (src, expected) in CASES {
        let mut vocab = Vocab::new();
        let sigma = gfd::dsl::parse_document(src, &mut vocab).unwrap().gfds;
        let core = gfd::seq_sat(&sigma).is_satisfiable();
        let ged = ged_sat(&lift(&sigma)).is_satisfiable();
        assert_eq!(core, *expected, "core wrong on:\n{src}");
        assert_eq!(ged, *expected, "ged wrong on:\n{src}");
    }
}

#[test]
fn generated_workloads_sat_agree() {
    // Satisfiable-by-construction mined-style sets, and conflict-chain
    // variants, at a size the branching GED search handles comfortably.
    for seed in [1u64, 7, 23] {
        let w = gfd::gen::real_life_workload(gfd::gen::Dataset::Tiny, 8, seed, None);
        let core = gfd::seq_sat(&w.sigma).is_satisfiable();
        let ged = ged_sat(&lift(&w.sigma)).is_satisfiable();
        assert_eq!(core, ged, "sat diverged on satisfiable seed {seed}");
        assert!(core, "workload should be satisfiable");

        let w = gfd::gen::real_life_workload(gfd::gen::Dataset::Tiny, 8, seed, Some(2));
        let core = gfd::seq_sat(&w.sigma).is_satisfiable();
        let ged = ged_sat(&lift(&w.sigma)).is_satisfiable();
        assert_eq!(core, ged, "sat diverged on unsat seed {seed}");
        assert!(!core, "chain workload should be unsatisfiable");
    }
}

#[test]
fn generated_probes_imp_agree() {
    for seed in [3u64, 11] {
        let w = gfd::gen::synthetic_workload(10, 3, 2, seed);
        let sigma_ged = lift(&w.sigma);
        for probe in &w.probes {
            let core = gfd::seq_imp(&w.sigma, &probe.phi).is_implied();
            let ged = ged_implies(&sigma_ged, &Ged::from_gfd(&probe.phi)).is_implied();
            assert_eq!(
                core, ged,
                "imp diverged on probe {} (seed {seed})",
                probe.phi.name
            );
            assert_eq!(core, probe.expect_implied, "probe label wrong");
        }
    }
}

#[test]
fn implication_cases_agree() {
    let cases = [
        // ϕ13 flavour: chained deduction.
        (
            "gfd r1 { pattern { node x: t } when { x.A = 1 } then { x.B = 2 } }
             gfd r2 { pattern { node x: t } when { x.B = 2 } then { x.C = 3 } }",
            "gfd phi { pattern { node x: t } when { x.A = 1 } then { x.C = 3 } }",
            true,
        ),
        // ϕ14 flavour: premise inconsistent with Σ.
        (
            "gfd r1 { pattern { node x: t } then { x.A = 1 } }",
            "gfd phi { pattern { node x: t } when { x.A = 0 } then { x.Z = 9 } }",
            true,
        ),
        // Not implied: nothing forces the consequence.
        (
            "gfd r1 { pattern { node x: t } when { x.A = 1 } then { x.B = 2 } }",
            "gfd phi { pattern { node x: t } when { x.A = 1 } then { x.C = 3 } }",
            false,
        ),
        // Pattern-structure sensitivity: the premise pattern has an edge
        // the rule's pattern does not need.
        (
            "gfd r1 { pattern { node x: t node y: t edge x -e-> y } then { x.A = 1 } }",
            "gfd phi { pattern { node x: t } then { x.A = 1 } }",
            false,
        ),
    ];
    for (sigma_src, phi_src, expected) in cases {
        let mut vocab = Vocab::new();
        let sigma = gfd::dsl::parse_document(sigma_src, &mut vocab)
            .unwrap()
            .gfds;
        let phi = gfd::dsl::parse_gfd(phi_src, &mut vocab).unwrap();
        let core = gfd::seq_imp(&sigma, &phi).is_implied();
        let ged = ged_implies(&lift(&sigma), &Ged::from_gfd(&phi)).is_implied();
        assert_eq!(core, expected, "core wrong on:\n{sigma_src}\n|= {phi_src}");
        assert_eq!(ged, expected, "ged wrong on:\n{sigma_src}\n|= {phi_src}");
    }
}

#[test]
fn ged_witness_satisfies_lifted_sigma() {
    // When the GED search extracts a witness for a satisfiable lifted
    // set, the witness must satisfy every (GED) rule.
    let mut vocab = Vocab::new();
    let sigma = gfd::dsl::parse_document(
        "gfd r1 { pattern { node x: t node y: t edge x -e-> y } then { x.A = 1, y.B = x.A } }
         gfd r2 { pattern { node x: t } then { x.C = 2 } }",
        &mut vocab,
    )
    .unwrap()
    .gfds;
    let lifted = lift(&sigma);
    let out = ged_sat(&lifted);
    assert!(out.is_satisfiable());
    let w = out.witness().expect("integer-valued: witness extracts");
    for (_, ged) in lifted.iter() {
        assert!(
            gfd::ged::ged_graph_satisfies(w, ged),
            "witness violates {}",
            ged.name
        );
    }
}
