//! Dependency-equivalence suite: the generalized rule layer must be a
//! conservative extension.
//!
//! * A Σ of GFDs lifted into the `Dependency` model behaves **exactly**
//!   like the seed code paths: `dep_sat`/`dep_imp` route literal-only
//!   sets to the original driver (same outcomes, and at one worker the
//!   same models bit for bit), and `detect_deps` over the lifted set
//!   reports the identical violation list at every worker count.
//! * The generating chase is **order-independent**: permuting a mixed
//!   rule set changes rule ids but not the outcome, the amount of
//!   generation, or the shape of the chased model (the round-snapshot
//!   realization semantics — parallel independence — pins this).
//! * Mixed GFD+GGD workloads produce invariant results across
//!   `p ∈ {1, 2, 8}` on the shared scheduler, for Sat, Imp and Detect.
//!
//! CI runs this suite once per entry of `GFD_EQ_WORKERS` (a single
//! worker count overriding the default `{1, 2, 8}` sweep).

use gfd::chase::{dep_imp_with_config, dep_sat_with_config, ChaseConfig, DepSatOutcome};
use gfd::detect::{detect_deps, DetectConfig};
use gfd::gen::{
    ggd_conflict_workload, ggd_overlap_workload, mixed_ggd_workload, real_life_workload,
    tier0_graph, Dataset, GgdGenConfig,
};
use gfd::prelude::*;
use proptest::prelude::*;

/// Worker counts to sweep: `GFD_EQ_WORKERS=n` pins a single count (the
/// CI matrix), default is {1, 2, 8}.
fn worker_counts() -> Vec<usize> {
    match std::env::var("GFD_EQ_WORKERS") {
        Ok(v) => vec![v.parse().expect("GFD_EQ_WORKERS must be an integer")],
        Err(_) => vec![1, 2, 8],
    }
}

fn chase_cfg(p: usize) -> ChaseConfig {
    ChaseConfig {
        workers: p,
        ..ChaseConfig::default()
    }
}

/// A graph fingerprint that is invariant under node renaming and fresh
/// value numbering: counts plus the sorted multiset of
/// `(label, #attrs, out-degree)` per node.
fn fingerprint(g: &Graph) -> (usize, usize, Vec<(LabelId, usize, usize)>) {
    let mut per_node: Vec<(LabelId, usize, usize)> = g
        .nodes()
        .map(|n| (g.label(n), g.attrs(n).len(), g.out_edges(n).len()))
        .collect();
    per_node.sort();
    (g.node_count(), g.edge_count(), per_node)
}

fn violation_keys(report: &gfd::detect::DetectionReport) -> Vec<(usize, Vec<usize>)> {
    report
        .violations
        .iter()
        .map(|v| (v.gfd.index(), v.m.iter().map(|n| n.index()).collect()))
        .collect()
}

// ---------------------------------------------------------------------
// 1. Literal-only Σ under the Dependency model ≡ seed behavior.
// ---------------------------------------------------------------------

#[test]
fn lifted_gfd_sat_matches_seed_at_every_worker_count() {
    for seed in [3u64, 17] {
        for unsat_chain in [None, Some(2)] {
            let w = real_life_workload(Dataset::Tiny, 30, seed, unsat_chain);
            let deps = DepSet::from_gfds(w.sigma.clone());
            let expected = gfd::seq_sat(&w.sigma);
            for p in worker_counts() {
                let r = dep_sat_with_config(&deps, &chase_cfg(p));
                assert_eq!(
                    r.is_satisfiable(),
                    expected.is_satisfiable(),
                    "seed={seed} chain={unsat_chain:?} p={p}"
                );
                assert_eq!(r.stats.rounds, 0, "literal sets must not chase");
                // The one-worker run is the sequential algorithm itself:
                // models agree bit for bit.
                if p == 1 {
                    match (r.model(), expected.model()) {
                        (Some(a), Some(b)) => {
                            assert_eq!(fingerprint(a), fingerprint(b), "seed={seed}")
                        }
                        (None, None) => {}
                        _ => panic!("model presence diverged (seed={seed})"),
                    }
                }
            }
        }
    }
}

#[test]
fn lifted_gfd_imp_matches_seed_at_every_worker_count() {
    let w = real_life_workload(Dataset::Tiny, 30, 11, None);
    let deps = DepSet::from_gfds(w.sigma.clone());
    for probe in &w.probes {
        let expected = gfd::seq_imp(&w.sigma, &probe.phi).is_implied();
        assert_eq!(expected, probe.expect_implied, "{}", probe.phi.name);
        for p in worker_counts() {
            let r = dep_imp_with_config(
                &deps,
                &Dependency::from_gfd(probe.phi.clone()),
                &chase_cfg(p),
            );
            assert_eq!(r.is_implied(), expected, "probe={} p={p}", probe.phi.name);
        }
    }
}

#[test]
fn lifted_gfd_detect_is_bit_identical_at_every_worker_count() {
    let mut vocab = Vocab::new();
    let t = vocab.label("t");
    let e = vocab.label("e");
    let a = vocab.attr("a");
    let mut g = Graph::new();
    let mut prev = None;
    for i in 0..60 {
        let n = g.add_node(t);
        g.set_attr(n, a, Value::int((i % 3) as i64));
        if let Some(p) = prev {
            g.add_edge(p, e, n);
        }
        prev = Some(n);
    }
    let mut p = Pattern::new();
    let x = p.add_node(t, "x");
    let y = p.add_node(t, "y");
    p.add_edge(x, e, y);
    let sigma = GfdSet::from_vec(vec![Gfd::new(
        "eq",
        p,
        vec![],
        vec![Literal::eq_attr(x, a, y, a)],
    )]);
    let deps = DepSet::from_gfds(sigma.clone());
    let seed_report = gfd::detect::detect(&g, &sigma, &DetectConfig::with_workers(1));
    for p in worker_counts() {
        let dep_report = detect_deps(&g, &deps, &DetectConfig::with_workers(p));
        assert_eq!(
            violation_keys(&dep_report),
            violation_keys(&seed_report),
            "p={p}"
        );
        assert_eq!(
            dep_report.per_rule[0].matches,
            seed_report.per_rule[0].matches
        );
        assert_eq!(
            dep_report.per_rule[0].premise_hits,
            seed_report.per_rule[0].premise_hits
        );
    }
}

// ---------------------------------------------------------------------
// 2. Mixed GFD+GGD workloads: invariant across p on every goal.
// ---------------------------------------------------------------------

#[test]
fn ggd_chase_sat_is_worker_count_invariant() {
    let cfg = GgdGenConfig {
        chain_depth: 3,
        gen_per_tier: 2,
        fanout: 2,
        literal_rules: 3,
        seed: 13,
    };
    let mut vocab = Vocab::new();
    let deps = mixed_ggd_workload(&cfg, &mut vocab);
    let base = dep_sat_with_config(&deps, &chase_cfg(1));
    assert!(base.is_satisfiable());
    let base_fp = fingerprint(base.model().unwrap());
    for p in worker_counts() {
        let mut ccfg = chase_cfg(p);
        ccfg.ttl = std::time::Duration::ZERO;
        ccfg.batch = 1; // force maximal splitting
        let r = dep_sat_with_config(&deps, &ccfg);
        assert!(r.is_satisfiable(), "p={p}");
        assert_eq!(r.stats.generated_nodes, base.stats.generated_nodes, "p={p}");
        assert_eq!(r.stats.rounds, base.stats.rounds, "p={p}");
        assert_eq!(fingerprint(r.model().unwrap()), base_fp, "p={p}");
    }

    // The deep-conflict variant is UNSAT at every worker count, and only
    // after generating.
    let mut vocab = Vocab::new();
    let bad = ggd_conflict_workload(&cfg, &mut vocab);
    for p in worker_counts() {
        let r = dep_sat_with_config(&bad, &chase_cfg(p));
        assert!(
            matches!(r.outcome, DepSatOutcome::Unsatisfiable(_)),
            "p={p}"
        );
        assert!(r.stats.generated_nodes > 0, "p={p}");
    }
}

/// Adversarial case for the parallel apply: the overlap workload is
/// built so that almost every round's firings collide in the conflict
/// partition (same-key rider cliques, cross-node merges along generated
/// edges, sibling generators on one premise node). The parallel path
/// must route the residual through the serial fallback and still land
/// on the serial fixpoint — bit for bit, at every worker count, under
/// forced maximal splitting.
#[test]
fn conflict_heavy_chase_is_worker_count_invariant() {
    let cfg = GgdGenConfig {
        chain_depth: 3,
        gen_per_tier: 2,
        fanout: 2,
        literal_rules: 3,
        seed: 37,
    };
    let mut vocab = Vocab::new();
    let deps = ggd_overlap_workload(&cfg, &mut vocab);
    let base = dep_sat_with_config(&deps, &chase_cfg(1));
    assert!(base.is_satisfiable());
    assert!(
        base.stats.apply_conflicts > 0,
        "workload must actually exercise the serial fallback: {:?}",
        base.stats
    );
    let base_fp = fingerprint(base.model().unwrap());
    for p in worker_counts() {
        let mut ccfg = chase_cfg(p);
        ccfg.ttl = std::time::Duration::ZERO;
        ccfg.batch = 1; // force maximal splitting
        let r = dep_sat_with_config(&deps, &ccfg);
        assert!(r.is_satisfiable(), "p={p}");
        assert_eq!(r.stats.rounds, base.stats.rounds, "p={p}");
        assert_eq!(r.stats.generated_nodes, base.stats.generated_nodes, "p={p}");
        assert_eq!(
            r.stats.apply_conflicts, base.stats.apply_conflicts,
            "the conflict partition is deterministic, p={p}"
        );
        assert_eq!(
            r.stats.apply_independent, base.stats.apply_independent,
            "p={p}"
        );
        assert_eq!(fingerprint(r.model().unwrap()), base_fp, "p={p}");
    }
}

#[test]
fn ggd_imp_is_worker_count_invariant() {
    let cfg = GgdGenConfig {
        chain_depth: 2,
        gen_per_tier: 1,
        fanout: 1,
        literal_rules: 2,
        seed: 21,
    };
    let mut vocab = Vocab::new();
    let deps = mixed_ggd_workload(&cfg, &mut vocab);
    // Implied probe: the tier-0 rule's own creation, re-asserted.
    let t0 = vocab.label("tier0");
    let t1 = vocab.label("tier1");
    let gen_lbl = vocab.label("gen");
    let a0 = vocab.attr("a0");
    let mut p = Pattern::new();
    let x = p.add_node(t0, "x");
    let mut gen = GenerateConsequence::over(&p);
    let y = gen.add_fresh(t1, "y");
    gen.add_edge(x, gen_lbl, y);
    let probe_good = Dependency::new(
        "probe_good",
        p.clone(),
        vec![Literal::eq_const(x, a0, 0i64)],
        Consequence::Generate(gen),
    );
    // Not implied: requires an edge label nothing generates.
    let other = vocab.label("unrelated");
    let mut gen = GenerateConsequence::over(&p);
    let y = gen.add_fresh(t1, "y");
    gen.add_edge(x, other, y);
    let probe_bad = Dependency::new(
        "probe_bad",
        p,
        vec![Literal::eq_const(x, a0, 0i64)],
        Consequence::Generate(gen),
    );
    for p in worker_counts() {
        assert!(
            dep_imp_with_config(&deps, &probe_good, &chase_cfg(p)).is_implied(),
            "p={p}"
        );
        assert!(
            !dep_imp_with_config(&deps, &probe_bad, &chase_cfg(p)).is_implied(),
            "p={p}"
        );
    }
}

#[test]
fn ggd_detect_is_worker_count_invariant() {
    let cfg = GgdGenConfig {
        chain_depth: 2,
        gen_per_tier: 2,
        fanout: 2,
        literal_rules: 2,
        seed: 29,
    };
    let mut vocab = Vocab::new();
    let deps = mixed_ggd_workload(&cfg, &mut vocab);
    // A data graph of tier-0 nodes: every generating rule's target is
    // missing, every literal rider premise-fires where applicable.
    let g = tier0_graph(24, &mut vocab);
    let base = detect_deps(&g, &deps, &DetectConfig::with_workers(1));
    assert!(!base.is_clean(), "missing targets must violate");
    for p in worker_counts() {
        let cfgp = DetectConfig {
            ttl: std::time::Duration::ZERO,
            batch_size: 2,
            ..DetectConfig::with_workers(p)
        };
        let r = detect_deps(&g, &deps, &cfgp);
        assert_eq!(violation_keys(&r), violation_keys(&base), "p={p}");
    }
}

// ---------------------------------------------------------------------
// 3. The generating chase is order-independent (proptest).
// ---------------------------------------------------------------------

/// Apply a seeded permutation to a rule set.
fn permute(deps: &DepSet, order_seed: u64) -> DepSet {
    let mut rules: Vec<Dependency> = deps.as_slice().to_vec();
    // Seeded Fisher–Yates on a splitmix stream (no rand dependency in
    // the root test crate).
    let mut state = order_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(1);
        state >> 33
    };
    for i in (1..rules.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        rules.swap(i, j);
    }
    DepSet::from_vec(rules)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chasing a mixed rule set to fixpoint is invariant under rule
    /// reordering: same outcome kind, same amount of generation, same
    /// model shape. Round-snapshot realization (parallel independence)
    /// is what makes this hold.
    #[test]
    fn chase_fixpoint_is_order_independent(
        depth in 1usize..4,
        gen_per_tier in 1usize..3,
        fanout in 1usize..3,
        literal_rules in 0usize..4,
        seed in 0u64..1000,
        order_seed in 0u64..1000,
        conflict in 0u8..2,
    ) {
        let cfg = GgdGenConfig {
            chain_depth: depth,
            gen_per_tier,
            fanout,
            literal_rules,
            seed,
        };
        let mut vocab = Vocab::new();
        let deps = if conflict == 1 {
            ggd_conflict_workload(&cfg, &mut vocab)
        } else {
            mixed_ggd_workload(&cfg, &mut vocab)
        };
        let shuffled = permute(&deps, order_seed);

        let a = dep_sat_with_config(&deps, &chase_cfg(1));
        let b = dep_sat_with_config(&shuffled, &chase_cfg(1));
        prop_assert_eq!(a.is_satisfiable(), b.is_satisfiable());
        prop_assert_eq!(
            matches!(a.outcome, DepSatOutcome::Unknown { .. }),
            matches!(b.outcome, DepSatOutcome::Unknown { .. })
        );
        prop_assert_eq!(a.stats.generated_nodes, b.stats.generated_nodes);
        if let (Some(ma), Some(mb)) = (a.model(), b.model()) {
            prop_assert_eq!(fingerprint(ma), fingerprint(mb));
        }
    }

    /// Conflict-heavy variant of worker independence: random overlap
    /// workloads whose firings share touched attrs and premise nodes,
    /// chased at p ∈ {1, 2, 8} with forced splitting. Parallel apply ≡
    /// serial apply even when the partition is mostly conflicts.
    #[test]
    fn conflict_heavy_chase_is_worker_independent(
        depth in 1usize..3,
        gen_per_tier in 1usize..3,
        literal_rules in 2usize..4,
        seed in 0u64..500,
    ) {
        let cfg = GgdGenConfig {
            chain_depth: depth,
            gen_per_tier,
            fanout: 2,
            literal_rules,
            seed,
        };
        let mut vocab = Vocab::new();
        let deps = ggd_overlap_workload(&cfg, &mut vocab);
        let base = dep_sat_with_config(&deps, &chase_cfg(1));
        prop_assert!(base.is_satisfiable());
        let base_fp = fingerprint(base.model().unwrap());
        for p in [2usize, 8] {
            let mut ccfg = chase_cfg(p);
            ccfg.ttl = std::time::Duration::ZERO;
            ccfg.batch = 1;
            let r = dep_sat_with_config(&deps, &ccfg);
            prop_assert!(r.is_satisfiable(), "p={}", p);
            prop_assert_eq!(r.stats.rounds, base.stats.rounds);
            prop_assert_eq!(r.stats.generated_nodes, base.stats.generated_nodes);
            prop_assert_eq!(r.stats.apply_conflicts, base.stats.apply_conflicts);
            prop_assert_eq!(fingerprint(r.model().unwrap()), base_fp.clone());
        }
    }

    /// And invariant across worker counts under forced splitting, on the
    /// same random workloads.
    #[test]
    fn chase_fixpoint_is_worker_independent(
        depth in 1usize..3,
        seed in 0u64..500,
    ) {
        let cfg = GgdGenConfig {
            chain_depth: depth,
            gen_per_tier: 2,
            fanout: 2,
            literal_rules: 2,
            seed,
        };
        let mut vocab = Vocab::new();
        let deps = mixed_ggd_workload(&cfg, &mut vocab);
        let base = dep_sat_with_config(&deps, &chase_cfg(1));
        for p in [2usize, 4] {
            let mut ccfg = chase_cfg(p);
            ccfg.ttl = std::time::Duration::ZERO;
            ccfg.batch = 1;
            let r = dep_sat_with_config(&deps, &ccfg);
            prop_assert_eq!(r.is_satisfiable(), base.is_satisfiable(), "p={}", p);
            prop_assert_eq!(r.stats.generated_nodes, base.stats.generated_nodes);
            if let (Some(ma), Some(mb)) = (r.model(), base.model()) {
                prop_assert_eq!(fingerprint(ma), fingerprint(mb));
            }
        }
    }
}

// ---------------------------------------------------------------------
// 4. The interned value pipeline is semantics-preserving (proptest).
// ---------------------------------------------------------------------
//
// Attribute values are globally interned `ValueId`s and every hot-path
// literal check is a `u32` compare (DESIGN.md §15). These properties pin
// the contract that makes the substitution sound — id equality ⟺ value
// equality, stable under re-interning — and that the drivers built on it
// (Detect, Sat, the incremental engine under attr-overwrite deltas)
// agree with value-level semantics at p ∈ {1, 8}, on values chosen to be
// hostile to shortcuts: unicode, the empty string, strings that *look*
// like numbers or booleans, boundary integers.

/// The adversarial value pool. `Str("42")`, `Str("true")` and `Str("")`
/// must stay distinct from `Int(42)`, `Bool(true)` and everything else.
fn value_pool() -> Vec<Value> {
    vec![
        Value::str(""),
        Value::str("Zürich"),
        Value::str("東京"),
        Value::str("Ωmega ∂"),
        Value::str("  spaced  out  "),
        Value::str("42"),
        Value::str("true"),
        Value::int(42),
        Value::int(0),
        Value::int(-7),
        Value::int(i64::MAX),
        Value::int(i64::MIN),
        Value::Bool(true),
        Value::Bool(false),
    ]
}

/// Two string-heavy rules over a `t --e--> t` edge: a unicode constant
/// premise and an attr-equality consequence — every check crosses the
/// interned fast path.
fn pool_rules(vocab: &mut Vocab) -> GfdSet {
    let t = vocab.label("t");
    let e = vocab.label("e");
    let a = vocab.attr("a");
    let b = vocab.attr("b");
    let mut p1 = Pattern::new();
    let x = p1.add_node(t, "x");
    let y = p1.add_node(t, "y");
    p1.add_edge(x, e, y);
    let r1 = Gfd::new(
        "uni-const",
        p1,
        vec![Literal::eq_const(x, a, Value::str("Zürich"))],
        vec![Literal::eq_const(y, a, Value::str("東京"))],
    );
    let mut p2 = Pattern::new();
    let x = p2.add_node(t, "x");
    let y = p2.add_node(t, "y");
    p2.add_edge(x, e, y);
    let r2 = Gfd::new(
        "pool-eq",
        p2,
        vec![],
        vec![Literal::eq_attr(x, b, y, b)],
    );
    GfdSet::from_vec(vec![r1, r2])
}

/// Build a pool-valued graph: `n` nodes in a chain-with-chords topology,
/// attrs `a`/`b` drawn from the pool by index.
fn pool_graph(n: usize, picks: &[usize], vocab: &mut Vocab) -> Graph {
    let pool = value_pool();
    let t = vocab.label("t");
    let e = vocab.label("e");
    let a = vocab.attr("a");
    let b = vocab.attr("b");
    let mut g = Graph::new();
    let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(t)).collect();
    for i in 0..n {
        g.add_edge(nodes[i], e, nodes[(i + 1) % n]);
        if i % 3 == 0 {
            g.add_edge(nodes[i], e, nodes[(i + 5) % n]);
        }
    }
    for (i, &node) in nodes.iter().enumerate() {
        let va = &pool[picks[(2 * i) % picks.len()] % pool.len()];
        let vb = &pool[picks[(2 * i + 1) % picks.len()] % pool.len()];
        g.set_attr(node, a, va.clone());
        g.set_attr(node, b, vb.clone());
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Id equality ⟺ value equality, for every pair of attribute values
    /// a pool graph carries, and every id survives a resolve → re-intern
    /// round trip unchanged. This is the exact property literal checks
    /// rely on when they compare raw `u32`s.
    #[test]
    fn interned_ids_agree_with_value_equality(
        n in 4usize..16,
        picks in proptest::collection::vec(0usize..64, 8..32),
    ) {
        let mut vocab = Vocab::new();
        let g = pool_graph(n, &picks, &mut vocab);
        let ids: Vec<ValueId> = g
            .nodes()
            .flat_map(|v| g.attrs(v).iter().map(|&(_, id)| id).collect::<Vec<_>>())
            .collect();
        for &x in &ids {
            prop_assert_eq!(ValueId::of(x.resolve()), x, "re-intern must be stable");
            for &y in &ids {
                prop_assert_eq!(
                    x == y,
                    x.resolve() == y.resolve(),
                    "id {:?} vs {:?} ({:?} vs {:?})",
                    x, y, x.resolve(), y.resolve()
                );
            }
        }
    }

    /// Detect over pool-valued graphs: the violation set matches a
    /// value-level re-evaluation of every rule literal, and is identical
    /// at p = 1 and p = 8.
    #[test]
    fn detect_on_pool_values_matches_value_semantics(
        n in 4usize..16,
        picks in proptest::collection::vec(0usize..64, 8..32),
    ) {
        let mut vocab = Vocab::new();
        let g = pool_graph(n, &picks, &mut vocab);
        let sigma = pool_rules(&mut vocab);
        let base = gfd::detect::detect(&g, &sigma, &DetectConfig::with_workers(1));
        let wide = gfd::detect::detect(&g, &sigma, &DetectConfig::with_workers(8));
        prop_assert_eq!(violation_keys(&base), violation_keys(&wide));
        // Every reported violation must also violate under *value*
        // semantics: premise holds, some consequence literal fails, with
        // literals decided by resolving ids back to `Value`s.
        let holds = |g: &Graph, lit: &Literal, m: &[NodeId]| -> bool {
            let left = g.attr(m[lit.var.index()], lit.attr).map(ValueId::resolve);
            match &lit.rhs {
                Operand::Const(c) => left.as_ref() == Some(&c.resolve()),
                Operand::Attr(v2, a2) => {
                    let right = g.attr(m[v2.index()], *a2).map(ValueId::resolve);
                    matches!((left, right), (Some(l), Some(r)) if l == r)
                }
            }
        };
        for v in &base.violations {
            let dep = sigma.get(v.gfd);
            prop_assert!(dep.premise.iter().all(|l| holds(&g, l, &v.m)));
            prop_assert!(!dep.consequence.iter().all(|l| holds(&g, l, &v.m)));
        }
    }

    /// Attr-overwrite deltas through the incremental engine: batches
    /// that repeatedly overwrite the same (node, attr) slots with pool
    /// values — unicode → empty → int → bool — leave exactly the
    /// violation set a from-scratch detect computes, at p ∈ {1, 8}.
    #[test]
    fn attr_overwrite_deltas_stay_equivalent(
        n in 6usize..14,
        picks in proptest::collection::vec(0usize..64, 8..32),
        writes in proptest::collection::vec((0usize..14, 0usize..2, 0usize..64), 4..24),
    ) {
        let mut vocab = Vocab::new();
        let g = pool_graph(n, &picks, &mut vocab);
        let sigma = pool_rules(&mut vocab);
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let pool = value_pool();
        // Three batches over the same write list: each batch shifts the
        // value index, so most slots are overwritten repeatedly across
        // (and within) batches.
        let batches: Vec<gfd::graph::DeltaBatch> = (0..3)
            .map(|round| {
                let mut batch = gfd::graph::DeltaBatch::new();
                for &(node, which, vi) in &writes {
                    let attr = if which == 0 { a } else { b };
                    let value = pool[(vi + round) % pool.len()].clone();
                    batch.set_attr(NodeId::new(node % n), attr, value);
                }
                batch
            })
            .collect();
        for p in [1usize, 8] {
            let mut incr = gfd::incr::IncrementalDetector::new(
                g.clone(),
                sigma.clone(),
                gfd::incr::IncrConfig {
                    detect: DetectConfig::with_workers(p),
                    compact_fraction: 0.25,
                },
            );
            let mut reference = g.clone();
            for (i, batch) in batches.iter().enumerate() {
                incr.apply(batch);
                batch.apply_to_graph(&mut reference);
                let full = gfd::detect::detect(
                    &reference,
                    &sigma,
                    &DetectConfig::with_workers(p),
                );
                let keys: Vec<(usize, Vec<usize>)> = incr
                    .violations()
                    .iter()
                    .map(|v| (v.gfd.index(), v.m.iter().map(|x| x.index()).collect()))
                    .collect();
                let full_keys: Vec<(usize, Vec<usize>)> = full
                    .violations
                    .iter()
                    .map(|v| (v.gfd.index(), v.m.iter().map(|x| x.index()).collect()))
                    .collect();
                prop_assert_eq!(keys, full_keys, "p={} batch={}", p, i);
            }
        }
    }

    /// Sat and chase at p = 1 vs p = 8 on string-heavy literal sets:
    /// verdicts agree with the sequential driver, and lifted runs agree
    /// with each other, when every constant comes from the pool.
    #[test]
    fn sat_on_pool_constants_is_worker_invariant(
        consts in proptest::collection::vec((0usize..14, 0usize..14), 2..6),
    ) {
        let pool = value_pool();
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let e = vocab.label("e");
        let a = vocab.attr("a");
        let rules: Vec<Gfd> = consts
            .iter()
            .enumerate()
            .map(|(i, &(ci, cj))| {
                let mut p = Pattern::new();
                let x = p.add_node(t, "x");
                let y = p.add_node(t, "y");
                p.add_edge(x, e, y);
                Gfd::new(
                    format!("r{i}"),
                    p,
                    vec![Literal::eq_const(x, a, pool[ci].clone())],
                    vec![Literal::eq_const(y, a, pool[cj].clone())],
                )
            })
            .collect();
        let sigma = GfdSet::from_vec(rules);
        let expected = gfd::seq_sat(&sigma).is_satisfiable();
        let deps = DepSet::from_gfds(sigma.clone());
        for p in [1usize, 8] {
            let r = dep_sat_with_config(&deps, &chase_cfg(p));
            prop_assert_eq!(r.is_satisfiable(), expected, "p={}", p);
        }
    }
}
