//! End-to-end reproductions of every worked example in the paper, driven
//! through the public API and the text format.

use gfd::prelude::*;

/// Example 1 / Fig. 1 rules, written in the DSL.
fn example1_rules(vocab: &mut Vocab) -> GfdSet {
    gfd::dsl::parse_document(
        r#"
        gfd phi1 {
          pattern {
            node x: place
            node y: place
            edge x -locateIn-> y
            edge y -partOf-> x
          }
          then { false }
        }
        gfd phi2 {
          pattern {
            node x: _
            node y: speed
            node z: speed
            edge x -topSpeed-> y
            edge x -topSpeed-> z
          }
          then { y.val = z.val }
        }
        gfd phi3 {
          pattern {
            node x: person
            node y: person
            node z: country
            edge x -president-> z
            edge y -vicePresident-> z
          }
          when { x.c = y.c }
          then { x.nationality = y.nationality }
        }
        gfd phi4 {
          pattern {
            node x: person
            node y: person
            node z1: field
            node z2: field
            node w1: blog
            node w2: blog
            edge x -expertIn-> z1
            edge y -expertIn-> z2
            edge z1 -opposite-> z2
            edge x -post-> w1
            edge y -post-> w2
          }
          when { w1.topic = w2.topic }
          then { w2.trust = "low" }
        }
        "#,
        vocab,
    )
    .expect("Example 1 rules parse")
    .gfds
}

#[test]
fn example1_rules_detect_the_papers_errors() {
    let mut vocab = Vocab::new();
    let sigma = example1_rules(&mut vocab);
    assert_eq!(sigma.len(), 4);

    // DBpedia fragment with the Bamburi and tank errors.
    let doc = gfd::dsl::parse_document(
        r#"
        graph dbpedia {
          node airport: place
          node bamburi: place
          edge airport -locateIn-> bamburi
          edge bamburi -partOf-> airport
          node tank: device
          node s1: speed { val = "24.076" }
          node s2: speed { val = "33.336" }
          edge tank -topSpeed-> s1
          edge tank -topSpeed-> s2
        }
        "#,
        &mut vocab,
    )
    .unwrap();
    let g = &doc.graphs[0].1;
    let violations = gfd::find_violations(g, &sigma, 100);
    // phi1 once; phi2 twice (symmetric matches).
    assert_eq!(violations.len(), 3);
}

#[test]
fn example2_first_pair_unsatisfiable() {
    let mut vocab = Vocab::new();
    let sigma = gfd::dsl::parse_document(
        "gfd phi5 { pattern { node x: _ } then { x.A = 0 } }
         gfd phi6 { pattern { node x: _ } then { x.A = 1 } }",
        &mut vocab,
    )
    .unwrap()
    .gfds;
    assert!(!gfd::seq_sat(&sigma).is_satisfiable());
    assert!(!gfd::chase_sat(&sigma).is_satisfiable());
    assert!(!gfd::par_sat(&sigma, &ParConfig::with_workers(2)).is_satisfiable());
}

const Q6_Q7_RULES: &str = r#"
# Q6: x(a) with p-children y(b), z(b), w(c); Q7: children y(b), z(c), w(c).
gfd phi7 {
  pattern {
    node x: a
    node y: b
    node z: b
    node w: c
    edge x -p-> y
    edge x -p-> z
    edge x -p-> w
  }
  then { x.A = 0, y.B = 1 }
}
gfd phi8 {
  pattern {
    node x: a
    node y: b
    node z: c
    node w: c
    edge x -p-> y
    edge x -p-> z
    edge x -p-> w
  }
  when { y.B = 1 }
  then { x.A = 1 }
}
"#;

#[test]
fn example2_distinct_pattern_interaction_unsatisfiable() {
    let mut vocab = Vocab::new();
    let sigma = gfd::dsl::parse_document(Q6_Q7_RULES, &mut vocab)
        .unwrap()
        .gfds;
    // Each alone has a model…
    for (_, g) in sigma.iter() {
        let single = GfdSet::from_vec(vec![g.clone()]);
        assert!(gfd::seq_sat(&single).is_satisfiable(), "{}", g.name);
    }
    // …but together they conflict (Q7 maps into Q6's canonical copy).
    assert!(!gfd::seq_sat(&sigma).is_satisfiable());
    assert!(!gfd::par_sat(&sigma, &ParConfig::with_workers(3)).is_satisfiable());
    assert!(!gfd::chase_sat(&sigma).is_satisfiable());
}

#[test]
fn example4_pending_recheck_chain() {
    let mut vocab = Vocab::new();
    // Σ = {ϕ7, ϕ9, ϕ10} of Example 4.
    let sigma = gfd::dsl::parse_document(
        r#"
        gfd phi7 {
          pattern {
            node x: a
            node y: b
            node z: b
            node w: c
            edge x -p-> y
            edge x -p-> z
            edge x -p-> w
          }
          then { x.A = 0, y.B = 1 }
        }
        gfd phi9 {
          pattern {
            node x: a
            node y: b
            node z: b
            node w: c
            edge x -p-> y
            edge x -p-> z
            edge x -p-> w
          }
          when { y.B = 1 }
          then { w.C = 1 }
        }
        gfd phi10 {
          pattern {
            node x: a
            node y: b
            node z: c
            node w: c
            edge x -p-> y
            edge x -p-> z
            edge x -p-> w
          }
          when { w.C = 1 }
          then { x.A = 1 }
        }
        "#,
        &mut vocab,
    )
    .unwrap()
    .gfds;
    assert!(!gfd::seq_sat(&sigma).is_satisfiable());
    for p in [1, 2, 4] {
        assert!(
            !gfd::par_sat(&sigma, &ParConfig::with_workers(p)).is_satisfiable(),
            "p={p}"
        );
    }
    assert!(!gfd::chase_sat(&sigma).is_satisfiable());
}

/// The Example 8 sources, shared by the implication tests.
const EXAMPLE8_SIGMA: &str = r#"
gfd phi11 {
  pattern { node x: a  node y: b  edge x -p-> y }
  then { x.A = 1 }
}
gfd phi12 {
  pattern { node x: a  node y: c  edge x -p-> y }
  when { x.A = 1, y.B = 2 }
  then { y.C = 2 }
}
"#;

const PHI13: &str = r#"
gfd phi13 {
  pattern {
    node x: a
    node y: b
    node z: c
    node w: c
    edge x -p-> y
    edge x -p-> z
    edge x -p-> w
  }
  when { z.B = 2 }
  then { z.C = 2 }
}
"#;

const PHI14: &str = r#"
gfd phi14 {
  pattern {
    node x: a
    node y: b
    node z: c
    node w: c
    edge x -p-> y
    edge x -p-> z
    edge x -p-> w
  }
  when { x.A = 0 }
  then { z.C = 2 }
}
"#;

#[test]
fn example8_implication_both_ways() {
    let mut vocab = Vocab::new();
    let sigma = gfd::dsl::parse_document(EXAMPLE8_SIGMA, &mut vocab)
        .unwrap()
        .gfds;
    let phi13 = gfd::dsl::parse_gfd(PHI13, &mut vocab).unwrap();
    let phi14 = gfd::dsl::parse_gfd(PHI14, &mut vocab).unwrap();

    // ϕ13: implied by deducing the consequence (Example 9's trace).
    let r = gfd::seq_imp(&sigma, &phi13);
    assert!(matches!(
        r.outcome,
        ImpOutcome::Implied(ImpliedVia::Consequence)
    ));
    // ϕ14: implied because Σ ∪ X is inconsistent.
    let r = gfd::seq_imp(&sigma, &phi14);
    assert!(matches!(
        r.outcome,
        ImpOutcome::Implied(ImpliedVia::Conflict(_))
    ));

    // Every algorithm agrees (Example 10 runs these on ParImp).
    for p in [1, 2, 4] {
        let cfg = ParConfig::with_workers(p);
        assert!(gfd::par_imp(&sigma, &phi13, &cfg).is_implied(), "p={p}");
        assert!(gfd::par_imp(&sigma, &phi14, &cfg).is_implied(), "p={p}");
    }
    assert!(gfd::chase_imp(&sigma, &phi13).is_implied());
    assert!(gfd::chase_imp(&sigma, &phi14).is_implied());

    // Neither rule alone implies ϕ13 (the interaction is essential).
    for i in 0..2 {
        let single = GfdSet::from_vec(vec![sigma.as_slice()[i].clone()]);
        assert!(!gfd::seq_imp(&single, &phi13).is_implied());
        assert!(!gfd::chase_imp(&single, &phi13).is_implied());
    }
}

#[test]
fn satisfiable_sets_yield_verified_models() {
    // A satisfiable mined-style set: the returned model must satisfy Σ
    // and host a match of every pattern (the paper's model definition).
    let w = gfd::gen::real_life_workload(gfd::gen::Dataset::Yago2, 40, 3, None);
    let r = gfd::seq_sat(&w.sigma);
    let model = r.model().expect("satisfiable");
    assert!(gfd::graph_satisfies_all(model, &w.sigma));
    let index = gfd::graph::LabelIndex::build(model);
    for (_, g) in w.sigma.iter() {
        assert!(
            gfd::matching::has_match(model, &index, &g.pattern),
            "model must host a match of `{}`",
            g.name
        );
    }
}
