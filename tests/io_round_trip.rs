//! Interchange-format round trips across crates: DSL ↔ JSON ↔ core
//! types must preserve reasoning outcomes, and edge-list loading must
//! feed detection correctly.

use gfd::io::{
    graph_from_json, graph_to_json, load_edge_list, load_node_table, sigma_from_json,
    sigma_to_json, EdgeListOptions,
};
use gfd::prelude::*;

#[test]
fn generated_sigma_survives_json_round_trip() {
    for seed in [2u64, 9, 17] {
        let w = gfd::gen::synthetic_workload(15, 4, 3, seed);
        let json = sigma_to_json(&w.sigma, &w.vocab);
        let mut vocab2 = Vocab::new();
        let sigma2 = sigma_from_json(&json, &mut vocab2).unwrap();
        assert_eq!(sigma2.len(), w.sigma.len());
        // Reasoning is preserved.
        assert_eq!(
            gfd::seq_sat(&w.sigma).is_satisfiable(),
            gfd::seq_sat(&sigma2).is_satisfiable(),
            "sat diverged after JSON round trip (seed {seed})"
        );
        // Sizes (the small-model bound input) are preserved.
        assert_eq!(w.sigma.total_size(), sigma2.total_size());
    }
}

#[test]
fn dsl_and_json_express_the_same_rules() {
    let mut vocab = Vocab::new();
    let doc = gfd::dsl::parse_document(
        "gfd a { pattern { node x: _ node y: speed edge x -topSpeed-> y }
                 when { x.kind = 1 } then { y.val = x.best } }",
        &mut vocab,
    )
    .unwrap();
    let json = sigma_to_json(&doc.gfds, &vocab);
    let mut vocab2 = Vocab::new();
    let from_json = sigma_from_json(&json, &mut vocab2).unwrap();
    let printed_a = gfd::dsl::print_gfd_set(&doc.gfds, &vocab);
    let printed_b = gfd::dsl::print_gfd_set(&from_json, &vocab2);
    assert_eq!(
        printed_a, printed_b,
        "DSL render must match after JSON trip"
    );
}

#[test]
fn graph_json_round_trip_preserves_validation() {
    let mut vocab = Vocab::new();
    let doc = gfd::dsl::parse_document(
        r#"
        graph g {
          node a: place { name = "x" }
          node b: place { name = "y" }
          edge a -locateIn-> b
          edge b -partOf-> a
        }
        gfd phi1 {
          pattern { node x: place node y: place
                    edge x -locateIn-> y edge y -partOf-> x }
          then { false }
        }
        "#,
        &mut vocab,
    )
    .unwrap();
    let graph = &doc.graphs[0].1;
    assert!(!gfd::graph_satisfies(
        graph,
        &doc.gfds[gfd::graph::GfdId::new(0)]
    ));

    let json = graph_to_json(graph, &vocab);
    let mut vocab2 = Vocab::new();
    let graph2 = graph_from_json(&json, &mut vocab2).unwrap();
    // Re-parse the rule against the new vocabulary so label ids line up.
    let doc2 = gfd::dsl::parse_document(
        "gfd phi1 { pattern { node x: place node y: place
                    edge x -locateIn-> y edge y -partOf-> x } then { false } }",
        &mut vocab2,
    )
    .unwrap();
    assert!(!gfd::graph_satisfies(
        &graph2,
        &doc2.gfds[gfd::graph::GfdId::new(0)]
    ));
}

#[test]
fn edge_list_to_detection_pipeline() {
    // A two-hop "friend of friend must be a friend" style shape check:
    // the denial pattern catches a triangle missing its closing edge.
    let mut vocab = Vocab::new();
    let edges = "1 2 follows\n2 3 follows\n1 3 follows\n4 5 follows\n5 6 follows\n";
    let (mut graph, mut ids) =
        load_edge_list(edges, &mut vocab, &EdgeListOptions::default()).unwrap();
    let table = "1 person\n2 person\n3 person\n4 person\n5 person\n6 person\n";
    load_node_table(table, &mut graph, &mut ids, &mut vocab).unwrap();

    let doc = gfd::dsl::parse_document(
        "gfd triangle_complete {
           pattern { node x: person node y: person node z: person
                     edge x -follows-> y
                     edge y -follows-> z }
           when { x.checked = 1 }
           then { x.closes = 1 }
         }",
        &mut vocab,
    )
    .unwrap();
    // Mark node 4 (whose two-hop path 4→5→6 has no closing edge).
    let checked = vocab.attr("checked");
    graph.set_attr(ids[&4], checked, Value::int(1));

    let report = gfd::detect::detect(
        &graph,
        &doc.gfds,
        &gfd::detect::DetectConfig::with_workers(2),
    );
    // The premise only holds where `checked` is set: the 4→5→6 match.
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].m[0], ids[&4]);
}

#[test]
fn json_errors_surface_cleanly_across_the_facade() {
    let mut vocab = Vocab::new();
    assert!(graph_from_json("[1,2,3]", &mut vocab).is_err());
    assert!(sigma_from_json("{}", &mut vocab).is_err());
    // Empty rule list is fine.
    assert_eq!(
        sigma_from_json("{\"gfds\": []}", &mut vocab).unwrap().len(),
        0
    );
}
