//! Scheduler-equivalence suite: the three reasoning workloads (Sat, Imp,
//! Detect) run on one shared work-stealing scheduler, and this file pins
//! the contract that made the unification safe — every worker count, every
//! dispatch mode, and TTL-forced splitting on every unit produce exactly
//! the sequential answers.
//!
//! CI runs this suite once per entry of `GFD_EQ_WORKERS` (a single worker
//! count overriding the default `{1, 2, 8}` sweep), and again with
//! `GFD_EQ_TRACE=1` to pin that the observability layer (DESIGN.md §13)
//! never perturbs answers.

use gfd::detect::{detect, DetectConfig};
use gfd::parallel::{DispatchMode, TraceSpec};
use gfd::prelude::*;
use std::time::Duration;

/// Worker counts to sweep: `GFD_EQ_WORKERS=n` pins a single count (the CI
/// matrix), default is {1, 2, 8}.
fn worker_counts() -> Vec<usize> {
    match std::env::var("GFD_EQ_WORKERS") {
        Ok(v) => vec![v.parse().expect("GFD_EQ_WORKERS must be an integer")],
        Err(_) => vec![1, 2, 8],
    }
}

/// `GFD_EQ_TRACE=1` runs the whole sweep with event tracing enabled, so
/// every equivalence assertion doubles as a tracing non-interference
/// check; the default leaves the instrumentation on its no-op path.
fn trace_spec() -> TraceSpec {
    if std::env::var("GFD_EQ_TRACE").as_deref() == Ok("1") {
        TraceSpec::enabled()
    } else {
        TraceSpec::disabled()
    }
}

/// A config whose TTL of zero forces a split attempt on every unit that
/// survives a single deadline poll.
fn splitty(p: usize) -> ParConfig {
    ParConfig::with_workers(p)
        .with_ttl(Duration::ZERO)
        .with_trace(trace_spec())
}

#[test]
fn sat_agrees_with_sequential_under_forced_splitting() {
    for seed in [3u64, 11, 29] {
        let w = gfd::gen::real_life_workload(gfd::gen::Dataset::Tiny, 40, seed, None);
        let expected = gfd::seq_sat(&w.sigma).is_satisfiable();
        for p in worker_counts() {
            for dispatch in [DispatchMode::WorkStealing, DispatchMode::Coordinator] {
                let cfg = splitty(p).with_dispatch(dispatch);
                let r = gfd::par_sat(&w.sigma, &cfg);
                assert_eq!(
                    r.is_satisfiable(),
                    expected,
                    "sat diverged: seed={seed} p={p} {dispatch:?}"
                );
            }
        }
    }
}

#[test]
fn sat_conflict_detection_is_worker_count_invariant() {
    // Workload with injected conflicts: must be UNSAT everywhere.
    let w = gfd::gen::real_life_workload(gfd::gen::Dataset::Yago2, 60, 5, Some(2));
    assert!(!gfd::seq_sat(&w.sigma).is_satisfiable());
    for p in worker_counts() {
        let r = gfd::par_sat(&w.sigma, &splitty(p));
        assert!(!r.is_satisfiable(), "p={p}");
    }
}

#[test]
fn imp_agrees_with_sequential_under_forced_splitting() {
    let w = gfd::gen::synthetic_workload(40, 4, 3, 17);
    assert!(!w.probes.is_empty());
    for probe in &w.probes {
        let expected = gfd::seq_imp(&w.sigma, &probe.phi).is_implied();
        assert_eq!(expected, probe.expect_implied, "oracle drifted");
        for p in worker_counts() {
            for dispatch in [DispatchMode::WorkStealing, DispatchMode::Coordinator] {
                let cfg = splitty(p).with_dispatch(dispatch);
                let r = gfd::par_imp(&w.sigma, &probe.phi, &cfg);
                assert_eq!(r.is_implied(), expected, "imp diverged: p={p} {dispatch:?}");
            }
        }
    }
}

#[test]
fn detect_agrees_with_the_oracle_under_forced_splitting() {
    let w = gfd::gen::real_life_workload(gfd::gen::Dataset::Tiny, 12, 23, None);
    let mut graph = gfd::gen::random_graph(
        &w.schema,
        &gfd::gen::GraphGenConfig {
            nodes: 120,
            edges: 360,
            attr_prob: 0.3,
            seed: 23,
        },
    );
    for (i, (_, gfd)) in w.sigma.iter().take(4).enumerate() {
        gfd::gen::plant_violation(&mut graph, gfd, &w.schema, 23 + i as u64);
    }
    let mut oracle: Vec<(usize, Vec<usize>)> = gfd::find_violations(&graph, &w.sigma, usize::MAX)
        .iter()
        .map(|v| (v.gfd.index(), v.m.iter().map(|n| n.index()).collect()))
        .collect();
    oracle.sort();
    assert!(!oracle.is_empty());
    for p in worker_counts() {
        for dispatch in [DispatchMode::WorkStealing, DispatchMode::Coordinator] {
            let config = DetectConfig {
                ttl: Duration::ZERO,
                batch_size: 4,
                dispatch,
                trace: trace_spec(),
                ..DetectConfig::with_workers(p)
            };
            let report = detect(&graph, &w.sigma, &config);
            let mut got: Vec<(usize, Vec<usize>)> = report
                .violations
                .iter()
                .map(|v| (v.gfd.index(), v.m.iter().map(|n| n.index()).collect()))
                .collect();
            got.sort();
            assert_eq!(got, oracle, "detect diverged: p={p} {dispatch:?}");
        }
    }
}

/// A deliberately skewed Σ: one fat star pattern whose hub-pivoted unit
/// dwarfs everything else, plus trivial unary rules contributing a crowd
/// of near-instant units.
fn skewed_sigma(vocab: &mut Vocab) -> GfdSet {
    let t = vocab.label("hub");
    let e = vocab.label("link");
    let a = vocab.attr("attr");
    let mut gfds = Vec::new();
    let mut fat = Pattern::new();
    let hub = fat.add_node(t, "hub");
    for i in 0..6 {
        let leaf = fat.add_node(t, format!("leaf{i}"));
        fat.add_edge(hub, e, leaf);
        fat.add_edge(leaf, e, hub);
    }
    gfds.push(Gfd::new(
        "fat",
        fat,
        vec![],
        vec![Literal::eq_const(VarId::new(0), a, 1i64)],
    ));
    for i in 0..8 {
        let mut p = Pattern::new();
        p.add_node(t, "x");
        gfds.push(Gfd::new(
            format!("tiny{i}"),
            p,
            vec![],
            vec![Literal::eq_const(VarId::new(0), a, 1i64)],
        ));
    }
    GfdSet::from_vec(gfds)
}

#[test]
fn steal_heavy_skewed_workload_balances_and_agrees() {
    let mut vocab = Vocab::new();
    let sigma = skewed_sigma(&mut vocab);
    let expected = gfd::seq_sat(&sigma).is_satisfiable();
    // A worker stuck on the fat unit leaves the rest of its deque for the
    // others: some run must steal. Retry a few times to shrug off
    // scheduling noise on loaded CI hosts.
    let mut stole = false;
    for _ in 0..5 {
        let cfg = ParConfig::with_workers(2).without_split();
        let r = gfd::par_sat(&sigma, &cfg);
        assert_eq!(r.is_satisfiable(), expected);
        assert_eq!(
            r.metrics.units_dispatched, r.metrics.units_generated as u64,
            "no-split run must execute exactly the seeded units"
        );
        if r.metrics.units_stolen > 0 {
            stole = true;
            break;
        }
    }
    assert!(stole, "skewed workload never triggered a steal");
}

#[test]
fn forced_splitting_splits_and_metrics_add_up() {
    let mut vocab = Vocab::new();
    let sigma = skewed_sigma(&mut vocab);
    for p in worker_counts() {
        let r = gfd::par_sat(&sigma, &splitty(p));
        assert!(r.is_satisfiable());
        assert!(
            r.metrics.units_split > 0,
            "TTL=0 must split the fat unit: p={p} {:?}",
            r.metrics
        );
        assert_eq!(
            r.metrics.units_dispatched,
            r.metrics.units_generated as u64 + r.metrics.units_split,
            "p={p}"
        );
        assert_eq!(r.metrics.worker_busy.len(), p);
        assert_eq!(r.metrics.worker_idle.len(), p);
    }
}

#[test]
fn tracing_does_not_perturb_answers_or_unit_accounting() {
    // The non-interference contract of DESIGN.md §13, head-to-head: the
    // same workload with tracing off and on must agree on the answer and
    // on the deterministic unit accounting (generated units are the
    // seeded scans — splits and steals are timing-dependent and are NOT
    // compared). The off run must record nothing; the on run must record
    // the per-unit spans the exporters consume.
    let w = gfd::gen::synthetic_workload(40, 4, 3, 9);
    let expected = gfd::seq_sat(&w.sigma).is_satisfiable();
    for p in worker_counts() {
        let base = ParConfig::with_workers(p).with_ttl(Duration::ZERO);
        let off = gfd::par_sat(&w.sigma, &base.clone().with_trace(TraceSpec::disabled()));
        let on = gfd::par_sat(&w.sigma, &base.with_trace(TraceSpec::enabled()));
        assert_eq!(off.is_satisfiable(), expected, "p={p} tracing off");
        assert_eq!(on.is_satisfiable(), expected, "p={p} tracing on");
        assert_eq!(
            off.metrics.units_generated, on.metrics.units_generated,
            "tracing changed the seeded unit count: p={p}"
        );
        assert!(
            off.metrics.trace.is_empty(),
            "disabled tracing recorded events: p={p}"
        );
        assert!(
            !on.metrics.trace.is_empty(),
            "enabled tracing recorded nothing: p={p}"
        );
    }
}
