//! The parallel detector against the sequential oracle: on any graph and
//! rule set, `gfd-detect` must find exactly the violations that
//! `gfd_core::find_violations` finds, at every worker count, TTL and
//! batch size.

use gfd::detect::{detect, DetectConfig};
use gfd::gen::{plant_violation, random_graph, GraphGenConfig};
use gfd::prelude::*;
use std::time::Duration;

/// Key a violation deterministically for set comparison.
fn keys_from_detect(report: &gfd::detect::DetectionReport) -> Vec<(usize, Vec<usize>)> {
    let mut keys: Vec<_> = report
        .violations
        .iter()
        .map(|v| (v.gfd.index(), v.m.iter().map(|n| n.index()).collect()))
        .collect();
    keys.sort();
    keys
}

fn keys_from_oracle(violations: &[gfd::core::Violation]) -> Vec<(usize, Vec<usize>)> {
    let mut keys: Vec<_> = violations
        .iter()
        .map(|v| (v.gfd.index(), v.m.iter().map(|n| n.index()).collect()))
        .collect();
    keys.sort();
    keys
}

/// A seeded workload: a random clean-ish graph with planted violations.
fn workload(seed: u64) -> (Graph, GfdSet) {
    let w = gfd::gen::real_life_workload(gfd::gen::Dataset::Tiny, 12, seed, None);
    let mut graph = random_graph(
        &w.schema,
        &GraphGenConfig {
            nodes: 120,
            edges: 360,
            attr_prob: 0.3,
            seed,
        },
    );
    // Plant a handful of violations of the first few rules.
    for (i, (_, gfd)) in w.sigma.iter().take(4).enumerate() {
        plant_violation(&mut graph, gfd, &w.schema, seed.wrapping_add(i as u64));
    }
    (graph, w.sigma)
}

#[test]
fn detector_matches_oracle_across_worker_counts() {
    for seed in [5u64, 19] {
        let (graph, sigma) = workload(seed);
        let oracle = keys_from_oracle(&gfd::find_violations(&graph, &sigma, usize::MAX));
        assert!(!oracle.is_empty(), "workload must contain violations");
        for workers in [1usize, 2, 8] {
            let report = detect(&graph, &sigma, &DetectConfig::with_workers(workers));
            assert_eq!(
                keys_from_detect(&report),
                oracle,
                "divergence at p={workers}, seed={seed}"
            );
            assert!(!report.truncated);
        }
    }
}

#[test]
fn ttl_zero_and_tiny_batches_change_nothing() {
    let (graph, sigma) = workload(7);
    let oracle = keys_from_oracle(&gfd::find_violations(&graph, &sigma, usize::MAX));
    let config = DetectConfig {
        ttl: Duration::ZERO,
        batch_size: 1,
        ..DetectConfig::with_workers(4)
    };
    let report = detect(&graph, &sigma, &config);
    assert_eq!(keys_from_detect(&report), oracle);
}

#[test]
fn heavy_units_split_and_still_agree_with_the_oracle() {
    // A dense graph where every pivoted search has a large tree: 30
    // mutually-connected nodes and a two-hop chain pattern give ~900
    // matches per pivot — far past the matcher's deadline-poll interval,
    // so TTL=0 must trigger splitting.
    let mut vocab = Vocab::new();
    let t = vocab.label("t");
    let e = vocab.label("e");
    let a = vocab.attr("a");
    let mut graph = Graph::new();
    let nodes: Vec<_> = (0..30).map(|_| graph.add_node(t)).collect();
    for &x in &nodes {
        for &y in &nodes {
            graph.add_edge(x, e, y);
        }
    }
    // Half the nodes carry a = 1; the rule demands a = 1 everywhere a
    // two-hop path starts, so the other half are violations.
    for (i, &n) in nodes.iter().enumerate() {
        graph.set_attr(n, a, Value::int((i % 2) as i64));
    }
    let mut p = Pattern::new();
    let x = p.add_node(t, "x");
    let y = p.add_node(t, "y");
    let z = p.add_node(t, "z");
    p.add_edge(x, e, y);
    p.add_edge(y, e, z);
    let sigma = GfdSet::from_vec(vec![Gfd::new(
        "starts-are-ones",
        p,
        vec![],
        vec![Literal::eq_const(x, a, 1i64)],
    )]);

    let oracle = keys_from_oracle(&gfd::find_violations(&graph, &sigma, usize::MAX));
    // 15 zero-valued pivots × 30 × 30 continuations.
    assert_eq!(oracle.len(), 15 * 30 * 30);
    let config = DetectConfig {
        ttl: Duration::ZERO,
        batch_size: 4,
        ..DetectConfig::with_workers(4)
    };
    let report = detect(&graph, &sigma, &config);
    assert_eq!(keys_from_detect(&report), oracle);
    assert!(
        report.metrics.units_split > 0,
        "expected splits: {report:?}"
    );
}

#[test]
fn budget_truncation_is_a_prefix_of_the_oracle_set() {
    let (graph, sigma) = workload(3);
    let oracle = keys_from_oracle(&gfd::find_violations(&graph, &sigma, usize::MAX));
    let budget = oracle.len().saturating_sub(1).max(1);
    let config = DetectConfig {
        max_violations: budget,
        ..DetectConfig::with_workers(4)
    };
    let report = detect(&graph, &sigma, &config);
    assert_eq!(report.violations.len(), budget);
    assert!(report.truncated);
    // Every reported violation is a real one.
    for key in keys_from_detect(&report) {
        assert!(oracle.contains(&key), "fabricated violation {key:?}");
    }
}

#[test]
fn per_rule_stats_are_consistent() {
    let (graph, sigma) = workload(11);
    let report = detect(&graph, &sigma, &DetectConfig::with_workers(4));
    assert_eq!(report.per_rule.len(), sigma.len());
    let total: u64 = report.per_rule.iter().map(|s| s.violations).sum();
    assert_eq!(total as usize, report.violations.len());
    for stats in &report.per_rule {
        assert!(stats.premise_hits <= stats.matches);
        assert!(stats.violations <= stats.premise_hits);
    }
}

#[test]
fn clean_generated_graph_stays_clean_under_parallel_detection() {
    // Without planting, the generator's canonical values satisfy the
    // mined-style rules.
    let w = gfd::gen::real_life_workload(gfd::gen::Dataset::Tiny, 10, 31, None);
    let graph = random_graph(
        &w.schema,
        &GraphGenConfig {
            nodes: 80,
            edges: 200,
            attr_prob: 0.5,
            seed: 31,
        },
    );
    let oracle = gfd::find_violations(&graph, &w.sigma, usize::MAX);
    let report = detect(&graph, &w.sigma, &DetectConfig::with_workers(4));
    assert_eq!(report.violations.len(), oracle.len());
}
