//! Stress and behaviour tests of the parallel runtime: splitting,
//! stealing, early termination, metrics, and worker-count invariance.

use gfd::parallel::DispatchMode;
use gfd::prelude::*;
use std::time::Duration;

/// A workload whose matching is deliberately heavy: wildcard star
/// patterns over a shared dense pattern family create units with large
/// search trees — straggler territory.
fn heavy_sigma(vocab: &mut Vocab) -> GfdSet {
    let t = vocab.label("hub");
    let e = vocab.label("link");
    let a = vocab.attr("attr");
    let mut gfds = Vec::new();
    // One fat pattern: a hub with many spokes (its canonical copy makes
    // every other rule's search tree wide). Six spokes give ~6^6 ≈ 47k
    // homomorphic matches pivoted at the hub — heavy enough to force
    // splits, small enough to finish fast (10 spokes would be 10^10).
    let mut fat = Pattern::new();
    let hub = fat.add_node(t, "hub");
    for i in 0..6 {
        let leaf = fat.add_node(t, format!("leaf{i}"));
        fat.add_edge(hub, e, leaf);
        fat.add_edge(leaf, e, hub);
    }
    gfds.push(Gfd::new(
        "fat",
        fat,
        vec![],
        vec![Literal::eq_const(VarId::new(0), a, 1i64)],
    ));
    // Several wildcard chain rules that match the fat copy in many ways.
    for i in 0..4 {
        let mut p = Pattern::new();
        let x = p.add_node(LabelId::WILDCARD, "x");
        let y = p.add_node(LabelId::WILDCARD, "y");
        let z = p.add_node(LabelId::WILDCARD, "z");
        p.add_edge(x, LabelId::WILDCARD, y);
        p.add_edge(y, LabelId::WILDCARD, z);
        gfds.push(Gfd::new(
            format!("chain{i}"),
            p,
            vec![Literal::eq_const(VarId::new(0), a, 1i64)],
            vec![Literal::eq_attr(VarId::new(0), a, VarId::new(2), a)],
        ));
    }
    GfdSet::from_vec(gfds)
}

#[test]
fn tiny_ttl_forces_splits_without_changing_answers() {
    let mut vocab = Vocab::new();
    let sigma = heavy_sigma(&mut vocab);
    let seq = gfd::seq_sat(&sigma);

    let cfg = ParConfig::with_workers(3).with_ttl(Duration::ZERO);
    let r = gfd::par_sat(&sigma, &cfg);
    assert_eq!(r.is_satisfiable(), seq.is_satisfiable());
    assert!(
        r.metrics.units_split > 0,
        "TTL=0 on a heavy workload must split: {:?}",
        r.metrics
    );
    // Split units were dispatched too.
    assert!(r.metrics.units_dispatched >= r.metrics.units_generated as u64);
}

#[test]
fn no_split_mode_never_splits() {
    let mut vocab = Vocab::new();
    let sigma = heavy_sigma(&mut vocab);
    let cfg = ParConfig::with_workers(3)
        .with_ttl(Duration::ZERO)
        .without_split();
    let r = gfd::par_sat(&sigma, &cfg);
    assert_eq!(r.metrics.units_split, 0);
    assert!(r.is_satisfiable());
}

#[test]
fn all_units_are_processed_exactly_once_on_quiescent_runs() {
    let mut vocab = Vocab::new();
    let sigma = heavy_sigma(&mut vocab);
    let cfg = ParConfig::with_workers(4);
    let r = gfd::par_sat(&sigma, &cfg);
    assert!(!r.metrics.early_terminated);
    assert_eq!(
        r.metrics.units_dispatched,
        r.metrics.units_generated as u64 + r.metrics.units_split
    );
    // Per-worker stats were collected on the drain path.
    assert_eq!(r.metrics.worker_busy.len(), 4);
}

#[test]
fn match_counts_are_stable_across_worker_counts() {
    let mut vocab = Vocab::new();
    let sigma = heavy_sigma(&mut vocab);
    let mut counts = Vec::new();
    for p in [1, 2, 4] {
        let r = gfd::par_sat(&sigma, &ParConfig::with_workers(p));
        assert!(r.is_satisfiable());
        counts.push(r.metrics.matches);
    }
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
}

#[test]
fn dispatch_modes_do_not_change_outcomes() {
    let mut vocab = Vocab::new();
    let sigma = heavy_sigma(&mut vocab);
    let expected = gfd::seq_sat(&sigma).is_satisfiable();
    for dispatch in [DispatchMode::WorkStealing, DispatchMode::Coordinator] {
        let cfg = ParConfig {
            dispatch,
            ..ParConfig::with_workers(3)
        };
        let r = gfd::par_sat(&sigma, &cfg);
        assert_eq!(r.is_satisfiable(), expected, "{dispatch:?}");
        if dispatch == DispatchMode::Coordinator {
            assert_eq!(r.metrics.units_stolen, 0, "coordinator mode never steals");
        }
    }
}

#[test]
fn early_termination_reports_quickly_on_conflicts() {
    // Large satisfiable base + a conflict pair: the run must terminate
    // early rather than process everything.
    let w = gfd::gen::real_life_workload(gfd::gen::Dataset::Yago2, 120, 5, Some(2));
    let cfg = ParConfig::with_workers(4);
    let r = gfd::par_sat(&w.sigma, &cfg);
    assert!(!r.is_satisfiable());
    assert!(r.metrics.early_terminated);
}

#[test]
fn consequence_termination_for_implication() {
    let w = gfd::gen::synthetic_workload(60, 4, 3, 21);
    let implied: Vec<_> = w.probes.iter().filter(|p| p.expect_implied).collect();
    assert!(!implied.is_empty());
    for probe in implied {
        let r = gfd::par_imp(&w.sigma, &probe.phi, &ParConfig::with_workers(4));
        assert!(r.is_implied());
    }
}

#[test]
fn many_workers_on_tiny_input_is_fine() {
    // More workers than units: the runtime must not deadlock or lose
    // answers when most workers never receive work.
    let mut vocab = Vocab::new();
    let sigma = gfd::dsl::parse_document(
        "gfd only { pattern { node x: t } then { x.a = 1 } }",
        &mut vocab,
    )
    .unwrap()
    .gfds;
    let r = gfd::par_sat(&sigma, &ParConfig::with_workers(16));
    assert!(r.is_satisfiable());
}

#[test]
fn repeated_runs_are_deterministic_in_outcome() {
    let w = gfd::gen::real_life_workload(gfd::gen::Dataset::Tiny, 40, 9, None);
    let expected = gfd::seq_sat(&w.sigma).is_satisfiable();
    for run in 0..5 {
        let r = gfd::par_sat(
            &w.sigma,
            &ParConfig::with_workers(3).with_ttl(Duration::from_micros(200)),
        );
        assert_eq!(r.is_satisfiable(), expected, "run {run} diverged");
    }
}
