//! The enforcement engine: the `Expand`/`CheckAttr` machinery of §IV-C.
//!
//! Given matches of GFD patterns in a canonical graph, the engine
//!
//! 1. evaluates the premise `X` against the current equivalence relation
//!    (satisfied / permanently falsified / pending);
//! 2. enforces the consequence `Y` with the two expansion rules (constant
//!    binding, attribute merging), recording the resulting [`EqOp`]s in a
//!    delta log (what parallel workers broadcast);
//! 3. keeps the paper's *inverted index*: matches whose premise is pending
//!    are registered as watchers on the attributes they wait for, and are
//!    rechecked (cascaded) when those attributes are instantiated or
//!    merged.
//!
//! The same engine backs `SeqSat`, `SeqImp`, the parallel workers, and the
//! chase baseline.

use crate::eq::{EqOp, EqRel, Watcher};
use crate::error::{AttrKey, Conflict};
use crate::gfd::Gfd;
use crate::literal::Operand;
use crate::sigma::GfdSet;
use gfd_graph::GfdId;
use gfd_match::Match;
use std::collections::VecDeque;

/// The status of a premise `X` under a partial attribute assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PremiseStatus {
    /// Every literal holds; the consequence must be enforced.
    Satisfied,
    /// Some literal compares two distinct constants — since constants never
    /// change, the premise can never hold: drop the match.
    Falsified,
    /// Some literal waits on uninstantiated attributes (the keys listed);
    /// the match must be rechecked when they change.
    Pending(Vec<AttrKey>),
}

/// Evaluate the premise of `gfd` at `m` against `eq` without mutating
/// anything (beyond union-find path compression).
pub fn eval_premise(eq: &mut EqRel, gfd: &Gfd, m: &[gfd_graph::NodeId]) -> PremiseStatus {
    eval_premise_lits(eq, &gfd.premise, m)
}

/// [`eval_premise`] over a bare literal slice — the form the generalized
/// dependency layer (chase over [`crate::DepSet`]) evaluates, since a
/// [`crate::Dependency`]'s premise is the same `Vec<Literal>` whatever
/// its consequence action is.
pub fn eval_premise_lits(
    eq: &mut EqRel,
    premise: &[crate::literal::Literal],
    m: &[gfd_graph::NodeId],
) -> PremiseStatus {
    let mut waiting: Vec<AttrKey> = Vec::new();
    for lit in premise {
        let k1: AttrKey = (m[lit.var.index()], lit.attr);
        match &lit.rhs {
            Operand::Const(c) => match eq.const_of(k1) {
                Some(v) if v == *c => {}
                Some(_) => return PremiseStatus::Falsified,
                None => waiting.push(k1),
            },
            Operand::Attr(var2, attr2) => {
                let k2: AttrKey = (m[var2.index()], *attr2);
                if k1 == k2 {
                    // Reflexive literal `x.A = x.A`: holds exactly when
                    // the attribute is forced to exist. A latent class
                    // (created only by watcher registration) does not
                    // count — the population may omit it.
                    if !eq.is_materialized(k1) {
                        waiting.push(k1);
                    }
                    continue;
                }
                if eq.same_class(k1, k2) {
                    continue;
                }
                match (eq.const_of(k1), eq.const_of(k2)) {
                    (Some(a), Some(b)) if a == b => {}
                    (Some(_), Some(_)) => return PremiseStatus::Falsified,
                    _ => {
                        waiting.push(k1);
                        waiting.push(k2);
                    }
                }
            }
        }
    }
    if waiting.is_empty() {
        PremiseStatus::Satisfied
    } else {
        PremiseStatus::Pending(waiting)
    }
}

/// A match whose premise was pending when first seen.
#[derive(Clone, Debug)]
struct PendingEntry {
    gfd: GfdId,
    m: Match,
    resolved: bool,
    /// Bumped on each (re-)registration; stale watcher copies are skipped.
    epoch: u32,
}

/// Counters exposed for benchmarks and the paper's ablation studies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Matches handed to [`EnforceEngine::process_match`].
    pub matches_processed: u64,
    /// Matches that entered the pending (inverted) index.
    pub pending_registered: u64,
    /// Pending rechecks triggered by attribute instantiation.
    pub rechecks: u64,
    /// Ops applied from remote deltas.
    pub remote_ops_applied: u64,
}

/// The enforcement engine over one canonical graph.
#[derive(Clone, Debug, Default)]
pub struct EnforceEngine {
    /// The equivalence relation being expanded.
    pub eq: EqRel,
    pending: Vec<PendingEntry>,
    wake: VecDeque<Watcher>,
    delta: Vec<EqOp>,
    /// Statistics counters.
    pub stats: EngineStats,
}

impl EnforceEngine {
    /// A fresh engine with an empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh engine starting from an existing relation (e.g. `EqX` for
    /// implication checking).
    pub fn with_eq(eq: EqRel) -> Self {
        EnforceEngine {
            eq,
            ..Self::default()
        }
    }

    /// Number of ops recorded so far (cursor base for delta extraction).
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// The ops recorded at positions `from..`.
    pub fn delta_since(&self, from: usize) -> &[EqOp] {
        &self.delta[from..]
    }

    /// Number of unresolved pending matches.
    pub fn pending_count(&self) -> usize {
        self.pending.iter().filter(|p| !p.resolved).count()
    }

    /// Drain the engine into `(full delta, unresolved pending matches)` —
    /// what a worker ships to the coordinator for the final convergence
    /// phase.
    pub fn into_state(self) -> (Vec<EqOp>, Vec<(GfdId, Match)>) {
        let pending = self
            .pending
            .into_iter()
            .filter(|p| !p.resolved)
            .map(|p| (p.gfd, p.m))
            .collect();
        (self.delta, pending)
    }

    /// Process one match of `gfd` (identified by `id` within `sigma`):
    /// evaluate the premise, enforce or register, then cascade rechecks.
    pub fn process_match(&mut self, sigma: &GfdSet, id: GfdId, m: Match) -> Result<(), Conflict> {
        self.stats.matches_processed += 1;
        let gfd = &sigma[id];
        match eval_premise(&mut self.eq, gfd, &m) {
            PremiseStatus::Falsified => Ok(()),
            PremiseStatus::Satisfied => {
                self.enforce_consequence(gfd, id, &m)?;
                self.cascade(sigma)
            }
            PremiseStatus::Pending(keys) => {
                self.register_pending(id, m, &keys);
                Ok(())
            }
        }
    }

    fn register_pending(&mut self, gfd: GfdId, m: Match, keys: &[AttrKey]) {
        self.stats.pending_registered += 1;
        let id = self.pending.len() as u32;
        self.pending.push(PendingEntry {
            gfd,
            m,
            resolved: false,
            epoch: 0,
        });
        for &key in keys {
            self.eq.add_watcher(key, (id, 0));
        }
    }

    /// Enforce the consequence `Y` of `gfd` at match `m` (Rules 1 and 2),
    /// queueing any woken watchers.
    pub fn enforce_consequence(
        &mut self,
        gfd: &Gfd,
        id: GfdId,
        m: &[gfd_graph::NodeId],
    ) -> Result<(), Conflict> {
        for lit in &gfd.consequence {
            let k1: AttrKey = (m[lit.var.index()], lit.attr);
            match &lit.rhs {
                Operand::Const(c) => {
                    let effect = self.eq.bind(k1, *c).map_err(|e| e.with_gfd(id))?;
                    if effect.changed {
                        self.delta.push(EqOp::Bind(k1, *c));
                    }
                    self.wake.extend(effect.woken);
                }
                Operand::Attr(var2, attr2) => {
                    let k2: AttrKey = (m[var2.index()], *attr2);
                    let effect = self.eq.merge(k1, k2).map_err(|e| e.with_gfd(id))?;
                    if effect.changed {
                        self.delta.push(EqOp::Merge(k1, k2));
                    }
                    self.wake.extend(effect.woken);
                }
            }
        }
        Ok(())
    }

    /// Recheck woken pending matches until the wake queue drains (the
    /// fixpoint cascade driven by the inverted index).
    pub fn cascade(&mut self, sigma: &GfdSet) -> Result<(), Conflict> {
        while let Some((id, epoch)) = self.wake.pop_front() {
            let entry = &self.pending[id as usize];
            if entry.resolved || entry.epoch != epoch {
                continue;
            }
            self.stats.rechecks += 1;
            let gfd_id = entry.gfd;
            let gfd = &sigma[gfd_id];
            // Clone the match out to appease the borrow checker; matches
            // are small (k ≤ 10 nodes).
            let m = entry.m.clone();
            match eval_premise(&mut self.eq, gfd, &m) {
                PremiseStatus::Falsified => {
                    self.pending[id as usize].resolved = true;
                }
                PremiseStatus::Satisfied => {
                    self.pending[id as usize].resolved = true;
                    self.enforce_consequence(gfd, gfd_id, &m)?;
                }
                PremiseStatus::Pending(keys) => {
                    let entry = &mut self.pending[id as usize];
                    entry.epoch += 1;
                    let epoch = entry.epoch;
                    for key in keys {
                        self.eq.add_watcher(key, (id, epoch));
                    }
                }
            }
        }
        Ok(())
    }

    /// Apply ops produced by another engine (a remote worker's `ΔEq`),
    /// *without* re-recording them, then cascade local rechecks.
    pub fn apply_remote_ops(&mut self, sigma: &GfdSet, ops: &[EqOp]) -> Result<(), Conflict> {
        for op in ops {
            let effect = self.eq.apply_op(op)?;
            self.stats.remote_ops_applied += 1;
            self.wake.extend(effect.woken);
        }
        self.cascade(sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Literal;
    use gfd_graph::{NodeId, Pattern, ValueId, VarId, Vocab};

    /// One-variable pattern; the canonical graph is a single node, matches
    /// are trivial.
    fn unary_gfd(
        vocab: &mut Vocab,
        name: &str,
        premise: Vec<Literal>,
        consequence: Vec<Literal>,
    ) -> Gfd {
        let mut p = Pattern::new();
        p.add_node(vocab.label("t"), "x");
        Gfd::new(name, p, premise, consequence)
    }

    fn m0() -> Match {
        vec![NodeId::new(0)].into_boxed_slice()
    }

    #[test]
    fn empty_premise_enforces_immediately() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let sigma = GfdSet::from_vec(vec![unary_gfd(
            &mut vocab,
            "g",
            vec![],
            vec![Literal::eq_const(VarId::new(0), a, 1i64)],
        )]);
        let mut e = EnforceEngine::new();
        e.process_match(&sigma, GfdId::new(0), m0()).unwrap();
        assert!(e.eq.deduces_const((NodeId::new(0), a), ValueId::of(1)));
        assert_eq!(e.delta_len(), 1);
        assert_eq!(e.stats.matches_processed, 1);
    }

    #[test]
    fn conflicting_consequences_error() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let sigma = GfdSet::from_vec(vec![
            unary_gfd(
                &mut vocab,
                "g0",
                vec![],
                vec![Literal::eq_const(VarId::new(0), a, 0i64)],
            ),
            unary_gfd(
                &mut vocab,
                "g1",
                vec![],
                vec![Literal::eq_const(VarId::new(0), a, 1i64)],
            ),
        ]);
        let mut e = EnforceEngine::new();
        e.process_match(&sigma, GfdId::new(0), m0()).unwrap();
        let err = e.process_match(&sigma, GfdId::new(1), m0()).unwrap_err();
        assert_eq!(err.gfd, Some(GfdId::new(1)));
    }

    #[test]
    fn pending_match_rechecks_on_instantiation() {
        // Example 4's mechanism in miniature:
        //   g0: a = 1 → b = 1   (pending at first)
        //   g1: ∅ → a = 1        (instantiates a, waking g0's match)
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let x = VarId::new(0);
        let sigma = GfdSet::from_vec(vec![
            unary_gfd(
                &mut vocab,
                "g0",
                vec![Literal::eq_const(x, a, 1i64)],
                vec![Literal::eq_const(x, b, 1i64)],
            ),
            unary_gfd(
                &mut vocab,
                "g1",
                vec![],
                vec![Literal::eq_const(x, a, 1i64)],
            ),
        ]);
        let mut e = EnforceEngine::new();
        e.process_match(&sigma, GfdId::new(0), m0()).unwrap();
        assert_eq!(e.pending_count(), 1);
        assert!(!e.eq.deduces_const((NodeId::new(0), b), ValueId::of(1)));
        e.process_match(&sigma, GfdId::new(1), m0()).unwrap();
        // The cascade must have fired g0.
        assert_eq!(e.pending_count(), 0);
        assert!(e.eq.deduces_const((NodeId::new(0), b), ValueId::of(1)));
        assert_eq!(e.stats.rechecks, 1);
    }

    #[test]
    fn cascade_chains_through_multiple_pendings() {
        // g0: a=1 → b=1 ; g1: b=1 → c=1 ; g2: ∅ → a=1. Processing order
        // g0, g1, g2 must still derive c=1 through two cascaded rechecks.
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let c = vocab.attr("c");
        let x = VarId::new(0);
        let sigma = GfdSet::from_vec(vec![
            unary_gfd(
                &mut vocab,
                "g0",
                vec![Literal::eq_const(x, a, 1i64)],
                vec![Literal::eq_const(x, b, 1i64)],
            ),
            unary_gfd(
                &mut vocab,
                "g1",
                vec![Literal::eq_const(x, b, 1i64)],
                vec![Literal::eq_const(x, c, 1i64)],
            ),
            unary_gfd(
                &mut vocab,
                "g2",
                vec![],
                vec![Literal::eq_const(x, a, 1i64)],
            ),
        ]);
        let mut e = EnforceEngine::new();
        e.process_match(&sigma, GfdId::new(0), m0()).unwrap();
        e.process_match(&sigma, GfdId::new(1), m0()).unwrap();
        assert_eq!(e.pending_count(), 2);
        e.process_match(&sigma, GfdId::new(2), m0()).unwrap();
        assert!(e.eq.deduces_const((NodeId::new(0), c), ValueId::of(1)));
        assert_eq!(e.pending_count(), 0);
    }

    #[test]
    fn falsified_premise_never_fires() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let x = VarId::new(0);
        let sigma = GfdSet::from_vec(vec![
            unary_gfd(
                &mut vocab,
                "g0",
                vec![],
                vec![Literal::eq_const(x, a, 2i64)],
            ),
            unary_gfd(
                &mut vocab,
                "g1",
                vec![Literal::eq_const(x, a, 1i64)],
                vec![Literal::eq_const(x, b, 1i64)],
            ),
        ]);
        let mut e = EnforceEngine::new();
        e.process_match(&sigma, GfdId::new(0), m0()).unwrap();
        e.process_match(&sigma, GfdId::new(1), m0()).unwrap();
        // a=2 contradicts the premise a=1: no pending entry, no b.
        assert_eq!(e.pending_count(), 0);
        assert!(!e.eq.has_class((NodeId::new(0), b)));
    }

    #[test]
    fn variable_literal_premise_satisfied_by_merge() {
        // g0: x.a = x.b → x.c = 1 ; g1: ∅ → x.a = x.b.
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let c = vocab.attr("c");
        let x = VarId::new(0);
        let sigma = GfdSet::from_vec(vec![
            unary_gfd(
                &mut vocab,
                "g0",
                vec![Literal::eq_attr(x, a, x, b)],
                vec![Literal::eq_const(x, c, 1i64)],
            ),
            unary_gfd(&mut vocab, "g1", vec![], vec![Literal::eq_attr(x, a, x, b)]),
        ]);
        let mut e = EnforceEngine::new();
        e.process_match(&sigma, GfdId::new(0), m0()).unwrap();
        assert_eq!(e.pending_count(), 1);
        e.process_match(&sigma, GfdId::new(1), m0()).unwrap();
        assert!(e.eq.deduces_const((NodeId::new(0), c), ValueId::of(1)));
    }

    #[test]
    fn variable_literal_premise_satisfied_by_equal_constants() {
        // g0: x.a = x.b → x.c = 1 ; g1: ∅ → x.a = 5 ; g2: ∅ → x.b = 5.
        // a and b end up in different classes but with equal constants: the
        // premise holds in every population and must fire.
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let c = vocab.attr("c");
        let x = VarId::new(0);
        let sigma = GfdSet::from_vec(vec![
            unary_gfd(
                &mut vocab,
                "g0",
                vec![Literal::eq_attr(x, a, x, b)],
                vec![Literal::eq_const(x, c, 1i64)],
            ),
            unary_gfd(
                &mut vocab,
                "g1",
                vec![],
                vec![Literal::eq_const(x, a, 5i64)],
            ),
            unary_gfd(
                &mut vocab,
                "g2",
                vec![],
                vec![Literal::eq_const(x, b, 5i64)],
            ),
        ]);
        let mut e = EnforceEngine::new();
        e.process_match(&sigma, GfdId::new(0), m0()).unwrap();
        e.process_match(&sigma, GfdId::new(1), m0()).unwrap();
        e.process_match(&sigma, GfdId::new(2), m0()).unwrap();
        assert!(e.eq.deduces_const((NodeId::new(0), c), ValueId::of(1)));
    }

    #[test]
    fn remote_ops_trigger_local_cascades() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let x = VarId::new(0);
        let sigma = GfdSet::from_vec(vec![unary_gfd(
            &mut vocab,
            "g0",
            vec![Literal::eq_const(x, a, 1i64)],
            vec![Literal::eq_const(x, b, 1i64)],
        )]);
        let mut e = EnforceEngine::new();
        e.process_match(&sigma, GfdId::new(0), m0()).unwrap();
        assert_eq!(e.pending_count(), 1);
        // A "remote" worker bound a=1.
        let base = e.delta_len();
        e.apply_remote_ops(&sigma, &[EqOp::Bind((NodeId::new(0), a), ValueId::of(1i64))])
            .unwrap();
        assert!(e.eq.deduces_const((NodeId::new(0), b), ValueId::of(1)));
        // The local consequence (b=1) is recorded for further broadcast,
        // the remote op itself is not re-recorded.
        let newly: Vec<_> = e.delta_since(base).to_vec();
        assert_eq!(newly, vec![EqOp::Bind((NodeId::new(0), b), ValueId::of(1i64))]);
    }

    #[test]
    fn into_state_exports_unresolved_pendings() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let x = VarId::new(0);
        let sigma = GfdSet::from_vec(vec![unary_gfd(
            &mut vocab,
            "g0",
            vec![Literal::eq_const(x, a, 1i64)],
            vec![Literal::eq_const(x, b, 1i64)],
        )]);
        let mut e = EnforceEngine::new();
        e.process_match(&sigma, GfdId::new(0), m0()).unwrap();
        let (delta, pending) = e.into_state();
        assert!(delta.is_empty());
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, GfdId::new(0));
    }
}
