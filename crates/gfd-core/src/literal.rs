//! Attribute literals: the building blocks of GFD premises and consequences.

use gfd_graph::{AttrId, Value, ValueId, ValueTable, VarId, Vocab};
use std::fmt;

/// The right-hand side of a literal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A constant: `x.A = c` (the CFD-style constant binding), interned
    /// at rule-construction time so matching compares raw ids.
    Const(ValueId),
    /// Another attribute: `x.A = y.B` (the FD-style variable literal).
    Attr(VarId, AttrId),
}

/// A literal `x.A = rhs` over the variables `x̄` of a pattern.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Literal {
    /// The variable on the left-hand side.
    pub var: VarId,
    /// The attribute of that variable.
    pub attr: AttrId,
    /// Constant or attribute right-hand side.
    pub rhs: Operand,
}

impl Literal {
    /// Build a constant literal `x.A = c`.
    pub fn eq_const(var: VarId, attr: AttrId, value: impl Into<Value>) -> Self {
        Literal {
            var,
            attr,
            rhs: Operand::Const(ValueTable::intern(&value.into())),
        }
    }

    /// Build a constant literal from an already-interned id.
    pub fn eq_id(var: VarId, attr: AttrId, value: ValueId) -> Self {
        Literal {
            var,
            attr,
            rhs: Operand::Const(value),
        }
    }

    /// Build a variable literal `x.A = y.B`.
    pub fn eq_attr(var: VarId, attr: AttrId, other_var: VarId, other_attr: AttrId) -> Self {
        Literal {
            var,
            attr,
            rhs: Operand::Attr(other_var, other_attr),
        }
    }

    /// The variables mentioned by this literal (1 or 2 entries).
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        let second = match &self.rhs {
            Operand::Attr(v, _) => Some(*v),
            Operand::Const(_) => None,
        };
        std::iter::once(self.var).chain(second)
    }

    /// The attribute names mentioned by this literal (1 or 2 entries).
    pub fn attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        let second = match &self.rhs {
            Operand::Attr(_, a) => Some(*a),
            Operand::Const(_) => None,
        };
        std::iter::once(self.attr).chain(second)
    }

    /// Literal size (the unit used by `|ϕ|`): constants count 2, attribute
    /// pairs count 2.
    pub fn size(&self) -> usize {
        2
    }

    /// Render with variable names from `pattern` and attribute names from
    /// `vocab`.
    pub fn display<'a>(
        &'a self,
        pattern: &'a gfd_graph::Pattern,
        vocab: &'a Vocab,
    ) -> LiteralDisplay<'a> {
        LiteralDisplay {
            literal: self,
            pattern,
            vocab,
        }
    }
}

/// Helper for rendering a literal with human-readable names.
pub struct LiteralDisplay<'a> {
    literal: &'a Literal,
    pattern: &'a gfd_graph::Pattern,
    vocab: &'a Vocab,
}

impl fmt::Display for LiteralDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let l = self.literal;
        write!(
            f,
            "{}.{}",
            self.pattern.var_name(l.var),
            self.vocab.attr_name(l.attr)
        )?;
        match &l.rhs {
            Operand::Const(v) => write!(f, " = {v:?}"),
            Operand::Attr(var, attr) => write!(
                f,
                " = {}.{}",
                self.pattern.var_name(*var),
                self.vocab.attr_name(*attr)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::Pattern;

    #[test]
    fn constructors_and_accessors() {
        let l1 = Literal::eq_const(VarId::new(0), AttrId::new(1), 5i64);
        assert_eq!(l1.vars().collect::<Vec<_>>(), vec![VarId::new(0)]);
        assert_eq!(l1.attrs().collect::<Vec<_>>(), vec![AttrId::new(1)]);

        let l2 = Literal::eq_attr(VarId::new(0), AttrId::new(1), VarId::new(2), AttrId::new(3));
        assert_eq!(
            l2.vars().collect::<Vec<_>>(),
            vec![VarId::new(0), VarId::new(2)]
        );
        assert_eq!(
            l2.attrs().collect::<Vec<_>>(),
            vec![AttrId::new(1), AttrId::new(3)]
        );
        assert_eq!(l1.size() + l2.size(), 4);
    }

    #[test]
    fn display_uses_names() {
        let mut vocab = Vocab::new();
        let t = vocab.label("person");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        let nat = vocab.attr("nationality");
        let lit = Literal::eq_attr(x, nat, y, nat);
        assert_eq!(
            lit.display(&p, &vocab).to_string(),
            "x.nationality = y.nationality"
        );
        let lit2 = Literal::eq_const(x, nat, "FR");
        assert_eq!(
            lit2.display(&p, &vocab).to_string(),
            "x.nationality = \"FR\""
        );
    }
}
