//! Conflict reporting for the reasoning algorithms.

use gfd_graph::{AttrId, GfdId, NodeId, ValueId};
use std::fmt;

/// An attribute key inside a canonical graph: node × attribute name.
pub type AttrKey = (NodeId, AttrId);

/// Two distinct constants were forced onto the same equivalence class — the
/// witness that a set of GFDs is inconsistent (or, for implication, that
/// `Σ ∪ X` is inconsistent, proving `Σ |= ϕ`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conflict {
    /// The attribute key whose class received both values.
    pub key: AttrKey,
    /// The value already present in the class.
    pub existing: ValueId,
    /// The value that contradicted it.
    pub incoming: ValueId,
    /// The GFD whose enforcement triggered the conflict, when known.
    pub gfd: Option<GfdId>,
}

impl Conflict {
    /// Attach the triggering GFD if not already recorded.
    pub fn with_gfd(mut self, gfd: GfdId) -> Self {
        self.gfd.get_or_insert(gfd);
        self
    }
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conflict on {}.{}: {:?} vs {:?}",
            self.key.0, self.key.1, self.existing, self.incoming
        )?;
        if let Some(g) = self.gfd {
            write!(f, " (while enforcing {g})")?;
        }
        Ok(())
    }
}

impl std::error::Error for Conflict {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_both_values() {
        let c = Conflict {
            key: (NodeId::new(3), AttrId::new(1)),
            existing: ValueId::of(0i64),
            incoming: ValueId::of(1i64),
            gfd: Some(GfdId::new(7)),
        };
        let s = c.to_string();
        assert!(s.contains("n3"));
        assert!(s.contains('0'));
        assert!(s.contains('1'));
        assert!(s.contains("g7"));
    }

    #[test]
    fn with_gfd_does_not_overwrite() {
        let c = Conflict {
            key: (NodeId::new(0), AttrId::new(0)),
            existing: ValueId::of(0i64),
            incoming: ValueId::of(1i64),
            gfd: Some(GfdId::new(1)),
        };
        assert_eq!(c.with_gfd(GfdId::new(2)).gfd, Some(GfdId::new(1)));
    }
}
