//! The equivalence relation `Eq` over node attributes (§IV-C).
//!
//! `Eq` represents the attribute assignment `F_A` of a canonical-graph
//! population symbolically: each class `[x.A]Eq` groups attribute keys that
//! are forced equal by enforced GFDs, optionally together with a constant.
//! Binding two distinct constants to one class is the *conflict* that
//! decides satisfiability/implication.
//!
//! The structure is a union-find with:
//!
//! * per-class constant bindings (merging classes with distinct constants
//!   raises [`Conflict`]);
//! * per-class *watchers* — registrations of pending matches (the paper's
//!   inverted index) that must be rechecked when the class gains a constant
//!   or is merged;
//! * a monotone *op log* ([`EqOp`]) replayable on another copy — exactly
//!   what the parallel workers broadcast as `ΔEq`.

use crate::error::{AttrKey, Conflict};
use gfd_graph::ValueId;
use rustc_hash::FxHashMap;

/// A monotone update to an [`EqRel`], replayable on any other copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EqOp {
    /// Ensure the class `[key]` exists (attribute added without a value).
    Ensure(AttrKey),
    /// Bind constant `value` to the class of `key`.
    Bind(AttrKey, ValueId),
    /// Merge the classes of the two keys.
    Merge(AttrKey, AttrKey),
}

/// A watcher registration: pending-entry id plus the registration epoch
/// (stale duplicates are skipped on wake).
pub type Watcher = (u32, u32);

/// The result of a mutating operation.
#[derive(Debug, Default)]
pub struct Effect {
    /// Did the operation change the relation (class created, constant set,
    /// classes merged)?
    pub changed: bool,
    /// Watchers to recheck, drained from the affected classes.
    pub woken: Vec<Watcher>,
}

/// The equivalence relation over attribute keys.
#[derive(Clone, Debug, Default)]
pub struct EqRel {
    slot_of: FxHashMap<AttrKey, u32>,
    keys: Vec<AttrKey>,
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Valid at roots only.
    constant: Vec<Option<ValueId>>,
    /// Valid at roots only.
    watchers: Vec<Vec<Watcher>>,
    /// Per *key* (not per class): was this attribute forced to exist by an
    /// enforcement (bind/merge endpoint)? Keys created only to register
    /// premise watchers stay *latent*: the population is free not to carry
    /// them, so they satisfy no existence requirement and are skipped by
    /// model extraction. (Latent keys are always singleton classes with no
    /// constant — any bind or merge on them materializes them.)
    materialized: Vec<bool>,
    version: u64,
}

impl EqRel {
    /// An empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of attribute keys tracked.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// True iff no key is tracked.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// A counter bumped on every state change; cheap dirty-checking for the
    /// `Y ⊆ EqH` test.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Ensure `[key]` exists; returns `(slot, created)`.
    pub fn ensure(&mut self, key: AttrKey) -> (u32, bool) {
        if let Some(&s) = self.slot_of.get(&key) {
            return (s, false);
        }
        let s = self.keys.len() as u32;
        self.slot_of.insert(key, s);
        self.keys.push(key);
        self.parent.push(s);
        self.rank.push(0);
        self.constant.push(None);
        self.watchers.push(Vec::new());
        self.materialized.push(false);
        self.version += 1;
        (s, true)
    }

    /// Mark `key`'s slot as materialized (attribute forced to exist).
    fn materialize(&mut self, slot: u32) {
        if !self.materialized[slot as usize] {
            self.materialized[slot as usize] = true;
            self.version += 1;
        }
    }

    /// Was this attribute key forced to exist by an enforcement?
    pub fn is_materialized(&self, key: AttrKey) -> bool {
        self.slot_of
            .get(&key)
            .is_some_and(|&s| self.materialized[s as usize])
    }

    fn find(&mut self, mut s: u32) -> u32 {
        // Path halving.
        while self.parent[s as usize] != s {
            let gp = self.parent[self.parent[s as usize] as usize];
            self.parent[s as usize] = gp;
            s = gp;
        }
        s
    }

    /// The root slot of `key`, if the class exists.
    fn root_of(&mut self, key: AttrKey) -> Option<u32> {
        let s = *self.slot_of.get(&key)?;
        Some(self.find(s))
    }

    /// Does the class `[key]` exist?
    pub fn has_class(&self, key: AttrKey) -> bool {
        self.slot_of.contains_key(&key)
    }

    /// The constant bound to `[key]`, if the class exists and is bound.
    pub fn const_of(&mut self, key: AttrKey) -> Option<ValueId> {
        let r = self.root_of(key)?;
        self.constant[r as usize]
    }

    /// The canonical class id of `key` (creating a latent singleton when
    /// the key is new): two keys report the same id iff they are in the
    /// same class. The id is an internal slot index, stable only until
    /// the next merge — meant for transient grouping (the chase's
    /// conflict partition keys on it), never for persistence.
    pub fn class_id(&mut self, key: AttrKey) -> u32 {
        let (s, _) = self.ensure(key);
        self.find(s)
    }

    /// Are the two keys in the same class? (`false` if either is missing.)
    pub fn same_class(&mut self, k1: AttrKey, k2: AttrKey) -> bool {
        match (self.root_of(k1), self.root_of(k2)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Can `key = value` be deduced? (class exists and is bound to exactly
    /// `value`)
    pub fn deduces_const(&mut self, key: AttrKey, value: ValueId) -> bool {
        self.const_of(key) == Some(value)
    }

    /// Can `k1 = k2` be deduced? Same class, or both bound to equal
    /// constants (equal values make the attributes equal in every
    /// population). The reflexive case `k = k` holds exactly when the
    /// attribute was forced to exist (latent classes satisfy nothing).
    pub fn deduces_eq(&mut self, k1: AttrKey, k2: AttrKey) -> bool {
        if k1 == k2 {
            return self.is_materialized(k1);
        }
        if self.same_class(k1, k2) {
            return true;
        }
        match (self.const_of(k1), self.const_of(k2)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Bind `value` to the class of `key` (Rule 1 of §IV-C). Creates the
    /// class if needed; conflicts if a distinct constant is present.
    pub fn bind(&mut self, key: AttrKey, value: ValueId) -> Result<Effect, Conflict> {
        let (slot, created) = self.ensure(key);
        self.materialize(slot);
        let root = self.find(slot);
        match &self.constant[root as usize] {
            None => {
                self.constant[root as usize] = Some(value);
                self.version += 1;
                let woken = std::mem::take(&mut self.watchers[root as usize]);
                Ok(Effect {
                    changed: true,
                    woken,
                })
            }
            Some(existing) if *existing == value => Ok(Effect {
                changed: created,
                woken: Vec::new(),
            }),
            Some(existing) => Err(Conflict {
                key,
                existing: *existing,
                incoming: value,
                gfd: None,
            }),
        }
    }

    /// Merge the classes of `k1` and `k2` (Rule 2 of §IV-C). Creates
    /// missing classes; conflicts if the classes carry distinct constants.
    pub fn merge(&mut self, k1: AttrKey, k2: AttrKey) -> Result<Effect, Conflict> {
        let (s1, c1) = self.ensure(k1);
        let (s2, c2) = self.ensure(k2);
        // A merge forces both endpoint attributes to exist; a latent →
        // materialized transition can satisfy reflexive premises, so it
        // wakes watchers and must be replayed (recorded) like any change.
        let lat1 = !self.materialized[s1 as usize];
        let lat2 = !self.materialized[s2 as usize];
        self.materialize(s1);
        self.materialize(s2);
        let r1 = self.find(s1);
        let r2 = self.find(s2);
        if r1 == r2 {
            let woken = if lat1 || lat2 {
                std::mem::take(&mut self.watchers[r1 as usize])
            } else {
                Vec::new()
            };
            return Ok(Effect {
                changed: c1 || c2 || lat1 || lat2,
                woken,
            });
        }
        let merged_const = match (self.constant[r1 as usize], self.constant[r2 as usize]) {
            (Some(a), Some(b)) if a != b => {
                return Err(Conflict {
                    key: k1,
                    existing: a,
                    incoming: b,
                    gfd: None,
                })
            }
            (Some(a), _) => Some(a),
            (_, Some(b)) => Some(b),
            (None, None) => None,
        };
        // Union by rank.
        let (root, child) = if self.rank[r1 as usize] >= self.rank[r2 as usize] {
            (r1, r2)
        } else {
            (r2, r1)
        };
        if self.rank[root as usize] == self.rank[child as usize] {
            self.rank[root as usize] += 1;
        }
        self.parent[child as usize] = root;
        self.constant[root as usize] = merged_const;
        self.constant[child as usize] = None;
        self.version += 1;
        // Wake every watcher of the union: the merge may satisfy `x.A=y.B`
        // premises or propagate a constant.
        let mut woken = std::mem::take(&mut self.watchers[root as usize]);
        woken.append(&mut self.watchers[child as usize]);
        Ok(Effect {
            changed: true,
            woken,
        })
    }

    /// Register a watcher on the class of `key` (creating the class if
    /// needed — attributes mentioned by premises exist without values,
    /// exactly the paper's "not yet instantiated" case).
    pub fn add_watcher(&mut self, key: AttrKey, watcher: Watcher) {
        let (slot, _) = self.ensure(key);
        let root = self.find(slot);
        self.watchers[root as usize].push(watcher);
    }

    /// Apply a (possibly remote) op. Idempotent; returns the effect.
    pub fn apply_op(&mut self, op: &EqOp) -> Result<Effect, Conflict> {
        match op {
            EqOp::Ensure(k) => {
                let (_, created) = self.ensure(*k);
                Ok(Effect {
                    changed: created,
                    woken: Vec::new(),
                })
            }
            EqOp::Bind(k, v) => self.bind(*k, *v),
            EqOp::Merge(k1, k2) => self.merge(*k1, *k2),
        }
    }

    /// Enumerate all classes as `(bound constant, member keys)`, members in
    /// insertion order. Used for model extraction.
    pub fn classes(&mut self) -> Vec<(Option<ValueId>, Vec<AttrKey>)> {
        let mut by_root: FxHashMap<u32, Vec<AttrKey>> = FxHashMap::default();
        for i in 0..self.keys.len() {
            let r = self.find(i as u32);
            by_root.entry(r).or_default().push(self.keys[i]);
        }
        let mut out: Vec<(Option<ValueId>, Vec<AttrKey>)> = by_root
            .into_iter()
            .map(|(r, members)| (self.constant[r as usize], members))
            .collect();
        // Deterministic order for reproducible models.
        out.sort_by_key(|(_, members)| members[0]);
        out
    }

    /// Like [`EqRel::classes`], but keeping only materialized keys (and
    /// dropping classes left empty). This is what model extraction
    /// populates: latent keys impose no existence requirement.
    pub fn materialized_classes(&mut self) -> Vec<(Option<ValueId>, Vec<AttrKey>)> {
        let mut classes = self.classes();
        classes.retain_mut(|(_, members)| {
            members.retain(|&k| self.is_materialized(k));
            !members.is_empty()
        });
        classes
    }

    /// Number of classes currently bound to a constant.
    pub fn bound_class_count(&mut self) -> usize {
        self.classes().iter().filter(|(c, _)| c.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::{AttrId, NodeId};

    fn k(n: usize, a: usize) -> AttrKey {
        (NodeId::new(n), AttrId::new(a))
    }

    #[test]
    fn ensure_is_idempotent() {
        let mut eq = EqRel::new();
        let (s1, c1) = eq.ensure(k(0, 0));
        let (s2, c2) = eq.ensure(k(0, 0));
        assert_eq!(s1, s2);
        assert!(c1);
        assert!(!c2);
        assert_eq!(eq.key_count(), 1);
        assert!(eq.has_class(k(0, 0)));
        assert!(!eq.has_class(k(1, 0)));
    }

    #[test]
    fn bind_sets_and_detects_conflicts() {
        let mut eq = EqRel::new();
        let e = eq.bind(k(0, 0), ValueId::of(1)).unwrap();
        assert!(e.changed);
        assert_eq!(eq.const_of(k(0, 0)), Some(ValueId::of(1)));
        // Same value: no change, no conflict.
        let e = eq.bind(k(0, 0), ValueId::of(1)).unwrap();
        assert!(!e.changed);
        // Distinct value: conflict.
        let err = eq.bind(k(0, 0), ValueId::of(2)).unwrap_err();
        assert_eq!(err.existing, ValueId::of(1));
        assert_eq!(err.incoming, ValueId::of(2));
    }

    #[test]
    fn merge_unions_and_propagates_constants() {
        let mut eq = EqRel::new();
        eq.bind(k(0, 0), ValueId::of(7)).unwrap();
        eq.merge(k(0, 0), k(1, 1)).unwrap();
        assert!(eq.same_class(k(0, 0), k(1, 1)));
        assert_eq!(eq.const_of(k(1, 1)), Some(ValueId::of(7)));
        // Merging in a third key through the second.
        eq.merge(k(1, 1), k(2, 2)).unwrap();
        assert_eq!(eq.const_of(k(2, 2)), Some(ValueId::of(7)));
        // Transitivity of same_class.
        assert!(eq.same_class(k(0, 0), k(2, 2)));
    }

    #[test]
    fn merge_conflict_on_distinct_constants() {
        let mut eq = EqRel::new();
        eq.bind(k(0, 0), ValueId::of(1)).unwrap();
        eq.bind(k(1, 0), ValueId::of(2)).unwrap();
        assert!(eq.merge(k(0, 0), k(1, 0)).is_err());
    }

    #[test]
    fn merge_same_class_is_noop() {
        let mut eq = EqRel::new();
        eq.merge(k(0, 0), k(1, 0)).unwrap();
        let e = eq.merge(k(1, 0), k(0, 0)).unwrap();
        assert!(!e.changed);
    }

    #[test]
    fn deduction_via_equal_constants() {
        let mut eq = EqRel::new();
        eq.bind(k(0, 0), ValueId::of(5)).unwrap();
        eq.bind(k(1, 0), ValueId::of(5)).unwrap();
        assert!(!eq.same_class(k(0, 0), k(1, 0)));
        // Equal constants ⇒ the attributes are equal in every population.
        assert!(eq.deduces_eq(k(0, 0), k(1, 0)));
        assert!(eq.deduces_const(k(0, 0), ValueId::of(5)));
        assert!(!eq.deduces_const(k(0, 0), ValueId::of(6)));
        assert!(!eq.deduces_eq(k(0, 0), k(9, 9)));
    }

    #[test]
    fn watchers_wake_on_bind_and_merge() {
        let mut eq = EqRel::new();
        eq.add_watcher(k(0, 0), (10, 0));
        eq.add_watcher(k(1, 0), (11, 0));
        // Bind wakes the watcher of that class only.
        let e = eq.bind(k(0, 0), ValueId::of(1)).unwrap();
        assert_eq!(e.woken, vec![(10, 0)]);
        // Merge wakes the watchers of both classes (drained).
        eq.add_watcher(k(0, 0), (12, 0));
        let e = eq.merge(k(0, 0), k(1, 0)).unwrap();
        let mut woken = e.woken;
        woken.sort();
        assert_eq!(woken, vec![(11, 0), (12, 0)]);
        // Drained: binding again wakes nothing.
        let e = eq.merge(k(0, 0), k(1, 0)).unwrap();
        assert!(e.woken.is_empty());
    }

    #[test]
    fn watchers_follow_merges() {
        let mut eq = EqRel::new();
        eq.add_watcher(k(0, 0), (1, 0));
        eq.merge(k(0, 0), k(1, 0)).unwrap();
        // Watcher was woken by the merge; re-register and bind through the
        // *other* key of the class.
        eq.add_watcher(k(0, 0), (1, 1));
        let e = eq.bind(k(1, 0), ValueId::of(3)).unwrap();
        assert_eq!(e.woken, vec![(1, 1)]);
    }

    #[test]
    fn op_replay_reproduces_state() {
        let mut a = EqRel::new();
        let ops = vec![
            EqOp::Ensure(k(0, 0)),
            EqOp::Bind(k(1, 1), ValueId::of(9)),
            EqOp::Merge(k(1, 1), k(2, 2)),
            EqOp::Merge(k(0, 0), k(3, 3)),
        ];
        for op in &ops {
            a.apply_op(op).unwrap();
        }
        // Replay on a fresh copy, in a different order (ops commute when
        // conflict-free).
        let mut b = EqRel::new();
        for op in ops.iter().rev() {
            b.apply_op(op).unwrap();
        }
        assert_eq!(b.const_of(k(2, 2)), Some(ValueId::of(9)));
        assert!(b.same_class(k(0, 0), k(3, 3)));
        assert_eq!(a.key_count(), b.key_count());
        // Re-applying is idempotent.
        for op in &ops {
            let e = b.apply_op(op).unwrap();
            assert!(!e.changed);
        }
    }

    #[test]
    fn classes_enumeration_is_deterministic() {
        let mut eq = EqRel::new();
        eq.bind(k(2, 0), ValueId::of(1)).unwrap();
        eq.merge(k(0, 0), k(1, 0)).unwrap();
        let classes = eq.classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].1.len(), 2); // class of (0,0),(1,0)
        assert_eq!(classes[0].0, None);
        assert_eq!(classes[1].0, Some(ValueId::of(1)));
        assert_eq!(eq.bound_class_count(), 1);
    }

    #[test]
    fn version_bumps_on_change_only() {
        let mut eq = EqRel::new();
        let v0 = eq.version();
        eq.bind(k(0, 0), ValueId::of(1)).unwrap();
        let v1 = eq.version();
        assert!(v1 > v0);
        eq.bind(k(0, 0), ValueId::of(1)).unwrap();
        assert_eq!(eq.version(), v1);
    }

    #[test]
    fn long_union_chains_stay_correct() {
        let mut eq = EqRel::new();
        for i in 0..100 {
            eq.merge(k(i, 0), k(i + 1, 0)).unwrap();
        }
        assert!(eq.same_class(k(0, 0), k(100, 0)));
        eq.bind(k(50, 0), ValueId::of(42)).unwrap();
        assert_eq!(eq.const_of(k(0, 0)), Some(ValueId::of(42)));
        assert_eq!(eq.const_of(k(100, 0)), Some(ValueId::of(42)));
        let err = eq.bind(k(99, 0), ValueId::of(43)).unwrap_err();
        assert_eq!(err.existing, ValueId::of(42));
    }
}
