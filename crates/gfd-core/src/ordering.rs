//! Dependency-graph ordering of GFDs (§V-B, "dependency graph").
//!
//! GFD `ϕ1` should be processed before `ϕ2` when an attribute of `Y1`
//! occurs in `X2`: enforcing ϕ1 may instantiate exactly what ϕ2's premise
//! waits on, so this order minimizes pending registrations and re-checks.
//! The sequential algorithms order whole GFDs; the parallel runtime refines
//! the same relation to pivot-level work units (`gfd-parallel`).

use crate::sigma::GfdSet;
use gfd_graph::{AttrId, GfdId};
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BinaryHeap;

/// Min-heap of `((priority key), node index)` pairs used by the Kahn
/// frontier (BinaryHeap pops max, so entries are `Reverse`-wrapped).
type MinHeap = BinaryHeap<std::cmp::Reverse<((bool, bool, usize), usize)>>;

/// Compute a processing order for Σ:
///
/// 1. GFDs with empty premises come first (they seed the relation);
/// 2. the rest follow a topological order of the attribute dependency
///    graph, cycles broken by input position;
/// 3. `boosted[i]` (optional) promotes GFDs to the front of their tier —
///    used by implication checking for premises subsumed by `EqX`.
pub fn order_gfds(sigma: &GfdSet, boosted: Option<&[bool]>) -> Vec<GfdId> {
    let n = sigma.len();
    if n == 0 {
        return Vec::new();
    }

    // attr -> GFDs whose premise mentions it.
    let mut consumers: FxHashMap<AttrId, Vec<usize>> = FxHashMap::default();
    for (id, gfd) in sigma.iter() {
        let mut seen = FxHashSet::default();
        for a in gfd.premise_attrs() {
            if seen.insert(a) {
                consumers.entry(a).or_default().push(id.index());
            }
        }
    }

    // Ubiquity cap: an attribute consumed by a large fraction of Σ makes
    // "everything depend on everything" — the edges cost O(|Σ|²) to build
    // and order nothing useful (cycle-breaking degenerates to input order
    // anyway). Skip such attributes; ordering stays a heuristic and
    // correctness is Church–Rosser-independent of it.
    let cap = 32.max(n / 8);

    // successors(i) = GFDs consuming an attribute produced by i.
    let mut in_deg = vec![0u32; n];
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, gfd) in sigma.iter() {
        let i = id.index();
        let mut out: FxHashSet<usize> = FxHashSet::default();
        for a in gfd.consequence_attrs() {
            if let Some(cs) = consumers.get(&a) {
                if cs.len() > cap {
                    continue;
                }
                for &j in cs {
                    if j != i {
                        out.insert(j);
                    }
                }
            }
        }
        for j in out {
            successors[i].push(j);
            in_deg[j] += 1;
        }
    }

    // Priority: (boosted first, empty premise first, input order). Use a
    // max-heap of Reverse-like encoded keys.
    let key = |i: usize| -> (bool, bool, usize) {
        let b = boosted.is_some_and(|b| b[i]);
        let empty = sigma.as_slice()[i].has_empty_premise();
        // BinaryHeap pops max; invert so that boosted/empty/low-index pop
        // first.
        (!b, !empty, i)
    };

    let mut heap: MinHeap = BinaryHeap::new();
    for (i, &d) in in_deg.iter().enumerate() {
        if d == 0 {
            heap.push(std::cmp::Reverse((key(i), i)));
        }
    }

    let mut order = Vec::with_capacity(n);
    let mut emitted = vec![false; n];
    // Cycle breaking: force the next unemitted node from this pre-sorted
    // list when the frontier empties (amortized O(n) across the run).
    let mut fallback: Vec<usize> = (0..n).collect();
    fallback.sort_by_key(|&i| key(i));
    let mut fb_cursor = 0usize;
    while order.len() < n {
        let next = match heap.pop() {
            Some(std::cmp::Reverse((_, i))) if !emitted[i] => i,
            Some(_) => continue,
            None => {
                while emitted[fallback[fb_cursor]] {
                    fb_cursor += 1;
                }
                fallback[fb_cursor]
            }
        };
        emitted[next] = true;
        order.push(GfdId::new(next));
        for &j in &successors[next] {
            if !emitted[j] {
                in_deg[j] = in_deg[j].saturating_sub(1);
                if in_deg[j] == 0 {
                    heap.push(std::cmp::Reverse((key(j), j)));
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gfd::Gfd;
    use crate::literal::Literal;
    use gfd_graph::{Pattern, Vocab};

    fn gfd_with(
        vocab: &mut Vocab,
        name: &str,
        premise_attr: Option<&str>,
        consequence_attr: &str,
    ) -> Gfd {
        let mut p = Pattern::new();
        let x = p.add_node(vocab.label("t"), "x");
        let premise = premise_attr
            .map(|a| vec![Literal::eq_const(x, vocab.attr(a), 1i64)])
            .unwrap_or_default();
        let consequence = vec![Literal::eq_const(x, vocab.attr(consequence_attr), 1i64)];
        Gfd::new(name, p, premise, consequence)
    }

    #[test]
    fn empty_premises_come_first() {
        let mut vocab = Vocab::new();
        let sigma = GfdSet::from_vec(vec![
            gfd_with(&mut vocab, "needs_a", Some("a"), "b"),
            gfd_with(&mut vocab, "seed", None, "a"),
        ]);
        let order = order_gfds(&sigma, None);
        assert_eq!(order, vec![GfdId::new(1), GfdId::new(0)]);
    }

    #[test]
    fn chain_is_topologically_sorted() {
        let mut vocab = Vocab::new();
        // c<-b, b<-a, seed a. Input order is reversed on purpose.
        let sigma = GfdSet::from_vec(vec![
            gfd_with(&mut vocab, "b_to_c", Some("b"), "c"),
            gfd_with(&mut vocab, "a_to_b", Some("a"), "b"),
            gfd_with(&mut vocab, "seed_a", None, "a"),
        ]);
        let order = order_gfds(&sigma, None);
        assert_eq!(
            order,
            vec![GfdId::new(2), GfdId::new(1), GfdId::new(0)],
            "seed, then a→b, then b→c"
        );
    }

    #[test]
    fn cycles_do_not_hang_and_emit_everything() {
        let mut vocab = Vocab::new();
        let sigma = GfdSet::from_vec(vec![
            gfd_with(&mut vocab, "a_to_b", Some("a"), "b"),
            gfd_with(&mut vocab, "b_to_a", Some("b"), "a"),
        ]);
        let order = order_gfds(&sigma, None);
        assert_eq!(order.len(), 2);
        let mut seen: Vec<usize> = order.iter().map(|g| g.index()).collect();
        seen.sort();
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn boost_promotes_within_tier() {
        let mut vocab = Vocab::new();
        let sigma = GfdSet::from_vec(vec![
            gfd_with(&mut vocab, "x_to_m", Some("x"), "m"),
            gfd_with(&mut vocab, "y_to_n", Some("y"), "n"),
        ]);
        let boosted = vec![false, true];
        let order = order_gfds(&sigma, Some(&boosted));
        assert_eq!(order[0], GfdId::new(1));
    }

    #[test]
    fn empty_sigma() {
        let sigma = GfdSet::new();
        assert!(order_gfds(&sigma, None).is_empty());
    }
}
