//! Work units and their dependency-graph ordering (§V-B).
//!
//! A work unit `(Q[z], ϕ)` asks one worker to find and enforce every match
//! of ϕ's pattern whose pivot variable maps to canonical node `z`. Units
//! are the grain of data-partitioned parallelism; splitting a straggler
//! produces *prefix units* that resume deeper search-tree branches.
//!
//! The coordinator orders units topologically along a dependency graph:
//! unit `w1` precedes `w2` when an attribute of `Y1` occurs in `X2` *and*
//! the pivots are within `dQ1` hops (close enough to interact) — so
//! producers run before consumers and pending re-checks are minimized.

use crate::canonical::CanonicalGraph;
use crate::sigma::GfdSet;
use gfd_graph::{neighborhood, GfdId, NodeId, VarId};
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BinaryHeap;

/// Min-heap of `((priority key), unit index)` pairs used by the Kahn
/// frontier (BinaryHeap pops max, so entries are `Reverse`-wrapped).
type MinHeap = BinaryHeap<std::cmp::Reverse<((bool, bool, usize), usize)>>;

/// A unit of work: match GFD `gfd` with plan positions `0..prefix.len()`
/// pre-assigned (`prefix\[0\]` is the pivot node `z`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkUnit {
    /// The GFD to enforce.
    pub gfd: GfdId,
    /// Fixed assignments for the leading plan positions.
    pub prefix: Vec<NodeId>,
    /// Position in the topological order (0 = run first). Split units
    /// inherit their parent's priority.
    pub priority: u32,
}

impl WorkUnit {
    /// The pivot node (`z` of the paper's `(Q[z], ϕ)`).
    pub fn pivot(&self) -> NodeId {
        self.prefix[0]
    }
}

/// Generate the initial unit list: one unit per (GFD, feasible pivot
/// candidate) pair.
pub fn generate_units(
    sigma: &GfdSet,
    canon: &CanonicalGraph,
    pivots: &[VarId],
    prune_components: bool,
) -> Vec<WorkUnit> {
    let mut units = Vec::new();
    for (id, gfd) in sigma.iter() {
        let candidates = if prune_components {
            canon.pivot_candidates(&gfd.pattern, pivots[id.index()])
        } else {
            canon
                .index
                .candidates(gfd.pattern.label(pivots[id.index()]))
                .to_vec()
        };
        for z in candidates {
            units.push(WorkUnit {
                gfd: id,
                prefix: vec![z],
                priority: 0,
            });
        }
    }
    units
}

/// Assign priorities to `units` from the dependency-graph topological
/// order and sort them accordingly.
///
/// `boosted` optionally marks GFDs to front-load (implication's
/// X-subsumption rule); empty-premise GFDs always get the highest priority
/// tier, as in the paper.
pub fn order_units(
    units: &mut [WorkUnit],
    sigma: &GfdSet,
    canon: &CanonicalGraph,
    pivots: &[VarId],
    boosted: Option<&[bool]>,
) {
    let n = units.len();
    if n == 0 {
        return;
    }

    // attr -> GFDs whose premise mentions it.
    let mut consumers: FxHashMap<gfd_graph::AttrId, Vec<usize>> = FxHashMap::default();
    for (id, gfd) in sigma.iter() {
        let mut seen = FxHashSet::default();
        for a in gfd.premise_attrs() {
            if seen.insert(a) {
                consumers.entry(a).or_default().push(id.index());
            }
        }
    }
    // Per GFD: the GFDs consuming what it produces, and the pattern radius
    // at its pivot. The ubiquity cap mirrors `gfd_core::ordering`: an
    // attribute consumed by a large fraction of Σ orders nothing useful
    // and would make this step O(|Σ|²).
    let cap = 32.max(sigma.len() / 8);
    let mut consumer_gfds: Vec<Vec<usize>> = Vec::with_capacity(sigma.len());
    let mut radius: Vec<u32> = Vec::with_capacity(sigma.len());
    for (id, gfd) in sigma.iter() {
        let mut out = FxHashSet::default();
        for a in gfd.consequence_attrs() {
            if let Some(cs) = consumers.get(&a) {
                if cs.len() <= cap {
                    out.extend(cs.iter().copied());
                }
            }
        }
        let mut v: Vec<usize> = out.into_iter().collect();
        v.sort_unstable();
        consumer_gfds.push(v);
        radius.push(gfd.pattern.radius_at(pivots[id.index()]));
    }

    // Units pivoted at each canonical node (sparse: a node hosts few
    // units because the component filter rejects most patterns).
    let mut node_units: Vec<Vec<u32>> = vec![Vec::new(); canon.graph.node_count()];
    for (i, u) in units.iter().enumerate() {
        node_units[u.pivot().index()].push(i as u32);
    }

    // Edges: w1 -> w2 when gfd2 consumes gfd1's output and pivot2 is within
    // dQ1 hops of pivot1. Balls are small: canonical components are
    // pattern-sized. Iterating units-at-node (few) and testing consumer
    // membership by binary search keeps this near-linear in the unit count.
    let mut successors: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut in_deg = vec![0u32; n];
    for (i, u) in units.iter().enumerate() {
        let gi = u.gfd.index();
        if consumer_gfds[gi].is_empty() {
            continue;
        }
        let ball = neighborhood::ball(&canon.graph, u.pivot(), radius[gi]);
        for z in ball.iter() {
            for &j in &node_units[z.index()] {
                let j = j as usize;
                if j != i
                    && consumer_gfds[gi]
                        .binary_search(&units[j].gfd.index())
                        .is_ok()
                {
                    successors[i].push(j as u32);
                    in_deg[j] += 1;
                }
            }
        }
    }

    // Kahn with priority tiers; cycles broken by forcing the best
    // remaining node.
    let key = |i: usize| -> (bool, bool, usize) {
        let g = units[i].gfd.index();
        let b = boosted.is_some_and(|b| b[g]);
        let empty = sigma.as_slice()[g].has_empty_premise();
        (!b, !empty, i)
    };
    let mut heap: MinHeap = BinaryHeap::new();
    for (i, &d) in in_deg.iter().enumerate() {
        if d == 0 {
            heap.push(std::cmp::Reverse((key(i), i)));
        }
    }
    let mut emitted = vec![false; n];
    // Cycle breaking: when the frontier empties, force the next unemitted
    // node from this pre-sorted list (amortized O(n) across the run).
    let mut fallback: Vec<usize> = (0..n).collect();
    fallback.sort_by_key(|&i| key(i));
    let mut fb_cursor = 0usize;
    let mut rank = 0u32;
    let mut priorities = vec![0u32; n];
    while rank < n as u32 {
        let next = match heap.pop() {
            Some(std::cmp::Reverse((_, i))) if !emitted[i] => i,
            Some(_) => continue,
            None => {
                while emitted[fallback[fb_cursor]] {
                    fb_cursor += 1;
                }
                fallback[fb_cursor]
            }
        };
        emitted[next] = true;
        priorities[next] = rank;
        rank += 1;
        for &j in &successors[next] {
            let j = j as usize;
            if !emitted[j] {
                in_deg[j] = in_deg[j].saturating_sub(1);
                if in_deg[j] == 0 {
                    heap.push(std::cmp::Reverse((key(j), j)));
                }
            }
        }
    }
    // Final order: boosted units jump the whole queue (the paper's
    // implication rule gives X-subsumed units the highest priority
    // outright), then topological rank.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| {
        let b = boosted.is_some_and(|b| b[units[i].gfd.index()]);
        (!b, priorities[i])
    });
    let mut final_priority = vec![0u32; n];
    for (rank, &i) in order.iter().enumerate() {
        final_priority[i] = rank as u32;
    }
    for (i, u) in units.iter_mut().enumerate() {
        u.priority = final_priority[i];
    }
    units.sort_by_key(|u| u.priority);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::{build_plans, CanonicalGraph};
    use crate::gfd::Gfd;
    use crate::literal::Literal;
    use gfd_graph::{Pattern, Vocab};

    /// Σ resembling the paper's Example 5/7: a seed GFD (∅ premise) and a
    /// consumer GFD over the same pattern shape.
    fn example_sigma(vocab: &mut Vocab) -> GfdSet {
        let t = vocab.label("t");
        let e = vocab.label("e");
        let a = vocab.attr("A");
        let b = vocab.attr("B");
        let mk_pattern = |vocab: &mut Vocab| {
            let mut p = Pattern::new();
            let x = p.add_node(vocab.label("t"), "x");
            let y = p.add_node(vocab.label("t"), "y");
            p.add_edge(x, vocab.label("e"), y);
            p
        };
        let _ = (t, e);
        let x = VarId::new(0);
        let y = VarId::new(1);
        let p1 = mk_pattern(vocab);
        let p2 = mk_pattern(vocab);
        GfdSet::from_vec(vec![
            // Consumer first on purpose: ordering must move its units after
            // the seed's.
            Gfd::new(
                "consumer",
                p2,
                vec![Literal::eq_const(x, a, 0i64)],
                vec![Literal::eq_const(y, b, 0i64)],
            ),
            Gfd::new("seed", p1, vec![], vec![Literal::eq_const(x, a, 0i64)]),
        ])
    }

    #[test]
    fn units_cover_all_feasible_pivots() {
        let mut vocab = Vocab::new();
        let sigma = example_sigma(&mut vocab);
        let (canon, _) = CanonicalGraph::for_sigma(&sigma);
        let (pivots, _) = build_plans(&sigma, &canon.index);
        let units = generate_units(&sigma, &canon, &pivots, true);
        // 2 GFDs × (their own 2-node component + the other pattern's
        // identical component) = 2 × 4 pivots... pivot var has label t and
        // both components host the pattern: 4 candidates each.
        assert_eq!(units.len(), 8);
        for u in &units {
            assert_eq!(u.prefix.len(), 1);
        }
    }

    #[test]
    fn ordering_puts_empty_premise_units_first() {
        let mut vocab = Vocab::new();
        let sigma = example_sigma(&mut vocab);
        let (canon, _) = CanonicalGraph::for_sigma(&sigma);
        let (pivots, _) = build_plans(&sigma, &canon.index);
        let mut units = generate_units(&sigma, &canon, &pivots, true);
        order_units(&mut units, &sigma, &canon, &pivots, None);
        // The seed GFD (index 1) has the empty premise: all its units come
        // first.
        let first_half: Vec<usize> = units[..4].iter().map(|u| u.gfd.index()).collect();
        assert_eq!(first_half, vec![1, 1, 1, 1], "{units:?}");
        // Priorities are a permutation of 0..n.
        let mut ps: Vec<u32> = units.iter().map(|u| u.priority).collect();
        ps.sort_unstable();
        assert_eq!(ps, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn boost_overrides_tiering() {
        let mut vocab = Vocab::new();
        let sigma = example_sigma(&mut vocab);
        let (canon, _) = CanonicalGraph::for_sigma(&sigma);
        let (pivots, _) = build_plans(&sigma, &canon.index);
        let mut units = generate_units(&sigma, &canon, &pivots, true);
        // Boost the consumer (index 0).
        order_units(&mut units, &sigma, &canon, &pivots, Some(&[true, false]));
        assert_eq!(units[0].gfd.index(), 0);
    }

    #[test]
    fn empty_sigma_yields_no_units() {
        let sigma = GfdSet::new();
        let (canon, _) = CanonicalGraph::for_sigma(&sigma);
        let units = generate_units(&sigma, &canon, &[], true);
        assert!(units.is_empty());
    }
}
