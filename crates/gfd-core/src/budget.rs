//! The unified resource budget every reasoning driver honors
//! (DESIGN.md §11.2).
//!
//! Before this module each driver grew its own ad-hoc limit — the GED
//! search counted branches, the generating chase counted fresh nodes,
//! `SeqSat`/`SeqImp`/detection had nothing. [`Budget`] is the one struct
//! threaded through all of them: a wall-clock deadline and a max-units
//! cap enforced cooperatively by the scheduler at unit boundaries
//! (`gfd_runtime::SchedOptions`), plus the driver-specific branch and
//! fresh-node caps, interpreted by the drivers that have those notions.
//!
//! Exhausting any limit **degrades, never panics**: a run that cannot
//! finish reports [`Interrupt`] through its driver's unknown/partial arm
//! (`SatOutcome::Unknown`, `ImpOutcome::Unknown`, a `None` GED outcome,
//! a truncated detection report). A *definite* answer found before the
//! limit tripped — a conflict, a witness, a counterexample — is still
//! returned: budgets bound work, not soundness.

use gfd_runtime::{AbortInfo, Exhaustion, RunOutcome, SchedOptions};
use std::time::{Duration, Instant};

/// Resource limits for one reasoning or detection run. The default is
/// unlimited on every axis.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Budget {
    /// Wall-clock instant after which the run degrades to unknown/partial.
    pub deadline: Option<Instant>,
    /// Maximum scheduler work units to execute.
    pub max_units: Option<u64>,
    /// Maximum search branches (branch-and-bound drivers: the GED
    /// small-model search).
    pub max_branches: Option<u64>,
    /// Maximum fresh nodes materialized (generating chase).
    pub max_fresh_nodes: Option<u64>,
}

impl Budget {
    /// No limits on any axis.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// True when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        *self == Self::default()
    }

    /// Set the deadline to `ms` milliseconds from now.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Instant::now() + Duration::from_millis(ms));
        self
    }

    /// Set an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Cap the scheduler work units executed.
    pub fn with_max_units(mut self, max: u64) -> Self {
        self.max_units = Some(max);
        self
    }

    /// Cap the branches explored by branch-and-bound drivers.
    pub fn with_max_branches(mut self, max: u64) -> Self {
        self.max_branches = Some(max);
        self
    }

    /// Cap the fresh nodes the generating chase may materialize.
    pub fn with_max_fresh_nodes(mut self, max: u64) -> Self {
        self.max_fresh_nodes = Some(max);
        self
    }

    /// Has the wall-clock deadline passed? (The cooperative check drivers
    /// call at their own phase boundaries — rounds, batches — where the
    /// scheduler's per-unit check is out of reach.)
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The scheduler-level slice of this budget. Tracing defaults to off;
    /// drivers overwrite `trace` from their own config before running.
    pub fn sched_options(&self) -> SchedOptions {
        SchedOptions {
            deadline: self.deadline,
            max_units: self.max_units,
            ..Default::default()
        }
    }

    /// Milliseconds of deadline slack remaining right now (negative once
    /// the deadline has been overshot); `None` without a deadline.
    ///
    /// An overshoot always reports a strictly negative value: a run that
    /// finishes within a millisecond past the cut must not round to `0`
    /// and masquerade as having met its deadline exactly.
    pub fn deadline_slack_ms(&self) -> Option<i64> {
        let deadline = self.deadline?;
        let now = Instant::now();
        Some(if now <= deadline {
            (deadline - now).as_millis() as i64
        } else {
            -((now - deadline).as_millis() as i64).max(1)
        })
    }
}

/// Why a run ended without a definite answer — the payload of every
/// driver's unknown/degraded arm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The wall-clock deadline expired.
    Deadline,
    /// The scheduler unit budget was consumed.
    Units,
    /// The branch budget was consumed (branch-and-bound drivers).
    Branches,
    /// The fresh-node budget was consumed (generating chase).
    FreshNodes,
    /// A unit panicked and the run was cancelled; the string is the
    /// structured abort description ([`AbortInfo`]).
    Aborted(String),
}

impl Interrupt {
    /// Map a degraded scheduler outcome to its interrupt; `None` for the
    /// outcomes that finished normally (`Completed`, `Stopped`).
    pub fn from_outcome(outcome: &RunOutcome) -> Option<Interrupt> {
        match outcome {
            RunOutcome::Completed | RunOutcome::Stopped => None,
            RunOutcome::BudgetExceeded(Exhaustion::Deadline) => Some(Interrupt::Deadline),
            RunOutcome::BudgetExceeded(Exhaustion::Units) => Some(Interrupt::Units),
            RunOutcome::Aborted(info) => Some(Interrupt::Aborted(info.to_string())),
        }
    }

    /// The abort description, when this interrupt is a panic.
    pub fn abort_info(info: &AbortInfo) -> Interrupt {
        Interrupt::Aborted(info.to_string())
    }
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Deadline => write!(f, "deadline expired"),
            Interrupt::Units => write!(f, "unit budget exhausted"),
            Interrupt::Branches => write!(f, "branch budget exhausted"),
            Interrupt::FreshNodes => write!(f, "fresh-node budget exhausted"),
            Interrupt::Aborted(info) => write!(f, "run aborted: {info}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.expired());
        assert!(b.deadline_slack_ms().is_none());
        let opts = b.sched_options();
        assert!(opts.deadline.is_none());
        assert!(opts.max_units.is_none());
    }

    #[test]
    fn builders_set_each_axis() {
        let b = Budget::unlimited()
            .with_deadline_ms(10_000)
            .with_max_units(5)
            .with_max_branches(7)
            .with_max_fresh_nodes(9);
        assert!(!b.is_unlimited());
        assert_eq!(b.max_units, Some(5));
        assert_eq!(b.max_branches, Some(7));
        assert_eq!(b.max_fresh_nodes, Some(9));
        assert!(!b.expired());
        let slack = b.deadline_slack_ms().unwrap();
        assert!(slack > 8_000 && slack <= 10_000, "{slack}");
    }

    #[test]
    fn past_deadline_is_expired_with_negative_slack() {
        let b = Budget::unlimited().with_deadline(Instant::now() - Duration::from_millis(50));
        assert!(b.expired());
        assert!(b.deadline_slack_ms().unwrap() <= -50);
    }

    #[test]
    fn overshoot_at_the_budget_cut_stays_strictly_negative() {
        // A run that finishes a hair past its deadline (sub-millisecond
        // overshoot) must not round to 0ms slack: the sign is the signal
        // that the deadline was missed.
        let b = Budget::unlimited().with_deadline(Instant::now() - Duration::from_micros(10));
        let slack = b.deadline_slack_ms().unwrap();
        assert!(slack <= -1, "overshoot must be strictly negative: {slack}");
    }

    #[test]
    fn interrupts_from_scheduler_outcomes() {
        use gfd_runtime::{AbortInfo, Exhaustion, RunOutcome};
        assert_eq!(Interrupt::from_outcome(&RunOutcome::Completed), None);
        assert_eq!(Interrupt::from_outcome(&RunOutcome::Stopped), None);
        assert_eq!(
            Interrupt::from_outcome(&RunOutcome::BudgetExceeded(Exhaustion::Deadline)),
            Some(Interrupt::Deadline)
        );
        let aborted = RunOutcome::Aborted(AbortInfo {
            worker: 1,
            unit: "u".into(),
            payload: "boom".into(),
        });
        let i = Interrupt::from_outcome(&aborted).unwrap();
        assert!(i.to_string().contains("boom"), "{i}");
    }
}
