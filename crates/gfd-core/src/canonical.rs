//! Canonical graphs: the small models the reasoning algorithms inspect.
//!
//! * For satisfiability (§IV-B): `GΣ` is the disjoint union of all patterns
//!   of Σ, wildcards kept as a reserved label. By Theorem 1, Σ is
//!   satisfiable iff some Σ-bounded attribute population of `GΣ` models Σ.
//! * For implication (§VI-A): `G^X_Q` is the pattern of ϕ materialized as a
//!   graph, with the premise `X` pre-loaded into the equivalence relation
//!   `EqX` (closed under transitivity by union-find construction). By
//!   Corollary 4, `Σ |= ϕ` iff some partial enforcement of Σ on `G^X_Q`
//!   conflicts or deduces `Y`.

use crate::eq::EqRel;
use crate::error::Conflict;
use crate::gfd::Gfd;
use crate::literal::Operand;
use crate::sigma::GfdSet;
use gfd_graph::{Graph, LabelId, LabelIndex, NodeId, Pattern, VarId};
use gfd_match::MatchPlan;

/// Per-component label profile used to prune impossible (pattern,
/// component) pairs before any matching runs.
#[derive(Clone, Debug)]
struct CompProfile {
    /// Sorted concrete node labels present.
    node_labels: Vec<LabelId>,
    /// Sorted concrete edge labels present.
    edge_labels: Vec<LabelId>,
    /// Does the component contain any edge at all?
    has_edge: bool,
}

/// A canonical graph with its label index, connected components and
/// per-component pruning profiles.
#[derive(Clone, Debug)]
pub struct CanonicalGraph {
    /// The underlying graph (`GΣ` or `G^X_Q`).
    pub graph: Graph,
    /// Label index over the graph.
    pub index: LabelIndex,
    comp: Vec<u32>,
    profiles: Vec<CompProfile>,
}

impl CanonicalGraph {
    /// Wrap a prepared graph, computing the index and profiles.
    pub fn from_graph(graph: Graph) -> Self {
        let index = LabelIndex::build(&graph);
        let (comp, comp_count) = graph.components();
        let mut profiles = vec![
            CompProfile {
                node_labels: Vec::new(),
                edge_labels: Vec::new(),
                has_edge: false,
            };
            comp_count
        ];
        for v in graph.nodes() {
            let c = comp[v.index()] as usize;
            let l = graph.label(v);
            if !l.is_wildcard() {
                profiles[c].node_labels.push(l);
            }
        }
        for (src, label, _) in graph.edges() {
            let c = comp[src.index()] as usize;
            profiles[c].has_edge = true;
            if !label.is_wildcard() {
                profiles[c].edge_labels.push(label);
            }
        }
        for p in &mut profiles {
            p.node_labels.sort();
            p.node_labels.dedup();
            p.edge_labels.sort();
            p.edge_labels.dedup();
        }
        CanonicalGraph {
            graph,
            index,
            comp,
            profiles,
        }
    }

    /// Build `GΣ`: the disjoint union of every pattern in Σ. Returns the
    /// canonical graph and, per GFD, the node each pattern variable became.
    pub fn for_sigma(sigma: &GfdSet) -> (Self, Vec<Vec<NodeId>>) {
        let mut graph = Graph::new();
        let mut node_of = Vec::with_capacity(sigma.len());
        for (_, gfd) in sigma.iter() {
            let offset = graph.append_disjoint(&gfd.pattern.to_graph());
            node_of.push(
                gfd.pattern
                    .vars()
                    .map(|v| NodeId::new(v.index() + offset))
                    .collect(),
            );
        }
        (Self::from_graph(graph), node_of)
    }

    /// Build `G^X_Q` for ϕ: the pattern as a graph (variable `i` is node
    /// `i`) plus `EqX`. An `Err` means `X` itself is inconsistent, in which
    /// case ϕ is trivially satisfied by every graph.
    pub fn for_phi(phi: &Gfd) -> Result<(Self, EqRel), Conflict> {
        Self::for_premise(&phi.pattern, &phi.premise)
    }

    /// [`CanonicalGraph::for_phi`] over a bare premise — shared with the
    /// generalized dependency layer, whose candidate ϕ may have a
    /// generating consequence (the premise side is identical).
    pub fn for_premise(
        pattern: &Pattern,
        premise: &[crate::literal::Literal],
    ) -> Result<(Self, EqRel), Conflict> {
        let graph = pattern.to_graph();
        let mut eq = EqRel::new();
        for lit in premise {
            let k1 = (NodeId::new(lit.var.index()), lit.attr);
            match &lit.rhs {
                Operand::Const(c) => {
                    eq.bind(k1, *c)?;
                }
                Operand::Attr(v2, a2) => {
                    let k2 = (NodeId::new(v2.index()), *a2);
                    eq.merge(k1, k2)?;
                }
            }
        }
        Ok((Self::from_graph(graph), eq))
    }

    /// The component of a node.
    pub fn component_of(&self, node: NodeId) -> u32 {
        self.comp[node.index()]
    }

    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        self.profiles.len()
    }

    /// Cheap necessary condition: can `pattern` possibly match with its
    /// pivot inside component `comp`? (Label-subset test; homomorphism is
    /// non-injective, so counts don't matter, presence does.)
    pub fn component_may_host(&self, pattern: &Pattern, comp: u32) -> bool {
        let profile = &self.profiles[comp as usize];
        let (need_nodes, need_edges) = pattern.concrete_labels();
        if !need_nodes
            .iter()
            .all(|l| profile.node_labels.binary_search(l).is_ok())
        {
            return false;
        }
        if !need_edges
            .iter()
            .all(|l| profile.edge_labels.binary_search(l).is_ok())
        {
            return false;
        }
        // Wildcard-labelled pattern edges need at least one edge.
        if pattern.edges().iter().any(|e| e.label.is_wildcard()) && !profile.has_edge {
            return false;
        }
        true
    }

    /// Pivot candidates for a pattern whose plan starts at `pivot_var`:
    /// label-compatible nodes whose component passes the host filter.
    ///
    /// Note: for disconnected patterns only the pivot's component is
    /// filtered — the remaining components of the pattern roam the whole
    /// canonical graph during the search, which keeps the unit count linear
    /// (a deliberate deviation from the paper's per-component pivot tuples,
    /// documented in DESIGN.md).
    pub fn pivot_candidates(&self, pattern: &Pattern, pivot_var: VarId) -> Vec<NodeId> {
        let label = pattern.label(pivot_var);
        let connected = pattern.is_connected();
        self.index
            .candidates(label)
            .iter()
            .copied()
            .filter(|&z| {
                if connected {
                    self.component_may_host(pattern, self.component_of(z))
                } else {
                    true
                }
            })
            .collect()
    }
}

/// Choose the pivot variable of a pattern: the most selective label under
/// `index`, ties broken towards higher degree (paper §V-B: "ideally we pick
/// a pivot that is selective; nonetheless any node can serve"). Works
/// against any `MatchIndex` so the streaming pipeline can re-pivot on
/// delta-adjusted frequencies.
pub fn choose_pivot<I: gfd_graph::MatchIndex>(pattern: &Pattern, index: &I) -> VarId {
    pattern
        .vars()
        .min_by_key(|&v| {
            (
                index.frequency(pattern.label(v)),
                usize::MAX - pattern.degree(v),
            )
        })
        .expect("patterns are non-empty")
}

/// Build per-GFD pivots and pivoted match plans against a canonical graph.
pub fn build_plans(sigma: &GfdSet, index: &LabelIndex) -> (Vec<VarId>, Vec<MatchPlan>) {
    let mut pivots = Vec::with_capacity(sigma.len());
    let mut plans = Vec::with_capacity(sigma.len());
    for (_, gfd) in sigma.iter() {
        let pivot = choose_pivot(&gfd.pattern, index);
        pivots.push(pivot);
        plans.push(MatchPlan::build(&gfd.pattern, Some(pivot), Some(index)));
    }
    (pivots, plans)
}

/// Like [`build_plans`], but skipping plan construction for GFDs whose
/// pivot has no candidate at all — they cannot match and never receive a
/// work unit. On implication's pattern-sized `G^X_Q`, this skips nearly
/// all of a large Σ.
pub fn build_plans_lazy(
    sigma: &GfdSet,
    index: &LabelIndex,
) -> (Vec<VarId>, Vec<Option<MatchPlan>>) {
    let mut pivots = Vec::with_capacity(sigma.len());
    let mut plans = Vec::with_capacity(sigma.len());
    for (_, gfd) in sigma.iter() {
        let pivot = choose_pivot(&gfd.pattern, index);
        pivots.push(pivot);
        if index.frequency(gfd.pattern.label(pivot)) == 0 {
            plans.push(None);
        } else {
            plans.push(Some(MatchPlan::build(
                &gfd.pattern,
                Some(pivot),
                Some(index),
            )));
        }
    }
    (pivots, plans)
}

/// Can every literal of ϕ's consequence be deduced from `eq` under the
/// identity mapping (variable `i` ↦ node `i`)? This is the paper's
/// `Y ⊆ EqH` termination test for implication.
pub fn consequence_deducible(eq: &mut EqRel, phi: &Gfd) -> bool {
    consequence_lits_deducible(eq, &phi.consequence)
}

/// [`consequence_deducible`] over a bare literal slice — shared with the
/// generalized dependency layer.
pub fn consequence_lits_deducible(eq: &mut EqRel, lits: &[crate::literal::Literal]) -> bool {
    lits.iter().all(|lit| {
        let k1 = (NodeId::new(lit.var.index()), lit.attr);
        match &lit.rhs {
            Operand::Const(c) => eq.deduces_const(k1, *c),
            Operand::Attr(v2, a2) => eq.deduces_eq(k1, (NodeId::new(v2.index()), *a2)),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Literal;
    use gfd_graph::{ValueId, Vocab};

    fn two_pattern_sigma(vocab: &mut Vocab) -> GfdSet {
        let t = vocab.label("t");
        let u = vocab.label("u");
        let e = vocab.label("e");
        let a = vocab.attr("a");

        let mut p1 = Pattern::new();
        let x = p1.add_node(t, "x");
        let y = p1.add_node(t, "y");
        p1.add_edge(x, e, y);

        let mut p2 = Pattern::new();
        let z = p2.add_node(u, "z");

        GfdSet::from_vec(vec![
            Gfd::new("g0", p1, vec![], vec![Literal::eq_const(x, a, 1i64)]),
            Gfd::new("g1", p2, vec![], vec![Literal::eq_const(z, a, 2i64)]),
        ])
    }

    #[test]
    fn sigma_canonical_is_disjoint_union() {
        let mut vocab = Vocab::new();
        let sigma = two_pattern_sigma(&mut vocab);
        let (canon, node_of) = CanonicalGraph::for_sigma(&sigma);
        assert_eq!(canon.graph.node_count(), 3);
        assert_eq!(canon.graph.edge_count(), 1);
        assert_eq!(canon.component_count(), 2);
        assert_eq!(node_of[0].len(), 2);
        assert_eq!(node_of[1].len(), 1);
        // The two patterns are in different components.
        assert_ne!(
            canon.component_of(node_of[0][0]),
            canon.component_of(node_of[1][0])
        );
        // Each pattern matches its own copy (identity): required for the
        // model condition.
        assert!(gfd_match::has_match(
            &canon.graph,
            &canon.index,
            &sigma[gfd_graph::GfdId::new(0)].pattern
        ));
    }

    #[test]
    fn component_host_filter_prunes_cross_pattern_units() {
        let mut vocab = Vocab::new();
        let sigma = two_pattern_sigma(&mut vocab);
        let (canon, node_of) = CanonicalGraph::for_sigma(&sigma);
        let p0 = &sigma[gfd_graph::GfdId::new(0)].pattern;
        let p1 = &sigma[gfd_graph::GfdId::new(1)].pattern;
        let comp0 = canon.component_of(node_of[0][0]);
        let comp1 = canon.component_of(node_of[1][0]);
        // g0's pattern (t--e-->t) cannot live in g1's component (a single
        // `u` node) and vice versa.
        assert!(canon.component_may_host(p0, comp0));
        assert!(!canon.component_may_host(p0, comp1));
        assert!(canon.component_may_host(p1, comp1));
        assert!(!canon.component_may_host(p1, comp0));
    }

    #[test]
    fn pivot_candidates_respect_filters() {
        let mut vocab = Vocab::new();
        let sigma = two_pattern_sigma(&mut vocab);
        let (canon, _) = CanonicalGraph::for_sigma(&sigma);
        let (pivots, plans) = build_plans(&sigma, &canon.index);
        assert_eq!(pivots.len(), 2);
        assert_eq!(plans.len(), 2);
        let g0 = &sigma[gfd_graph::GfdId::new(0)];
        let cands = canon.pivot_candidates(&g0.pattern, pivots[0]);
        // Only the two `t` nodes of g0's own component qualify.
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn phi_canonical_builds_eqx_with_transitivity() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let c = vocab.attr("c");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        p.add_edge(x, vocab.label("e"), y);
        // X: x.a = y.b ∧ y.b = y.c ∧ x.a = 5  ⇒ all three keys equal 5.
        let phi = Gfd::new(
            "phi",
            p,
            vec![
                Literal::eq_attr(x, a, y, b),
                Literal::eq_attr(y, b, y, c),
                Literal::eq_const(x, a, 5i64),
            ],
            vec![],
        );
        let (canon, mut eqx) = CanonicalGraph::for_phi(&phi).unwrap();
        assert_eq!(canon.graph.node_count(), 2);
        assert!(eqx.deduces_const((NodeId::new(1), c), ValueId::of(5)));
        assert!(eqx.same_class((NodeId::new(0), a), (NodeId::new(1), c)));
    }

    #[test]
    fn inconsistent_premise_is_reported() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let a = vocab.attr("a");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let phi = Gfd::new(
            "phi",
            p,
            vec![Literal::eq_const(x, a, 1i64), Literal::eq_const(x, a, 2i64)],
            vec![],
        );
        assert!(CanonicalGraph::for_phi(&phi).is_err());
    }

    #[test]
    fn consequence_deducible_checks_y() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let phi = Gfd::new(
            "phi",
            p,
            vec![],
            vec![Literal::eq_const(x, a, 1i64), Literal::eq_attr(x, a, x, b)],
        );
        let mut eq = EqRel::new();
        assert!(!consequence_deducible(&mut eq, &phi));
        eq.bind((NodeId::new(0), a), ValueId::of(1i64)).unwrap();
        assert!(!consequence_deducible(&mut eq, &phi));
        eq.merge((NodeId::new(0), a), (NodeId::new(0), b)).unwrap();
        assert!(consequence_deducible(&mut eq, &phi));
    }

    #[test]
    fn wildcard_components_host_wildcard_patterns() {
        let mut vocab = Vocab::new();
        let mut p = Pattern::new();
        let x = p.add_node(LabelId::WILDCARD, "x");
        let y = p.add_node(LabelId::WILDCARD, "y");
        p.add_edge(x, LabelId::WILDCARD, y);
        let a = vocab.attr("a");
        let sigma = GfdSet::from_vec(vec![Gfd::new(
            "g",
            p.clone(),
            vec![],
            vec![Literal::eq_const(x, a, 1i64)],
        )]);
        let (canon, _) = CanonicalGraph::for_sigma(&sigma);
        assert!(canon.component_may_host(&p, 0));
        // A concrete-labelled pattern is rejected: wildcard canonical nodes
        // do not satisfy concrete labels.
        let mut q = Pattern::new();
        q.add_node(vocab.label("t"), "z");
        assert!(!canon.component_may_host(&q, 0));
    }
}
