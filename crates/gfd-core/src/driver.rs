//! The unified reasoning driver: one fixpoint loop for `SeqSat`, `SeqImp`,
//! `ParSat` and `ParImp`, run on the `gfd-runtime` work-stealing scheduler.
//!
//! The paper's §V workload model is instantiated once here as
//! `ReasonTask`: pivoted work units `(Q[z], ϕ)` generated and
//! priority-ordered by [`crate::unit`], matched by `HomSearch`, enforced
//! into a per-worker [`EnforceEngine`], with
//!
//! * **asynchronous `ΔEq` broadcast** — each worker ships the ops recorded
//!   since its last broadcast to every peer as one shared `Arc<[EqOp]>`
//!   payload (a single allocation however many peers there are);
//! * **straggler splitting** — a unit matching past the TTL carves its
//!   untried sibling branches into prefix units pushed to the front of the
//!   worker's own deque (priority inheritance, paper's Example 6);
//! * **early termination** — a conflict, or for implication a deduced
//!   consequence, raises the scheduler's stop flag;
//! * **final convergence** — after quiescence the workers' op logs and
//!   unresolved pending matches are replayed into one engine and the
//!   (cheap, match-free) enforcement fixpoint is run. This closes the
//!   window where a pending premise was satisfied by a `ΔEq` that arrived
//!   after its worker went idle — required for exactness (DESIGN.md §7).
//!
//! The sequential algorithms are the `workers = 1` instantiation of the
//! same task: the peer list is empty so broadcast is naturally a no-op,
//! the single engine already *is* the global fixpoint (no convergence
//! replay), and the scheduler runs the one worker inline on the calling
//! thread. Sequential and parallel reasoning therefore cannot drift
//! semantically — they are the same code path.

use crate::budget::{Budget, Interrupt};
use crate::canonical::{build_plans_lazy, consequence_deducible, CanonicalGraph};
use crate::dependency::{generate_deducible, Consequence, Dependency};
use crate::enforce::EnforceEngine;
use crate::eq::{EqOp, EqRel};
use crate::error::Conflict;
use crate::gfd::Gfd;
use crate::sigma::GfdSet;
use crate::unit::{generate_units, order_units, WorkUnit};
use crossbeam_channel::{unbounded, Receiver, Sender};
use gfd_graph::GfdId;
use gfd_match::{HomSearch, Match, MatchPlan, RunOutcome, SearchLimits};
use gfd_runtime::sched::{run_scheduler_with, Task, WorkerCtx};
use gfd_runtime::{DispatchMode, EventKind, RunMetrics, RunOutcome as SchedOutcome, TraceSpec};
use parking_lot::Mutex;
use rustc_hash::FxHashSet;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a reasoning run is trying to decide.
#[derive(Clone, Copy)]
pub enum Goal<'a> {
    /// Satisfiability over `GΣ`.
    Sat,
    /// Implication of `ϕ` over `G^X_Q`.
    Imp(&'a Gfd),
    /// Implication of a *generating* dependency (GGD) over `G^X_Q` — the
    /// third goal of the generalized rule layer. Workers terminate early
    /// when the generating consequence becomes *deducible*: some
    /// extension of the identity match realizes the target subgraph in
    /// the canonical graph with every attribute assignment forced by the
    /// current relation. Mixed rule sets (Σ itself generating) route
    /// through the chase-based semantics in `gfd-chase` instead; this arm
    /// serves GGD queries against a literal Σ, whose enforcement never
    /// changes the topology the realization check probes.
    GgdImp(&'a Dependency),
}

impl<'a> Goal<'a> {
    /// The candidate's premise literals, for the X-subsumption priority
    /// boost shared by both implication arms (§VI-C).
    fn imp_premise(&self) -> Option<&'a [crate::literal::Literal]> {
        match self {
            Goal::Sat => None,
            Goal::Imp(phi) => Some(&phi.premise),
            Goal::GgdImp(dep) => Some(&dep.premise),
        }
    }
}

/// A run-ending event raised by a worker or the final convergence phase.
#[derive(Clone, Debug)]
pub enum TerminalEvent {
    /// Distinct constants forced onto one class (the `f_c` flag).
    Conflict(Conflict),
    /// `Y ⊆ EqH` reached (implication only).
    Consequence,
}

/// Tuning knobs of the unified driver (§V-B, §VI-C).
///
/// Sequential runs are `workers = 1`; `gfd-parallel` re-exports this type
/// as `ParConfig`.
#[derive(Clone, Debug)]
pub struct ReasonConfig {
    /// Number of workers `p`. `1` runs inline on the calling thread.
    pub workers: usize,
    /// Straggler threshold: a work unit matching longer than this is split
    /// (the paper's TTL, Exp-4 varies it from 0.1 s to 8 s).
    pub ttl: Duration,
    /// Pipelined parallelism: enforce each match as soon as it is found.
    /// With `false` (the paper's `*np` variants) a unit first enumerates
    /// *all* its matches, then enforces them.
    pub pipeline: bool,
    /// Work-unit splitting on TTL expiry. With `false` (the `*nb`
    /// variants) stragglers run to completion on one worker.
    pub split: bool,
    /// Order work units by the dependency-graph topological order. With
    /// `false`, input order is used.
    pub use_dependency_order: bool,
    /// Skip units whose pivot component cannot host the pattern.
    pub prune_components: bool,
    /// How units reach the workers: per-worker deques with stealing
    /// (default) or the centralized-queue baseline.
    pub dispatch: DispatchMode,
    /// Resource limits (deadline, max units). Exhaustion degrades the run
    /// to an unknown outcome (DESIGN.md §11.2); the default is unlimited.
    pub budget: Budget,
    /// Structured tracing (DESIGN.md §13). Disabled by default; when
    /// enabled the scheduler and every work unit record typed spans into
    /// per-worker ring buffers, returned on `RunMetrics::trace`.
    pub trace: TraceSpec,
}

impl Default for ReasonConfig {
    fn default() -> Self {
        ReasonConfig {
            workers: 4,
            ttl: Duration::from_secs(2),
            pipeline: true,
            split: true,
            use_dependency_order: true,
            prune_components: true,
            dispatch: DispatchMode::WorkStealing,
            budget: Budget::unlimited(),
            trace: TraceSpec::default(),
        }
    }
}

impl ReasonConfig {
    /// Default configuration with `p` workers.
    pub fn with_workers(workers: usize) -> Self {
        ReasonConfig {
            workers,
            ..Self::default()
        }
    }

    /// The `*np` ablation: no pipelining.
    pub fn without_pipeline(mut self) -> Self {
        self.pipeline = false;
        self
    }

    /// The `*nb` ablation: no work-unit splitting.
    pub fn without_split(mut self) -> Self {
        self.split = false;
        self
    }

    /// Override the TTL.
    pub fn with_ttl(mut self, ttl: Duration) -> Self {
        self.ttl = ttl;
        self
    }

    /// Override the dispatch mode.
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Override the resource budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Enable structured tracing with the given spec.
    pub fn with_trace(mut self, trace: TraceSpec) -> Self {
        self.trace = trace;
        self
    }
}

/// The outcome of a reasoning run, before goal-specific interpretation.
pub struct ReasonRun {
    /// Early or final terminal event, if any.
    pub terminal: Option<TerminalEvent>,
    /// The merged engine after the convergence phase (absent when the run
    /// terminated early or was degraded by its budget).
    pub engine: Option<EnforceEngine>,
    /// How the scheduler run ended. Anything other than `Completed` /
    /// `Stopped` means the fixpoint was not reached: a missing terminal
    /// event then maps to an *unknown* outcome, never a definite one.
    pub sched_outcome: SchedOutcome,
    /// Run counters.
    pub metrics: RunMetrics,
}

/// One `ΔEq` broadcast payload: the ops a worker recorded since its last
/// broadcast, shared across all peers as a single allocation.
type DeltaPayload = Arc<[EqOp]>;

/// Is the goal's terminal consequence condition met under `eq`? `Sat`
/// never is (it terminates on conflicts only); the two implication arms
/// test literal deducibility and generating-target realization
/// respectively.
fn goal_consequence_deduced(goal: Goal<'_>, canon: &CanonicalGraph, eq: &mut EqRel) -> bool {
    match goal {
        Goal::Sat => false,
        Goal::Imp(phi) => consequence_deducible(eq, phi),
        Goal::GgdImp(dep) => match &dep.consequence {
            Consequence::Literals(lits) => crate::canonical::consequence_lits_deducible(eq, lits),
            Consequence::Generate(gen) => {
                let m: Vec<gfd_graph::NodeId> = (0..dep.pattern.node_count())
                    .map(gfd_graph::NodeId::new)
                    .collect();
                generate_deducible(eq, &canon.index, gen, &m)
            }
        },
    }
}

/// The goal-parameterized reasoning workload run by the scheduler.
struct ReasonTask<'a> {
    sigma: &'a GfdSet,
    canon: &'a CanonicalGraph,
    plans: &'a [Option<MatchPlan>],
    goal: Goal<'a>,
    cfg: &'a ReasonConfig,
    eq0: &'a EqRel,
    stop: &'a AtomicBool,
    /// `ΔEq` broadcast mesh: sender `i` feeds worker `i`'s inbox. Each
    /// worker takes its receiver out of the slot at startup.
    delta_txs: Vec<Sender<DeltaPayload>>,
    delta_rxs: Mutex<Vec<Option<Receiver<DeltaPayload>>>>,
    /// First terminal event raised anywhere in the run.
    terminal: Mutex<Option<TerminalEvent>>,
}

/// Per-worker reasoning state.
struct ReasonWorker {
    engine: EnforceEngine,
    rx_delta: Option<Receiver<DeltaPayload>>,
    tx_peers: Vec<Sender<DeltaPayload>>,
    broadcast_cursor: usize,
    last_y_version: u64,
    /// This worker already raised a terminal event; stop doing work.
    done: bool,
    matches: u64,
    ops_sent: u64,
}

impl<'a> ReasonTask<'a> {
    /// Raise a terminal event: record it (first writer wins) and set the
    /// global stop flag so every worker aborts its search.
    fn terminal(&self, w: &mut ReasonWorker, event: TerminalEvent) {
        if w.done {
            return;
        }
        w.done = true;
        let mut slot = self.terminal.lock();
        if slot.is_none() {
            *slot = Some(event);
        }
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Apply queued remote deltas (cascading local pending rechecks), then
    /// re-test the consequence for implication goals.
    fn apply_inbox(&self, w: &mut ReasonWorker) {
        if let Some(rx) = &w.rx_delta {
            while let Ok(ops) = rx.try_recv() {
                if let Err(c) = w.engine.apply_remote_ops(self.sigma, &ops) {
                    self.terminal(w, TerminalEvent::Conflict(c));
                    return;
                }
            }
        }
        self.check_consequence(w);
    }

    fn check_consequence(&self, w: &mut ReasonWorker) {
        if w.done || matches!(self.goal, Goal::Sat) {
            return;
        }
        let v = w.engine.eq.version();
        if v != w.last_y_version {
            w.last_y_version = v;
            if goal_consequence_deduced(self.goal, self.canon, &mut w.engine.eq) {
                self.terminal(w, TerminalEvent::Consequence);
            }
        }
    }

    /// Ship ops recorded since the last broadcast to every peer. The
    /// payload is shared as one `Arc<[EqOp]>`: a single allocation however
    /// many peers there are.
    fn broadcast(&self, w: &mut ReasonWorker) {
        if w.tx_peers.is_empty() {
            return;
        }
        let new = w.engine.delta_since(w.broadcast_cursor);
        if new.is_empty() {
            return;
        }
        let ops: DeltaPayload = Arc::from(new);
        w.broadcast_cursor = w.engine.delta_len();
        w.ops_sent += ops.len() as u64;
        for tx in &w.tx_peers {
            let _ = tx.send(Arc::clone(&ops));
        }
    }

    /// Pipelined mode: enforce each match the moment `HomMatch` produces
    /// it (streaming `HomMatch ∥ CheckAttr`).
    fn run_streaming(
        &self,
        w: &mut ReasonWorker,
        search: &mut HomSearch<'_>,
        gfd_id: GfdId,
        priority: u32,
        ctx: &WorkerCtx<'_, WorkUnit>,
    ) {
        loop {
            let deadline = self.cfg.split.then(|| Instant::now() + self.cfg.ttl);
            let limits = SearchLimits {
                deadline,
                stop: Some(self.stop),
            };
            let sigma = self.sigma;
            let canon = self.canon;
            let engine = &mut w.engine;
            let matches = &mut w.matches;
            let goal = self.goal;
            let mut last_version = w.last_y_version;
            let mut conflict: Option<Conflict> = None;
            let mut y_hit = false;
            let outcome = search.run(
                |m| {
                    *matches += 1;
                    match engine.process_match(sigma, gfd_id, m) {
                        Err(c) => {
                            conflict = Some(c);
                            ControlFlow::Break(())
                        }
                        Ok(()) => {
                            if !matches!(goal, Goal::Sat) {
                                let v = engine.eq.version();
                                if v != last_version {
                                    last_version = v;
                                    if goal_consequence_deduced(goal, canon, &mut engine.eq) {
                                        y_hit = true;
                                        return ControlFlow::Break(());
                                    }
                                }
                            }
                            ControlFlow::Continue(())
                        }
                    }
                },
                limits,
            );
            w.last_y_version = last_version;
            if let Some(c) = conflict {
                self.terminal(w, TerminalEvent::Conflict(c));
                return;
            }
            if y_hit {
                self.terminal(w, TerminalEvent::Consequence);
                return;
            }
            match outcome {
                RunOutcome::Exhausted | RunOutcome::Stopped => return,
                RunOutcome::Deadline => {
                    self.split_straggler(search, gfd_id, priority, ctx);
                    // Broadcast between TTL periods so long units still
                    // propagate their enforcements promptly.
                    self.broadcast(w);
                }
            }
        }
    }

    /// Non-pipelined (`*np`) mode: first enumerate every match of the
    /// unit, then enforce them one by one — the ablation baseline of
    /// Exp-1/Exp-4.
    fn run_collect_then_check(
        &self,
        w: &mut ReasonWorker,
        search: &mut HomSearch<'_>,
        gfd_id: GfdId,
        priority: u32,
        ctx: &WorkerCtx<'_, WorkUnit>,
    ) {
        let mut matches: Vec<Match> = Vec::new();
        loop {
            let deadline = self.cfg.split.then(|| Instant::now() + self.cfg.ttl);
            let limits = SearchLimits {
                deadline,
                stop: Some(self.stop),
            };
            let count = &mut w.matches;
            let outcome = search.run(
                |m| {
                    *count += 1;
                    matches.push(m);
                    ControlFlow::Continue(())
                },
                limits,
            );
            match outcome {
                RunOutcome::Exhausted | RunOutcome::Stopped => break,
                RunOutcome::Deadline => {
                    self.split_straggler(search, gfd_id, priority, ctx);
                    self.broadcast(w);
                }
            }
        }
        for m in matches {
            if w.done || self.stop.load(Ordering::Relaxed) {
                return;
            }
            if let Err(c) = w.engine.process_match(self.sigma, gfd_id, m) {
                self.terminal(w, TerminalEvent::Conflict(c));
                return;
            }
            self.check_consequence(w);
        }
    }

    /// TTL expired: carve the shallowest untried sibling branches into
    /// prefix units and push them to the front of this worker's deque
    /// (paper's Example 6; the split inherits the parent's priority).
    fn split_straggler(
        &self,
        search: &mut HomSearch<'_>,
        gfd_id: GfdId,
        priority: u32,
        ctx: &WorkerCtx<'_, WorkUnit>,
    ) {
        if !self.cfg.split {
            return;
        }
        let prefixes = search.split_shallowest();
        if prefixes.is_empty() {
            return;
        }
        let units: Vec<WorkUnit> = prefixes
            .into_iter()
            .map(|prefix| WorkUnit {
                gfd: gfd_id,
                prefix,
                priority,
            })
            .collect();
        ctx.split(units);
    }
}

impl Task for ReasonTask<'_> {
    type Unit = WorkUnit;
    type Worker = ReasonWorker;

    fn worker(&self, id: usize) -> ReasonWorker {
        let rx_delta = self.delta_rxs.lock()[id].take();
        let tx_peers = self
            .delta_txs
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != id)
            .map(|(_, tx)| tx.clone())
            .collect();
        ReasonWorker {
            engine: EnforceEngine::with_eq(self.eq0.clone()),
            rx_delta,
            tx_peers,
            broadcast_cursor: 0,
            last_y_version: 0,
            done: false,
            matches: 0,
            ops_sent: 0,
        }
    }

    fn run_unit(&self, w: &mut ReasonWorker, unit: WorkUnit, ctx: &WorkerCtx<'_, WorkUnit>) {
        if w.done || self.stop.load(Ordering::Relaxed) {
            return;
        }
        self.apply_inbox(w);
        if w.done {
            return;
        }
        let gfd_id = unit.gfd;
        let gfd = &self.sigma[gfd_id];
        let plan = self.plans[gfd_id.index()]
            .as_ref()
            .expect("a unit exists, so its GFD has pivot candidates and a plan");
        let mut search = HomSearch::new(&self.canon.graph, &self.canon.index, &gfd.pattern, plan)
            .with_prefix(&unit.prefix);

        let span = ctx.trace_start();
        let matches0 = w.matches;
        if self.cfg.pipeline {
            self.run_streaming(w, &mut search, gfd_id, unit.priority, ctx);
        } else {
            self.run_collect_then_check(w, &mut search, gfd_id, unit.priority, ctx);
        }
        ctx.trace_span(
            EventKind::RuleEval,
            gfd_id.index() as u32,
            span,
            w.matches - matches0,
            0,
        );
        self.broadcast(w);
    }

    fn on_idle(&self, w: &mut ReasonWorker, _ctx: &WorkerCtx<'_, WorkUnit>) {
        self.apply_inbox(w);
    }
}

/// Execute a reasoning run over a prepared canonical graph.
///
/// This is the one driver behind `SeqSat`, `SeqImp`, `ParSat` and
/// `ParImp`; the sequential algorithms call it with `cfg.workers == 1`.
pub fn run_reason(
    sigma: &GfdSet,
    goal: Goal<'_>,
    eq0: EqRel,
    canon: &CanonicalGraph,
    cfg: &ReasonConfig,
) -> ReasonRun {
    let start = Instant::now();
    let p = cfg.workers.max(1);
    let mut metrics = RunMetrics {
        workers: p,
        ..Default::default()
    };

    let (pivots, plans) = build_plans_lazy(sigma, &canon.index);
    let mut units = generate_units(sigma, canon, &pivots, cfg.prune_components);
    if cfg.use_dependency_order {
        let boosted: Option<Vec<bool>> = goal.imp_premise().map(|premise| {
            let x_attrs: FxHashSet<_> = premise
                .iter()
                .flat_map(crate::literal::Literal::attrs)
                .collect();
            sigma
                .iter()
                .map(|(_, g)| g.premise_attrs().all(|a| x_attrs.contains(&a)))
                .collect()
        });
        order_units(&mut units, sigma, canon, &pivots, boosted.as_deref());
    }
    metrics.units_generated = units.len();

    let stop = AtomicBool::new(false);
    let mut delta_txs = Vec::with_capacity(p);
    let mut delta_rxs = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded::<DeltaPayload>();
        delta_txs.push(tx);
        delta_rxs.push(Some(rx));
    }
    let task = ReasonTask {
        sigma,
        canon,
        plans: &plans,
        goal,
        cfg,
        eq0: &eq0,
        stop: &stop,
        delta_txs,
        delta_rxs: Mutex::new(delta_rxs),
        terminal: Mutex::new(None),
    };

    let mut opts = cfg.budget.sched_options();
    opts.trace = cfg.trace;
    let run = run_scheduler_with(&task, units, p, cfg.dispatch, &stop, opts);

    metrics.trace = run.trace;
    metrics.units_dispatched = run.units_executed;
    metrics.units_split = run.units_split;
    metrics.units_stolen = run.units_stolen;
    metrics.units_panicked = run.units_panicked;
    metrics.units_retried = run.units_retried;
    metrics.worker_busy = run.worker_busy;
    metrics.worker_idle = run.worker_idle;
    let mut workers = run.workers;
    for w in &workers {
        metrics.matches += w.matches;
        metrics.delta_ops_broadcast += w.ops_sent;
        metrics.pending += w.engine.stats.pending_registered;
        metrics.rechecks += w.engine.stats.rechecks;
    }

    let mut terminal = task.terminal.into_inner();
    metrics.early_terminated = terminal.is_some();

    let engine = if terminal.is_some() {
        None
    } else if workers.len() == 1 {
        // One worker with no peers: its engine already is the global
        // fixpoint — no convergence replay needed.
        Some(workers.pop().expect("one worker").engine)
    } else {
        // ---- final convergence phase ----
        // Replay every worker's full op log, then the unresolved pending
        // matches, into one engine: any enforcement that any interleaving
        // could have produced is reproduced here (DESIGN.md §7).
        let mut deltas: Vec<Vec<EqOp>> = Vec::with_capacity(workers.len());
        let mut pendings: Vec<(GfdId, Match)> = Vec::new();
        for w in workers {
            let (delta, pending) = w.engine.into_state();
            deltas.push(delta);
            pendings.extend(pending);
        }
        let mut engine = EnforceEngine::with_eq(eq0.clone());
        'merge: {
            for delta in &deltas {
                if let Err(c) = engine.apply_remote_ops(sigma, delta) {
                    terminal = Some(TerminalEvent::Conflict(c));
                    break 'merge;
                }
            }
            for (gfd, m) in pendings {
                if let Err(c) = engine.process_match(sigma, gfd, m) {
                    terminal = Some(TerminalEvent::Conflict(c));
                    break 'merge;
                }
            }
            if !matches!(goal, Goal::Sat) && goal_consequence_deduced(goal, canon, &mut engine.eq) {
                terminal = Some(TerminalEvent::Consequence);
            }
        }
        (terminal.is_none()).then_some(engine)
    };

    // A degraded run (deadline, unit budget, panic abort) did not reach
    // the fixpoint: its merged state must never be read as a model. Any
    // terminal event found on the way — enforcement is monotone, so a
    // conflict derived from partial work is still definitive — survives.
    let engine = if terminal.is_none() && Interrupt::from_outcome(&run.outcome).is_some() {
        None
    } else {
        engine
    };

    metrics.elapsed = start.elapsed();
    metrics.deadline_slack_ms = cfg.budget.deadline_slack_ms();
    ReasonRun {
        terminal,
        engine,
        sched_outcome: run.outcome,
        metrics,
    }
}
