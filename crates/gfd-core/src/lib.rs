//! Graph functional dependencies: the core of the ICDE 2018 reproduction.
//!
//! A GFD `ϕ = Q[x̄](X → Y)` combines a topological constraint (the graph
//! pattern `Q`) with an attribute dependency (`X → Y` over the pattern
//! variables). This crate implements:
//!
//! * the GFD model itself ([`Gfd`], [`Literal`], [`GfdSet`]) and direct
//!   validation `G |= ϕ` on data graphs ([`validate`]);
//! * canonical graphs `GΣ` / `G^X_Q` — the small models of Theorems 1 and 3
//!   ([`canonical`]);
//! * the equivalence relation `Eq` with constant bindings, conflicts,
//!   watcher-based pending rechecks and replayable deltas ([`eq`]);
//! * the enforcement engine shared by every algorithm ([`enforce`]);
//! * the unified reasoning driver ([`driver`]) — the one goal-parameterized
//!   fixpoint loop, run on the `gfd-runtime` work-stealing scheduler, behind
//!   **SeqSat** ([`seq_sat()`]), **SeqImp** ([`seq_imp()`]) *and* the parallel
//!   `ParSat`/`ParImp` of `gfd-parallel` (which instantiate it with
//!   `workers > 1`);
//! * pivoted work units and their dependency-graph ordering ([`mod@unit`]);
//! * model extraction ([`model`]) and dependency ordering ([`ordering`]).

#![warn(missing_docs)]

pub mod budget;
pub mod canonical;
pub mod dependency;
pub mod driver;
pub mod enforce;
pub mod eq;
pub mod error;
pub mod gfd;
pub mod literal;
pub mod model;
pub mod ordering;
pub mod seq_imp;
pub mod seq_sat;
pub mod sigma;
pub mod unit;
pub mod validate;

pub use budget::{Budget, Interrupt};
pub use canonical::{
    build_plans, build_plans_lazy, choose_pivot, consequence_deducible, consequence_lits_deducible,
    CanonicalGraph,
};
pub use dependency::{generate_deducible, Consequence, DepSet, Dependency, GenerateConsequence};
pub use driver::{run_reason, Goal, ReasonConfig, ReasonRun, TerminalEvent};
pub use enforce::{eval_premise, eval_premise_lits, EnforceEngine, EngineStats, PremiseStatus};
pub use eq::{EqOp, EqRel};
pub use error::{AttrKey, Conflict};
pub use gfd::{Gfd, FALSE_ATTR_NAME};
pub use literal::{Literal, Operand};
pub use model::extract_model;
pub use ordering::order_gfds;
pub use seq_imp::{
    ggd_imp_with_config, imp_with_config, seq_imp, seq_imp_with, ImpOutcome, ImpResult, ImpliedVia,
};
pub use seq_sat::{
    sat_with_config, seq_sat, seq_sat_with, ReasonOptions, ReasonStats, SatOutcome, SatResult,
};
pub use sigma::GfdSet;
pub use unit::{generate_units, order_units, WorkUnit};
pub use validate::{find_violations, graph_satisfies, graph_satisfies_all, Violation};
