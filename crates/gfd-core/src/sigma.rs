//! Sets Σ of GFDs.

use crate::gfd::Gfd;
use gfd_graph::{GfdId, Vocab};

/// A set Σ of GFDs, the input of the satisfiability and implication
/// analyses. GFDs are identified by their position ([`GfdId`]).
#[derive(Clone, Debug, Default)]
pub struct GfdSet {
    gfds: Vec<Gfd>,
}

impl GfdSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a vector of GFDs.
    pub fn from_vec(gfds: Vec<Gfd>) -> Self {
        GfdSet { gfds }
    }

    /// Add a GFD, returning its id.
    pub fn push(&mut self, gfd: Gfd) -> GfdId {
        let id = GfdId::new(self.gfds.len());
        self.gfds.push(gfd);
        id
    }

    /// The GFD with the given id.
    pub fn get(&self, id: GfdId) -> &Gfd {
        &self.gfds[id.index()]
    }

    /// Number of GFDs (the paper's `|Σ|` count parameter).
    pub fn len(&self) -> usize {
        self.gfds.len()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.gfds.is_empty()
    }

    /// Iterate `(id, gfd)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (GfdId, &Gfd)> {
        self.gfds
            .iter()
            .enumerate()
            .map(|(i, g)| (GfdId::new(i), g))
    }

    /// The underlying slice.
    pub fn as_slice(&self) -> &[Gfd] {
        &self.gfds
    }

    /// Total size `|Σ| = Σ |ϕ|` used by the small-model bounds.
    pub fn total_size(&self) -> usize {
        self.gfds.iter().map(Gfd::size).sum()
    }

    /// Render every GFD on its own line.
    pub fn display_all(&self, vocab: &Vocab) -> String {
        let mut s = String::new();
        for g in &self.gfds {
            s.push_str(&g.display(vocab).to_string());
            s.push('\n');
        }
        s
    }
}

impl FromIterator<Gfd> for GfdSet {
    fn from_iter<T: IntoIterator<Item = Gfd>>(iter: T) -> Self {
        GfdSet {
            gfds: iter.into_iter().collect(),
        }
    }
}

impl std::ops::Index<GfdId> for GfdSet {
    type Output = Gfd;
    fn index(&self, id: GfdId) -> &Gfd {
        &self.gfds[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Literal;
    use gfd_graph::{Pattern, VarId};

    fn mk_gfd(vocab: &mut Vocab, name: &str) -> Gfd {
        let mut p = Pattern::new();
        p.add_node(vocab.label("t"), "x");
        let a = vocab.attr("a");
        Gfd::new(
            name,
            p,
            vec![],
            vec![Literal::eq_const(VarId::new(0), a, 1i64)],
        )
    }

    #[test]
    fn push_get_iterate() {
        let mut vocab = Vocab::new();
        let mut sigma = GfdSet::new();
        let id0 = sigma.push(mk_gfd(&mut vocab, "a"));
        let id1 = sigma.push(mk_gfd(&mut vocab, "b"));
        assert_eq!(sigma.len(), 2);
        assert_eq!(sigma.get(id0).name, "a");
        assert_eq!(sigma[id1].name, "b");
        let names: Vec<&str> = sigma.iter().map(|(_, g)| g.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(sigma.total_size(), 2 * (1 + 2));
        assert!(sigma.display_all(&vocab).contains("a: Q["));
    }

    #[test]
    fn from_iterator() {
        let mut vocab = Vocab::new();
        let sigma: GfdSet = (0..3)
            .map(|i| mk_gfd(&mut vocab, &format!("g{i}")))
            .collect();
        assert_eq!(sigma.len(), 3);
        assert!(!sigma.is_empty());
    }
}
