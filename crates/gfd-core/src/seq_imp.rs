//! `SeqImp` — the sequential exact implication algorithm (§VI-B).
//!
//! Built on Corollary 4: `Σ |= ϕ` iff some partial enforcement `H` of Σ on
//! the canonical graph `G^X_Q` of ϕ makes `EqH` conflicting, or deduces the
//! consequence (`Y ⊆ EqH`). The algorithm enforces matches of Σ's patterns
//! in `G^X_Q` starting from `EqX` and terminates with *implied* as soon as
//! either condition holds; if the fixpoint completes without them, `Σ 6|= ϕ`.

use crate::budget::Interrupt;
use crate::canonical::{consequence_deducible, CanonicalGraph};
use crate::dependency::{generate_deducible, Consequence, Dependency};
use crate::driver::{run_reason, Goal, ReasonConfig, TerminalEvent};
use crate::eq::EqRel;
use crate::error::Conflict;
use crate::gfd::Gfd;
use crate::seq_sat::{ReasonOptions, ReasonStats};
use crate::sigma::GfdSet;
use gfd_graph::NodeId;

/// Why `Σ |= ϕ` holds.
#[derive(Clone, Debug)]
pub enum ImpliedVia {
    /// ϕ's own premise `X` is inconsistent: no match can satisfy it.
    PremiseInconsistent,
    /// Enforcing Σ on `G^X_Q` conflicts: Σ ∪ X is inconsistent (the
    /// paper's ϕ14 case).
    Conflict(Conflict),
    /// The consequence became deducible: `Y ⊆ EqH` (the ϕ13 case).
    Consequence,
}

/// The outcome of implication checking.
#[derive(Clone, Debug)]
pub enum ImpOutcome {
    /// `Σ |= ϕ`.
    Implied(ImpliedVia),
    /// `Σ 6|= ϕ` — a counterexample population of `G^X_Q` exists.
    NotImplied,
    /// The run was cut short — deadline, unit budget, or a panic abort —
    /// before the fixpoint: no definite answer. Never produced with an
    /// unlimited [`crate::Budget`] and no faults.
    Unknown(Interrupt),
}

/// Result + statistics.
#[derive(Clone, Debug)]
pub struct ImpResult {
    /// Implied (with the reason) or not.
    pub outcome: ImpOutcome,
    /// Counters.
    pub stats: ReasonStats,
}

impl ImpResult {
    /// True iff `Σ |= ϕ`.
    pub fn is_implied(&self) -> bool {
        matches!(self.outcome, ImpOutcome::Implied(_))
    }

    /// True iff the run degraded without a definite answer.
    pub fn is_unknown(&self) -> bool {
        matches!(self.outcome, ImpOutcome::Unknown(_))
    }

    /// The interrupt that degraded the run, if any.
    pub fn interrupt(&self) -> Option<&Interrupt> {
        match &self.outcome {
            ImpOutcome::Unknown(i) => Some(i),
            _ => None,
        }
    }
}

/// Check `Σ |= ϕ` with default options.
pub fn seq_imp(sigma: &GfdSet, phi: &Gfd) -> ImpResult {
    seq_imp_with(sigma, phi, &ReasonOptions::default())
}

/// The trivial short-circuits shared by the sequential and parallel
/// implication checkers. Returns the prepared `(G^X_Q, EqX)` pair when the
/// question needs actual reasoning, or the decided outcome otherwise.
fn imp_shortcuts(sigma: &GfdSet, phi: &Gfd) -> Result<(CanonicalGraph, EqRel), ImpOutcome> {
    // Y = ∅ is the constant true: trivially implied.
    if phi.consequence.is_empty() {
        return Err(ImpOutcome::Implied(ImpliedVia::Consequence));
    }
    let (canon, eqx) = match CanonicalGraph::for_phi(phi) {
        Ok(pair) => pair,
        Err(_) => return Err(ImpOutcome::Implied(ImpliedVia::PremiseInconsistent)),
    };
    // Y may already follow from X alone.
    {
        let mut probe = eqx.clone();
        if consequence_deducible(&mut probe, phi) {
            return Err(ImpOutcome::Implied(ImpliedVia::Consequence));
        }
    }
    if sigma.is_empty() {
        return Err(ImpOutcome::NotImplied);
    }
    Ok((canon, eqx))
}

/// Check `Σ |= ϕ` sequentially: the `workers = 1` instantiation of the
/// unified driver.
pub fn seq_imp_with(sigma: &GfdSet, phi: &Gfd, opts: &ReasonOptions) -> ImpResult {
    imp_with_config(sigma, phi, &opts.sequential_config())
}

/// Check `Σ |= ϕ` under a full driver configuration. This is the shared
/// entry point behind both `SeqImp` (`cfg.workers == 1`) and `ParImp`
/// (`gfd_parallel::par_imp`).
///
/// Relative to satisfiability the driver differs in two ways (§VI-C):
/// units whose premise is subsumed by `X` get the highest priority, and
/// workers terminate early when `Y ⊆ EqH`, not just on conflicts. Rules
/// that cannot match the pattern-sized `G^X_Q` at all never receive a plan
/// or a unit (`build_plans_lazy`), which on a large Σ skips nearly
/// everything — the static-applicability pruning that lets `SeqImp` beat
/// the naive chase on Fig. 5.
pub fn imp_with_config(sigma: &GfdSet, phi: &Gfd, cfg: &ReasonConfig) -> ImpResult {
    let start = std::time::Instant::now();
    let (canon, eqx) = match imp_shortcuts(sigma, phi) {
        Ok(pair) => pair,
        Err(outcome) => {
            return ImpResult {
                outcome,
                stats: ReasonStats {
                    workers: cfg.workers.max(1),
                    elapsed: start.elapsed(),
                    ..Default::default()
                },
            }
        }
    };
    let run = run_reason(sigma, Goal::Imp(phi), eqx, &canon, cfg);
    let outcome = match run.terminal {
        Some(TerminalEvent::Conflict(c)) => ImpOutcome::Implied(ImpliedVia::Conflict(c)),
        Some(TerminalEvent::Consequence) => ImpOutcome::Implied(ImpliedVia::Consequence),
        // Degraded run, no terminal event: claiming "not implied" would
        // turn a timeout into a wrong definite verdict.
        None => match Interrupt::from_outcome(&run.sched_outcome) {
            Some(interrupt) => ImpOutcome::Unknown(interrupt),
            None => ImpOutcome::NotImplied,
        },
    };
    let mut stats = run.metrics;
    stats.elapsed = start.elapsed();
    ImpResult { outcome, stats }
}

/// Check `Σ |= ϕ` where ϕ is a generalized [`Dependency`] — the third
/// goal of the unified driver ([`Goal::GgdImp`]).
///
/// A literal-consequence ϕ routes through [`imp_with_config`] unchanged.
/// A generating ϕ runs the same Σ-enforcement fixpoint over `G^X_Q`, with
/// early termination when the generating consequence becomes *deducible*:
/// an extension of the identity match realizes the target subgraph in the
/// canonical graph with every attribute assignment forced by `EqH`. Σ
/// itself must be literal (GFDs) — enforcement then never changes the
/// topology the realization check probes; for mixed Σ use the chase-based
/// `dep_imp` in `gfd-chase`.
pub fn ggd_imp_with_config(sigma: &GfdSet, phi: &Dependency, cfg: &ReasonConfig) -> ImpResult {
    let start = std::time::Instant::now();
    let trivial = |outcome: ImpOutcome| ImpResult {
        outcome,
        stats: ReasonStats {
            workers: cfg.workers.max(1),
            elapsed: start.elapsed(),
            ..Default::default()
        },
    };
    let gen = match &phi.consequence {
        Consequence::Literals(_) => {
            let gfd = phi.as_gfd().expect("literal consequence lowers");
            return imp_with_config(sigma, &gfd, cfg);
        }
        Consequence::Generate(gen) => gen,
    };
    let (canon, eqx) = match CanonicalGraph::for_premise(&phi.pattern, &phi.premise) {
        Ok(pair) => pair,
        Err(_) => return trivial(ImpOutcome::Implied(ImpliedVia::PremiseInconsistent)),
    };
    // The target may already be realized by the premise pattern itself
    // under `EqX` alone (including the trivial empty target).
    let identity: Vec<NodeId> = (0..phi.pattern.node_count()).map(NodeId::new).collect();
    {
        let mut probe = eqx.clone();
        if generate_deducible(&mut probe, &canon.index, gen, &identity) {
            return trivial(ImpOutcome::Implied(ImpliedVia::Consequence));
        }
    }
    if sigma.is_empty() {
        return trivial(ImpOutcome::NotImplied);
    }
    let run = run_reason(sigma, Goal::GgdImp(phi), eqx, &canon, cfg);
    let outcome = match run.terminal {
        Some(TerminalEvent::Conflict(c)) => ImpOutcome::Implied(ImpliedVia::Conflict(c)),
        Some(TerminalEvent::Consequence) => ImpOutcome::Implied(ImpliedVia::Consequence),
        // Degraded run, no terminal event: claiming "not implied" would
        // turn a timeout into a wrong definite verdict.
        None => match Interrupt::from_outcome(&run.sched_outcome) {
            Some(interrupt) => ImpOutcome::Unknown(interrupt),
            None => ImpOutcome::NotImplied,
        },
    };
    let mut stats = run.metrics;
    stats.elapsed = start.elapsed();
    ImpResult { outcome, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Literal;
    use gfd_graph::{Pattern, VarId, Vocab};

    /// Patterns of the paper's Example 8 (Fig. 2):
    /// Q8: x -p-> y(b); Q9: x -p-> y(c); Q7: x with p-children y(b), z(c),
    /// w(c).
    struct Ex8 {
        vocab: Vocab,
        sigma: GfdSet,
        phi13: Gfd,
        phi14: Gfd,
    }

    fn example8() -> Ex8 {
        let mut vocab = Vocab::new();
        let a_lbl = vocab.label("a");
        let b_lbl = vocab.label("b");
        let c_lbl = vocab.label("c");
        let p_lbl = vocab.label("p");
        let attr_a = vocab.attr("A");
        let attr_b = vocab.attr("B");
        let attr_c = vocab.attr("C");

        // Q8: x(a) -p-> y(b)
        let mut q8 = Pattern::new();
        let x8 = q8.add_node(a_lbl, "x");
        let y8 = q8.add_node(b_lbl, "y");
        q8.add_edge(x8, p_lbl, y8);

        // Q9: x(a) -p-> y(c)
        let mut q9 = Pattern::new();
        let x9 = q9.add_node(a_lbl, "x");
        let y9 = q9.add_node(c_lbl, "y");
        q9.add_edge(x9, p_lbl, y9);

        // Q7: x(a) with children y(b), z(c), w(c)
        let mut q7 = Pattern::new();
        let x7 = q7.add_node(a_lbl, "x");
        let y7 = q7.add_node(b_lbl, "y");
        let z7 = q7.add_node(c_lbl, "z");
        let w7 = q7.add_node(c_lbl, "w");
        q7.add_edge(x7, p_lbl, y7);
        q7.add_edge(x7, p_lbl, z7);
        q7.add_edge(x7, p_lbl, w7);

        // ϕ11 = Q8(∅ → x.A = 1)
        let phi11 = Gfd::new(
            "phi11",
            q8,
            vec![],
            vec![Literal::eq_const(x8, attr_a, 1i64)],
        );
        // ϕ12 = Q9(x.A = 1 ∧ y.B = 2 → y.C = 2)
        let phi12 = Gfd::new(
            "phi12",
            q9,
            vec![
                Literal::eq_const(x9, attr_a, 1i64),
                Literal::eq_const(y9, attr_b, 2i64),
            ],
            vec![Literal::eq_const(y9, attr_c, 2i64)],
        );
        // ϕ13 = Q7(z.B = 2 → z.C = 2)
        let phi13 = Gfd::new(
            "phi13",
            q7.clone(),
            vec![Literal::eq_const(VarId::new(2), attr_b, 2i64)],
            vec![Literal::eq_const(VarId::new(2), attr_c, 2i64)],
        );
        // ϕ14 = Q7(x.A = 0 → z.C = 2)
        let phi14 = Gfd::new(
            "phi14",
            q7,
            vec![Literal::eq_const(VarId::new(0), attr_a, 0i64)],
            vec![Literal::eq_const(VarId::new(2), attr_c, 2i64)],
        );
        Ex8 {
            vocab,
            sigma: GfdSet::from_vec(vec![phi11, phi12]),
            phi13,
            phi14,
        }
    }

    #[test]
    fn example8_phi13_implied_via_consequence() {
        let ex = example8();
        let r = seq_imp(&ex.sigma, &ex.phi13);
        assert!(r.is_implied(), "{:?}", r.outcome);
        assert!(matches!(
            r.outcome,
            ImpOutcome::Implied(ImpliedVia::Consequence)
        ));
    }

    #[test]
    fn example8_phi14_implied_via_conflict() {
        let ex = example8();
        let r = seq_imp(&ex.sigma, &ex.phi14);
        assert!(r.is_implied(), "{:?}", r.outcome);
        assert!(matches!(
            r.outcome,
            ImpOutcome::Implied(ImpliedVia::Conflict(_))
        ));
    }

    #[test]
    fn example8_neither_rule_alone_implies_phi13() {
        let ex = example8();
        for i in 0..2 {
            let single = GfdSet::from_vec(vec![ex.sigma.as_slice()[i].clone()]);
            let r = seq_imp(&single, &ex.phi13);
            assert!(
                !r.is_implied(),
                "ϕ13 must not follow from ϕ1{} alone",
                i + 1
            );
        }
    }

    #[test]
    fn example8_results_stable_without_ordering() {
        let ex = example8();
        let opts = ReasonOptions {
            use_dependency_order: false,
            prune_components: false,
        };
        assert!(seq_imp_with(&ex.sigma, &ex.phi13, &opts).is_implied());
        assert!(seq_imp_with(&ex.sigma, &ex.phi14, &opts).is_implied());
    }

    #[test]
    fn unrelated_gfd_is_not_implied() {
        let ex = example8();
        let mut vocab = ex.vocab;
        let d = vocab.attr("D");
        let mut q = Pattern::new();
        let x = q.add_node(vocab.label("a"), "x");
        let phi = Gfd::new("new", q, vec![], vec![Literal::eq_const(x, d, 9i64)]);
        let r = seq_imp(&ex.sigma, &phi);
        assert!(!r.is_implied());
    }

    #[test]
    fn trivial_cases() {
        let ex = example8();
        let mut vocab = ex.vocab;
        let a = vocab.attr("A");
        // Y = ∅ is implied by anything.
        let mut q = Pattern::new();
        let x = q.add_node(vocab.label("a"), "x");
        let trivial = Gfd::new("trivial", q.clone(), vec![], vec![]);
        assert!(seq_imp(&ex.sigma, &trivial).is_implied());
        assert!(seq_imp(&GfdSet::new(), &trivial).is_implied());

        // Y ⊆ X is implied even by the empty Σ.
        let reflexive = Gfd::new(
            "reflexive",
            q.clone(),
            vec![Literal::eq_const(x, a, 1i64)],
            vec![Literal::eq_const(x, a, 1i64)],
        );
        assert!(seq_imp(&GfdSet::new(), &reflexive).is_implied());

        // Inconsistent X implies anything.
        let inconsistent = Gfd::new(
            "inconsistent",
            q,
            vec![Literal::eq_const(x, a, 1i64), Literal::eq_const(x, a, 2i64)],
            vec![Literal::eq_const(x, vocab.attr("whatever"), 3i64)],
        );
        let r = seq_imp(&GfdSet::new(), &inconsistent);
        assert!(matches!(
            r.outcome,
            ImpOutcome::Implied(ImpliedVia::PremiseInconsistent)
        ));
    }

    #[test]
    fn a_gfd_implies_itself() {
        let ex = example8();
        for (_, g) in ex.sigma.iter() {
            let r = seq_imp(&ex.sigma, g);
            assert!(r.is_implied(), "{} must imply itself", g.name);
        }
    }

    #[test]
    fn transitivity_of_variable_literals() {
        // Σ: Q(∅ → x.a = x.b), Q(∅ → x.b = x.c)  ⊨  Q(∅ → x.a = x.c).
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let c = vocab.attr("c");
        let mk = |lits: Vec<Literal>, vocab: &mut Vocab| {
            let mut p = Pattern::new();
            p.add_node(vocab.label("t"), "x");
            Gfd::new("g", p, vec![], lits)
        };
        let _ = t;
        let x = VarId::new(0);
        let sigma = GfdSet::from_vec(vec![
            mk(vec![Literal::eq_attr(x, a, x, b)], &mut vocab),
            mk(vec![Literal::eq_attr(x, b, x, c)], &mut vocab),
        ]);
        let phi = mk(vec![Literal::eq_attr(x, a, x, c)], &mut vocab);
        assert!(seq_imp(&sigma, &phi).is_implied());
        let phi_wrong = mk(vec![Literal::eq_const(x, a, 1i64)], &mut vocab);
        assert!(!seq_imp(&sigma, &phi_wrong).is_implied());
    }
}
