//! The general rule layer: dependencies with *consequence actions*.
//!
//! A [`Dependency`] generalizes the GFD `ϕ = Q[x̄](X → Y)` by replacing the
//! literal-conjunction consequence `Y` with a [`Consequence`] action:
//!
//! * [`Consequence::Literals`] — today's GFDs, byte-for-byte compatible
//!   with [`Gfd`] (the [`Dependency::from_gfd`] / [`Dependency::as_gfd`]
//!   shim keeps existing call sites compiling during the migration);
//! * [`Consequence::Generate`] — graph-generating dependencies (GGDs,
//!   Shimomura et al.): the consequence asserts the *existence* of a
//!   target subgraph — fresh nodes, fresh edges and attribute
//!   assignments, with variable bindings into the premise match — and the
//!   chase *creates* it when no extension of the match realizes it.
//!
//! Every future dependency class (TGDs/EGDs, keys) slots in behind the
//! same enum. Sets of dependencies are [`DepSet`], the generalized `Σ`;
//! the reasoning drivers route literal-only sets through the original
//! GFD algorithms unchanged and mixed sets through the chase-based
//! semantics (`gfd-chase`), see DESIGN.md §10.

use crate::error::Conflict;
use crate::gfd::Gfd;
use crate::literal::{Literal, Operand};
use crate::sigma::GfdSet;
use gfd_graph::{AttrId, GfdId, MatchIndex, NodeId, Pattern, TopologyView, VarId, Vocab};
use std::fmt;

/// The attribute predicate realization checks call for each assignment
/// literal: detection passes concrete data-graph evaluation, the chase
/// passes `EqRel` deducibility. The literal only references variables
/// already bound in the assignment slice.
pub type AttrPred<'a> = dyn FnMut(&Literal, &[NodeId]) -> bool + 'a;

/// The binding callback [`GenerateConsequence::materialize`] hands each
/// attribute assignment to (the chase binds/merges into its relation).
pub type AttrBind<'a> = dyn FnMut(&Literal, &[NodeId]) -> Result<(), Conflict> + 'a;

/// What a dependency asserts about each premise match.
#[derive(Clone, Debug)]
pub enum Consequence {
    /// A conjunction of attribute literals over the premise variables —
    /// the classic GFD consequence `Y`.
    Literals(Vec<Literal>),
    /// A target subgraph that must exist as an extension of the premise
    /// match — the GGD consequence. Enforcement *generates* the missing
    /// part; detection reports it as a violation with a witness of the
    /// missing subgraph.
    Generate(GenerateConsequence),
}

impl Consequence {
    /// True iff this is a generating consequence.
    pub fn is_generating(&self) -> bool {
        matches!(self, Consequence::Generate(_))
    }

    /// Size contribution to `|ϕ|`.
    pub fn size(&self) -> usize {
        match self {
            Consequence::Literals(lits) => lits.iter().map(Literal::size).sum(),
            Consequence::Generate(gen) => gen.size(),
        }
    }

    /// Attributes mentioned by the consequence (used by the dependency
    /// ordering heuristics).
    pub fn attrs(&self) -> Vec<AttrId> {
        match self {
            Consequence::Literals(lits) => lits.iter().flat_map(Literal::attrs).collect(),
            Consequence::Generate(gen) => gen.attrs.iter().flat_map(Literal::attrs).collect(),
        }
    }
}

/// A generating consequence: the target pattern `Q_t[x̄, ȳ]` of a GGD.
///
/// The target [`Pattern`] extends the premise pattern's variable space:
/// its first [`shared`](GenerateConsequence::shared) variables alias the
/// premise variables (same labels, same display names, **no** premise
/// edges — those are already guaranteed by the match), the remaining
/// variables are *fresh* nodes to find-or-create. `edges()` of the target
/// pattern are the generated edges (between any two target variables),
/// and [`attrs`](GenerateConsequence::attrs) are attribute assignments
/// over the combined variable space.
#[derive(Clone, Debug)]
pub struct GenerateConsequence {
    /// The target pattern: premise variables (nodes only) followed by
    /// fresh variables, with the generated edges.
    pub pattern: Pattern,
    /// Number of leading target variables shared with the premise.
    pub shared: usize,
    /// Attribute assignments over the target variables (`v.A = c` or
    /// `v.A = u.B`).
    pub attrs: Vec<Literal>,
}

impl GenerateConsequence {
    /// Start a target pattern over `premise`: its variables are copied
    /// (labels and names, no edges); add fresh nodes, generated edges and
    /// attribute assignments afterwards.
    pub fn over(premise: &Pattern) -> Self {
        let mut pattern = Pattern::new();
        for v in premise.vars() {
            pattern.add_node(premise.label(v), premise.var_name(v));
        }
        GenerateConsequence {
            shared: premise.node_count(),
            pattern,
            attrs: Vec::new(),
        }
    }

    /// Add a fresh node to generate. Its label must be concrete (the
    /// chase cannot materialize a wildcard-labelled node).
    pub fn add_fresh(&mut self, label: gfd_graph::LabelId, name: impl Into<String>) -> VarId {
        assert!(
            !label.is_wildcard(),
            "generated nodes need a concrete label"
        );
        self.pattern.add_node(label, name)
    }

    /// Add a generated edge between target variables. The label must be
    /// concrete for the same reason as [`add_fresh`](Self::add_fresh).
    pub fn add_edge(&mut self, src: VarId, label: gfd_graph::LabelId, dst: VarId) {
        assert!(
            !label.is_wildcard(),
            "generated edges need a concrete label"
        );
        self.pattern.add_edge(src, label, dst);
    }

    /// Add an attribute assignment.
    pub fn push_attr(&mut self, lit: Literal) {
        self.attrs.push(lit);
    }

    /// The fresh (generated) target variables.
    pub fn fresh_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        (self.shared..self.pattern.node_count()).map(VarId::new)
    }

    /// Number of fresh variables.
    pub fn fresh_count(&self) -> usize {
        self.pattern.node_count() - self.shared
    }

    /// True iff there is nothing to generate: no fresh nodes, no edges,
    /// no attribute assignments. A trivial consequence is realized by
    /// every match.
    pub fn is_trivial(&self) -> bool {
        self.fresh_count() == 0 && self.pattern.edge_count() == 0 && self.attrs.is_empty()
    }

    /// Size contribution: fresh nodes + generated edges + attr literals.
    pub fn size(&self) -> usize {
        self.fresh_count()
            + self.pattern.edge_count()
            + self.attrs.iter().map(Literal::size).sum::<usize>()
    }

    fn assert_well_formed(&self, name: &str, premise: &Pattern) {
        assert_eq!(
            self.shared,
            premise.node_count(),
            "GGD `{name}`: target pattern must share every premise variable"
        );
        let n = self.pattern.node_count();
        assert!(
            n >= self.shared,
            "GGD `{name}`: target smaller than premise"
        );
        for v in premise.vars() {
            assert_eq!(
                self.pattern.label(v),
                premise.label(v),
                "GGD `{name}`: shared variable {v} changes label"
            );
        }
        for v in self.fresh_vars() {
            assert!(
                !self.pattern.label(v).is_wildcard(),
                "GGD `{name}`: generated node {v} has a wildcard label"
            );
        }
        for e in self.pattern.edges() {
            assert!(
                !e.label.is_wildcard(),
                "GGD `{name}`: generated edge has a wildcard label"
            );
        }
        for lit in &self.attrs {
            for v in lit.vars() {
                assert!(
                    v.index() < n,
                    "GGD `{name}` attr assignment references unknown variable {v}"
                );
            }
        }
    }

    /// Is the consequence *realized* at premise match `m`: does some
    /// extension of `m` to the fresh variables exist in the indexed graph
    /// such that every generated edge is present and every attribute
    /// assignment passes `attr_ok`?
    ///
    /// `attr_ok` abstracts the attribute semantics: detection checks
    /// concrete data-graph values, the chase checks deducibility in the
    /// equivalence relation. The literal handed to it only references
    /// variables already assigned in the slice.
    pub fn realized<I: MatchIndex>(&self, index: &I, m: &[NodeId], attr_ok: &mut AttrPred) -> bool {
        let total = self.pattern.node_count();
        debug_assert!(m.len() >= self.shared);
        let mut asn: Vec<NodeId> = vec![NodeId::new(0); total];
        asn[..self.shared].copy_from_slice(&m[..self.shared]);

        // Bucket each structural/attribute check at the highest variable
        // it mentions: the check runs as soon as that variable is bound.
        let mut edge_at: Vec<Vec<usize>> = vec![Vec::new(); total.max(1)];
        for (i, e) in self.pattern.edges().iter().enumerate() {
            edge_at[e.src.index().max(e.dst.index())].push(i);
        }
        let mut attr_at: Vec<Vec<usize>> = vec![Vec::new(); total.max(1)];
        for (i, lit) in self.attrs.iter().enumerate() {
            let hi = lit.vars().map(VarId::index).max().unwrap_or(0);
            attr_at[hi].push(i);
        }

        let check_at = |v: usize, asn: &[NodeId], attr_ok: &mut AttrPred| -> bool {
            let edges = self.pattern.edges();
            edge_at[v].iter().all(|&i| {
                let e = &edges[i];
                index
                    .view()
                    .has_edge_pattern(asn[e.src.index()], e.label, asn[e.dst.index()])
            }) && attr_at[v].iter().all(|&i| attr_ok(&self.attrs[i], asn))
        };

        // Checks fully determined by the shared prefix run once, up front.
        for v in 0..self.shared {
            if !check_at(v, &asn, attr_ok) {
                return false;
            }
        }
        if total == self.shared {
            return true;
        }

        // Backtracking extension search over the fresh variables.
        fn search<I: MatchIndex>(
            gen: &GenerateConsequence,
            index: &I,
            asn: &mut [NodeId],
            v: usize,
            check_at: &dyn Fn(usize, &[NodeId], &mut AttrPred) -> bool,
            attr_ok: &mut AttrPred,
        ) -> bool {
            if v == gen.pattern.node_count() {
                return true;
            }
            for &cand in index.candidates(gen.pattern.label(VarId::new(v))) {
                asn[v] = cand;
                if check_at(v, asn, attr_ok) && search(gen, index, asn, v + 1, check_at, attr_ok) {
                    return true;
                }
            }
            false
        }
        search(self, index, &mut asn, self.shared, &check_at, attr_ok)
    }

    /// Materialize the consequence at premise match `m`: create one node
    /// per fresh variable, add every generated edge, then hand each
    /// attribute assignment to `bind` with the combined assignment.
    /// Returns the fresh node ids (in fresh-variable order).
    pub fn materialize(
        &self,
        graph: &mut gfd_graph::Graph,
        m: &[NodeId],
        bind: &mut AttrBind,
    ) -> Result<Vec<NodeId>, Conflict> {
        let mut asn: Vec<NodeId> = Vec::with_capacity(self.pattern.node_count());
        asn.extend_from_slice(&m[..self.shared]);
        let mut fresh = Vec::with_capacity(self.fresh_count());
        for v in self.fresh_vars() {
            let node = graph.add_node(self.pattern.label(v));
            asn.push(node);
            fresh.push(node);
        }
        for e in self.pattern.edges() {
            graph.add_edge(asn[e.src.index()], e.label, asn[e.dst.index()]);
        }
        for lit in &self.attrs {
            bind(lit, &asn)?;
        }
        Ok(fresh)
    }
}

/// Is a generating consequence deducible under the equivalence relation
/// `eq` at match `m` — the GGD analogue of
/// [`crate::canonical::consequence_deducible`]? Attribute assignments are
/// checked by class deduction; the structural part is probed on `index`.
pub fn generate_deducible<I: MatchIndex>(
    eq: &mut crate::eq::EqRel,
    index: &I,
    gen: &GenerateConsequence,
    m: &[NodeId],
) -> bool {
    gen.realized(index, m, &mut |lit, asn| {
        let k1 = (asn[lit.var.index()], lit.attr);
        match &lit.rhs {
            Operand::Const(c) => eq.deduces_const(k1, *c),
            Operand::Attr(v2, a2) => eq.deduces_eq(k1, (asn[v2.index()], *a2)),
        }
    })
}

/// A dependency: a premise (pattern + source literals) plus a consequence
/// action. The generalized rule everything above `gfd-core` speaks.
#[derive(Clone, Debug)]
pub struct Dependency {
    /// Human-readable name.
    pub name: String,
    /// The premise pattern `Q[x̄]`.
    pub pattern: Pattern,
    /// The premise literals `X` (empty = always satisfied).
    pub premise: Vec<Literal>,
    /// The consequence action.
    pub consequence: Consequence,
}

impl Dependency {
    /// Build a dependency, checking well-formedness (literals reference
    /// pattern variables; generating targets extend the premise).
    pub fn new(
        name: impl Into<String>,
        pattern: Pattern,
        premise: Vec<Literal>,
        consequence: Consequence,
    ) -> Self {
        let dep = Dependency {
            name: name.into(),
            pattern,
            premise,
            consequence,
        };
        dep.assert_well_formed();
        dep
    }

    fn assert_well_formed(&self) {
        let n = self.pattern.node_count();
        assert!(n > 0, "dependency `{}` has an empty pattern", self.name);
        for lit in &self.premise {
            for v in lit.vars() {
                assert!(
                    v.index() < n,
                    "dependency `{}` references unknown variable {v}",
                    self.name
                );
            }
        }
        match &self.consequence {
            Consequence::Literals(lits) => {
                for lit in lits {
                    for v in lit.vars() {
                        assert!(
                            v.index() < n,
                            "dependency `{}` references unknown variable {v}",
                            self.name
                        );
                    }
                }
            }
            Consequence::Generate(gen) => gen.assert_well_formed(&self.name, &self.pattern),
        }
    }

    /// Lift a GFD into the general model (the migration shim).
    pub fn from_gfd(gfd: Gfd) -> Self {
        Dependency {
            name: gfd.name,
            pattern: gfd.pattern,
            premise: gfd.premise,
            consequence: Consequence::Literals(gfd.consequence),
        }
    }

    /// The reverse shim: a literal-consequence dependency as a [`Gfd`]
    /// (clone), `None` for generating dependencies.
    pub fn as_gfd(&self) -> Option<Gfd> {
        match &self.consequence {
            Consequence::Literals(lits) => Some(Gfd::new(
                self.name.clone(),
                self.pattern.clone(),
                self.premise.clone(),
                lits.clone(),
            )),
            Consequence::Generate(_) => None,
        }
    }

    /// True iff the consequence generates.
    pub fn is_generating(&self) -> bool {
        self.consequence.is_generating()
    }

    /// True iff the premise is empty (`∅ → …`).
    pub fn has_empty_premise(&self) -> bool {
        self.premise.is_empty()
    }

    /// True iff the consequence is a literal denial (`… → false`).
    /// Generating consequences are never denials.
    pub fn is_denial(&self) -> bool {
        match &self.consequence {
            Consequence::Literals(lits) => crate::gfd::literals_are_denial(lits),
            Consequence::Generate(_) => false,
        }
    }

    /// The size `|ϕ| = |Q| + |X| + |Y|`.
    pub fn size(&self) -> usize {
        self.pattern.size()
            + self.premise.iter().map(Literal::size).sum::<usize>()
            + self.consequence.size()
    }

    /// Attributes mentioned in the premise.
    pub fn premise_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.premise.iter().flat_map(Literal::attrs)
    }

    /// Render with names resolved through `vocab`. Literal-consequence
    /// dependencies render exactly like the [`Gfd`] they shim.
    pub fn display<'a>(&'a self, vocab: &'a Vocab) -> DependencyDisplay<'a> {
        DependencyDisplay { dep: self, vocab }
    }
}

impl From<Gfd> for Dependency {
    fn from(gfd: Gfd) -> Self {
        Dependency::from_gfd(gfd)
    }
}

/// Helper for rendering a dependency with human-readable names.
pub struct DependencyDisplay<'a> {
    dep: &'a Dependency,
    vocab: &'a Vocab,
}

impl fmt::Display for DependencyDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.dep;
        if let Some(gfd) = d.as_gfd() {
            // Byte-identical to the GFD rendering.
            return write!(f, "{}", gfd.display(self.vocab));
        }
        let Consequence::Generate(gen) = &d.consequence else {
            unreachable!("as_gfd covered the literal arm")
        };
        write!(f, "{}: Q[", d.name)?;
        for (i, v) in d.pattern.vars().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{}:{}",
                d.pattern.var_name(v),
                self.vocab.label_name(d.pattern.label(v))
            )?;
        }
        write!(f, "](")?;
        if d.premise.is_empty() {
            write!(f, "∅")?;
        }
        for (i, l) in d.premise.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{}", l.display(&d.pattern, self.vocab))?;
        }
        write!(f, " → CREATE ")?;
        let mut first = true;
        for v in gen.fresh_vars() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(
                f,
                "{}:{}",
                gen.pattern.var_name(v),
                self.vocab.label_name(gen.pattern.label(v))
            )?;
        }
        for e in gen.pattern.edges() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(
                f,
                "{} -{}-> {}",
                gen.pattern.var_name(e.src),
                self.vocab.label_name(e.label),
                gen.pattern.var_name(e.dst)
            )?;
        }
        for l in &gen.attrs {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}", l.display(&gen.pattern, self.vocab))?;
        }
        write!(f, ")")
    }
}

/// A set Σ of dependencies — the generalized rule set. Identified by
/// position like [`GfdSet`], with the same [`GfdId`] id space so the
/// detection and chase layers keep their keying.
#[derive(Clone, Debug, Default)]
pub struct DepSet {
    deps: Vec<Dependency>,
}

impl DepSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a vector of dependencies.
    pub fn from_vec(deps: Vec<Dependency>) -> Self {
        DepSet { deps }
    }

    /// Lift a GFD set (the migration shim; preserves order and ids).
    pub fn from_gfds(gfds: GfdSet) -> Self {
        DepSet {
            deps: gfds
                .as_slice()
                .iter()
                .cloned()
                .map(Dependency::from_gfd)
                .collect(),
        }
    }

    /// Lower into a GFD set; `None` if any dependency generates.
    pub fn to_gfds(&self) -> Option<GfdSet> {
        self.deps.iter().map(Dependency::as_gfd).collect()
    }

    /// Add a dependency, returning its id.
    pub fn push(&mut self, dep: Dependency) -> GfdId {
        let id = GfdId::new(self.deps.len());
        self.deps.push(dep);
        id
    }

    /// The dependency with the given id.
    pub fn get(&self, id: GfdId) -> &Dependency {
        &self.deps[id.index()]
    }

    /// Number of dependencies.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// True iff any dependency has a generating consequence (the routing
    /// predicate: literal-only sets run the original GFD algorithms).
    pub fn has_generating(&self) -> bool {
        self.deps.iter().any(Dependency::is_generating)
    }

    /// Iterate `(id, dependency)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (GfdId, &Dependency)> {
        self.deps
            .iter()
            .enumerate()
            .map(|(i, d)| (GfdId::new(i), d))
    }

    /// The underlying slice.
    pub fn as_slice(&self) -> &[Dependency] {
        &self.deps
    }

    /// Total size `|Σ|`.
    pub fn total_size(&self) -> usize {
        self.deps.iter().map(Dependency::size).sum()
    }

    /// Render every dependency on its own line.
    pub fn display_all(&self, vocab: &Vocab) -> String {
        let mut s = String::new();
        for d in &self.deps {
            s.push_str(&d.display(vocab).to_string());
            s.push('\n');
        }
        s
    }
}

impl From<GfdSet> for DepSet {
    fn from(gfds: GfdSet) -> Self {
        DepSet::from_gfds(gfds)
    }
}

impl FromIterator<Dependency> for DepSet {
    fn from_iter<T: IntoIterator<Item = Dependency>>(iter: T) -> Self {
        DepSet {
            deps: iter.into_iter().collect(),
        }
    }
}

impl std::ops::Index<GfdId> for DepSet {
    type Output = Dependency;
    fn index(&self, id: GfdId) -> &Dependency {
        &self.deps[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eq::EqRel;
    use gfd_graph::{Graph, LabelIndex, Value, ValueId, Vocab};

    fn person_meeting(vocab: &mut Vocab) -> Dependency {
        let person = vocab.label("person");
        let meeting = vocab.label("meeting");
        let knows = vocab.label("knows");
        let attends = vocab.label("attends");
        let city = vocab.attr("city");
        let mut p = Pattern::new();
        let x = p.add_node(person, "x");
        let y = p.add_node(person, "y");
        p.add_edge(x, knows, y);
        let mut gen = GenerateConsequence::over(&p);
        let m = gen.add_fresh(meeting, "m");
        gen.add_edge(x, attends, m);
        gen.add_edge(y, attends, m);
        gen.push_attr(Literal::eq_attr(m, city, x, city));
        Dependency::new(
            "meetup",
            p,
            vec![Literal::eq_attr(x, city, y, city)],
            Consequence::Generate(gen),
        )
    }

    #[test]
    fn shims_round_trip_literal_rules() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let a = vocab.attr("a");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let gfd = Gfd::new("g", p, vec![], vec![Literal::eq_const(x, a, 1i64)]);
        let dep = Dependency::from_gfd(gfd.clone());
        assert!(!dep.is_generating());
        let back = dep.as_gfd().unwrap();
        assert_eq!(back.name, gfd.name);
        assert_eq!(back.premise, gfd.premise);
        assert_eq!(back.consequence, gfd.consequence);
        // Display is byte-identical through the shim.
        assert_eq!(
            dep.display(&vocab).to_string(),
            gfd.display(&vocab).to_string()
        );
    }

    #[test]
    fn depset_shims_preserve_order_and_ids() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let a = vocab.attr("a");
        let mk = |name: &str| {
            let mut p = Pattern::new();
            let x = p.add_node(t, "x");
            Gfd::new(name, p, vec![], vec![Literal::eq_const(x, a, 1i64)])
        };
        let gfds = GfdSet::from_vec(vec![mk("a"), mk("b")]);
        let deps = DepSet::from_gfds(gfds.clone());
        assert_eq!(deps.len(), 2);
        assert!(!deps.has_generating());
        assert_eq!(deps[GfdId::new(1)].name, "b");
        let back = deps.to_gfds().unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(GfdId::new(0)).name, "a");
    }

    #[test]
    fn generating_set_cannot_lower() {
        let mut vocab = Vocab::new();
        let deps = DepSet::from_vec(vec![person_meeting(&mut vocab)]);
        assert!(deps.has_generating());
        assert!(deps.to_gfds().is_none());
        assert!(deps.get(GfdId::new(0)).as_gfd().is_none());
    }

    #[test]
    fn realization_finds_existing_extension() {
        let mut vocab = Vocab::new();
        let dep = person_meeting(&mut vocab);
        let Consequence::Generate(gen) = &dep.consequence else {
            unreachable!()
        };
        let person = vocab.label("person");
        let meeting = vocab.label("meeting");
        let knows = vocab.label("knows");
        let attends = vocab.label("attends");
        let city = vocab.attr("city");

        let mut g = Graph::new();
        let a = g.add_node(person);
        let b = g.add_node(person);
        g.add_edge(a, knows, b);
        g.set_attr(a, city, Value::str("nbo"));
        g.set_attr(b, city, Value::str("nbo"));
        let m: Vec<NodeId> = vec![a, b];

        // No meeting node yet: unrealized.
        let index = LabelIndex::build(&g);
        let mut concrete =
            |lit: &Literal, asn: &[NodeId]| crate::validate::literal_holds(&g, lit, asn);
        assert!(!gen.realized(&index, &m, &mut concrete));

        // Add the meeting with both edges and the right city: realized.
        let mt = g.add_node(meeting);
        g.add_edge(a, attends, mt);
        g.add_edge(b, attends, mt);
        g.set_attr(mt, city, Value::str("nbo"));
        let index = LabelIndex::build(&g);
        let mut concrete =
            |lit: &Literal, asn: &[NodeId]| crate::validate::literal_holds(&g, lit, asn);
        assert!(gen.realized(&index, &m, &mut concrete));

        // Wrong city on the meeting: unrealized again.
        g.set_attr(mt, city, Value::str("mba"));
        let index = LabelIndex::build(&g);
        let mut concrete =
            |lit: &Literal, asn: &[NodeId]| crate::validate::literal_holds(&g, lit, asn);
        assert!(!gen.realized(&index, &m, &mut concrete));
    }

    #[test]
    fn materialize_creates_the_target() {
        let mut vocab = Vocab::new();
        let dep = person_meeting(&mut vocab);
        let Consequence::Generate(gen) = &dep.consequence else {
            unreachable!()
        };
        let person = vocab.label("person");
        let knows = vocab.label("knows");
        let city = vocab.attr("city");

        let mut g = Graph::new();
        let a = g.add_node(person);
        let b = g.add_node(person);
        g.add_edge(a, knows, b);
        let m: Vec<NodeId> = vec![a, b];

        let mut eq = EqRel::new();
        eq.bind((a, city), ValueId::of("nbo")).unwrap();
        let fresh = gen
            .materialize(&mut g, &m, &mut |lit, asn| {
                let k1 = (asn[lit.var.index()], lit.attr);
                match &lit.rhs {
                    Operand::Const(c) => eq.bind(k1, *c).map(|_| ()),
                    Operand::Attr(v2, a2) => eq.merge(k1, (asn[v2.index()], *a2)).map(|_| ()),
                }
            })
            .unwrap();
        assert_eq!(fresh.len(), 1);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        // The generated meeting's city joined x's class.
        assert!(eq.deduces_const((fresh[0], city), ValueId::of("nbo")));
        // Now deducible under the relation.
        let index = LabelIndex::build(&g);
        assert!(generate_deducible(&mut eq, &index, gen, &m));
    }

    #[test]
    fn trivial_generate_is_always_realized() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let mut p = Pattern::new();
        p.add_node(t, "x");
        let gen = GenerateConsequence::over(&p);
        assert!(gen.is_trivial());
        let mut g = Graph::new();
        let n = g.add_node(t);
        let index = LabelIndex::build(&g);
        assert!(gen.realized(&index, &[n], &mut |_, _| false));
    }

    #[test]
    #[should_panic(expected = "concrete label")]
    fn wildcard_fresh_label_rejected() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let mut p = Pattern::new();
        p.add_node(t, "x");
        let mut gen = GenerateConsequence::over(&p);
        gen.add_fresh(gfd_graph::LabelId::WILDCARD, "y");
    }

    #[test]
    fn display_mentions_create() {
        let mut vocab = Vocab::new();
        let dep = person_meeting(&mut vocab);
        let s = dep.display(&vocab).to_string();
        assert!(s.contains("CREATE"), "{s}");
        assert!(s.contains("m:meeting"), "{s}");
        assert!(s.contains("x.city = y.city"), "{s}");
    }
}
