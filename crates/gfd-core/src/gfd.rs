//! Graph functional dependencies `ϕ = Q[x̄](X → Y)`.

use crate::literal::{Literal, Operand};
use gfd_graph::{AttrId, Pattern, Value, VarId, Vocab};
use std::fmt;

/// A graph functional dependency: a graph pattern `Q[x̄]` (topological
/// scope) plus an attribute dependency `X → Y` over the pattern variables
/// (§III of the paper).
#[derive(Clone, Debug)]
pub struct Gfd {
    /// An optional human-readable name (e.g. `phi1`).
    pub name: String,
    /// The pattern `Q[x̄]`.
    pub pattern: Pattern,
    /// The premise literals `X` (empty set = always satisfied).
    pub premise: Vec<Literal>,
    /// The consequence literals `Y` (empty set = trivially satisfied).
    pub consequence: Vec<Literal>,
}

/// The reserved attribute used to encode the Boolean constant `false` as a
/// consequence, per the paper: `false` is syntactic sugar for binding the
/// same attribute to two distinct constants.
pub const FALSE_ATTR_NAME: &str = "__false";

/// Does a literal conjunction encode the Boolean constant `false` — two
/// constant literals on the same variable/attribute with distinct
/// constants? Shared by [`Gfd::is_denial`] and the generalized
/// [`crate::Dependency`].
pub fn literals_are_denial(lits: &[Literal]) -> bool {
    for (i, a) in lits.iter().enumerate() {
        for b in &lits[i + 1..] {
            if a.var == b.var && a.attr == b.attr {
                if let (Operand::Const(va), Operand::Const(vb)) = (&a.rhs, &b.rhs) {
                    if va != vb {
                        return true;
                    }
                }
            }
        }
    }
    false
}

impl Gfd {
    /// Build a GFD, checking that every literal only references pattern
    /// variables.
    pub fn new(
        name: impl Into<String>,
        pattern: Pattern,
        premise: Vec<Literal>,
        consequence: Vec<Literal>,
    ) -> Self {
        let gfd = Gfd {
            name: name.into(),
            pattern,
            premise,
            consequence,
        };
        gfd.assert_well_formed();
        gfd
    }

    fn assert_well_formed(&self) {
        let n = self.pattern.node_count();
        assert!(n > 0, "GFD `{}` has an empty pattern", self.name);
        for lit in self.premise.iter().chain(&self.consequence) {
            for v in lit.vars() {
                assert!(
                    v.index() < n,
                    "GFD `{}` references unknown variable {v}",
                    self.name
                );
            }
        }
    }

    /// Build a GFD whose consequence is the Boolean constant `false`
    /// (e.g. the paper's ϕ1 — "this pattern must not occur with X").
    ///
    /// Encoded, per §III, as two constant literals assigning distinct
    /// constants to the same fresh attribute of the first variable.
    pub fn with_false_consequence(
        name: impl Into<String>,
        pattern: Pattern,
        premise: Vec<Literal>,
        vocab: &mut Vocab,
    ) -> Self {
        let attr = vocab.attr(FALSE_ATTR_NAME);
        let x = VarId::new(0);
        let consequence = vec![
            Literal::eq_const(x, attr, Value::int(0)),
            Literal::eq_const(x, attr, Value::int(1)),
        ];
        Gfd::new(name, pattern, premise, consequence)
    }

    /// True iff the premise is the empty set (`∅ → Y`): such GFDs are
    /// enforced unconditionally and are processed first by the algorithms.
    pub fn has_empty_premise(&self) -> bool {
        self.premise.is_empty()
    }

    /// True iff the consequence encodes the Boolean constant `false`: two
    /// constant literals on the same variable/attribute with distinct
    /// constants.
    pub fn is_denial(&self) -> bool {
        literals_are_denial(&self.consequence)
    }

    /// The size `|ϕ| = |Q| + |X| + |Y|` used by the small-model bounds.
    pub fn size(&self) -> usize {
        self.pattern.size()
            + self.premise.iter().map(Literal::size).sum::<usize>()
            + self.consequence.iter().map(Literal::size).sum::<usize>()
    }

    /// Attribute names mentioned in the premise.
    pub fn premise_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.premise.iter().flat_map(Literal::attrs)
    }

    /// Attribute names mentioned in the consequence.
    pub fn consequence_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.consequence.iter().flat_map(Literal::attrs)
    }

    /// Render with names resolved through `vocab`.
    pub fn display<'a>(&'a self, vocab: &'a Vocab) -> GfdDisplay<'a> {
        GfdDisplay { gfd: self, vocab }
    }
}

/// Helper for rendering a GFD with human-readable names.
pub struct GfdDisplay<'a> {
    gfd: &'a Gfd,
    vocab: &'a Vocab,
}

impl fmt::Display for GfdDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.gfd;
        write!(f, "{}: Q[", g.name)?;
        for (i, v) in g.pattern.vars().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{}:{}",
                g.pattern.var_name(v),
                self.vocab.label_name(g.pattern.label(v))
            )?;
        }
        write!(f, "](")?;
        if g.premise.is_empty() {
            write!(f, "∅")?;
        }
        for (i, l) in g.premise.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{}", l.display(&g.pattern, self.vocab))?;
        }
        write!(f, " → ")?;
        if g.is_denial() {
            write!(f, "false")?;
        } else if g.consequence.is_empty() {
            write!(f, "true")?;
        } else {
            for (i, l) in g.consequence.iter().enumerate() {
                if i > 0 {
                    write!(f, " ∧ ")?;
                }
                write!(f, "{}", l.display(&g.pattern, self.vocab))?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_pattern(vocab: &mut Vocab) -> Pattern {
        let mut p = Pattern::new();
        let x = p.add_node(vocab.label("place"), "x");
        let y = p.add_node(vocab.label("place"), "y");
        p.add_edge(x, vocab.label("locateIn"), y);
        p
    }

    #[test]
    fn build_and_inspect() {
        let mut vocab = Vocab::new();
        let p = simple_pattern(&mut vocab);
        let a = vocab.attr("pop");
        let g = Gfd::new(
            "phi",
            p,
            vec![],
            vec![Literal::eq_const(VarId::new(0), a, 1i64)],
        );
        assert!(g.has_empty_premise());
        assert!(!g.is_denial());
        // |Q| = 2 nodes + 1 edge = 3, |X| = 0, |Y| = 2.
        assert_eq!(g.size(), 5);
    }

    #[test]
    fn false_consequence_is_denial() {
        let mut vocab = Vocab::new();
        let p = simple_pattern(&mut vocab);
        let g = Gfd::with_false_consequence("phi1", p, vec![], &mut vocab);
        assert!(g.is_denial());
        assert_eq!(g.consequence.len(), 2);
        let shown = g.display(&vocab).to_string();
        assert!(shown.contains("false"), "{shown}");
        assert!(shown.contains("∅"), "{shown}");
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn literal_on_foreign_variable_panics() {
        let mut vocab = Vocab::new();
        let p = simple_pattern(&mut vocab);
        let a = vocab.attr("pop");
        let _ = Gfd::new(
            "bad",
            p,
            vec![],
            vec![Literal::eq_const(VarId::new(9), a, 1i64)],
        );
    }

    #[test]
    fn display_round_trips_names() {
        let mut vocab = Vocab::new();
        let p = simple_pattern(&mut vocab);
        let a = vocab.attr("pop");
        let g = Gfd::new(
            "phi",
            p,
            vec![Literal::eq_const(VarId::new(0), a, 2i64)],
            vec![Literal::eq_attr(VarId::new(0), a, VarId::new(1), a)],
        );
        let s = g.display(&vocab).to_string();
        assert!(s.contains("x.pop = 2"), "{s}");
        assert!(s.contains("x.pop = y.pop"), "{s}");
        assert!(s.contains("x:place"), "{s}");
    }

    #[test]
    fn attr_iterators() {
        let mut vocab = Vocab::new();
        let p = simple_pattern(&mut vocab);
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let g = Gfd::new(
            "phi",
            p,
            vec![Literal::eq_const(VarId::new(0), a, 1i64)],
            vec![Literal::eq_attr(VarId::new(0), b, VarId::new(1), a)],
        );
        assert_eq!(g.premise_attrs().collect::<Vec<_>>(), vec![a]);
        assert_eq!(g.consequence_attrs().collect::<Vec<_>>(), vec![b, a]);
    }
}
