//! Direct validation `G |= ϕ` on concrete data graphs.
//!
//! This is the *application* side of GFDs (inconsistency detection): a
//! violation is a match of the pattern whose premise holds on the actual
//! attribute values but whose consequence does not. Also used by tests to
//! verify that models produced by `SeqSat` indeed satisfy Σ.

use crate::gfd::Gfd;
use crate::literal::{Literal, Operand};
use crate::sigma::GfdSet;
use gfd_graph::{GfdId, Graph, LabelIndex};
use gfd_match::{HomSearch, Match, MatchPlan, SearchLimits};
use std::ops::ControlFlow;

/// A witnessed violation of a GFD in a data graph.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which GFD is violated.
    pub gfd: GfdId,
    /// The match whose entities break the dependency.
    pub m: Match,
}

/// Does `m` satisfy a single literal on the concrete attributes of `graph`?
pub fn literal_holds(graph: &Graph, lit: &Literal, m: &[gfd_graph::NodeId]) -> bool {
    let left = graph.attr(m[lit.var.index()], lit.attr);
    match &lit.rhs {
        Operand::Const(c) => left == Some(*c),
        Operand::Attr(v2, a2) => {
            let right = graph.attr(m[v2.index()], *a2);
            matches!((left, right), (Some(a), Some(b)) if a == b)
        }
    }
}

/// Does `m` satisfy the premise `X` of `gfd` on concrete attributes?
pub fn premise_holds(graph: &Graph, gfd: &Gfd, m: &[gfd_graph::NodeId]) -> bool {
    gfd.premise.iter().all(|l| literal_holds(graph, l, m))
}

/// Does `m` satisfy the consequence `Y` of `gfd` on concrete attributes?
pub fn consequence_holds(graph: &Graph, gfd: &Gfd, m: &[gfd_graph::NodeId]) -> bool {
    gfd.consequence.iter().all(|l| literal_holds(graph, l, m))
}

/// `G |= ϕ`: every match satisfying `X` also satisfies `Y`.
pub fn graph_satisfies(graph: &Graph, gfd: &Gfd) -> bool {
    let index = LabelIndex::build(graph);
    graph_satisfies_indexed(graph, &index, gfd)
}

/// [`graph_satisfies`] with a prebuilt label index.
pub fn graph_satisfies_indexed(graph: &Graph, index: &LabelIndex, gfd: &Gfd) -> bool {
    let plan = MatchPlan::build(&gfd.pattern, None, Some(index));
    let mut ok = true;
    let mut search = HomSearch::new(graph, index, &gfd.pattern, &plan);
    search.run(
        |m| {
            if premise_holds(graph, gfd, &m) && !consequence_holds(graph, gfd, &m) {
                ok = false;
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        },
        SearchLimits::none(),
    );
    ok
}

/// `G |= Σ`: satisfies every GFD in the set.
pub fn graph_satisfies_all(graph: &Graph, sigma: &GfdSet) -> bool {
    let index = LabelIndex::build(graph);
    sigma
        .iter()
        .all(|(_, gfd)| graph_satisfies_indexed(graph, &index, gfd))
}

/// Collect up to `limit` violations of Σ in `graph` (the error-detection
/// application the paper motivates with ϕ1–ϕ4).
pub fn find_violations(graph: &Graph, sigma: &GfdSet, limit: usize) -> Vec<Violation> {
    let index = LabelIndex::build(graph);
    let mut out = Vec::new();
    for (id, gfd) in sigma.iter() {
        if out.len() >= limit {
            break;
        }
        let plan = MatchPlan::build(&gfd.pattern, None, Some(&index));
        let mut search = HomSearch::new(graph, &index, &gfd.pattern, &plan);
        search.run(
            |m| {
                if premise_holds(graph, gfd, &m) && !consequence_holds(graph, gfd, &m) {
                    out.push(Violation { gfd: id, m });
                    if out.len() >= limit {
                        return ControlFlow::Break(());
                    }
                }
                ControlFlow::Continue(())
            },
            SearchLimits::none(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Literal;
    use gfd_graph::{Pattern, Value, VarId, Vocab};

    /// The paper's ϕ1 scenario: Bamburi airport located in Bamburi which is
    /// "part of" the airport — a cyclic inconsistency.
    #[test]
    fn phi1_catches_dbpedia_cycle() {
        let mut vocab = Vocab::new();
        let place = vocab.label("place");
        let locate = vocab.label("locateIn");
        let part = vocab.label("partOf");

        let mut q1 = Pattern::new();
        let x = q1.add_node(place, "x");
        let y = q1.add_node(place, "y");
        q1.add_edge(x, locate, y);
        q1.add_edge(y, part, x);
        let phi1 = Gfd::with_false_consequence("phi1", q1, vec![], &mut vocab);

        // Clean graph: airport in city, no back-edge.
        let mut clean = Graph::new();
        let airport = clean.add_node(place);
        let city = clean.add_node(place);
        clean.add_edge(airport, locate, city);
        assert!(graph_satisfies(&clean, &phi1));

        // Dirty graph: add the partOf back-edge.
        let mut dirty = clean.clone();
        dirty.add_edge(city, part, airport);
        assert!(!graph_satisfies(&dirty, &phi1));

        let sigma = GfdSet::from_vec(vec![phi1]);
        let violations = find_violations(&dirty, &sigma, 10);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].m[0], airport);
        assert_eq!(violations[0].m[1], city);
    }

    /// The paper's ϕ2 scenario: topSpeed is functional — one object, one
    /// top speed.
    #[test]
    fn phi2_catches_two_top_speeds() {
        let mut vocab = Vocab::new();
        let speed = vocab.label("speed");
        let top = vocab.label("topSpeed");
        let val = vocab.attr("val");

        let mut q2 = Pattern::new();
        let x = q2.add_node(gfd_graph::LabelId::WILDCARD, "x");
        let y = q2.add_node(speed, "y");
        let z = q2.add_node(speed, "z");
        q2.add_edge(x, top, y);
        q2.add_edge(x, top, z);
        let phi2 = Gfd::new(
            "phi2",
            q2,
            vec![],
            vec![Literal::eq_attr(VarId::new(1), val, VarId::new(2), val)],
        );

        // The DBpedia tank: two distinct topSpeed values.
        let mut g = Graph::new();
        let tank = g.add_node(vocab.label("tank"));
        let s1 = g.add_node(speed);
        let s2 = g.add_node(speed);
        g.add_edge(tank, top, s1);
        g.add_edge(tank, top, s2);
        g.set_attr(s1, val, Value::str("24.076"));
        g.set_attr(s2, val, Value::str("33.336"));
        assert!(!graph_satisfies(&g, &phi2));

        // Fixing the value restores satisfaction.
        g.set_attr(s2, val, Value::str("24.076"));
        assert!(graph_satisfies(&g, &phi2));
    }

    #[test]
    fn premise_gates_the_consequence() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let gfd = Gfd::new(
            "g",
            p,
            vec![Literal::eq_const(x, a, 1i64)],
            vec![Literal::eq_const(x, b, 2i64)],
        );
        let mut g = Graph::new();
        let n = g.add_node(t);
        // No attribute a: premise fails (missing attr ⇒ trivially
        // satisfied).
        assert!(graph_satisfies(&g, &gfd));
        g.set_attr(n, a, Value::int(1));
        // Premise holds, consequence missing: violation.
        assert!(!graph_satisfies(&g, &gfd));
        g.set_attr(n, b, Value::int(2));
        assert!(graph_satisfies(&g, &gfd));
    }

    #[test]
    fn violation_limit_is_respected() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let a = vocab.attr("a");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let gfd = Gfd::new("g", p, vec![], vec![Literal::eq_const(x, a, 1i64)]);
        let mut g = Graph::new();
        for _ in 0..10 {
            g.add_node(t);
        }
        let sigma = GfdSet::from_vec(vec![gfd]);
        assert_eq!(find_violations(&g, &sigma, 3).len(), 3);
        assert_eq!(find_violations(&g, &sigma, 100).len(), 10);
    }
}
