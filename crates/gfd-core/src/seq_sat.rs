//! `SeqSat` — the sequential exact satisfiability algorithm (§IV-C).
//!
//! Built directly on the small model property (Theorem 1): construct the
//! canonical graph `GΣ`, enumerate homomorphic matches of every pattern,
//! enforce attribute dependencies into the equivalence relation, and report
//! *unsatisfiable* on the first conflict. If the fixpoint completes without
//! conflict, a concrete model (a Σ-bounded population of `GΣ`) is returned.
//!
//! Since the scheduler unification, `SeqSat` *is* the parallel driver
//! instantiated with one worker ([`crate::driver::run_reason`] with
//! `workers = 1`): same unit generation, same ordering, same enforcement
//! loop, run inline on the calling thread with broadcast a natural no-op.

use crate::budget::Interrupt;
use crate::canonical::CanonicalGraph;
use crate::driver::{run_reason, Goal, ReasonConfig, TerminalEvent};
use crate::eq::EqRel;
use crate::error::Conflict;
use crate::model::extract_model;
use crate::sigma::GfdSet;
use gfd_runtime::RunMetrics;

/// Tuning knobs shared by the sequential algorithms (a subset of the full
/// [`ReasonConfig`]; the TTL/pipelining/splitting knobs only matter with
/// more than one worker).
#[derive(Clone, Debug)]
pub struct ReasonOptions {
    /// Process work units in dependency-graph topological order (paper
    /// default). With `false`, input order is used — the ablation baseline.
    pub use_dependency_order: bool,
    /// Skip (pattern, component) pairs whose label profiles cannot host a
    /// match (the paper's "pruning to eliminate irrelevant matches early").
    pub prune_components: bool,
}

impl Default for ReasonOptions {
    fn default() -> Self {
        ReasonOptions {
            use_dependency_order: true,
            prune_components: true,
        }
    }
}

impl ReasonOptions {
    /// The single-worker driver configuration these options denote.
    pub(crate) fn sequential_config(&self) -> ReasonConfig {
        ReasonConfig {
            workers: 1,
            split: false,
            use_dependency_order: self.use_dependency_order,
            prune_components: self.prune_components,
            ..ReasonConfig::default()
        }
    }
}

/// Counters reported by the reasoning algorithms — the unified
/// [`RunMetrics`] (sequential runs populate the same counters with one
/// worker).
pub type ReasonStats = RunMetrics;

/// The outcome of satisfiability checking.
#[derive(Clone, Debug)]
pub enum SatOutcome {
    /// Σ has a model; the witness is a Σ-bounded population of `GΣ`.
    Satisfiable(Box<gfd_graph::Graph>),
    /// Enforcing Σ on `GΣ` forces two distinct constants onto one
    /// attribute class.
    Unsatisfiable(Conflict),
    /// The run was cut short — deadline, unit budget, or a panic abort —
    /// before the fixpoint: no definite answer. Never produced with an
    /// unlimited [`crate::Budget`] and no faults.
    Unknown(Interrupt),
}

/// Result + statistics.
#[derive(Clone, Debug)]
pub struct SatResult {
    /// Satisfiable (with model) or the witnessing conflict.
    pub outcome: SatOutcome,
    /// Counters.
    pub stats: ReasonStats,
}

impl SatResult {
    /// True iff Σ was found satisfiable.
    pub fn is_satisfiable(&self) -> bool {
        matches!(self.outcome, SatOutcome::Satisfiable(_))
    }

    /// True iff the run degraded without a definite answer.
    pub fn is_unknown(&self) -> bool {
        matches!(self.outcome, SatOutcome::Unknown(_))
    }

    /// The interrupt that degraded the run, if any.
    pub fn interrupt(&self) -> Option<&Interrupt> {
        match &self.outcome {
            SatOutcome::Unknown(i) => Some(i),
            _ => None,
        }
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&gfd_graph::Graph> {
        match &self.outcome {
            SatOutcome::Satisfiable(m) => Some(m),
            _ => None,
        }
    }
}

/// Check satisfiability of Σ with default options.
pub fn seq_sat(sigma: &GfdSet) -> SatResult {
    seq_sat_with(sigma, &ReasonOptions::default())
}

/// Check satisfiability of Σ sequentially: the `workers = 1`
/// instantiation of the unified driver.
pub fn seq_sat_with(sigma: &GfdSet, opts: &ReasonOptions) -> SatResult {
    sat_with_config(sigma, &opts.sequential_config())
}

/// Check satisfiability of Σ under a full driver configuration. This is
/// the shared entry point behind both `SeqSat` (`cfg.workers == 1`) and
/// `ParSat` (`gfd_parallel::par_sat`).
pub fn sat_with_config(sigma: &GfdSet, cfg: &ReasonConfig) -> SatResult {
    if sigma.is_empty() {
        // Vacuously satisfiable; the empty population works.
        return SatResult {
            outcome: SatOutcome::Satisfiable(Box::new(gfd_graph::Graph::new())),
            stats: RunMetrics {
                workers: cfg.workers.max(1),
                ..Default::default()
            },
        };
    }

    let (canon, _node_of) = CanonicalGraph::for_sigma(sigma);
    let run = run_reason(sigma, Goal::Sat, EqRel::new(), &canon, cfg);
    let outcome = match run.terminal {
        Some(TerminalEvent::Conflict(c)) => SatOutcome::Unsatisfiable(c),
        Some(TerminalEvent::Consequence) => {
            unreachable!("consequence events are implication-only")
        }
        None => match Interrupt::from_outcome(&run.sched_outcome) {
            // Degraded run, no conflict found: the answer is unknown —
            // claiming UNSAT here would turn a timeout into a wrong
            // definite verdict.
            Some(interrupt) => SatOutcome::Unknown(interrupt),
            None => {
                let mut engine = run.engine.expect("quiescent run produces merged state");
                SatOutcome::Satisfiable(Box::new(extract_model(&canon.graph, &mut engine.eq)))
            }
        },
    };
    SatResult {
        outcome,
        stats: run.metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gfd::Gfd;
    use crate::literal::Literal;
    use crate::validate::graph_satisfies_all;
    use gfd_graph::{LabelId, Pattern, VarId, Vocab};

    fn unary_pattern(vocab: &mut Vocab, label: &str) -> Pattern {
        let mut p = Pattern::new();
        p.add_node(vocab.label(label), "x");
        p
    }

    /// The paper's Example 2, first half: ϕ5 = Q5[x](∅ → x.A = 0) and
    /// ϕ6 = Q5[x](∅ → x.A = 1) with Q5 a single wildcard node.
    #[test]
    fn example2_wildcard_conflict_is_unsat() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let mut q5a = Pattern::new();
        q5a.add_node(LabelId::WILDCARD, "x");
        let mut q5b = Pattern::new();
        q5b.add_node(LabelId::WILDCARD, "x");
        let sigma = GfdSet::from_vec(vec![
            Gfd::new(
                "phi5",
                q5a,
                vec![],
                vec![Literal::eq_const(VarId::new(0), a, 0i64)],
            ),
            Gfd::new(
                "phi6",
                q5b,
                vec![],
                vec![Literal::eq_const(VarId::new(0), a, 1i64)],
            ),
        ]);
        let r = seq_sat(&sigma);
        assert!(!r.is_satisfiable());
    }

    /// The paper's Example 2, second half: ϕ7 and ϕ8 interact through
    /// distinct patterns Q6, Q7 and are jointly unsatisfiable.
    ///
    /// Q6: x -p-> y(b), x -p-> z(b), x -p-> w(c)   (y,z labelled b; w c)
    /// Q7: x -p-> y(b), x -p-> z(c), x -p-> w(c)
    /// ϕ7 = Q6(∅ → x.A = 0 ∧ y.B = 1); ϕ8 = Q7(y.B = 1 → x.A = 1).
    fn q6(vocab: &mut Vocab) -> Pattern {
        let a = vocab.label("a");
        let b = vocab.label("b");
        let c = vocab.label("c");
        let p_lbl = vocab.label("p");
        let mut q = Pattern::new();
        let x = q.add_node(a, "x");
        let y = q.add_node(b, "y");
        let z = q.add_node(b, "z");
        let w = q.add_node(c, "w");
        q.add_edge(x, p_lbl, y);
        q.add_edge(x, p_lbl, z);
        q.add_edge(x, p_lbl, w);
        q
    }

    fn q7(vocab: &mut Vocab) -> Pattern {
        let a = vocab.label("a");
        let b = vocab.label("b");
        let c = vocab.label("c");
        let p_lbl = vocab.label("p");
        let mut q = Pattern::new();
        let x = q.add_node(a, "x");
        let y = q.add_node(b, "y");
        let z = q.add_node(c, "z");
        let w = q.add_node(c, "w");
        q.add_edge(x, p_lbl, y);
        q.add_edge(x, p_lbl, z);
        q.add_edge(x, p_lbl, w);
        q
    }

    #[test]
    fn example2_cross_pattern_interaction_is_unsat() {
        let mut vocab = Vocab::new();
        let attr_a = vocab.attr("A");
        let attr_b = vocab.attr("B");
        let phi7 = Gfd::new(
            "phi7",
            q6(&mut vocab),
            vec![],
            vec![
                Literal::eq_const(VarId::new(0), attr_a, 0i64),
                Literal::eq_const(VarId::new(1), attr_b, 1i64),
            ],
        );
        let phi8 = Gfd::new(
            "phi8",
            q7(&mut vocab),
            vec![Literal::eq_const(VarId::new(1), attr_b, 1i64)],
            vec![Literal::eq_const(VarId::new(0), attr_a, 1i64)],
        );
        // Each alone is satisfiable.
        let alone7 = seq_sat(&GfdSet::from_vec(vec![phi7.clone()]));
        assert!(alone7.is_satisfiable());
        let alone8 = seq_sat(&GfdSet::from_vec(vec![phi8.clone()]));
        assert!(alone8.is_satisfiable());
        // Together they are not: Q7 matches into Q6's canonical copy
        // (z,w ↦ the c node), forcing x.A to both 0 and 1.
        let both = seq_sat(&GfdSet::from_vec(vec![phi7, phi8]));
        assert!(!both.is_satisfiable());
    }

    /// The paper's Example 4: Σ = {ϕ7, ϕ9, ϕ10} is unsatisfiable through a
    /// pending-recheck chain (the inverted-index mechanism).
    #[test]
    fn example4_inverted_index_chain_is_unsat() {
        let mut vocab = Vocab::new();
        let attr_a = vocab.attr("A");
        let attr_b = vocab.attr("B");
        let attr_c = vocab.attr("C");
        let phi7 = Gfd::new(
            "phi7",
            q6(&mut vocab),
            vec![],
            vec![
                Literal::eq_const(VarId::new(0), attr_a, 0i64),
                Literal::eq_const(VarId::new(1), attr_b, 1i64),
            ],
        );
        let phi9 = Gfd::new(
            "phi9",
            q6(&mut vocab),
            vec![Literal::eq_const(VarId::new(1), attr_b, 1i64)],
            vec![Literal::eq_const(VarId::new(3), attr_c, 1i64)],
        );
        let phi10 = Gfd::new(
            "phi10",
            q7(&mut vocab),
            vec![Literal::eq_const(VarId::new(3), attr_c, 1i64)],
            vec![Literal::eq_const(VarId::new(0), attr_a, 1i64)],
        );
        let sigma = GfdSet::from_vec(vec![phi7, phi9, phi10]);
        let r = seq_sat(&sigma);
        assert!(!r.is_satisfiable());
        // Regardless of ordering options (Church–Rosser).
        let r2 = seq_sat_with(
            &sigma,
            &ReasonOptions {
                use_dependency_order: false,
                prune_components: true,
            },
        );
        assert!(!r2.is_satisfiable());
        let r3 = seq_sat_with(
            &sigma,
            &ReasonOptions {
                use_dependency_order: false,
                prune_components: false,
            },
        );
        assert!(!r3.is_satisfiable());
    }

    #[test]
    fn satisfiable_set_produces_a_valid_model() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let x = VarId::new(0);
        let g0 = Gfd::new(
            "g0",
            unary_pattern(&mut vocab, "t"),
            vec![],
            vec![Literal::eq_const(x, a, 1i64)],
        );
        let g1 = Gfd::new(
            "g1",
            unary_pattern(&mut vocab, "t"),
            vec![Literal::eq_const(x, a, 1i64)],
            vec![Literal::eq_attr(x, a, x, b)],
        );
        let sigma = GfdSet::from_vec(vec![g0, g1]);
        let r = seq_sat(&sigma);
        assert!(r.is_satisfiable());
        let model = r.model().unwrap();
        // The model must satisfy every GFD in Σ and host a match of each.
        assert!(graph_satisfies_all(model, &sigma));
        assert!(model.node_count() >= 2);
        assert!(
            r.stats.matches >= 4,
            "t-nodes cross-match: 2 gfds × 2 nodes"
        );
    }

    #[test]
    fn denial_with_empty_premise_is_unsat() {
        let mut vocab = Vocab::new();
        let p = unary_pattern(&mut vocab, "t");
        let phi = Gfd::with_false_consequence("deny", p, vec![], &mut vocab);
        let r = seq_sat(&GfdSet::from_vec(vec![phi]));
        assert!(!r.is_satisfiable());
    }

    #[test]
    fn conditional_denial_is_satisfiable() {
        // "no t-node has a = 1" is satisfiable: a model binds a ≠ 1 (or
        // leaves it free).
        let mut vocab = Vocab::new();
        let a = vocab.attr("a");
        let p = unary_pattern(&mut vocab, "t");
        let phi = Gfd::with_false_consequence(
            "deny_a1",
            p,
            vec![Literal::eq_const(VarId::new(0), a, 1i64)],
            &mut vocab,
        );
        let r = seq_sat(&GfdSet::from_vec(vec![phi]));
        assert!(r.is_satisfiable());
        assert!(graph_satisfies_all(
            r.model().unwrap(),
            &GfdSet::from_vec(vec![])
        ));
    }

    #[test]
    fn empty_sigma_is_satisfiable() {
        let r = seq_sat(&GfdSet::new());
        assert!(r.is_satisfiable());
    }
}
