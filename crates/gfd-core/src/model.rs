//! Model extraction: turn a conflict-free equivalence relation over a
//! canonical graph into a concrete Σ-bounded population (Theorem 1's
//! witness).

use crate::eq::EqRel;
use gfd_graph::{Graph, Value, ValueId};

/// Prefix of the fresh constants assigned to unbound classes. Reserved:
/// generators and the DSL never produce values starting with it, so fresh
/// values are distinct from every constant in Σ (required for the
/// population to satisfy Σ — see §IV-C, step (c)).
pub const FRESH_PREFIX: &str = "\u{22a5}"; // ⊥

/// Populate `canonical` with the attributes of `eq`: bound classes get
/// their constant, unbound classes get pairwise-distinct fresh constants.
/// Only *materialized* keys are populated — attributes that premises
/// merely mentioned stay absent, as the population is free to omit them.
pub fn extract_model(canonical: &Graph, eq: &mut EqRel) -> Graph {
    let mut model = canonical.clone();
    let mut fresh = 0usize;
    for (constant, members) in eq.materialized_classes() {
        let value = constant.unwrap_or_else(|| {
            fresh += 1;
            // Post-quiescence, single-threaded: interning here is off
            // the hot path.
            ValueId::of(format!("{FRESH_PREFIX}{fresh}"))
        });
        for (node, attr) in members {
            model.set_attr_id(node, attr, value);
        }
    }
    model
}

/// Is `value` one of the fresh constants invented by [`extract_model`]?
pub fn is_fresh(value: &Value) -> bool {
    value.as_str().is_some_and(|s| s.starts_with(FRESH_PREFIX))
}

/// Id-level variant of [`is_fresh`].
pub fn is_fresh_id(value: ValueId) -> bool {
    value.as_str().is_some_and(|s| s.starts_with(FRESH_PREFIX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::Vocab;

    #[test]
    fn bound_and_unbound_classes_materialize() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let mut g = Graph::new();
        let n0 = g.add_node(t);
        let n1 = g.add_node(t);

        let mut eq = EqRel::new();
        eq.bind((n0, a), ValueId::of(7i64)).unwrap();
        eq.merge((n0, b), (n1, a)).unwrap();
        eq.ensure((n1, b));

        let model = extract_model(&g, &mut eq);
        assert_eq!(model.attr(n0, a), Some(ValueId::of(7i64)));
        // Merged class shares one fresh value.
        let v1 = model.attr(n0, b).unwrap();
        let v2 = model.attr(n1, a).unwrap();
        assert_eq!(v1, v2);
        assert!(is_fresh_id(v1));
        // `ensure` only registers a latent key (a premise mention): the
        // population is free to omit it, and extraction does.
        assert_eq!(model.attr(n1, b), None);
        assert!(!eq.is_materialized((n1, b)));
        // Σ-bounded: attributes added = materialized keys (3 of 4).
        assert_eq!(eq.key_count(), 4);
        assert_eq!(model.attr_count(), 3);
    }

    #[test]
    fn latent_key_materializes_on_merge() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let mut g = Graph::new();
        let n0 = g.add_node(t);

        let mut eq = EqRel::new();
        eq.ensure((n0, a));
        assert!(!eq.is_materialized((n0, a)));
        // A merge endpoint is forced to exist: it materializes.
        eq.merge((n0, a), (n0, b)).unwrap();
        let model = extract_model(&g, &mut eq);
        assert!(model.attr(n0, a).is_some());
        assert_eq!(model.attr(n0, a), model.attr(n0, b));
        assert_eq!(model.attr_count(), 2);
    }

    #[test]
    fn structure_is_preserved() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let e = vocab.label("e");
        let mut g = Graph::new();
        let n0 = g.add_node(t);
        let n1 = g.add_node(t);
        g.add_edge(n0, e, n1);
        let mut eq = EqRel::new();
        let model = extract_model(&g, &mut eq);
        assert_eq!(model.node_count(), 2);
        assert!(model.has_edge(n0, e, n1));
        assert_eq!(model.attr_count(), 0);
    }

    #[test]
    fn fresh_detection() {
        assert!(is_fresh(&Value::str("\u{22a5}3")));
        assert!(!is_fresh(&Value::str("ordinary")));
        assert!(!is_fresh(&Value::int(3)));
    }
}
