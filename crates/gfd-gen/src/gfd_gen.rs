//! Random GFD set generation (the paper's "GFD generator", §VII).
//!
//! The generator controls `|Σ|`, the maximum pattern size `k` and the
//! maximum literal count `l`. Base sets are **satisfiable by
//! construction**: every constant literal on attribute `A` uses the
//! canonical constant of `A`, and variable literals equate the *same*
//! attribute across variables — so all enforcements agree and the
//! assignment `A ↦ canonical(A)` is always a model. Unsatisfiability is
//! introduced explicitly by [`inject_direct_conflict`] /
//! [`inject_chain_conflict`] (the paper expands mined sets with up to 10
//! random GFDs for the satisfiability tests).

use crate::pattern_gen::{mutate_pattern, random_pattern, PatternGenConfig};
use crate::schema::Schema;
use gfd_core::{Gfd, GfdSet, Literal};
use gfd_graph::{AttrId, Pattern, Value, VarId, Vocab};
use rand::prelude::*;

/// The canonical constant of attribute `A` — what satisfiable-by-
/// construction sets bind everywhere.
pub fn canonical_value(attr: AttrId) -> Value {
    Value::Int(attr.0 as i64)
}

/// A constant guaranteed different from [`canonical_value`], used to
/// inject conflicts.
pub fn conflicting_value(attr: AttrId) -> Value {
    Value::Int(-(attr.0 as i64) - 1)
}

/// Knobs for GFD set generation.
#[derive(Clone, Debug)]
pub struct GfdGenConfig {
    /// Number of GFDs (`|Σ|`, up to 10000 in the paper).
    pub count: usize,
    /// Maximum pattern node count (`k`, up to 10).
    pub k: usize,
    /// Maximum literal count per side (`l`, up to 5).
    pub l: usize,
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
    /// Number of shared seed patterns; each GFD mutates one of them.
    /// Shared seeds create the cross-pattern matches that make reasoning
    /// interact (mined GFDs share frequent sub-patterns). 0 disables.
    pub seed_patterns: usize,
    /// Fraction of GFDs with an empty premise (`∅ → Y`), the cascade
    /// seeds.
    pub empty_premise_fraction: f64,
    /// Probability a literal is `x.A = y.A` rather than `x.A = c`.
    pub var_literal_prob: f64,
    /// Wildcard probability for pattern nodes.
    pub wildcard_prob: f64,
}

impl Default for GfdGenConfig {
    fn default() -> Self {
        GfdGenConfig {
            count: 100,
            k: 6,
            l: 5,
            seed: 42,
            seed_patterns: 16,
            empty_premise_fraction: 0.3,
            var_literal_prob: 0.35,
            wildcard_prob: 0.05,
        }
    }
}

fn random_literal(
    pattern: &Pattern,
    schema: &Schema,
    var_literal_prob: f64,
    rng: &mut impl Rng,
) -> Literal {
    let k = pattern.node_count();
    let x = VarId::new(rng.random_range(0..k));
    let attr = schema.sample_attr(rng);
    if k >= 2 && rng.random_bool(var_literal_prob) {
        let y = VarId::new(rng.random_range(0..k));
        Literal::eq_attr(x, attr, y, attr)
    } else {
        Literal::eq_const(x, attr, canonical_value(attr))
    }
}

/// Generate a satisfiable-by-construction set Σ.
pub fn generate_sigma(schema: &Schema, cfg: &GfdGenConfig) -> GfdSet {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pat_cfg = PatternGenConfig {
        k: cfg.k.max(1),
        extra_edge_prob: 0.25,
        wildcard_prob: cfg.wildcard_prob,
    };
    // Seed patterns are a little smaller so mutation stays within k.
    let seed_cfg = PatternGenConfig {
        k: cfg.k.max(2).saturating_sub(1).max(1),
        ..pat_cfg.clone()
    };
    let seeds: Vec<Pattern> = (0..cfg.seed_patterns)
        .map(|_| random_pattern(schema, &seed_cfg, &mut rng))
        .collect();

    let mut gfds = Vec::with_capacity(cfg.count);
    for i in 0..cfg.count {
        let pattern = if seeds.is_empty() {
            random_pattern(schema, &pat_cfg, &mut rng)
        } else {
            let seed = &seeds[rng.random_range(0..seeds.len())];
            mutate_pattern(seed, schema, &mut rng)
        };
        let premise = if rng.random_bool(cfg.empty_premise_fraction) {
            Vec::new()
        } else {
            let n = rng.random_range(1..=cfg.l.max(1));
            (0..n)
                .map(|_| random_literal(&pattern, schema, cfg.var_literal_prob, &mut rng))
                .collect()
        };
        let n = rng.random_range(1..=cfg.l.max(1));
        let consequence = (0..n)
            .map(|_| random_literal(&pattern, schema, cfg.var_literal_prob, &mut rng))
            .collect();
        gfds.push(Gfd::new(format!("gen{i}"), pattern, premise, consequence));
    }
    GfdSet::from_vec(gfds)
}

/// Inject a pair of directly conflicting GFDs sharing one pattern:
/// `∅ → x.A = c` and `∅ → x.A = c'`. Makes Σ unsatisfiable, discovered
/// after a single cross-copy match.
pub fn inject_direct_conflict(sigma: &mut GfdSet, schema: &Schema, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pattern = random_pattern(
        schema,
        &PatternGenConfig {
            k: 2,
            extra_edge_prob: 0.0,
            wildcard_prob: 0.0,
        },
        &mut rng,
    );
    let attr = schema.sample_attr(&mut rng);
    let x = VarId::new(0);
    sigma.push(Gfd::new(
        "conflict_a",
        pattern.clone(),
        vec![],
        vec![Literal::eq_const(x, attr, canonical_value(attr))],
    ));
    sigma.push(Gfd::new(
        "conflict_b",
        pattern,
        vec![],
        vec![Literal::eq_const(x, attr, conflicting_value(attr))],
    ));
}

/// Inject an Example-4-style conflict chain of the given depth: a seed
/// `∅ → x.A₀ = c₀`, propagation rules `x.Aᵢ₋₁ = cᵢ₋₁ → x.Aᵢ = cᵢ`, and a
/// final rule contradicting `A₀`. All share one pattern, so cross-copy
/// matches drive the cascade; the conflict only surfaces after `depth`
/// pending re-checks.
pub fn inject_chain_conflict(sigma: &mut GfdSet, schema: &Schema, depth: usize, seed: u64) {
    assert!(depth >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let pattern = random_pattern(
        schema,
        &PatternGenConfig {
            k: 2,
            extra_edge_prob: 0.0,
            wildcard_prob: 0.0,
        },
        &mut rng,
    );
    let x = VarId::new(0);
    let attrs: Vec<AttrId> = (0..depth).map(|_| schema.sample_attr(&mut rng)).collect();
    sigma.push(Gfd::new(
        "chain_seed",
        pattern.clone(),
        vec![],
        vec![Literal::eq_const(x, attrs[0], canonical_value(attrs[0]))],
    ));
    for i in 1..depth {
        sigma.push(Gfd::new(
            format!("chain_{i}"),
            pattern.clone(),
            vec![Literal::eq_const(
                x,
                attrs[i - 1],
                canonical_value(attrs[i - 1]),
            )],
            vec![Literal::eq_const(x, attrs[i], canonical_value(attrs[i]))],
        ));
    }
    sigma.push(Gfd::new(
        "chain_final",
        pattern,
        vec![Literal::eq_const(
            x,
            attrs[depth - 1],
            canonical_value(attrs[depth - 1]),
        )],
        vec![Literal::eq_const(x, attrs[0], conflicting_value(attrs[0]))],
    ));
}

/// Build a probe GFD that **is** implied by Σ: take a random ϕ ∈ Σ,
/// extend its pattern (a supergraph still hosts ϕ's identity match) and
/// keep its `X → Y`.
pub fn implied_probe(sigma: &GfdSet, schema: &Schema, seed: u64) -> Option<Gfd> {
    if sigma.is_empty() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let base = &sigma.as_slice()[rng.random_range(0..sigma.len())];
    let pattern = mutate_pattern(&base.pattern, schema, &mut rng);
    Some(Gfd::new(
        format!("implied_from_{}", base.name),
        pattern,
        base.premise.clone(),
        base.consequence.clone(),
    ))
}

/// Build a probe GFD that is **not** implied by a satisfiable-by-
/// construction Σ: its consequence uses a fresh attribute no rule can
/// derive.
pub fn not_implied_probe(sigma: &GfdSet, schema: &Schema, vocab: &mut Vocab, seed: u64) -> Gfd {
    let mut rng = StdRng::seed_from_u64(seed);
    let pattern = if sigma.is_empty() {
        random_pattern(
            schema,
            &PatternGenConfig {
                k: 3,
                extra_edge_prob: 0.2,
                wildcard_prob: 0.0,
            },
            &mut rng,
        )
    } else {
        let base = &sigma.as_slice()[rng.random_range(0..sigma.len())];
        mutate_pattern(&base.pattern, schema, &mut rng)
    };
    let fresh = vocab.attr(&format!("fresh_probe_{seed}"));
    let premise = if pattern.node_count() > 0 && rng.random_bool(0.5) {
        vec![random_literal(&pattern, schema, 0.0, &mut rng)]
    } else {
        vec![]
    };
    Gfd::new(
        format!("not_implied_{seed}"),
        pattern,
        premise,
        vec![Literal::eq_const(VarId::new(0), fresh, 1i64)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Dataset;
    use gfd_core::{seq_imp, seq_sat};

    fn small_cfg(count: usize, seed: u64) -> GfdGenConfig {
        GfdGenConfig {
            count,
            k: 4,
            l: 3,
            seed,
            seed_patterns: 4,
            ..Default::default()
        }
    }

    #[test]
    fn generated_sets_are_satisfiable() {
        let mut vocab = Vocab::new();
        let schema = Schema::new(Dataset::Tiny, &mut vocab);
        for seed in 0..5 {
            let sigma = generate_sigma(&schema, &small_cfg(20, seed));
            assert_eq!(sigma.len(), 20);
            let r = seq_sat(&sigma);
            assert!(r.is_satisfiable(), "seed={seed} must be satisfiable");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut vocab = Vocab::new();
        let schema = Schema::new(Dataset::Tiny, &mut vocab);
        let a = generate_sigma(&schema, &small_cfg(10, 7));
        let b = generate_sigma(&schema, &small_cfg(10, 7));
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            assert_eq!(x.premise, y.premise);
            assert_eq!(x.consequence, y.consequence);
            assert_eq!(x.pattern.edges(), y.pattern.edges());
        }
    }

    #[test]
    fn patterns_respect_k_and_l() {
        let mut vocab = Vocab::new();
        let schema = Schema::new(Dataset::DBpedia, &mut vocab);
        let cfg = GfdGenConfig {
            count: 30,
            k: 5,
            l: 2,
            ..Default::default()
        };
        let sigma = generate_sigma(&schema, &cfg);
        for (_, g) in sigma.iter() {
            assert!(g.pattern.node_count() <= 5);
            assert!(g.premise.len() <= 2);
            assert!((1..=2).contains(&g.consequence.len()));
        }
    }

    #[test]
    fn direct_conflict_makes_unsat() {
        let mut vocab = Vocab::new();
        let schema = Schema::new(Dataset::Tiny, &mut vocab);
        let mut sigma = generate_sigma(&schema, &small_cfg(10, 1));
        inject_direct_conflict(&mut sigma, &schema, 99);
        assert!(!seq_sat(&sigma).is_satisfiable());
    }

    #[test]
    fn chain_conflict_makes_unsat_at_every_depth() {
        let mut vocab = Vocab::new();
        let schema = Schema::new(Dataset::Tiny, &mut vocab);
        for depth in [1, 2, 4] {
            let mut sigma = GfdSet::new();
            inject_chain_conflict(&mut sigma, &schema, depth, 5);
            assert!(
                !seq_sat(&sigma).is_satisfiable(),
                "depth={depth} must be unsat"
            );
        }
    }

    #[test]
    fn probes_have_expected_implication_status() {
        let mut vocab = Vocab::new();
        let schema = Schema::new(Dataset::Tiny, &mut vocab);
        let sigma = generate_sigma(&schema, &small_cfg(12, 3));
        for seed in 0..4 {
            let implied = implied_probe(&sigma, &schema, seed).unwrap();
            assert!(
                seq_imp(&sigma, &implied).is_implied(),
                "implied probe seed={seed}"
            );
            let not = not_implied_probe(&sigma, &schema, &mut vocab, seed);
            assert!(
                !seq_imp(&sigma, &not).is_implied(),
                "not-implied probe seed={seed}"
            );
        }
    }

    #[test]
    fn canonical_and_conflicting_values_differ() {
        let a = AttrId::new(3);
        assert_ne!(canonical_value(a), conflicting_value(a));
    }
}
