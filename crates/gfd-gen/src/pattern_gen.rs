//! Random graph-pattern generation.
//!
//! Patterns are grown as random trees (guaranteeing connectivity) with
//! optional extra edges (creating cycles, which the paper's GFDs support —
//! e.g. the cyclic Q1) and optional wildcard labels.

use crate::schema::Schema;
use gfd_graph::{LabelId, Pattern, VarId};
use rand::prelude::*;

/// Knobs for the pattern generator.
#[derive(Clone, Debug)]
pub struct PatternGenConfig {
    /// Number of pattern nodes (the paper's `k`, 2–10 in Exp-3).
    pub k: usize,
    /// Probability of adding one extra (cycle-forming) edge per node.
    pub extra_edge_prob: f64,
    /// Probability that a node is labelled with the wildcard `_`.
    pub wildcard_prob: f64,
}

impl Default for PatternGenConfig {
    fn default() -> Self {
        PatternGenConfig {
            k: 4,
            extra_edge_prob: 0.3,
            wildcard_prob: 0.1,
        }
    }
}

/// Generate a random connected pattern with `cfg.k` nodes.
pub fn random_pattern(schema: &Schema, cfg: &PatternGenConfig, rng: &mut impl Rng) -> Pattern {
    assert!(cfg.k >= 1);
    let mut p = Pattern::new();
    for i in 0..cfg.k {
        let label = if rng.random_bool(cfg.wildcard_prob) {
            LabelId::WILDCARD
        } else {
            schema.sample_node_label(rng)
        };
        p.add_node(label, format!("x{i}"));
    }
    // Random tree: attach node i (i ≥ 1) to a random earlier node, with a
    // random direction.
    for i in 1..cfg.k {
        let other = VarId::new(rng.random_range(0..i));
        let me = VarId::new(i);
        let label = schema.sample_edge_label(rng);
        if rng.random_bool(0.5) {
            p.add_edge(other, label, me);
        } else {
            p.add_edge(me, label, other);
        }
    }
    // Extra edges close cycles.
    if cfg.k >= 2 {
        for _ in 0..cfg.k {
            if rng.random_bool(cfg.extra_edge_prob) {
                let a = VarId::new(rng.random_range(0..cfg.k));
                let b = VarId::new(rng.random_range(0..cfg.k));
                if a != b {
                    p.add_edge(a, schema.sample_edge_label(rng), b);
                }
            }
        }
    }
    p
}

/// Mutate a seed pattern: clone it and, with equal probability, append a
/// new leaf node or add one extra edge. Used to derive families of
/// overlapping patterns from shared seeds (mimicking mined GFDs, which
/// share frequent sub-patterns).
pub fn mutate_pattern(seed: &Pattern, schema: &Schema, rng: &mut impl Rng) -> Pattern {
    let mut p = seed.clone();
    let k = p.node_count();
    if rng.random_bool(0.5) {
        let label = schema.sample_node_label(rng);
        let leaf = p.add_node(label, format!("x{k}"));
        let anchor = VarId::new(rng.random_range(0..k));
        if rng.random_bool(0.5) {
            p.add_edge(anchor, schema.sample_edge_label(rng), leaf);
        } else {
            p.add_edge(leaf, schema.sample_edge_label(rng), anchor);
        }
    } else if k >= 2 {
        let a = VarId::new(rng.random_range(0..k));
        let b = VarId::new(rng.random_range(0..k));
        if a != b {
            p.add_edge(a, schema.sample_edge_label(rng), b);
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Dataset;
    use gfd_graph::Vocab;

    fn setup() -> (Schema, Vocab) {
        let mut vocab = Vocab::new();
        let schema = Schema::new(Dataset::Tiny, &mut vocab);
        (schema, vocab)
    }

    #[test]
    fn patterns_are_connected_with_k_nodes() {
        let (schema, _) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        for k in 1..=8 {
            let cfg = PatternGenConfig {
                k,
                ..Default::default()
            };
            for _ in 0..20 {
                let p = random_pattern(&schema, &cfg, &mut rng);
                assert_eq!(p.node_count(), k);
                assert!(p.is_connected(), "k={k}");
                assert!(p.edge_count() >= k - 1);
            }
        }
    }

    #[test]
    fn wildcard_probability_zero_means_no_wildcards() {
        let (schema, _) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = PatternGenConfig {
            k: 5,
            wildcard_prob: 0.0,
            ..Default::default()
        };
        for _ in 0..20 {
            let p = random_pattern(&schema, &cfg, &mut rng);
            assert!(p.vars().all(|v| !p.label(v).is_wildcard()));
        }
    }

    #[test]
    fn wildcard_probability_one_means_all_wildcards() {
        let (schema, _) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = PatternGenConfig {
            k: 3,
            wildcard_prob: 1.0,
            ..Default::default()
        };
        let p = random_pattern(&schema, &cfg, &mut rng);
        assert!(p.vars().all(|v| p.label(v).is_wildcard()));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (schema, _) = setup();
        let cfg = PatternGenConfig::default();
        let a = random_pattern(&schema, &cfg, &mut StdRng::seed_from_u64(9));
        let b = random_pattern(&schema, &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.node_labels(), b.node_labels());
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn mutation_keeps_connectivity_and_grows() {
        let (schema, _) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let seed = random_pattern(
            &schema,
            &PatternGenConfig {
                k: 4,
                ..Default::default()
            },
            &mut rng,
        );
        for _ in 0..20 {
            let m = mutate_pattern(&seed, &schema, &mut rng);
            assert!(m.is_connected());
            assert!(m.node_count() >= seed.node_count());
            assert!(m.size() >= seed.size());
        }
    }
}
