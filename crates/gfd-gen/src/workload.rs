//! Named experiment workloads: the inputs of every table and figure in
//! §VII, reproducible per seed.

use crate::gfd_gen::{
    generate_sigma, implied_probe, inject_chain_conflict, not_implied_probe, GfdGenConfig,
};
use crate::schema::{Dataset, Schema};
use gfd_core::{Gfd, GfdSet};
use gfd_graph::Vocab;

/// An implication probe with its expected answer.
#[derive(Clone, Debug)]
pub struct ImpProbe {
    /// The candidate GFD ϕ.
    pub phi: Gfd,
    /// Whether `Σ |= ϕ` should hold.
    pub expect_implied: bool,
}

/// A complete reasoning workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name (e.g. `DBpedia`).
    pub name: String,
    /// Vocabulary shared by Σ and the probes.
    pub vocab: Vocab,
    /// The schema labels were drawn from.
    pub schema: Schema,
    /// The rule set.
    pub sigma: GfdSet,
    /// Implication probes (for the `*Imp` experiments).
    pub probes: Vec<ImpProbe>,
}

/// Build the "real-life" workload for a dataset (Fig. 5 and Exp-1): a
/// satisfiable mined-style set with `size` rules, patterns up to 6 nodes
/// and up to 5 literals, plus implication probes.
///
/// `unsat_chain`: when `Some(depth)`, an Example-4-style conflict chain is
/// appended so satisfiability checking exercises early termination — the
/// paper expands mined sets with up to 10 random GFDs for exactly this.
pub fn real_life_workload(
    dataset: Dataset,
    size: usize,
    seed: u64,
    unsat_chain: Option<usize>,
) -> Workload {
    let mut vocab = Vocab::new();
    let schema = Schema::new(dataset, &mut vocab);
    let cfg = GfdGenConfig {
        count: size,
        k: 6,
        l: 5,
        seed,
        seed_patterns: (size / 24).clamp(4, 64),
        ..Default::default()
    };
    let mut sigma = generate_sigma(&schema, &cfg);
    if let Some(depth) = unsat_chain {
        inject_chain_conflict(&mut sigma, &schema, depth, seed ^ 0xDEAD);
    }
    let probes = make_probes(&sigma, &schema, &mut vocab, seed);
    Workload {
        name: dataset.name().to_string(),
        vocab,
        schema,
        sigma,
        probes,
    }
}

/// Build the synthetic workload of Exp-2/Exp-3: `size` rules with the
/// given `k` and `l` over the DBpedia-like schema (the paper generates
/// synthetic GFDs "with seed patterns, frequent edges and active
/// attributes from DBpedia").
pub fn synthetic_workload(size: usize, k: usize, l: usize, seed: u64) -> Workload {
    let mut vocab = Vocab::new();
    let schema = Schema::new(Dataset::DBpedia, &mut vocab);
    let cfg = GfdGenConfig {
        count: size,
        k,
        l,
        seed,
        seed_patterns: (size / 24).clamp(4, 64),
        ..Default::default()
    };
    let sigma = generate_sigma(&schema, &cfg);
    let probes = make_probes(&sigma, &schema, &mut vocab, seed);
    Workload {
        name: format!("synthetic(|Σ|={size},k={k},l={l})"),
        vocab,
        schema,
        sigma,
        probes,
    }
}

fn make_probes(sigma: &GfdSet, schema: &Schema, vocab: &mut Vocab, seed: u64) -> Vec<ImpProbe> {
    let mut probes = Vec::new();
    for i in 0..3u64 {
        if let Some(phi) = implied_probe(sigma, schema, seed.wrapping_add(i)) {
            probes.push(ImpProbe {
                phi,
                expect_implied: true,
            });
        }
        probes.push(ImpProbe {
            phi: not_implied_probe(sigma, schema, vocab, seed.wrapping_add(100 + i)),
            expect_implied: false,
        });
    }
    probes
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::{seq_imp, seq_sat};

    #[test]
    fn real_life_workloads_are_satisfiable_without_chain() {
        for dataset in [Dataset::Yago2, Dataset::Tiny] {
            let w = real_life_workload(dataset, 20, 11, None);
            assert_eq!(w.sigma.len(), 20);
            assert!(seq_sat(&w.sigma).is_satisfiable(), "{}", w.name);
            assert!(!w.probes.is_empty());
        }
    }

    #[test]
    fn chain_workloads_are_unsat() {
        let w = real_life_workload(Dataset::Tiny, 15, 3, Some(3));
        assert!(!seq_sat(&w.sigma).is_satisfiable());
    }

    #[test]
    fn probes_answer_as_labelled() {
        let w = synthetic_workload(15, 4, 3, 5);
        for probe in &w.probes {
            let r = seq_imp(&w.sigma, &probe.phi);
            assert_eq!(
                r.is_implied(),
                probe.expect_implied,
                "probe {} mislabelled",
                probe.phi.name
            );
        }
    }

    #[test]
    fn synthetic_workload_is_reproducible() {
        let a = synthetic_workload(10, 4, 2, 9);
        let b = synthetic_workload(10, 4, 2, 9);
        assert_eq!(a.sigma.len(), b.sigma.len());
        for ((_, x), (_, y)) in a.sigma.iter().zip(b.sigma.iter()) {
            assert_eq!(x.consequence, y.consequence);
        }
    }
}
