//! Random property-graph generation, for the error-detection examples and
//! validation tests.

use crate::gfd_gen::canonical_value;
use crate::schema::Schema;
use gfd_core::{Gfd, Operand};
use gfd_graph::{Graph, NodeId, Value};
use rand::prelude::*;

/// Knobs for graph generation.
#[derive(Clone, Debug)]
pub struct GraphGenConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges (uniform endpoints).
    pub edges: usize,
    /// Probability that a node carries each schema attribute.
    pub attr_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        GraphGenConfig {
            nodes: 100,
            edges: 300,
            attr_prob: 0.4,
            seed: 42,
        }
    }
}

/// Generate a random property graph over `schema`. Attribute values are
/// the canonical constants, so graphs start "clean" with respect to
/// satisfiable-by-construction rule sets.
pub fn random_graph(schema: &Schema, cfg: &GraphGenConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = Graph::with_capacity(cfg.nodes);
    for _ in 0..cfg.nodes {
        g.add_node(schema.sample_node_label(&mut rng));
    }
    for _ in 0..cfg.edges {
        let src = NodeId::new(rng.random_range(0..cfg.nodes.max(1)));
        let dst = NodeId::new(rng.random_range(0..cfg.nodes.max(1)));
        g.add_edge(src, schema.sample_edge_label(&mut rng), dst);
    }
    for v in 0..cfg.nodes {
        for &attr in schema.attrs() {
            if rng.random_bool(cfg.attr_prob) {
                g.set_attr(NodeId::new(v), attr, canonical_value(attr));
            }
        }
    }
    g
}

/// Embed a violation of `gfd` into `graph`: add fresh nodes realizing the
/// pattern, set attributes so the premise holds, then break the first
/// consequence literal. Returns the planted node ids (pattern-variable
/// order).
///
/// Wildcard node/edge labels are instantiated with schema samples.
pub fn plant_violation(graph: &mut Graph, gfd: &Gfd, schema: &Schema, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let planted: Vec<NodeId> = gfd
        .pattern
        .vars()
        .map(|v| {
            let label = gfd.pattern.label(v);
            let label = if label.is_wildcard() {
                schema.sample_node_label(&mut rng)
            } else {
                label
            };
            graph.add_node(label)
        })
        .collect();
    for e in gfd.pattern.edges() {
        let label = if e.label.is_wildcard() {
            schema.sample_edge_label(&mut rng)
        } else {
            e.label
        };
        graph.add_edge(planted[e.src.index()], label, planted[e.dst.index()]);
    }
    // Satisfy the premise on concrete values.
    for lit in &gfd.premise {
        let node = planted[lit.var.index()];
        match &lit.rhs {
            Operand::Const(c) => graph.set_attr_id(node, lit.attr, *c),
            Operand::Attr(v2, a2) => {
                let shared = Value::str(format!("planted_{seed}"));
                graph.set_attr(node, lit.attr, shared.clone());
                graph.set_attr(planted[v2.index()], *a2, shared);
            }
        }
    }
    // Break one consequence literal *without* touching attributes the
    // premise pinned (otherwise the planted match stops satisfying X and
    // is no violation at all).
    let premise_keys: Vec<(usize, gfd_graph::AttrId)> = gfd
        .premise
        .iter()
        .flat_map(|l| {
            let mut ks = vec![(l.var.index(), l.attr)];
            if let Operand::Attr(v2, a2) = &l.rhs {
                ks.push((v2.index(), *a2));
            }
            ks
        })
        .collect();
    let pinned = |var: usize, attr: gfd_graph::AttrId| premise_keys.contains(&(var, attr));
    for lit in &gfd.consequence {
        let node = planted[lit.var.index()];
        match &lit.rhs {
            Operand::Const(c) => {
                if pinned(lit.var.index(), lit.attr) {
                    continue;
                }
                graph.set_attr(node, lit.attr, Value::str(format!("broken_{c}")));
                break;
            }
            Operand::Attr(v2, a2) => {
                let other = planted[v2.index()];
                if !pinned(lit.var.index(), lit.attr) {
                    graph.set_attr(node, lit.attr, Value::str("broken_left"));
                    if graph.attr(other, *a2).is_none() {
                        graph.set_attr(other, *a2, Value::str("broken_right"));
                    }
                    break;
                }
                if !pinned(v2.index(), *a2) {
                    graph.set_attr(other, *a2, Value::str("broken_right"));
                    if graph.attr(node, lit.attr).is_none() {
                        graph.set_attr(node, lit.attr, Value::str("broken_left"));
                    }
                    break;
                }
            }
        }
    }
    planted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gfd_gen::{generate_sigma, GfdGenConfig};
    use crate::schema::Dataset;
    use gfd_core::{find_violations, graph_satisfies, GfdSet, Literal};
    use gfd_graph::{Pattern, Vocab};

    #[test]
    fn graphs_have_requested_shape() {
        let mut vocab = Vocab::new();
        let schema = Schema::new(Dataset::Tiny, &mut vocab);
        let g = random_graph(
            &schema,
            &GraphGenConfig {
                nodes: 50,
                edges: 120,
                attr_prob: 0.5,
                seed: 1,
            },
        );
        assert_eq!(g.node_count(), 50);
        // Duplicate (src,label,dst) triples collapse, so ≤ 120.
        assert!(g.edge_count() <= 120 && g.edge_count() > 60);
        assert!(g.attr_count() > 0);
    }

    #[test]
    fn planted_violation_is_detected() {
        let mut vocab = Vocab::new();
        let schema = Schema::new(Dataset::Tiny, &mut vocab);
        // A concrete rule: t-nodes linked by e must share attr values.
        let t = schema.node_labels()[0];
        let e = schema.edge_labels()[0];
        let a = schema.attrs()[0];
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        p.add_edge(x, e, y);
        let gfd = Gfd::new(
            "share",
            p,
            vec![Literal::eq_const(x, a, canonical_value(a))],
            vec![Literal::eq_attr(x, a, y, a)],
        );

        let mut g = Graph::new();
        assert!(graph_satisfies(&g, &gfd));
        let planted = plant_violation(&mut g, &gfd, &schema, 9);
        assert_eq!(planted.len(), 2);
        assert!(!graph_satisfies(&g, &gfd));
        let sigma = GfdSet::from_vec(vec![gfd]);
        let vs = find_violations(&g, &sigma, 10);
        assert!(!vs.is_empty());
    }

    #[test]
    fn planting_works_for_generated_rules() {
        let mut vocab = Vocab::new();
        let schema = Schema::new(Dataset::Tiny, &mut vocab);
        let sigma = generate_sigma(
            &schema,
            &GfdGenConfig {
                count: 5,
                k: 3,
                l: 2,
                seed: 3,
                ..Default::default()
            },
        );
        let mut g = random_graph(&schema, &GraphGenConfig::default());
        for (i, (_, gfd)) in sigma.iter().enumerate() {
            plant_violation(&mut g, gfd, &schema, i as u64);
        }
        // At least one planted violation must be detectable (some may be
        // masked if the consequence also appears elsewhere, but with fresh
        // nodes per plant the first literal stays broken).
        let vs = find_violations(&g, &sigma, 50);
        assert!(!vs.is_empty());
    }
}
