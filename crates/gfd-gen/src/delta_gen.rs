//! Seeded delta-stream generation for the streaming-detection workload.
//!
//! Produces reproducible [`DeltaBatch`]es against a concrete graph:
//! each batch holds a configurable fraction of `|E|` worth of updates,
//! mixed from edge inserts, edge deletes, attribute writes and node
//! inserts by weight. The generator tracks the evolving graph on a
//! scratch copy so deletions always name edges that exist at their point
//! in the stream and inserts mostly avoid duplicates — batches replay
//! cleanly in order.

use crate::gfd_gen::{canonical_value, conflicting_value};
use crate::schema::Schema;
use gfd_graph::{DeltaBatch, Graph, NodeId};
use rand::prelude::*;

/// Knobs for delta-stream generation.
#[derive(Clone, Debug)]
pub struct DeltaStreamConfig {
    /// Number of batches in the stream.
    pub batches: usize,
    /// Updates per batch, as a fraction of the graph's *current* edge
    /// count (at least one update per non-empty batch).
    pub edge_fraction: f64,
    /// Relative weight of edge insertions.
    pub insert_weight: u32,
    /// Relative weight of edge deletions.
    pub delete_weight: u32,
    /// Relative weight of attribute writes.
    pub attr_weight: u32,
    /// Relative weight of node insertions (each new node is also wired
    /// to an existing node so it can participate in matches).
    pub node_weight: u32,
    /// RNG seed: same seed + same graph ⇒ same stream.
    pub seed: u64,
}

impl Default for DeltaStreamConfig {
    fn default() -> Self {
        DeltaStreamConfig {
            batches: 5,
            edge_fraction: 0.01,
            insert_weight: 4,
            delete_weight: 2,
            attr_weight: 3,
            node_weight: 1,
            seed: 42,
        }
    }
}

impl DeltaStreamConfig {
    /// A deletion-heavy mix (for the deletion paths of the equivalence
    /// suite and benches).
    pub fn deletion_heavy(seed: u64) -> Self {
        DeltaStreamConfig {
            insert_weight: 1,
            delete_weight: 6,
            attr_weight: 1,
            node_weight: 0,
            seed,
            ..Default::default()
        }
    }
}

/// Generate a reproducible delta stream against `graph`.
///
/// The returned batches are meant to be applied in order (each batch was
/// generated against the graph state the previous ones produce); ops
/// that still turn out to be no-ops (rare duplicate inserts) are
/// harmless — both application paths skip them identically.
pub fn delta_stream(graph: &Graph, schema: &Schema, cfg: &DeltaStreamConfig) -> Vec<DeltaBatch> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut scratch = graph.clone();
    let total_weight = cfg.insert_weight + cfg.delete_weight + cfg.attr_weight + cfg.node_weight;
    assert!(total_weight > 0, "all op weights are zero");

    let mut out = Vec::with_capacity(cfg.batches);
    for _ in 0..cfg.batches {
        let ops = ((scratch.edge_count() as f64 * cfg.edge_fraction).round() as usize).max(1);
        // Snapshot the edge list once per batch for O(1) deletion picks;
        // edges deleted within the batch are tracked to avoid doubles.
        let mut edges: Vec<(NodeId, gfd_graph::LabelId, NodeId)> = scratch.edges().collect();
        let mut batch = DeltaBatch::new();
        for _ in 0..ops {
            let mut roll = rng.random_range(0..total_weight);
            if roll < cfg.insert_weight {
                let n = scratch.node_count();
                let src = NodeId::new(rng.random_range(0..n));
                let dst = NodeId::new(rng.random_range(0..n));
                let label = schema.sample_edge_label(&mut rng);
                batch.add_edge(src, label, dst);
                scratch.add_edge(src, label, dst);
                continue;
            }
            roll -= cfg.insert_weight;
            if roll < cfg.delete_weight {
                if let Some(i) = (!edges.is_empty()).then(|| rng.random_range(0..edges.len())) {
                    let (s, l, d) = edges.swap_remove(i);
                    batch.del_edge(s, l, d);
                    scratch.remove_edge(s, l, d);
                }
                continue;
            }
            roll -= cfg.delete_weight;
            if roll < cfg.attr_weight {
                let node = NodeId::new(rng.random_range(0..scratch.node_count()));
                let attrs = schema.attrs();
                let attr = attrs[rng.random_range(0..attrs.len())];
                // Half the writes corrupt (conflicting value), half
                // restore (canonical) — the stream both breaks and fixes.
                let value = if rng.random_bool(0.5) {
                    conflicting_value(attr)
                } else {
                    canonical_value(attr)
                };
                batch.set_attr(node, attr, value.clone());
                scratch.set_attr(node, attr, value);
                continue;
            }
            // Node insert, wired to a random existing node.
            let label = schema.sample_node_label(&mut rng);
            let fresh = NodeId::new(scratch.node_count());
            let peer = NodeId::new(rng.random_range(0..scratch.node_count()));
            let elabel = schema.sample_edge_label(&mut rng);
            batch.add_node(label);
            batch.add_edge(peer, elabel, fresh);
            scratch.add_node(label);
            scratch.add_edge(peer, elabel, fresh);
        }
        out.push(batch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_gen::{random_graph, GraphGenConfig};
    use crate::schema::Dataset;
    use gfd_graph::Vocab;

    fn setup() -> (Graph, Schema) {
        let mut vocab = Vocab::new();
        let schema = Schema::new(Dataset::Tiny, &mut vocab);
        let g = random_graph(
            &schema,
            &GraphGenConfig {
                nodes: 60,
                edges: 200,
                attr_prob: 0.5,
                seed: 11,
            },
        );
        (g, schema)
    }

    #[test]
    fn streams_are_reproducible() {
        let (g, schema) = setup();
        let cfg = DeltaStreamConfig {
            batches: 4,
            edge_fraction: 0.05,
            ..Default::default()
        };
        let a = delta_stream(&g, &schema, &cfg);
        let b = delta_stream(&g, &schema, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|batch| !batch.is_empty()));
    }

    #[test]
    fn batch_size_tracks_the_fraction() {
        let (g, schema) = setup();
        let cfg = DeltaStreamConfig {
            batches: 1,
            edge_fraction: 0.1,
            ..Default::default()
        };
        let stream = delta_stream(&g, &schema, &cfg);
        let expected = (g.edge_count() as f64 * 0.1).round() as usize;
        // Node inserts emit two ops (node + wiring edge), so allow slack
        // on the high side.
        assert!(stream[0].len() >= expected);
        assert!(stream[0].len() <= 2 * expected);
    }

    #[test]
    fn deletions_name_existing_edges() {
        let (g, schema) = setup();
        let cfg = DeltaStreamConfig::deletion_heavy(7);
        let stream = delta_stream(&g, &schema, &cfg);
        // Replaying the whole stream must find every deletion present.
        let mut replay = g.clone();
        let mut deletions = 0;
        for batch in &stream {
            for op in &batch.ops {
                match op {
                    gfd_graph::DeltaOp::DelEdge { src, label, dst } => {
                        deletions += 1;
                        assert!(
                            replay.remove_edge(*src, *label, *dst),
                            "stream deleted a non-existent edge"
                        );
                    }
                    _ => {
                        let mut single = DeltaBatch::new();
                        single.ops.push(op.clone());
                        single.apply_to_graph(&mut replay);
                    }
                }
            }
        }
        assert!(deletions > 0, "deletion-heavy stream had no deletions");
        assert!(replay.edge_count() < g.edge_count());
    }

    #[test]
    fn different_seeds_differ() {
        let (g, schema) = setup();
        let a = delta_stream(&g, &schema, &DeltaStreamConfig::default());
        let b = delta_stream(
            &g,
            &schema,
            &DeltaStreamConfig {
                seed: 1234,
                ..Default::default()
            },
        );
        assert_ne!(a, b);
    }
}
