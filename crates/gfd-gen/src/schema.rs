//! Label/attribute schemas mimicking the paper's datasets.
//!
//! The paper mines GFDs from DBpedia (200 node types, 160 link types),
//! YAGO2 (13 node types, 36 link types) and Pokec (269 node types, 11 link
//! types). We cannot redistribute those graphs or the unpublished mining
//! algorithm of \[23\], so the generators draw labels from schemas with the
//! same type counts and a Zipf-like frequency skew — preserving the
//! selectivity structure that drives matching cost (see DESIGN.md,
//! "Substitutions").

use gfd_graph::{AttrId, LabelId, Vocab};
use rand::prelude::*;

/// The dataset a schema mimics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// DBpedia-like: 200 node types, 160 edge types.
    DBpedia,
    /// YAGO2-like: 13 node types, 36 edge types.
    Yago2,
    /// Pokec-like: 269 node types, 11 edge types.
    Pokec,
    /// A tiny schema for unit tests.
    Tiny,
}

impl Dataset {
    /// Human-readable name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::DBpedia => "DBpedia",
            Dataset::Yago2 => "YAGO2",
            Dataset::Pokec => "Pokec",
            Dataset::Tiny => "Tiny",
        }
    }

    fn sizes(self) -> (usize, usize, usize) {
        // (node labels, edge labels, active attributes)
        match self {
            Dataset::DBpedia => (200, 160, 24),
            Dataset::Yago2 => (13, 36, 16),
            Dataset::Pokec => (269, 11, 20),
            Dataset::Tiny => (4, 3, 4),
        }
    }
}

/// A generator schema: interned labels and attributes with Zipf weights.
#[derive(Clone, Debug)]
pub struct Schema {
    /// Which dataset this mimics.
    pub dataset: Dataset,
    node_labels: Vec<LabelId>,
    edge_labels: Vec<LabelId>,
    attrs: Vec<AttrId>,
    /// Cumulative Zipf weights for node labels.
    node_cdf: Vec<f64>,
    edge_cdf: Vec<f64>,
}

/// A handful of realistic leading names so examples read naturally; the
/// rest are synthetic.
const NODE_NAMES: &[&str] = &[
    "person",
    "place",
    "organisation",
    "work",
    "species",
    "event",
    "device",
];
const EDGE_NAMES: &[&str] = &[
    "locateIn",
    "partOf",
    "president",
    "vicePresident",
    "topSpeed",
    "post",
    "field",
];
const ATTR_NAMES: &[&str] = &["val", "nationality", "country", "topic", "trust", "name"];

fn zipf_cdf(n: usize) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0;
    for i in 0..n {
        total += 1.0 / (i as f64 + 1.0);
        cdf.push(total);
    }
    for w in &mut cdf {
        *w /= total;
    }
    cdf
}

impl Schema {
    /// Build the schema for `dataset`, interning into `vocab`.
    pub fn new(dataset: Dataset, vocab: &mut Vocab) -> Self {
        let (n_nodes, n_edges, n_attrs) = dataset.sizes();
        let prefix = dataset.name().to_lowercase();
        let mut node_labels = Vec::with_capacity(n_nodes);
        for i in 0..n_nodes {
            let name = NODE_NAMES
                .get(i)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("{prefix}_type{i:03}"));
            node_labels.push(vocab.label(&name));
        }
        let mut edge_labels = Vec::with_capacity(n_edges);
        for i in 0..n_edges {
            let name = EDGE_NAMES
                .get(i)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("{prefix}_rel{i:03}"));
            edge_labels.push(vocab.label(&name));
        }
        let mut attrs = Vec::with_capacity(n_attrs);
        for i in 0..n_attrs {
            let name = ATTR_NAMES
                .get(i)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("attr{i:02}"));
            attrs.push(vocab.attr(&name));
        }
        Schema {
            dataset,
            node_cdf: zipf_cdf(n_nodes),
            edge_cdf: zipf_cdf(n_edges),
            node_labels,
            edge_labels,
            attrs,
        }
    }

    /// Sample a node label (Zipf-skewed: low-index labels are frequent).
    pub fn sample_node_label(&self, rng: &mut impl Rng) -> LabelId {
        self.node_labels[sample_cdf(&self.node_cdf, rng)]
    }

    /// Sample an edge label (Zipf-skewed).
    pub fn sample_edge_label(&self, rng: &mut impl Rng) -> LabelId {
        self.edge_labels[sample_cdf(&self.edge_cdf, rng)]
    }

    /// Sample an attribute uniformly from the active set.
    pub fn sample_attr(&self, rng: &mut impl Rng) -> AttrId {
        self.attrs[rng.random_range(0..self.attrs.len())]
    }

    /// All node labels.
    pub fn node_labels(&self) -> &[LabelId] {
        &self.node_labels
    }

    /// All edge labels.
    pub fn edge_labels(&self) -> &[LabelId] {
        &self.edge_labels
    }

    /// The active attribute set.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }
}

fn sample_cdf(cdf: &[f64], rng: &mut impl Rng) -> usize {
    let x: f64 = rng.random();
    cdf.partition_point(|&w| w < x).min(cdf.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_sizes_match_paper_counts() {
        let mut vocab = Vocab::new();
        let s = Schema::new(Dataset::DBpedia, &mut vocab);
        assert_eq!(s.node_labels().len(), 200);
        assert_eq!(s.edge_labels().len(), 160);
        let s = Schema::new(Dataset::Yago2, &mut vocab);
        assert_eq!(s.node_labels().len(), 13);
        assert_eq!(s.edge_labels().len(), 36);
        let s = Schema::new(Dataset::Pokec, &mut vocab);
        assert_eq!(s.node_labels().len(), 269);
        assert_eq!(s.edge_labels().len(), 11);
    }

    #[test]
    fn sampling_is_skewed_and_in_range() {
        let mut vocab = Vocab::new();
        let s = Schema::new(Dataset::DBpedia, &mut vocab);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..5000 {
            let l = s.sample_node_label(&mut rng);
            assert!(s.node_labels().contains(&l));
            *counts.entry(l).or_insert(0usize) += 1;
        }
        // Zipf: the most frequent label should dominate the 100th.
        let first = counts.get(&s.node_labels()[0]).copied().unwrap_or(0);
        let hundredth = counts.get(&s.node_labels()[99]).copied().unwrap_or(0);
        assert!(first > hundredth * 3, "first={first} hundredth={hundredth}");
    }

    #[test]
    fn no_wildcards_in_schema() {
        let mut vocab = Vocab::new();
        let s = Schema::new(Dataset::Tiny, &mut vocab);
        assert!(s.node_labels().iter().all(|l| !l.is_wildcard()));
        assert!(s.edge_labels().iter().all(|l| !l.is_wildcard()));
    }

    #[test]
    fn schemas_share_vocab_without_collisions() {
        let mut vocab = Vocab::new();
        let a = Schema::new(Dataset::Yago2, &mut vocab);
        let b = Schema::new(Dataset::Tiny, &mut vocab);
        // Leading realistic names are shared; synthetic tails are
        // dataset-prefixed and distinct.
        assert_eq!(a.node_labels()[0], b.node_labels()[0]);
        assert_ne!(a.node_labels()[12], b.node_labels()[3]);
    }
}
