//! Synthetic GFD and property-graph generators.
//!
//! The paper evaluates on GFDs mined from DBpedia, YAGO2 and Pokec plus a
//! synthetic generator parameterized by `|Σ|`, pattern size `k` and
//! literal count `l` (§VII). The mined sets and the mining algorithm \[23\]
//! are unavailable, so this crate substitutes schema-driven generation
//! with the papers' reported label/type counts and Zipf-skewed label
//! frequencies (see DESIGN.md):
//!
//! * [`schema`] — DBpedia/YAGO2/Pokec-like label schemas;
//! * [`pattern_gen`] — random connected patterns with cycles/wildcards;
//! * [`gfd_gen`] — satisfiable-by-construction rule sets, conflict
//!   injection, implication probes;
//! * [`ggd_gen`] — seeded GGD workloads: terminating-by-construction
//!   tiered generation chains, mixed GFD+GGD sets, deep-conflict
//!   injection;
//! * [`graph_gen`] — random property graphs and violation planting;
//! * [`hub_gen`] — power-law hub workloads with string-heavy rules;
//! * [`delta_gen`] — seeded delta streams for the incremental engine;
//! * [`workload`] — the named workloads behind every table and figure.

#![warn(missing_docs)]

pub mod delta_gen;
pub mod gfd_gen;
pub mod ggd_gen;
pub mod graph_gen;
pub mod hub_gen;
pub mod pattern_gen;
pub mod schema;
pub mod workload;

pub use delta_gen::{delta_stream, DeltaStreamConfig};
pub use gfd_gen::{
    canonical_value, conflicting_value, generate_sigma, implied_probe, inject_chain_conflict,
    inject_direct_conflict, not_implied_probe, GfdGenConfig,
};
pub use ggd_gen::{
    ggd_chain_workload, ggd_conflict_workload, ggd_overlap_workload, mixed_ggd_workload,
    tier0_graph, GgdGenConfig,
};
pub use graph_gen::{plant_violation, random_graph, GraphGenConfig};
pub use hub_gen::{hub_workload, HubGenConfig, HubWorkload};
pub use pattern_gen::{mutate_pattern, random_pattern, PatternGenConfig};
pub use schema::{Dataset, Schema};
pub use workload::{real_life_workload, synthetic_workload, ImpProbe, Workload};
