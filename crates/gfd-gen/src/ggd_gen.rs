//! Seeded, reproducible GGD workload generation.
//!
//! Generating rules have no finite fixpoint in general (`person → CREATE
//! person` chases forever), so random generation alone would produce
//! workloads that only ever end by budget exhaustion. This generator
//! builds **terminating-by-construction** chains instead: node labels
//! are stratified into tiers `tier0 < tier1 < … < tierD`, and every
//! generating rule's premise sits strictly below the tier of the nodes
//! it creates. Generation therefore advances a well-founded rank and the
//! chase reaches a true fixpoint, with the number of rounds (and the
//! amount of per-round scan work the scheduler sees) controlled by the
//! chain depth and per-tier fan-out — exactly what the `exp8_ggd_chase`
//! bench sweeps.
//!
//! Presets:
//!
//! * [`ggd_chain_workload`] — generation-heavy: tiered GGDs plus a seed
//!   literal rule, satisfiable, fixpoint after ~`depth` topology rounds;
//! * [`mixed_ggd_workload`] — the chain plus benign literal riders that
//!   fire off the generated attributes (mixed GFD+GGD reasoning);
//! * [`ggd_conflict_workload`] — the chain plus a denial on the final
//!   tier's generated attribute: unsatisfiable, discovered only after
//!   the chase has generated its way down the whole chain.

use crate::gfd_gen::conflicting_value;
use gfd_core::{Consequence, DepSet, Dependency, GenerateConsequence, Gfd, Literal};
use gfd_graph::{Pattern, Value, VarId, Vocab};
use rand::prelude::*;

/// Knobs of the tiered GGD generator.
#[derive(Clone, Debug)]
pub struct GgdGenConfig {
    /// Chain depth `D`: tiers `0..=D`; generating rules exist for tiers
    /// `0..D`. Bounds the number of topology rounds.
    pub chain_depth: usize,
    /// Generating rules per tier (distinct rules over the same tier
    /// label multiply the firings per node).
    pub gen_per_tier: usize,
    /// Maximum fresh nodes one firing creates (actual fan-out is seeded
    /// per rule in `1..=fanout`).
    pub fanout: usize,
    /// Literal rider rules consuming the generated attributes (0 for the
    /// generation-only preset).
    pub literal_rules: usize,
    /// RNG seed; generation is deterministic per seed.
    pub seed: u64,
}

impl Default for GgdGenConfig {
    fn default() -> Self {
        GgdGenConfig {
            chain_depth: 3,
            gen_per_tier: 2,
            fanout: 2,
            literal_rules: 4,
            seed: 42,
        }
    }
}

fn tier_pattern(vocab: &mut Vocab, tier: usize) -> Pattern {
    let mut p = Pattern::new();
    p.add_node(vocab.label(&format!("tier{tier}")), "x");
    p
}

/// The attribute every tier-`i` node is driven to: `a{i} = i`.
fn tier_attr(vocab: &mut Vocab, tier: usize) -> gfd_graph::AttrId {
    vocab.attr(&format!("a{tier}"))
}

/// Build the tiered generating rules only (no riders, no conflicts):
/// a seed literal rule `tier0: ∅ → x.a0 = 0` plus, per tier `i < D` and
/// rule slot `j`, a GGD
///
/// ```text
/// tier{i}: x.a{i} = i  →  CREATE y₀..y_f : tier{i+1},
///                          x -gen-> y_k,  y_k.a{i+1} = i+1
/// ```
pub fn ggd_chain_workload(cfg: &GgdGenConfig, vocab: &mut Vocab) -> DepSet {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut deps = DepSet::new();
    let depth = cfg.chain_depth.max(1);
    let gen_label = vocab.label("gen");

    // Seed: every tier0 node gets a0 = 0, unlocking the first tier of
    // generating premises.
    let a0 = tier_attr(vocab, 0);
    deps.push(Dependency::from_gfd(Gfd::new(
        "seed0",
        tier_pattern(vocab, 0),
        vec![],
        vec![Literal::eq_const(VarId::new(0), a0, 0i64)],
    )));

    for tier in 0..depth {
        let premise_attr = tier_attr(vocab, tier);
        let target_attr = tier_attr(vocab, tier + 1);
        let target_label = vocab.label(&format!("tier{}", tier + 1));
        for j in 0..cfg.gen_per_tier.max(1) {
            let pattern = tier_pattern(vocab, tier);
            let x = VarId::new(0);
            let mut gen = GenerateConsequence::over(&pattern);
            let fan = rng.random_range(1..=cfg.fanout.max(1));
            for k in 0..fan {
                let y = gen.add_fresh(target_label, format!("y{k}"));
                gen.add_edge(x, gen_label, y);
                gen.push_attr(Literal::eq_const(y, target_attr, (tier + 1) as i64));
            }
            deps.push(Dependency::new(
                format!("gen_t{tier}_{j}"),
                pattern,
                vec![Literal::eq_const(x, premise_attr, tier as i64)],
                Consequence::Generate(gen),
            ));
        }
    }
    deps
}

/// The chain plus benign literal riders: GFDs whose premise consumes a
/// generated attribute (`x.a{t} = t → x.b{r} = t`), so literal
/// enforcement and generation interleave across rounds. Satisfiable.
pub fn mixed_ggd_workload(cfg: &GgdGenConfig, vocab: &mut Vocab) -> DepSet {
    let mut deps = ggd_chain_workload(cfg, vocab);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xB0B);
    let depth = cfg.chain_depth.max(1);
    for r in 0..cfg.literal_rules {
        let tier = rng.random_range(0..=depth);
        let premise_attr = tier_attr(vocab, tier);
        let out_attr = vocab.attr(&format!("b{}", r % 3));
        let x = VarId::new(0);
        deps.push(Dependency::from_gfd(Gfd::new(
            format!("rider{r}"),
            tier_pattern(vocab, tier),
            vec![Literal::eq_const(x, premise_attr, tier as i64)],
            vec![Literal::eq_const(x, out_attr, tier as i64)],
        )));
    }
    deps
}

/// The chain made adversarial for the **parallel apply's conflict
/// partition**: every tier gains a clique of same-key literal riders
/// (each writes the same constant to the one shared attribute of `x`,
/// so the workload stays satisfiable while any two firings on a node
/// claim the same class), and every generated `gen` edge gains a
/// cross-node merge rider `x.shared = y.shared` whose sibling matches
/// all touch the parent's class. Combined with `gen_per_tier > 1`
/// (sibling generators claiming the same premise node for adjacency
/// writes), almost every round's firing set overlaps — the worst case
/// for the independence analysis, which must shunt the residual through
/// the serial fallback without changing the fixpoint.
pub fn ggd_overlap_workload(cfg: &GgdGenConfig, vocab: &mut Vocab) -> DepSet {
    let mut deps = ggd_chain_workload(cfg, vocab);
    let depth = cfg.chain_depth.max(1);
    let shared = vocab.attr("shared");
    let gen_label = vocab.label("gen");
    let x = VarId::new(0);
    for tier in 0..=depth {
        let premise_attr = tier_attr(vocab, tier);
        for j in 0..cfg.literal_rules.max(2) {
            deps.push(Dependency::from_gfd(Gfd::new(
                format!("overlap_t{tier}_{j}"),
                tier_pattern(vocab, tier),
                vec![Literal::eq_const(x, premise_attr, tier as i64)],
                vec![Literal::eq_const(x, shared, 1i64)],
            )));
        }
    }
    for tier in 0..depth {
        let src = vocab.label(&format!("tier{tier}"));
        let dst = vocab.label(&format!("tier{}", tier + 1));
        let mut p = Pattern::new();
        let px = p.add_node(src, "x");
        let py = p.add_node(dst, "y");
        p.add_edge(px, gen_label, py);
        deps.push(Dependency::from_gfd(Gfd::new(
            format!("link_t{tier}"),
            p,
            vec![],
            vec![Literal::eq_attr(px, shared, py, shared)],
        )));
    }
    deps
}

/// The chain plus a denial on the final tier: every generated
/// `tier{D}` node carries `a{D} = D`, and the injected rule forces a
/// different constant onto the same attribute — unsatisfiable, but only
/// discoverable after the chase has generated all the way down.
pub fn ggd_conflict_workload(cfg: &GgdGenConfig, vocab: &mut Vocab) -> DepSet {
    let mut deps = ggd_chain_workload(cfg, vocab);
    let depth = cfg.chain_depth.max(1);
    let attr = tier_attr(vocab, depth);
    deps.push(Dependency::from_gfd(Gfd::new(
        "deep_deny",
        tier_pattern(vocab, depth),
        vec![],
        vec![Literal::eq_const(
            VarId::new(0),
            attr,
            conflicting_value(attr),
        )],
    )));
    deps
}

/// A data graph hosting the chain's premises: `width` tier-0 nodes (the
/// detection-side counterpart — [`crate::graph_gen`] generates generic
/// graphs, this one lines up with the tier labels).
pub fn tier0_graph(width: usize, vocab: &mut Vocab) -> gfd_graph::Graph {
    let mut g = gfd_graph::Graph::new();
    let label = vocab.label("tier0");
    let a0 = tier_attr(vocab, 0);
    for _ in 0..width.max(1) {
        let n = g.add_node(label);
        g.set_attr(n, a0, Value::int(0));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_chase::{dep_sat, dep_sat_with_config, ChaseConfig, DepSatOutcome};

    #[test]
    fn chain_workloads_are_reproducible() {
        let cfg = GgdGenConfig::default();
        let mut v1 = Vocab::new();
        let mut v2 = Vocab::new();
        let a = mixed_ggd_workload(&cfg, &mut v1);
        let b = mixed_ggd_workload(&cfg, &mut v2);
        assert_eq!(a.len(), b.len());
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.premise, y.premise);
            assert_eq!(x.is_generating(), y.is_generating());
        }
        // A different seed changes the shapes (fan-out draws).
        let c = mixed_ggd_workload(
            &GgdGenConfig {
                seed: 7,
                ..cfg.clone()
            },
            &mut Vocab::new(),
        );
        assert_eq!(a.len(), c.len());
    }

    #[test]
    fn chain_workloads_reach_a_fixpoint_and_are_satisfiable() {
        let mut vocab = Vocab::new();
        let cfg = GgdGenConfig {
            chain_depth: 3,
            gen_per_tier: 2,
            fanout: 2,
            literal_rules: 3,
            seed: 5,
        };
        let deps = mixed_ggd_workload(&cfg, &mut vocab);
        assert!(deps.has_generating());
        let r = dep_sat(&deps);
        assert!(r.is_satisfiable(), "tiered chains must terminate");
        assert!(r.stats.generated_nodes > 0);
        // The chain needs one topology round per tier at least.
        assert!(r.stats.rounds as usize >= cfg.chain_depth, "{:?}", r.stats);
    }

    #[test]
    fn conflict_workloads_are_unsat_after_generating() {
        let mut vocab = Vocab::new();
        let cfg = GgdGenConfig {
            chain_depth: 2,
            gen_per_tier: 1,
            fanout: 1,
            literal_rules: 0,
            seed: 9,
        };
        let deps = ggd_conflict_workload(&cfg, &mut vocab);
        let r = dep_sat(&deps);
        assert!(
            matches!(r.outcome, DepSatOutcome::Unsatisfiable(_)),
            "the deep denial must surface"
        );
        assert!(
            r.stats.generated_nodes > 0,
            "the conflict is only reachable through generation"
        );
    }

    #[test]
    fn overlap_workloads_exercise_the_serial_fallback() {
        let mut vocab = Vocab::new();
        let cfg = GgdGenConfig {
            chain_depth: 3,
            gen_per_tier: 2,
            fanout: 2,
            literal_rules: 3,
            seed: 11,
        };
        let deps = ggd_overlap_workload(&cfg, &mut vocab);
        let r = dep_sat_with_config(
            &deps,
            &ChaseConfig {
                workers: 4,
                ..ChaseConfig::default()
            },
        );
        assert!(r.is_satisfiable(), "same-constant overlap riders agree");
        assert!(r.stats.generated_nodes > 0);
        assert!(
            r.stats.apply_conflicts > 0,
            "the clique of same-key riders must collide in the partition: {:?}",
            r.stats
        );
    }

    #[test]
    fn workload_scale_follows_the_knobs() {
        let mut vocab = Vocab::new();
        let small = ggd_chain_workload(
            &GgdGenConfig {
                chain_depth: 2,
                gen_per_tier: 1,
                fanout: 1,
                literal_rules: 0,
                seed: 1,
            },
            &mut vocab,
        );
        let mut vocab = Vocab::new();
        let big = ggd_chain_workload(
            &GgdGenConfig {
                chain_depth: 4,
                gen_per_tier: 3,
                fanout: 2,
                literal_rules: 0,
                seed: 1,
            },
            &mut vocab,
        );
        assert!(big.len() > small.len());
        let r_small = dep_sat(&small);
        let r_big = dep_sat_with_config(
            &big,
            &ChaseConfig {
                max_generated_nodes: 1_000_000,
                ..ChaseConfig::default()
            },
        );
        assert!(r_small.is_satisfiable() && r_big.is_satisfiable());
        assert!(r_big.stats.generated_nodes > r_small.stats.generated_nodes);
    }
}
