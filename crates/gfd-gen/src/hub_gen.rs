//! Hub-heavy workloads: power-law degree distributions plus
//! string-attribute-heavy rules.
//!
//! Real social and knowledge graphs are scale-free: a handful of hub
//! nodes collect hundreds of neighbours while the long tail has one or
//! two. That shape is exactly where the matcher's anchored-expansion
//! intersections degrade — a doubly-anchored step on two hubs walks two
//! long sorted adjacency lists per frame — and where the bitset merge
//! path (`gfd_match::IntersectStrategy::Bitset`, DESIGN.md §15) pays
//! off. The rules this preset generates are deliberately string-heavy:
//! every premise and consequence literal compares interned string
//! values, so the workload also stresses the `ValueId` literal-check
//! fast path rather than integer constants.
//!
//! [`hub_workload`] is deterministic per seed: graph, rule set and the
//! violation set detection finds on it are reproducible, which lets the
//! exp8 bench assert fingerprint invariance across worker counts.

use crate::schema::{Dataset, Schema};
use gfd_core::{Gfd, GfdSet, Literal};
use gfd_graph::{Graph, NodeId, Pattern, Value, Vocab};
use rand::prelude::*;
use std::collections::BTreeSet;

/// Knobs for hub-workload generation.
#[derive(Clone, Debug)]
pub struct HubGenConfig {
    /// Total node count.
    pub nodes: usize,
    /// Number of hub nodes (the power-law head).
    pub hubs: usize,
    /// Out-degree of each hub. Set this at or above
    /// `gfd_match::BITSET_ANCHOR_DEGREE` (64) to put doubly-anchored
    /// plan steps into the bitset-merge regime.
    pub hub_degree: usize,
    /// Pareto shape for the tail degrees (> 1; larger = thinner tail).
    pub tail_alpha: f64,
    /// Number of distinct string values the heavy attributes draw from.
    pub string_vocab: usize,
    /// Number of generated rules (alternating diamond/chain shapes).
    pub rules: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HubGenConfig {
    fn default() -> Self {
        HubGenConfig {
            nodes: 2_000,
            hubs: 8,
            hub_degree: 96,
            tail_alpha: 2.5,
            string_vocab: 24,
            rules: 6,
            seed: 42,
        }
    }
}

/// A hub workload: the graph, the string-heavy rule set, and the shared
/// vocabulary/schema they were generated over.
#[derive(Clone, Debug)]
pub struct HubWorkload {
    /// Display name used in benchmark tables.
    pub name: String,
    /// Vocabulary shared by graph and rules.
    pub vocab: Vocab,
    /// The (Pokec-like) schema labels were drawn from.
    pub schema: Schema,
    /// The power-law data graph.
    pub graph: Graph,
    /// String-attribute-heavy rules over the graph's labels.
    pub sigma: GfdSet,
}

/// Build the hub workload for `cfg`: a Pokec-like graph whose first
/// `cfg.hubs` nodes are hubs with `cfg.hub_degree` out-neighbours drawn
/// from a shared pool (so any two hubs overlap on roughly half their
/// neighbourhoods), a Pareto-distributed tail, string attributes on
/// every node, and rules whose literals all compare strings.
pub fn hub_workload(cfg: &HubGenConfig) -> HubWorkload {
    let mut vocab = Vocab::new();
    let schema = Schema::new(Dataset::Pokec, &mut vocab);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let person = schema.node_labels()[0];
    let follows = schema.edge_labels()[0];
    let nodes = cfg.nodes.max(cfg.hubs + 2 * cfg.hub_degree + 1);
    let hubs = cfg.hubs.min(nodes / 4).max(1);

    // One label for every node: candidate sets start label-wide, so the
    // anchored steps (not the seed scan) dominate matching cost.
    let mut g = Graph::with_capacity(nodes);
    for _ in 0..nodes {
        g.add_node(person);
    }

    // Hub head: each hub's out-neighbours are distinct draws from a
    // pool twice its degree, directly after the hub block. Two hubs
    // therefore share ~half their targets — the overlap a
    // doubly-anchored diamond step intersects.
    let pool_len = (2 * cfg.hub_degree).min(nodes - hubs);
    let degree = cfg.hub_degree.min(pool_len);
    for h in 0..hubs {
        let mut targets = BTreeSet::new();
        while targets.len() < degree {
            targets.insert(hubs + rng.random_range(0..pool_len));
        }
        for t in targets {
            g.add_edge(NodeId::new(h), follows, NodeId::new(t));
        }
    }

    // Power-law tail: Pareto out-degrees, mostly 0–2, occasionally a
    // mid-degree node; uniform targets keep hubs collecting in-edges.
    for v in hubs..nodes {
        let u: f64 = rng.random::<f64>().max(1e-9);
        let deg = (u.powf(-1.0 / (cfg.tail_alpha - 1.0)) - 1.0).round() as usize;
        for _ in 0..deg.min(12) {
            let dst = rng.random_range(0..nodes);
            g.add_edge(NodeId::new(v), follows, NodeId::new(dst));
        }
    }

    // String-heavy attributes on every node. `country` is skew-drawn
    // from a small vocabulary (cubing the uniform deviate piles mass on
    // low indices, so the rule constants below select many nodes);
    // `name` repeats across the graph, so eq_attr premises join on
    // interned strings rather than unique values.
    let vocab_size = cfg.string_vocab.max(2);
    let country = schema.attrs()[2];
    let name = schema.attrs()[5];
    let name_period = (nodes / 4).max(1);
    for v in 0..nodes {
        let idx = ((rng.random::<f64>().powf(3.0)) * vocab_size as f64) as usize;
        g.set_attr(
            NodeId::new(v),
            country,
            Value::str(format!("hub_country_{:02}", idx.min(vocab_size - 1))),
        );
        g.set_attr(
            NodeId::new(v),
            name,
            Value::str(format!("hub_name_{}", v % name_period)),
        );
    }

    // Rules, alternating two shapes — every literal compares strings:
    //  * diamond `w → {x, y} → z`: once w, x, y are bound the z-step
    //    carries two anchors; with x, y on hubs both adjacencies are
    //    fat, which is the regime planning routes to the bitset merge;
    //  * chain `x → y`: an eq_attr join on the repeating `name` values,
    //    all-pairs string equality on interned ids.
    let mut rules = Vec::with_capacity(cfg.rules);
    for r in 0..cfg.rules.max(1) {
        let c_x = format!("hub_country_{:02}", r % vocab_size);
        let c_y = format!("hub_country_{:02}", (r + 1) % vocab_size);
        if r % 2 == 0 {
            let mut p = Pattern::new();
            let w = p.add_node(person, "w");
            let x = p.add_node(person, "x");
            let y = p.add_node(person, "y");
            let z = p.add_node(person, "z");
            p.add_edge(w, follows, x);
            p.add_edge(w, follows, y);
            p.add_edge(x, follows, z);
            p.add_edge(y, follows, z);
            rules.push(Gfd::new(
                format!("hub_diamond_{r}"),
                p,
                vec![
                    Literal::eq_const(x, country, Value::str(&c_x)),
                    Literal::eq_const(y, country, Value::str(&c_y)),
                ],
                vec![Literal::eq_attr(z, country, x, country)],
            ));
        } else {
            let mut p = Pattern::new();
            let x = p.add_node(person, "x");
            let y = p.add_node(person, "y");
            p.add_edge(x, follows, y);
            rules.push(Gfd::new(
                format!("hub_chain_{r}"),
                p,
                vec![Literal::eq_attr(x, name, y, name)],
                vec![Literal::eq_attr(x, country, y, country)],
            ));
        }
    }

    HubWorkload {
        name: format!("hub(|V|={nodes},hubs={hubs},deg={degree})"),
        vocab,
        schema,
        graph: g,
        sigma: GfdSet::from_vec(rules),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::find_violations;
    use gfd_graph::ValueId;

    fn out_degree(g: &Graph, v: usize) -> usize {
        g.out_edges(NodeId::new(v)).len()
    }

    #[test]
    fn hub_workload_is_reproducible() {
        let a = hub_workload(&HubGenConfig::default());
        let b = hub_workload(&HubGenConfig::default());
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.graph.attr_count(), b.graph.attr_count());
        assert_eq!(a.sigma.len(), b.sigma.len());
        for ((_, x), (_, y)) in a.sigma.iter().zip(b.sigma.iter()) {
            assert_eq!(x.premise, y.premise);
            assert_eq!(x.consequence, y.consequence);
        }
    }

    #[test]
    fn degrees_are_power_law_with_hub_head() {
        let cfg = HubGenConfig::default();
        let w = hub_workload(&cfg);
        // Every hub's out-degree is the configured head degree — the
        // regime gfd_match::BITSET_ANCHOR_DEGREE (= 64) gates on.
        for h in 0..cfg.hubs {
            assert!(
                out_degree(&w.graph, h) >= cfg.hub_degree,
                "hub {h} has degree {}",
                out_degree(&w.graph, h)
            );
        }
        // The tail is thin: the median non-hub out-degree is ≤ 2.
        let mut tail: Vec<usize> = (cfg.hubs..w.graph.node_count())
            .map(|v| out_degree(&w.graph, v))
            .collect();
        tail.sort_unstable();
        assert!(tail[tail.len() / 2] <= 2, "tail median too fat");
        // And hubs overlap: the first two hubs share a sizable chunk of
        // their neighbourhoods (what the bitset merge intersects).
        let neigh = |h: usize| -> BTreeSet<NodeId> {
            w.graph
                .out_edges(NodeId::new(h))
                .iter()
                .map(|&(_, n)| n)
                .collect()
        };
        let shared = neigh(0).intersection(&neigh(1)).count();
        assert!(
            shared >= cfg.hub_degree / 4,
            "hubs share only {shared} neighbours"
        );
    }

    #[test]
    fn attributes_are_string_heavy_and_interned() {
        let cfg = HubGenConfig::default();
        let w = hub_workload(&cfg);
        let country = w.schema.attrs()[2];
        // Distinct country values stay within the configured vocabulary
        // — repeated values share one interned id each.
        let distinct: BTreeSet<u32> = (0..w.graph.node_count())
            .filter_map(|v| w.graph.attr(NodeId::new(v), country))
            .map(ValueId::raw)
            .collect();
        assert!(!distinct.is_empty());
        assert!(
            distinct.len() <= cfg.string_vocab,
            "{} distinct countries for vocab {}",
            distinct.len(),
            cfg.string_vocab
        );
        // Every rule literal is a string comparison: constants resolve
        // to interned strings, not ints.
        for (_, gfd) in w.sigma.iter() {
            for lit in gfd.premise.iter().chain(gfd.consequence.iter()) {
                if let gfd_core::Operand::Const(c) = &lit.rhs {
                    assert!(
                        matches!(c.resolve(), Value::Str(_)),
                        "non-string constant in {}",
                        gfd.name
                    );
                }
            }
        }
    }

    #[test]
    fn violations_exist_and_are_deterministic() {
        let cfg = HubGenConfig {
            nodes: 600,
            hub_degree: 72,
            ..HubGenConfig::default()
        };
        let w = hub_workload(&cfg);
        let a = find_violations(&w.graph, &w.sigma, usize::MAX);
        assert!(!a.is_empty(), "hub workload should be naturally violated");
        let w2 = hub_workload(&cfg);
        let b = find_violations(&w2.graph, &w2.sigma, usize::MAX);
        assert_eq!(a.len(), b.len());
    }
}
