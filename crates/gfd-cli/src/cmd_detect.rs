//! `gfd detect FILE` — violation detection over the file's graphs.

use crate::args::{load_document, parse_budget, ArgError, Parsed};
use crate::cmd_sat::interrupted;
use crate::output::fmt_duration;
use crate::traceopt::{dep_rule_names, TraceArgs, TRACE_HELP};
use gfd_detect::{detect_deps, suggest_repairs, DetectConfig};
use gfd_parallel::{EventKind, RunMetrics, TraceBuf, CONTROL_WORKER};
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

const HELP: &str = "\
gfd detect FILE [--graph NAME] [--limit N] [--workers N] [--ttl-ms T]
               [--repair] [--quiet] [--metrics]
               [--deadline-ms T] [--max-units N]
               [--trace FILE] [--profile] [--metrics-json FILE]
               [--stream DELTALOG] [--compact-frac F]
               [--checkpoint PATH] [--checkpoint-every N] [--skip-corrupt]

Runs the rules in FILE against the graph(s) declared in FILE (the paper's
error-detection application, ϕ1–ϕ4 of Example 1). FILE may mix `gfd` and
`ggd` blocks: an unsatisfied generating consequence is reported as a
violation with a witness of the missing subgraph.
  --graph NAME  only check the named graph (default: all graphs)
  --limit N     stop after N violations (default: all)
  --repair      print minimal repair suggestions per violation
  --quiet       summary only, no per-violation explanations
  --metrics     print scheduler metrics (units, splits, steals, idle time)
  --deadline-ms T  wall-clock budget; an interrupted detection exits 2
                   (any violations already found are printed first)
  --max-units N    scheduler work-unit budget; exhaustion exits 2
{TRACE}
Streaming mode (requires exactly one selected graph):
  --stream DELTALOG  replay the delta log batch by batch, keeping the
                     violation set live incrementally (gfd-incr) instead
                     of re-detecting from scratch; prints per-batch stats
                     (and per-batch scheduler metrics under --metrics,
                     followed by accumulated whole-stream totals)
  --compact-frac F   overlay compaction threshold as a fraction of the
                     base edge count (default 0.25; 0.0 compacts after
                     every batch; must be non-negative and finite)
  --checkpoint PATH  write a resumable checkpoint (graph + violation
                     cache + batch cursor) after applying batches; if
                     PATH already exists the run resumes from it instead
                     of replaying from the start
  --checkpoint-every N  checkpoint every N batches (default 1)
  --skip-corrupt     tolerate corrupt delta-log lines: skip them, report
                     each skipped line number, and replay the rest
Exit code: 0 clean, 1 violations found, 2 error.
";

pub(crate) fn run(args: Parsed, out: &mut dyn Write) -> Result<i32, ArgError> {
    if args.flag("help") {
        let _ = write!(out, "{}", HELP.replace("{TRACE}", TRACE_HELP));
        return Ok(0);
    }
    let path = args.positional(0, "FILE")?.to_string();
    let graph_name = args.opt_str("graph")?.map(str::to_string);
    let limit = args.opt_usize("limit", usize::MAX)?;
    let workers = args.opt_usize("workers", 4)?;
    let ttl = Duration::from_millis(args.opt_u64("ttl-ms", 100)?);
    let repair = args.flag("repair");
    let quiet = args.flag("quiet");
    let show_metrics = args.flag("metrics");
    let budget = parse_budget(&args)?;
    let stream = args.opt_str("stream")?.map(str::to_string);
    let checkpoint = args.opt_str("checkpoint")?.map(PathBuf::from);
    let checkpoint_every = args.opt_usize("checkpoint-every", 1)?;
    if checkpoint_every == 0 {
        return Err(ArgError::new("--checkpoint-every must be positive"));
    }
    let skip_corrupt = args.flag("skip-corrupt");
    let tracing = TraceArgs::parse(&args)?;
    let compact_frac = match args.opt_str("compact-frac")? {
        None => 0.25,
        Some(v) => {
            let f = v.parse::<f64>().map_err(|_| {
                ArgError::new(format!("--compact-frac expects a number, got `{v}`"))
            })?;
            // One source of truth for the accepted range: the library
            // validator (whose failure mode there is a panic, not an
            // error the CLI could surface).
            let probe = gfd_incr::IncrConfig {
                compact_fraction: f,
                ..gfd_incr::IncrConfig::default()
            };
            probe
                .validate()
                .map_err(|msg| ArgError::new(format!("--compact-frac: {msg}")))?;
            f
        }
    };
    args.finish()?;

    let mut vocab = gfd_graph::Vocab::new();
    let doc = load_document(&path, &mut vocab)?;
    if doc.deps.is_empty() {
        return Err(ArgError::new(format!("{path} contains no rules")));
    }
    if doc.graphs.is_empty() {
        return Err(ArgError::new(format!(
            "{path} declares no graphs — detection needs data (add `graph NAME {{ ... }}`)"
        )));
    }
    let config = DetectConfig {
        workers,
        ttl,
        max_violations: limit,
        budget,
        trace: tracing.spec(),
        ..DetectConfig::default()
    };

    if stream.is_none() {
        for (flag, set) in [
            ("--checkpoint", checkpoint.is_some()),
            ("--skip-corrupt", skip_corrupt),
        ] {
            if set {
                return Err(ArgError::new(format!(
                    "{flag} only applies to streaming mode (--stream DELTALOG)"
                )));
            }
        }
    }
    if let Some(log_path) = stream {
        if repair {
            return Err(ArgError::new(
                "--repair is not supported with --stream (repair against the \
                 final graph with a plain `gfd detect` run)",
            ));
        }
        if limit != usize::MAX {
            return Err(ArgError::new(
                "--limit is not supported with --stream: the incremental \
                 cache must hold the complete violation set",
            ));
        }
        let stream_opts = StreamOptions {
            compact_frac,
            show_metrics,
            quiet,
            checkpoint,
            checkpoint_every,
            skip_corrupt,
            budget,
        };
        return run_stream(
            &doc,
            graph_name.as_deref(),
            &log_path,
            &mut vocab,
            config,
            &stream_opts,
            &tracing,
            out,
        );
    }

    // Accumulate across graphs so one exporter call covers the whole
    // invocation (multi-graph files merge their per-graph runs).
    let mut totals = RunMetrics::default();
    let mut dirty = false;
    for (name, graph) in &doc.graphs {
        if graph_name.as_deref().is_some_and(|g| g != name) {
            continue;
        }
        let report = detect_deps(graph, &doc.deps, &config);
        totals.merge(&report.metrics);
        let _ = writeln!(
            out,
            "graph {name}: {} node(s), {} edge(s) — {} violation(s) in {}",
            graph.node_count(),
            graph.edge_count(),
            report.violations.len(),
            fmt_duration(report.metrics.elapsed),
        );
        // The violations below are real even when the run was cut short;
        // print them, then fail with the interrupt so scripts see exit 2.
        if let Some(i) = &report.interrupted {
            if !report.is_clean() && !quiet {
                let _ = write!(out, "{}", report.summary(&doc.deps, &vocab));
            }
            return Err(interrupted(i, &report.metrics));
        }
        if show_metrics {
            let _ = write!(out, "{}", crate::output::fmt_metrics(&report.metrics));
        }
        if !report.is_clean() {
            dirty = true;
            let _ = write!(out, "{}", report.summary(&doc.deps, &vocab));
            if !quiet {
                for v in &report.violations {
                    let _ = write!(out, "{}", v.explain(graph, &doc.deps, &vocab));
                    if repair {
                        for r in suggest_repairs(graph, &doc.deps, v, &vocab) {
                            let _ = writeln!(out, "  repair: {}", r.description);
                        }
                    }
                }
            }
        }
    }
    tracing.emit(&totals, &dep_rule_names(&doc.deps), out)?;
    Ok(if dirty { 1 } else { 0 })
}

/// Streaming-mode options beyond the shared [`DetectConfig`].
struct StreamOptions {
    compact_frac: f64,
    show_metrics: bool,
    quiet: bool,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    skip_corrupt: bool,
    budget: gfd_core::Budget,
}

/// Replay a delta log against one graph, keeping the violation set live
/// through the incremental engine. With `--checkpoint` the run persists
/// its state as it goes and resumes from an existing checkpoint file.
#[allow(clippy::too_many_arguments)]
fn run_stream(
    doc: &gfd_dsl::Document,
    graph_name: Option<&str>,
    log_path: &str,
    vocab: &mut gfd_graph::Vocab,
    config: DetectConfig,
    opts: &StreamOptions,
    tracing: &TraceArgs,
    out: &mut dyn Write,
) -> Result<i32, ArgError> {
    let selected: Vec<&(String, gfd_graph::Graph)> = doc
        .graphs
        .iter()
        .filter(|(name, _)| graph_name.is_none_or(|g| g == name))
        .collect();
    let (name, graph) = match selected.as_slice() {
        [one] => (&one.0, &one.1),
        [] => return Err(ArgError::new("--stream: no graph selected")),
        _ => {
            return Err(ArgError::new(
                "--stream needs exactly one graph (use --graph NAME)",
            ))
        }
    };
    let log_src = std::fs::read_to_string(log_path)
        .map_err(|e| ArgError::new(format!("cannot read {log_path}: {e}")))?;
    // The bounded parse rejects references to nodes that will not exist
    // at that point of the replay, with the offending line number — the
    // library panics on bad ids; the CLI reports a normal exit-2 error.
    let batches = if opts.skip_corrupt {
        let lenient = gfd_io::parse_delta_log_lenient(&log_src, vocab, Some(graph.node_count()))
            .map_err(|e| ArgError::new(format!("bad delta log {log_path}: {e}")))?;
        for (line, reason) in &lenient.skipped {
            let _ = writeln!(out, "skipped corrupt line {line}: {reason}");
        }
        if !lenient.skipped.is_empty() {
            let _ = writeln!(
                out,
                "skipped {} corrupt line(s) in {log_path}",
                lenient.skipped.len()
            );
        }
        lenient.batches
    } else {
        gfd_io::parse_delta_log_for(&log_src, vocab, graph.node_count())
            .map_err(|e| ArgError::new(format!("bad delta log {log_path}: {e}")))?
    };

    let trace_spec = config.trace;
    let incr_config = gfd_incr::IncrConfig {
        detect: config,
        compact_fraction: opts.compact_frac,
    };
    // Resume from the checkpoint when one exists: rebuild the detector
    // from the persisted graph + violation cache and skip the batches it
    // already applied. Otherwise seed from the document's graph.
    let mut applied = 0usize;
    let mut incr = match &opts.checkpoint {
        Some(path) if path.exists() => {
            let ckpt = gfd_io::load_checkpoint(path, vocab)
                .map_err(|e| ArgError::new(format!("bad checkpoint {}: {e}", path.display())))?;
            if ckpt.batches_applied > batches.len() {
                return Err(ArgError::new(format!(
                    "checkpoint {} is ahead of the log: {} batch(es) applied, \
                     but {log_path} has only {}",
                    path.display(),
                    ckpt.batches_applied,
                    batches.len()
                )));
            }
            applied = ckpt.batches_applied;
            let _ = writeln!(
                out,
                "resumed from {} at batch {} ({} violation(s) cached)",
                path.display(),
                applied,
                ckpt.violations.len()
            );
            gfd_incr::IncrementalDetector::from_parts(
                ckpt.graph,
                doc.deps.clone(),
                ckpt.violations,
                incr_config,
            )
        }
        _ => gfd_incr::IncrementalDetector::new(graph.clone(), doc.deps.clone(), incr_config),
    };
    let _ = writeln!(
        out,
        "graph {name}: {} node(s), {} edge(s) — {} violation(s) before the stream",
        incr.graph().node_count(),
        incr.graph().edge_count(),
        incr.violations().len(),
    );

    // Whole-stream totals: per-batch metrics print live, but steals,
    // splits and idle would otherwise reset every batch — the merged
    // accumulator is what `--metrics` summarizes at end of stream and
    // what the exporters consume.
    let mut totals = RunMetrics::default();
    // Checkpoint writes happen outside any scheduler run; record them on
    // the control track, stitched into the same timeline.
    let mut ctl = TraceBuf::new(trace_spec.control(), CONTROL_WORKER);
    for (i, batch) in batches.iter().enumerate().skip(applied) {
        // Cooperative batch-boundary deadline check: finish the current
        // batch, persist it, and stop — the checkpoint makes an
        // interrupted replay resumable instead of wasted.
        if opts.budget.expired() {
            return Err(interrupted(
                &gfd_core::Interrupt::Deadline,
                &gfd_parallel::RunMetrics {
                    deadline_slack_ms: opts.budget.deadline_slack_ms(),
                    ..Default::default()
                },
            ));
        }
        let rep = incr.apply(batch);
        totals.merge(&rep.metrics);
        let _ = writeln!(
            out,
            "batch {}: {} op(s), {} dirty node(s), {} pivot(s) re-run, \
             {} evicted, {} found — {} violation(s) live{}",
            i + 1,
            batch.len(),
            rep.dirty_nodes,
            rep.rerun_pivots,
            rep.evicted,
            rep.found,
            rep.violations_total,
            if rep.compacted { " [compacted]" } else { "" },
        );
        if opts.show_metrics {
            let _ = write!(out, "{}", crate::output::fmt_metrics(&rep.metrics));
        }
        if let Some(path) = &opts.checkpoint {
            let due =
                (i + 1 - applied).is_multiple_of(opts.checkpoint_every) || i + 1 == batches.len();
            if due {
                let span = ctl.start();
                let ckpt = gfd_io::Checkpoint {
                    batches_applied: i + 1,
                    graph: incr.graph().clone(),
                    violations: incr.violations().to_vec(),
                };
                gfd_io::save_checkpoint(path, &ckpt, vocab).map_err(|e| {
                    ArgError::new(format!("cannot write checkpoint {}: {e}", path.display()))
                })?;
                ctl.span(
                    EventKind::Checkpoint,
                    (i + 1) as u32,
                    span,
                    (i + 1) as u64,
                    0,
                );
            }
        }
    }
    totals.trace.absorb_buf(ctl);

    // The end-of-stream totals (the per-batch lines above reset every
    // batch); printed before the summary line so scripts that parse the
    // `after N batch(es)` tail are unaffected.
    if opts.show_metrics {
        let _ = writeln!(out, "stream totals:");
        let _ = write!(out, "{}", crate::output::fmt_metrics(&totals));
    }

    let _ = writeln!(
        out,
        "after {} batch(es): {} node(s), {} edge(s) — {} violation(s)",
        batches.len(),
        incr.graph().node_count(),
        incr.graph().edge_count(),
        incr.violations().len(),
    );
    if !incr.is_clean() && !opts.quiet {
        for v in incr.violations() {
            let _ = write!(out, "{}", v.explain(incr.graph(), incr.sigma(), vocab));
        }
    }
    tracing.emit(&totals, &dep_rule_names(incr.sigma()), out)?;
    Ok(if incr.is_clean() { 0 } else { 1 })
}
