//! `gfd detect FILE` — violation detection over the file's graphs.

use crate::args::{load_document, ArgError, Parsed};
use crate::output::fmt_duration;
use gfd_detect::{detect_deps, suggest_repairs, DetectConfig};
use std::io::Write;
use std::time::Duration;

const HELP: &str = "\
gfd detect FILE [--graph NAME] [--limit N] [--workers N] [--ttl-ms T]
               [--repair] [--quiet] [--metrics]
               [--stream DELTALOG] [--compact-frac F]

Runs the rules in FILE against the graph(s) declared in FILE (the paper's
error-detection application, ϕ1–ϕ4 of Example 1). FILE may mix `gfd` and
`ggd` blocks: an unsatisfied generating consequence is reported as a
violation with a witness of the missing subgraph.
  --graph NAME  only check the named graph (default: all graphs)
  --limit N     stop after N violations (default: all)
  --repair      print minimal repair suggestions per violation
  --quiet       summary only, no per-violation explanations
  --metrics     print scheduler metrics (units, splits, steals, idle time)

Streaming mode (requires exactly one selected graph):
  --stream DELTALOG  replay the delta log batch by batch, keeping the
                     violation set live incrementally (gfd-incr) instead
                     of re-detecting from scratch; prints per-batch stats
                     (and per-batch scheduler metrics under --metrics)
  --compact-frac F   overlay compaction threshold as a fraction of the
                     base edge count (default 0.25; 0.0 compacts after
                     every batch; must be non-negative and finite)
Exit code: 0 clean, 1 violations found, 2 error.
";

pub(crate) fn run(args: Parsed, out: &mut dyn Write) -> Result<i32, ArgError> {
    if args.flag("help") {
        let _ = write!(out, "{HELP}");
        return Ok(0);
    }
    let path = args.positional(0, "FILE")?.to_string();
    let graph_name = args.opt_str("graph")?.map(str::to_string);
    let limit = args.opt_usize("limit", usize::MAX)?;
    let workers = args.opt_usize("workers", 4)?;
    let ttl = Duration::from_millis(args.opt_u64("ttl-ms", 100)?);
    let repair = args.flag("repair");
    let quiet = args.flag("quiet");
    let show_metrics = args.flag("metrics");
    let stream = args.opt_str("stream")?.map(str::to_string);
    let compact_frac = match args.opt_str("compact-frac")? {
        None => 0.25,
        Some(v) => {
            let f = v.parse::<f64>().map_err(|_| {
                ArgError::new(format!("--compact-frac expects a number, got `{v}`"))
            })?;
            // One source of truth for the accepted range: the library
            // validator (whose failure mode there is a panic, not an
            // error the CLI could surface).
            let probe = gfd_incr::IncrConfig {
                compact_fraction: f,
                ..gfd_incr::IncrConfig::default()
            };
            probe
                .validate()
                .map_err(|msg| ArgError::new(format!("--compact-frac: {msg}")))?;
            f
        }
    };
    args.finish()?;

    let mut vocab = gfd_graph::Vocab::new();
    let doc = load_document(&path, &mut vocab)?;
    if doc.deps.is_empty() {
        return Err(ArgError::new(format!("{path} contains no rules")));
    }
    if doc.graphs.is_empty() {
        return Err(ArgError::new(format!(
            "{path} declares no graphs — detection needs data (add `graph NAME {{ ... }}`)"
        )));
    }
    let config = DetectConfig {
        workers,
        ttl,
        max_violations: limit,
        ..DetectConfig::default()
    };

    if let Some(log_path) = stream {
        if repair {
            return Err(ArgError::new(
                "--repair is not supported with --stream (repair against the \
                 final graph with a plain `gfd detect` run)",
            ));
        }
        if limit != usize::MAX {
            return Err(ArgError::new(
                "--limit is not supported with --stream: the incremental \
                 cache must hold the complete violation set",
            ));
        }
        return run_stream(
            &doc,
            graph_name.as_deref(),
            &log_path,
            &mut vocab,
            config,
            compact_frac,
            show_metrics,
            quiet,
            out,
        );
    }

    let mut dirty = false;
    for (name, graph) in &doc.graphs {
        if graph_name.as_deref().is_some_and(|g| g != name) {
            continue;
        }
        let report = detect_deps(graph, &doc.deps, &config);
        let _ = writeln!(
            out,
            "graph {name}: {} node(s), {} edge(s) — {} violation(s) in {}",
            graph.node_count(),
            graph.edge_count(),
            report.violations.len(),
            fmt_duration(report.metrics.elapsed),
        );
        if show_metrics {
            let _ = write!(out, "{}", crate::output::fmt_metrics(&report.metrics));
        }
        if !report.is_clean() {
            dirty = true;
            let _ = write!(out, "{}", report.summary(&doc.deps, &vocab));
            if !quiet {
                for v in &report.violations {
                    let _ = write!(out, "{}", v.explain(graph, &doc.deps, &vocab));
                    if repair {
                        for r in suggest_repairs(graph, &doc.deps, v, &vocab) {
                            let _ = writeln!(out, "  repair: {}", r.description);
                        }
                    }
                }
            }
        }
    }
    Ok(if dirty { 1 } else { 0 })
}

/// Replay a delta log against one graph, keeping the violation set live
/// through the incremental engine.
#[allow(clippy::too_many_arguments)]
fn run_stream(
    doc: &gfd_dsl::Document,
    graph_name: Option<&str>,
    log_path: &str,
    vocab: &mut gfd_graph::Vocab,
    config: DetectConfig,
    compact_frac: f64,
    show_metrics: bool,
    quiet: bool,
    out: &mut dyn Write,
) -> Result<i32, ArgError> {
    let selected: Vec<&(String, gfd_graph::Graph)> = doc
        .graphs
        .iter()
        .filter(|(name, _)| graph_name.is_none_or(|g| g == name))
        .collect();
    let (name, graph) = match selected.as_slice() {
        [one] => (&one.0, &one.1),
        [] => return Err(ArgError::new("--stream: no graph selected")),
        _ => {
            return Err(ArgError::new(
                "--stream needs exactly one graph (use --graph NAME)",
            ))
        }
    };
    let log_src = std::fs::read_to_string(log_path)
        .map_err(|e| ArgError::new(format!("cannot read {log_path}: {e}")))?;
    // The bounded parse rejects references to nodes that will not exist
    // at that point of the replay, with the offending line number — the
    // library panics on bad ids; the CLI reports a normal exit-2 error.
    let batches = gfd_io::parse_delta_log_for(&log_src, vocab, graph.node_count())
        .map_err(|e| ArgError::new(format!("bad delta log {log_path}: {e}")))?;

    let incr_config = gfd_incr::IncrConfig {
        detect: config,
        compact_fraction: compact_frac,
    };
    let mut incr = gfd_incr::IncrementalDetector::new(graph.clone(), doc.deps.clone(), incr_config);
    let _ = writeln!(
        out,
        "graph {name}: {} node(s), {} edge(s) — {} violation(s) before the stream",
        graph.node_count(),
        graph.edge_count(),
        incr.violations().len(),
    );

    for (i, batch) in batches.iter().enumerate() {
        let rep = incr.apply(batch);
        let _ = writeln!(
            out,
            "batch {}: {} op(s), {} dirty node(s), {} pivot(s) re-run, \
             {} evicted, {} found — {} violation(s) live{}",
            i + 1,
            batch.len(),
            rep.dirty_nodes,
            rep.rerun_pivots,
            rep.evicted,
            rep.found,
            rep.violations_total,
            if rep.compacted { " [compacted]" } else { "" },
        );
        if show_metrics {
            let _ = write!(out, "{}", crate::output::fmt_metrics(&rep.metrics));
        }
    }

    let _ = writeln!(
        out,
        "after {} batch(es): {} node(s), {} edge(s) — {} violation(s)",
        batches.len(),
        incr.graph().node_count(),
        incr.graph().edge_count(),
        incr.violations().len(),
    );
    if !incr.is_clean() && !quiet {
        for v in incr.violations() {
            let _ = write!(out, "{}", v.explain(incr.graph(), incr.sigma(), vocab));
        }
    }
    Ok(if incr.is_clean() { 0 } else { 1 })
}
