//! `gfd detect FILE` — violation detection over the file's graphs.

use crate::args::{load_document, ArgError, Parsed};
use crate::output::fmt_duration;
use gfd_detect::{detect, suggest_repairs, DetectConfig};
use std::io::Write;
use std::time::Duration;

const HELP: &str = "\
gfd detect FILE [--graph NAME] [--limit N] [--workers N] [--ttl-ms T]
               [--repair] [--quiet] [--metrics]

Runs the rules in FILE against the graph(s) declared in FILE (the paper's
error-detection application, ϕ1–ϕ4 of Example 1).
  --graph NAME  only check the named graph (default: all graphs)
  --limit N     stop after N violations (default: all)
  --repair      print minimal repair suggestions per violation
  --quiet       summary only, no per-violation explanations
  --metrics     print scheduler metrics (units, splits, steals, idle time)
Exit code: 0 clean, 1 violations found, 2 error.
";

pub(crate) fn run(args: Parsed, out: &mut dyn Write) -> Result<i32, ArgError> {
    if args.flag("help") {
        let _ = write!(out, "{HELP}");
        return Ok(0);
    }
    let path = args.positional(0, "FILE")?.to_string();
    let graph_name = args.opt_str("graph")?.map(str::to_string);
    let limit = args.opt_usize("limit", usize::MAX)?;
    let workers = args.opt_usize("workers", 4)?;
    let ttl = Duration::from_millis(args.opt_u64("ttl-ms", 100)?);
    let repair = args.flag("repair");
    let quiet = args.flag("quiet");
    let show_metrics = args.flag("metrics");
    args.finish()?;

    let mut vocab = gfd_graph::Vocab::new();
    let doc = load_document(&path, &mut vocab)?;
    if doc.gfds.is_empty() {
        return Err(ArgError::new(format!("{path} contains no GFDs")));
    }
    if doc.graphs.is_empty() {
        return Err(ArgError::new(format!(
            "{path} declares no graphs — detection needs data (add `graph NAME {{ ... }}`)"
        )));
    }
    let config = DetectConfig {
        workers,
        ttl,
        max_violations: limit,
        ..DetectConfig::default()
    };

    let mut dirty = false;
    for (name, graph) in &doc.graphs {
        if graph_name.as_deref().is_some_and(|g| g != name) {
            continue;
        }
        let report = detect(graph, &doc.gfds, &config);
        let _ = writeln!(
            out,
            "graph {name}: {} node(s), {} edge(s) — {} violation(s) in {}",
            graph.node_count(),
            graph.edge_count(),
            report.violations.len(),
            fmt_duration(report.metrics.elapsed),
        );
        if show_metrics {
            let _ = write!(out, "{}", crate::output::fmt_metrics(&report.metrics));
        }
        if !report.is_clean() {
            dirty = true;
            let _ = write!(out, "{}", report.summary(&doc.gfds, &vocab));
            if !quiet {
                for v in &report.violations {
                    let _ = write!(out, "{}", v.explain(graph, &doc.gfds, &vocab));
                    if repair {
                        for r in suggest_repairs(graph, &doc.gfds, v, &vocab) {
                            let _ = writeln!(out, "  repair: {}", r.description);
                        }
                    }
                }
            }
        }
    }
    Ok(if dirty { 1 } else { 0 })
}
