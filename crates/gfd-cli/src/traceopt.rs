//! The shared `--trace` / `--profile` / `--metrics-json` flags.
//!
//! Every reasoning command (`sat`, `imp`, `detect`, `ged-sat`, `ged-imp`)
//! accepts the same three observability options; this module parses them
//! once and renders the exporters once. Passing any of the three turns
//! tracing on for the run (the default stays the zero-cost disabled path).

use crate::args::{ArgError, Parsed};
use gfd_parallel::{RunMetrics, TraceSpec};
use std::io::Write;

/// Help text fragment shared by every command that takes the flags.
pub(crate) const TRACE_HELP: &str = "\
  --trace FILE   write a Chrome trace-event JSON timeline (load it in
                 chrome://tracing or Perfetto; validate with `gfd trace-check`)
  --profile      print the aggregated profile (per-rule time/matches,
                 per-worker scheduler activity, per-phase breakdown)
  --metrics-json FILE  write every run counter plus the profile as JSON
";

/// The parsed observability options of one command invocation.
pub(crate) struct TraceArgs {
    trace: Option<String>,
    profile: bool,
    metrics_json: Option<String>,
}

impl TraceArgs {
    /// Pull the three flags out of `args` (must run before `finish()`).
    pub fn parse(args: &Parsed) -> Result<Self, ArgError> {
        Ok(TraceArgs {
            trace: args.opt_str("trace")?.map(str::to_string),
            profile: args.flag("profile"),
            metrics_json: args.opt_str("metrics-json")?.map(str::to_string),
        })
    }

    /// Was any exporter requested?
    pub fn active(&self) -> bool {
        self.trace.is_some() || self.profile || self.metrics_json.is_some()
    }

    /// The [`TraceSpec`] to plumb into the engine config: enabled with the
    /// default ring capacity iff an exporter will consume the events.
    pub fn spec(&self) -> TraceSpec {
        if self.active() {
            TraceSpec::enabled()
        } else {
            TraceSpec::disabled()
        }
    }

    /// Run the requested exporters against the finished run's metrics.
    /// `rule_names[i]` labels rule id `i` in both exporters.
    pub fn emit(
        &self,
        metrics: &RunMetrics,
        rule_names: &[String],
        out: &mut dyn Write,
    ) -> Result<(), ArgError> {
        if let Some(path) = &self.trace {
            std::fs::write(path, metrics.trace.to_chrome_json(rule_names))
                .map_err(|e| ArgError::new(format!("cannot write trace {path}: {e}")))?;
            let _ = writeln!(
                out,
                "wrote trace {path} ({} event(s), {} dropped)",
                metrics.trace.events.len(),
                metrics.trace.dropped
            );
        }
        if self.profile {
            let profile = metrics.trace.profile();
            if profile.is_empty() {
                let _ = writeln!(out, "profile: no events recorded");
            } else {
                let _ = write!(out, "{}", profile.render_text(rule_names));
            }
        }
        if let Some(path) = &self.metrics_json {
            std::fs::write(path, metrics.to_json(rule_names))
                .map_err(|e| ArgError::new(format!("cannot write metrics {path}: {e}")))?;
            let _ = writeln!(out, "wrote metrics {path}");
        }
        Ok(())
    }
}

/// Rule names in id order for a literal rule set.
pub(crate) fn gfd_rule_names(sigma: &gfd_core::GfdSet) -> Vec<String> {
    sigma.iter().map(|(_, g)| g.name.clone()).collect()
}

/// Rule names in id order for a generalized dependency set.
pub(crate) fn dep_rule_names(sigma: &gfd_core::DepSet) -> Vec<String> {
    sigma.iter().map(|(_, d)| d.name.clone()).collect()
}
