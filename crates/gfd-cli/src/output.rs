//! Shared output formatting helpers.

use gfd_parallel::RunMetrics;
use std::time::Duration;

/// Render a duration compactly (`1.23s`, `45ms`, `890µs`).
pub fn fmt_duration(d: Duration) -> String {
    if d >= Duration::from_secs(1) {
        format!("{:.2}s", d.as_secs_f64())
    } else if d >= Duration::from_millis(1) {
        format!("{}ms", d.as_millis())
    } else {
        format!("{}µs", d.as_micros())
    }
}

/// Render the unified scheduler metrics as indented lines.
pub fn fmt_metrics(m: &RunMetrics) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  units: {} generated, {} dispatched, {} split, {} stolen\n",
        m.units_generated, m.units_dispatched, m.units_split, m.units_stolen
    ));
    out.push_str(&format!(
        "  matches: {} ({} pending, {} rechecks)\n",
        m.matches, m.pending, m.rechecks
    ));
    if m.branches > 0 {
        out.push_str(&format!("  branches explored: {}\n", m.branches));
    }
    if let Some(ms) = m.makespan() {
        out.push_str(&format!(
            "  makespan: {} (idle: {})\n",
            fmt_duration(ms),
            fmt_duration(m.total_idle())
        ));
    }
    if m.early_terminated {
        out.push_str("  early termination: yes\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_pick_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(45)), "45ms");
        assert_eq!(fmt_duration(Duration::from_micros(890)), "890µs");
    }
}
