//! Shared output formatting helpers.

use gfd_parallel::RunMetrics;
use std::time::Duration;

/// Render a duration compactly (`1.23s`, `45ms`, `890µs`).
pub fn fmt_duration(d: Duration) -> String {
    if d >= Duration::from_secs(1) {
        format!("{:.2}s", d.as_secs_f64())
    } else if d >= Duration::from_millis(1) {
        format!("{}ms", d.as_millis())
    } else {
        format!("{}µs", d.as_micros())
    }
}

/// Render the unified scheduler metrics as indented lines.
///
/// Every [`RunMetrics`] counter prints unconditionally — `sat`, `imp`,
/// `detect` and the `ged-*` commands all show the same shape, so a zero
/// (e.g. `branches explored: 0` for match-driven workloads) reads as "not
/// that kind of work" rather than silently disappearing from the output.
pub fn fmt_metrics(m: &RunMetrics) -> String {
    let mut out = String::new();
    out.push_str(&format!("  workers: {}\n", m.workers));
    out.push_str(&format!(
        "  units: {} generated, {} dispatched, {} split, {} stolen\n",
        m.units_generated, m.units_dispatched, m.units_split, m.units_stolen
    ));
    out.push_str(&format!(
        "  matches: {} ({} pending, {} rechecks, {} delta ops broadcast)\n",
        m.matches, m.pending, m.rechecks, m.delta_ops_broadcast
    ));
    out.push_str(&format!("  branches explored: {}\n", m.branches));
    out.push_str(&format!(
        "  faults: {} unit(s) panicked, {} retried\n",
        m.units_panicked, m.units_retried
    ));
    if let Some(slack) = m.deadline_slack_ms {
        out.push_str(&format!("  deadline slack: {slack}ms\n"));
    }
    if let Some(ms) = m.makespan() {
        out.push_str(&format!(
            "  makespan: {} (idle: {})\n",
            fmt_duration(ms),
            fmt_duration(m.total_idle())
        ));
    }
    out.push_str(&format!(
        "  early termination: {}\n",
        if m.early_terminated { "yes" } else { "no" }
    ));
    out
}

/// Render the chase counters that accompany [`RunMetrics`] on the
/// generalized (GGD) reasoning paths.
pub fn fmt_chase_stats(s: &gfd_chase::ChaseStats) -> String {
    format!(
        "  chase: {} round(s), {} premise eval(s), {} match(es) enumerated, \
         {} node(s) generated, {} realization check(s)\n\
         \x20 apply: {} independent firing(s), {} conflicting (serial fallback); \
         scan {}, apply {}\n",
        s.rounds,
        s.premise_evals,
        s.matches_enumerated,
        s.generated_nodes,
        s.realization_checks,
        s.apply_independent,
        s.apply_conflicts,
        fmt_duration(s.scan_time),
        fmt_duration(s.apply_time),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_report_faults_and_slack() {
        let m = RunMetrics {
            units_panicked: 2,
            units_retried: 1,
            deadline_slack_ms: Some(-7),
            ..Default::default()
        };
        let text = fmt_metrics(&m);
        assert!(
            text.contains("faults: 2 unit(s) panicked, 1 retried"),
            "{text}"
        );
        assert!(text.contains("deadline slack: -7ms"), "{text}");
        // Without a deadline the slack line disappears; the fault line
        // prints unconditionally like every other counter.
        let text = fmt_metrics(&RunMetrics::default());
        assert!(
            text.contains("faults: 0 unit(s) panicked, 0 retried"),
            "{text}"
        );
        assert!(!text.contains("deadline slack"), "{text}");
    }

    #[test]
    fn durations_pick_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(45)), "45ms");
        assert_eq!(fmt_duration(Duration::from_micros(890)), "890µs");
    }
}
