//! `gfd ged-sat`, `gfd ged-imp`, `gfd resolve` — the GED extension
//! commands (§IX of the paper).

use crate::args::{load_document, parse_budget, ArgError, Parsed};
use crate::output::{fmt_duration, fmt_metrics};
use crate::traceopt::{TraceArgs, TRACE_HELP};
use gfd_ged::{
    ged_implies_with_config, ged_sat_with_config, resolve_entities, Ged, GedLiteral,
    GedReasonConfig, Key,
};
use std::io::Write;
use std::time::{Duration, Instant};

/// Parse the scheduler flags shared by `ged-sat` and `ged-imp`.
fn reason_config(args: &Parsed, tracing: &TraceArgs) -> Result<GedReasonConfig, ArgError> {
    let workers = args.opt_usize("workers", 1)?;
    let ttl = Duration::from_millis(args.opt_u64("ttl-ms", 100)?);
    let max_branches = args.opt_usize("max-branches", 1_000_000)?;
    if max_branches == 0 {
        return Err(ArgError::new("--max-branches must be positive"));
    }
    let budget = parse_budget(args)?;
    let mut cfg = GedReasonConfig::with_workers(workers.max(1))
        .with_ttl(ttl)
        .with_max_branches(max_branches)
        .with_budget(budget);
    cfg.trace = tracing.spec();
    Ok(cfg)
}

/// Render an inconclusive GED run as the uniform exit-2 diagnostic,
/// naming the specific exhausted axis (the branch budget keeps its
/// historical `raise --max-branches` hint).
fn ged_interrupted(run_interrupt: Option<&gfd_core::Interrupt>, cfg: &GedReasonConfig) -> ArgError {
    match run_interrupt {
        Some(gfd_core::Interrupt::Branches) => ArgError::new(format!(
            "branch budget ({}) exhausted before the search completed; \
             raise --max-branches",
            cfg.max_branches
        )),
        Some(i) => ArgError::new(format!(
            "run interrupted: {i}; raise --deadline-ms/--max-units to keep going"
        )),
        None => ArgError::new("search ended without a verdict"),
    }
}

const SAT_HELP: &str = "\
gfd ged-sat FILE [--witness] [--workers N] [--ttl-ms T] [--max-branches B]
                 [--metrics] [--deadline-ms T] [--max-units N]
                 [--trace FILE] [--profile] [--metrics-json FILE]

Checks whether the rules in FILE (both `ged` and `gfd` blocks, the latter
lifted) have a common model, using the GED chase with order predicates,
id literals and disjunction. The branch search runs on the shared
work-stealing scheduler; the first model found cancels the run.
  --witness        print the extracted model when one exists
  --workers N      parallel workers (default 1 = the sequential search)
  --ttl-ms T       straggler-splitting TTL in milliseconds (default 100)
  --max-branches B branch budget (default 1000000); exhaustion exits 2
  --deadline-ms T  wall-clock budget; expiry degrades to unknown (exit 2)
  --max-units N    scheduler work-unit budget; exhaustion exits 2
  --metrics        print scheduler metrics (branches, splits, steals, idle)
{TRACE}\
Exit code: 0 satisfiable, 1 unsatisfiable, 2 error or budget exhausted.
";

pub(crate) fn run_sat(args: Parsed, out: &mut dyn Write) -> Result<i32, ArgError> {
    if args.flag("help") {
        let _ = write!(out, "{}", SAT_HELP.replace("{TRACE}", TRACE_HELP));
        return Ok(0);
    }
    let path = args.positional(0, "FILE")?.to_string();
    let witness = args.flag("witness");
    let show_metrics = args.flag("metrics");
    let tracing = TraceArgs::parse(&args)?;
    let cfg = reason_config(&args, &tracing)?;
    args.finish()?;

    let mut vocab = gfd_graph::Vocab::new();
    let doc = load_document(&path, &mut vocab)?;
    let sigma = doc.all_as_geds();
    if sigma.is_empty() {
        return Err(ArgError::new(format!("{path} contains no rules")));
    }
    let _ = writeln!(
        out,
        "{}: {} rule(s) (as GEDs), {} worker(s)",
        path,
        sigma.len(),
        cfg.workers
    );
    let run = ged_sat_with_config(&sigma, &cfg);
    let Some(outcome) = run.outcome else {
        return Err(ged_interrupted(run.interrupt.as_ref(), &cfg));
    };
    let verdict = if outcome.is_satisfiable() {
        "SATISFIABLE"
    } else {
        "UNSATISFIABLE"
    };
    let _ = writeln!(out, "{verdict} ({})", fmt_duration(run.metrics.elapsed));
    if show_metrics {
        let _ = write!(out, "{}", fmt_metrics(&run.metrics));
    }
    // GED rule ids don't label RuleEval events (the search traces
    // GedBranch spans), so the exporters take an empty name table.
    tracing.emit(&run.metrics, &[], out)?;
    if witness {
        match outcome.witness() {
            Some(w) => {
                let _ = write!(out, "{}", gfd_dsl::print_graph("witness", w, &vocab));
            }
            None if outcome.is_satisfiable() => {
                let _ = writeln!(
                    out,
                    "witness: not extractable (non-integer order constraints)"
                );
            }
            None => {}
        }
    }
    Ok(if outcome.is_satisfiable() { 0 } else { 1 })
}

const IMP_HELP: &str = "\
gfd ged-imp FILE --phi NAME [--workers N] [--ttl-ms T] [--max-branches B]
                 [--metrics] [--deadline-ms T] [--max-units N]
                 [--trace FILE] [--profile] [--metrics-json FILE]

Checks whether the other rules in FILE imply rule NAME, under GED
semantics (order predicates, id literals, disjunction). The branch
search runs on the shared work-stealing scheduler; the first
counterexample found cancels the run.
  --workers N      parallel workers (default 1 = the sequential search)
  --ttl-ms T       straggler-splitting TTL in milliseconds (default 100)
  --max-branches B branch budget (default 1000000); exhaustion exits 2
  --deadline-ms T  wall-clock budget; expiry degrades to unknown (exit 2)
  --max-units N    scheduler work-unit budget; exhaustion exits 2
  --metrics        print scheduler metrics (branches, splits, steals, idle)
{TRACE}\
Exit code: 0 implied, 1 not implied, 2 error or budget exhausted.
";

pub(crate) fn run_imp(args: Parsed, out: &mut dyn Write) -> Result<i32, ArgError> {
    if args.flag("help") {
        let _ = write!(out, "{}", IMP_HELP.replace("{TRACE}", TRACE_HELP));
        return Ok(0);
    }
    let path = args.positional(0, "FILE")?.to_string();
    let phi_name = args
        .opt_str("phi")?
        .ok_or_else(|| ArgError::new("ged-imp requires --phi NAME"))?
        .to_string();
    let show_metrics = args.flag("metrics");
    let tracing = TraceArgs::parse(&args)?;
    let cfg = reason_config(&args, &tracing)?;
    args.finish()?;

    let mut vocab = gfd_graph::Vocab::new();
    let doc = load_document(&path, &mut vocab)?;
    let all = doc.all_as_geds();
    let mut sigma = gfd_ged::GedSet::new();
    let mut phi: Option<Ged> = None;
    for (_, ged) in all.iter() {
        if ged.name == phi_name {
            phi = Some(ged.clone());
        } else {
            sigma.push(ged.clone());
        }
    }
    let phi = phi.ok_or_else(|| ArgError::new(format!("no rule named `{phi_name}` in {path}")))?;
    let _ = writeln!(
        out,
        "Σ: {} rule(s); ψ = {}; {} worker(s)",
        sigma.len(),
        phi.display(&vocab),
        cfg.workers
    );
    let run = ged_implies_with_config(&sigma, &phi, &cfg);
    let Some(outcome) = run.outcome else {
        return Err(ged_interrupted(run.interrupt.as_ref(), &cfg));
    };
    let implied = outcome.is_implied();
    let verdict = if implied { "IMPLIED" } else { "NOT IMPLIED" };
    let _ = writeln!(out, "{verdict} ({})", fmt_duration(run.metrics.elapsed));
    if show_metrics {
        let _ = write!(out, "{}", fmt_metrics(&run.metrics));
    }
    tracing.emit(&run.metrics, &[], out)?;
    Ok(if implied { 0 } else { 1 })
}

const RESOLVE_HELP: &str = "\
gfd resolve FILE [--graph NAME] [--out PATH]

Entity resolution with recursively-defined keys: every GED in FILE whose
consequence is a single id literal conjunction acts as a key; the named
graph is resolved to a fixpoint (merges may enable further merges).
  --graph NAME  resolve the named graph (default: the first graph)
  --out PATH    write the resolved graph (DSL) to PATH
Exit code: 0 (prints merge statistics), 2 on error.
";

pub(crate) fn run_resolve(args: Parsed, out: &mut dyn Write) -> Result<i32, ArgError> {
    if args.flag("help") {
        let _ = write!(out, "{RESOLVE_HELP}");
        return Ok(0);
    }
    let path = args.positional(0, "FILE")?.to_string();
    let graph_name = args.opt_str("graph")?.map(str::to_string);
    let out_path = args.opt_str("out")?.map(str::to_string);
    args.finish()?;

    let mut vocab = gfd_graph::Vocab::new();
    let doc = load_document(&path, &mut vocab)?;
    let graph = match &graph_name {
        Some(n) => doc
            .graphs
            .iter()
            .find(|(name, _)| name == n)
            .map(|(_, g)| g)
            .ok_or_else(|| ArgError::new(format!("no graph named `{n}` in {path}")))?,
        None => {
            &doc.graphs
                .first()
                .ok_or_else(|| ArgError::new(format!("{path} declares no graphs")))?
                .1
        }
    };
    // Keys: GEDs whose single disjunct is all id literals.
    let keys: Vec<Key> = doc
        .geds
        .iter()
        .filter(|(_, g)| {
            g.disjuncts.len() == 1
                && !g.disjuncts[0].is_empty()
                && g.disjuncts[0]
                    .iter()
                    .all(|l| matches!(l, GedLiteral::Id { .. }))
        })
        .map(|(_, g)| Key::new(g.clone()))
        .collect();
    if keys.is_empty() {
        return Err(ArgError::new(format!(
            "{path} contains no keys (GEDs whose consequence is `x.id = y.id`)"
        )));
    }
    let _ = writeln!(
        out,
        "resolving {} node(s) with {} key(s)",
        graph.node_count(),
        keys.len()
    );
    let start = Instant::now();
    let r = resolve_entities(graph, &keys);
    let elapsed = start.elapsed();
    let _ = writeln!(
        out,
        "{} merge(s) in {} round(s); {} node(s) remain ({})",
        r.merges,
        r.rounds,
        r.resolved.node_count(),
        fmt_duration(elapsed),
    );
    for c in &r.conflicts {
        let _ = writeln!(
            out,
            "  attribute conflict at n{}.{}: kept {:?}, dropped {:?}",
            c.node.index(),
            vocab.attr_name(c.attr),
            c.kept,
            c.dropped,
        );
    }
    if let Some(p) = out_path {
        std::fs::write(&p, gfd_dsl::print_graph("resolved", &r.resolved, &vocab))
            .map_err(|e| ArgError::new(format!("cannot write {p}: {e}")))?;
        let _ = writeln!(out, "wrote {p}");
    }
    Ok(0)
}
