//! The `gfd` binary: a thin wrapper over [`gfd_cli::run_with_err`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let stderr = std::io::stderr();
    let mut out = stdout.lock();
    let mut err = stderr.lock();
    std::process::exit(gfd_cli::run_with_err(&args, &mut out, &mut err));
}
