//! The `gfd` binary: a thin wrapper over [`gfd_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    std::process::exit(gfd_cli::run(&args, &mut out));
}
