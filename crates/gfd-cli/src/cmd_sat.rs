//! `gfd sat FILE` — satisfiability checking.

use crate::args::{load_document, ArgError, Parsed};
use crate::output::{fmt_duration, fmt_metrics};
use gfd_parallel::ParConfig;
use std::io::Write;
use std::time::{Duration, Instant};

const HELP: &str = "\
gfd sat FILE [--workers N] [--ttl-ms T] [--seq] [--model] [--metrics]

Checks whether the GFD set in FILE has a model (§IV–V of the paper).
  --workers N   parallel workers (default 4)
  --seq         use the sequential SeqSat algorithm (workers = 1)
  --ttl-ms T    straggler TTL in milliseconds (default 2000)
  --model       on satisfiable sets, print the extracted small model
  --metrics     print scheduler metrics (units, splits, steals, idle time)
Exit code: 0 satisfiable, 1 unsatisfiable, 2 error.
";

pub(crate) fn run(args: Parsed, out: &mut dyn Write) -> Result<i32, ArgError> {
    if args.flag("help") {
        let _ = write!(out, "{HELP}");
        return Ok(0);
    }
    let path = args.positional(0, "FILE")?.to_string();
    let workers = args.opt_usize("workers", 4)?;
    let ttl = Duration::from_millis(args.opt_u64("ttl-ms", 2000)?);
    let sequential = args.flag("seq");
    let show_model = args.flag("model");
    let show_metrics = args.flag("metrics");
    args.finish()?;

    let mut vocab = gfd_graph::Vocab::new();
    let doc = load_document(&path, &mut vocab)?;
    let sigma = doc.gfds;
    if sigma.is_empty() {
        return Err(ArgError::new(format!("{path} contains no GFDs")));
    }
    let _ = writeln!(
        out,
        "{}: {} rule(s), total size {}",
        path,
        sigma.len(),
        sigma.total_size()
    );

    let start = Instant::now();
    // The sequential and parallel algorithms share one driver: `--seq` is
    // the workers = 1 instantiation, and both report the same metrics.
    let (satisfiable, model, metrics) = if sequential {
        let r = gfd_core::seq_sat(&sigma);
        let model = r.model().cloned();
        (r.is_satisfiable(), model, r.stats)
    } else {
        let cfg = ParConfig::with_workers(workers).with_ttl(ttl);
        let r = gfd_parallel::par_sat(&sigma, &cfg);
        let sat = r.is_satisfiable();
        (sat, None, r.metrics)
    };
    let elapsed = start.elapsed();

    let verdict = if satisfiable {
        "SATISFIABLE"
    } else {
        "UNSATISFIABLE"
    };
    let _ = writeln!(out, "{verdict} ({})", fmt_duration(elapsed));
    if show_metrics {
        let _ = write!(out, "{}", fmt_metrics(&metrics));
    }
    if show_model {
        if let Some(model) = &model {
            let _ = writeln!(
                out,
                "model: {} nodes, {} edges, {} attributes",
                model.node_count(),
                model.edge_count(),
                model.attr_count()
            );
            let _ = write!(out, "{}", gfd_dsl::print_graph("model", model, &vocab));
        } else if satisfiable {
            let _ = writeln!(out, "model: (run with --seq to extract a model)");
        }
    }
    Ok(if satisfiable { 0 } else { 1 })
}
