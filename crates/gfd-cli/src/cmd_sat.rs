//! `gfd sat FILE` — satisfiability checking.

use crate::args::{load_document, parse_budget, ArgError, Parsed};
use crate::output::{fmt_duration, fmt_metrics};
use crate::traceopt::{dep_rule_names, gfd_rule_names, TraceArgs, TRACE_HELP};
use gfd_parallel::ParConfig;
use std::io::Write;
use std::time::{Duration, Instant};

const HELP: &str = "\
gfd sat FILE [--workers N] [--ttl-ms T] [--seq] [--model] [--metrics]
             [--gen-budget B] [--deadline-ms T] [--max-units N]
             [--trace FILE] [--profile] [--metrics-json FILE]

Checks whether the rule set in FILE has a model (§IV–V of the paper).
FILE may mix `gfd` and `ggd` blocks: literal-only sets run the
SeqSat/ParSat driver, sets with generating rules the GGD chase.
  --workers N    parallel workers (default 4)
  --seq          use the sequential algorithm (workers = 1)
  --ttl-ms T     straggler TTL in milliseconds (default 2000)
  --model        on satisfiable sets, print the extracted model
  --metrics      print scheduler metrics (units, splits, steals, idle)
  --gen-budget B fresh-node budget of the GGD chase (default 100000);
                 exhaustion exits 2
  --deadline-ms T wall-clock budget; an expired run degrades to unknown
                 (exit 2), never to a wrong definite verdict
  --max-units N  scheduler work-unit budget; exhaustion exits 2
{TRACE}\
Exit code: 0 satisfiable, 1 unsatisfiable, 2 error or budget exhausted.
";

pub(crate) fn run(args: Parsed, out: &mut dyn Write) -> Result<i32, ArgError> {
    if args.flag("help") {
        let _ = write!(out, "{}", HELP.replace("{TRACE}", TRACE_HELP));
        return Ok(0);
    }
    let path = args.positional(0, "FILE")?.to_string();
    let workers = args.opt_usize("workers", 4)?;
    let ttl = Duration::from_millis(args.opt_u64("ttl-ms", 2000)?);
    let sequential = args.flag("seq");
    let show_model = args.flag("model");
    let show_metrics = args.flag("metrics");
    let gen_budget = args.opt_u64("gen-budget", 100_000)?;
    let budget = parse_budget(&args)?;
    let tracing = TraceArgs::parse(&args)?;
    args.finish()?;

    let mut vocab = gfd_graph::Vocab::new();
    let doc = load_document(&path, &mut vocab)?;
    if doc.deps.is_empty() {
        return Err(ArgError::new(format!("{path} contains no rules")));
    }
    if doc.deps.has_generating() {
        return run_generating(
            &path,
            doc,
            &vocab,
            workers,
            ttl,
            sequential,
            show_model,
            show_metrics,
            gen_budget,
            budget,
            &tracing,
            out,
        );
    }
    let sigma = doc.gfds;
    let _ = writeln!(
        out,
        "{}: {} rule(s), total size {}",
        path,
        sigma.len(),
        sigma.total_size()
    );

    let start = Instant::now();
    // The sequential and parallel algorithms share one driver: `--seq` is
    // the workers = 1 instantiation, and both report the same metrics.
    let (satisfiable, model, metrics) = if sequential {
        let cfg = gfd_core::ReasonConfig {
            split: false,
            ..ParConfig::with_workers(1)
                .with_ttl(ttl)
                .with_budget(budget)
                .with_trace(tracing.spec())
        };
        let r = gfd_core::sat_with_config(&sigma, &cfg);
        // An interrupted run has no verdict: check before the yes/no
        // split so a timeout cannot masquerade as UNSATISFIABLE.
        if let Some(i) = r.interrupt() {
            return Err(interrupted(i, &r.stats));
        }
        let model = r.model().cloned();
        (r.is_satisfiable(), model, r.stats)
    } else {
        let cfg = ParConfig::with_workers(workers)
            .with_ttl(ttl)
            .with_budget(budget)
            .with_trace(tracing.spec());
        let r = gfd_parallel::par_sat(&sigma, &cfg);
        if let gfd_core::SatOutcome::Unknown(i) = &r.outcome {
            return Err(interrupted(i, &r.metrics));
        }
        let sat = r.is_satisfiable();
        (sat, None, r.metrics)
    };
    let elapsed = start.elapsed();

    let verdict = if satisfiable {
        "SATISFIABLE"
    } else {
        "UNSATISFIABLE"
    };
    let _ = writeln!(out, "{verdict} ({})", fmt_duration(elapsed));
    if show_metrics {
        let _ = write!(out, "{}", fmt_metrics(&metrics));
    }
    tracing.emit(&metrics, &gfd_rule_names(&sigma), out)?;
    if show_model {
        if let Some(model) = &model {
            let _ = writeln!(
                out,
                "model: {} nodes, {} edges, {} attributes",
                model.node_count(),
                model.edge_count(),
                model.attr_count()
            );
            let _ = write!(out, "{}", gfd_dsl::print_graph("model", model, &vocab));
        } else if satisfiable {
            let _ = writeln!(out, "model: (run with --seq to extract a model)");
        }
    }
    Ok(if satisfiable { 0 } else { 1 })
}

/// Render an interrupted run as the uniform exit-2 diagnostic, with the
/// budget context (panics, retries, deadline slack) that explains it.
pub(crate) fn interrupted(i: &gfd_core::Interrupt, m: &gfd_parallel::RunMetrics) -> ArgError {
    let mut msg = format!("run interrupted: {i}");
    if let Some(slack) = m.deadline_slack_ms {
        msg.push_str(&format!(" (deadline slack {slack}ms)"));
    }
    if m.units_panicked > 0 {
        msg.push_str(&format!(
            "; {} unit(s) panicked, {} retried",
            m.units_panicked, m.units_retried
        ));
    }
    msg.push_str("; raise --deadline-ms/--max-units to keep going");
    ArgError::new(msg)
}

/// The GGD route: the set contains generating rules, so satisfiability
/// runs the chase over `GΣ` (scan units on the shared scheduler, serial
/// generation between rounds) with a fresh-node termination budget.
#[allow(clippy::too_many_arguments)]
fn run_generating(
    path: &str,
    doc: gfd_dsl::Document,
    vocab: &gfd_graph::Vocab,
    workers: usize,
    ttl: Duration,
    sequential: bool,
    show_model: bool,
    show_metrics: bool,
    gen_budget: u64,
    budget: gfd_core::Budget,
    tracing: &TraceArgs,
    out: &mut dyn Write,
) -> Result<i32, ArgError> {
    let sigma = doc.deps;
    let generating = sigma.iter().filter(|(_, d)| d.is_generating()).count();
    let _ = writeln!(
        out,
        "{}: {} rule(s) ({} generating), total size {} — GGD chase",
        path,
        sigma.len(),
        generating,
        sigma.total_size()
    );
    let cfg = gfd_chase::ChaseConfig {
        workers: if sequential { 1 } else { workers.max(1) },
        ttl,
        max_generated_nodes: gen_budget,
        budget,
        trace: tracing.spec(),
        ..gfd_chase::ChaseConfig::default()
    };
    let start = Instant::now();
    let r = gfd_chase::dep_sat_with_config(&sigma, &cfg);
    let elapsed = start.elapsed();
    if let gfd_chase::DepSatOutcome::Unknown { generated_nodes } = &r.outcome {
        return Err(ArgError::new(format!(
            "generation budget ({gen_budget}) exhausted after materializing \
             {generated_nodes} node(s); the set may have no finite chase — \
             raise --gen-budget to keep going"
        )));
    }
    if let gfd_chase::DepSatOutcome::Interrupted(i) = &r.outcome {
        return Err(interrupted(i, &r.metrics));
    }
    let satisfiable = r.is_satisfiable();
    let verdict = if satisfiable {
        "SATISFIABLE"
    } else {
        "UNSATISFIABLE"
    };
    let _ = writeln!(out, "{verdict} ({})", fmt_duration(elapsed));
    if show_metrics {
        let _ = write!(out, "{}", fmt_metrics(&r.metrics));
        let _ = write!(out, "{}", crate::output::fmt_chase_stats(&r.stats));
    }
    tracing.emit(&r.metrics, &dep_rule_names(&sigma), out)?;
    if show_model {
        if let Some(model) = r.model() {
            let _ = writeln!(
                out,
                "model: {} nodes, {} edges, {} attributes",
                model.node_count(),
                model.edge_count(),
                model.attr_count()
            );
            let _ = write!(out, "{}", gfd_dsl::print_graph("model", model, vocab));
        }
    }
    Ok(if satisfiable { 0 } else { 1 })
}
