//! The `gfd` command-line toolbox.
//!
//! Every operation the library supports, scriptable from a shell:
//!
//! | command | what it does |
//! |---|---|
//! | `gfd sat FILE` | satisfiability of the rule set in `FILE` |
//! | `gfd imp FILE --phi NAME` | does the rest of the set imply rule `NAME`? |
//! | `gfd minimize FILE` | drop rules implied by the others (a cover) |
//! | `gfd detect FILE` | find violations of the rules in the file's graphs |
//! | `gfd gen --rules N ...` | generate a reproducible synthetic rule set |
//! | `gfd fmt FILE` | canonical reformatting of a rule file |
//!
//! The binary is a thin wrapper over [`run`], which is fully testable:
//! it takes arguments and a writer and returns a process exit code.
//! Exit codes: `0` = yes/clean/ok, `1` = no/violations, `2` = usage or
//! input error.

#![warn(missing_docs)]

pub mod args;
mod cmd_detect;
mod cmd_fmt;
mod cmd_ged;
mod cmd_gen;
mod cmd_imp;
mod cmd_minimize;
mod cmd_sat;
mod cmd_trace_check;
pub mod output;
mod traceopt;

use args::{ArgError, Parsed};
use std::io::Write;

/// Top-level usage text.
pub const USAGE: &str = "\
gfd — reasoning about graph functional dependencies (ICDE 2018)

USAGE:
    gfd <COMMAND> [OPTIONS]

COMMANDS:
    sat FILE        check satisfiability of the rule set in FILE
                    (gfd + ggd blocks; GGD sets run the generating chase)
    imp FILE        check implication of one rule by the others
    minimize FILE   remove rules implied by the rest (cover)
    detect FILE     detect violations of the rules in FILE's graphs
                    (missing GGD subgraphs are violations with witnesses)
    gen             generate a synthetic rule set (prints DSL)
    fmt FILE        reformat a rule file canonically
    ged-sat FILE    GED satisfiability (order predicates, ids, disjunction)
    ged-imp FILE    GED implication
    resolve FILE    entity resolution with recursively-defined keys
    trace-check FILE  validate a Chrome trace-event file written by --trace
    help            show this message

COMMON OPTIONS:
    --workers N     parallel workers (default 4; 0 = sequential algorithm)
    --ttl-ms T      straggler-splitting TTL in milliseconds (default 2000)

OBSERVABILITY (sat, imp, detect, ged-sat, ged-imp):
    --trace FILE    write a Chrome trace-event timeline (chrome://tracing,
                    Perfetto); validate with `gfd trace-check FILE`
    --profile       print the aggregated per-rule / per-worker / per-phase
                    profile after the run
    --metrics-json FILE  write all run counters plus the profile as JSON

Run `gfd <COMMAND> --help` for command-specific options.
";

/// Run the CLI: parse `argv` (without the program name), execute, write
/// human-readable output to `out`. Returns the process exit code.
///
/// Diagnostics go to `out` too; the binary uses [`run_with_err`] to keep
/// them on stderr.
pub fn run(argv: &[String], out: &mut dyn Write) -> i32 {
    match dispatch(argv, out) {
        Ok(code) => code,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            2
        }
    }
}

/// Like [`run`], but the one-line `error: ...` diagnostic goes to `err`
/// (the binary passes stderr) so results on stdout stay machine-readable
/// even when a run fails.
pub fn run_with_err(argv: &[String], out: &mut dyn Write, err: &mut dyn Write) -> i32 {
    match dispatch(argv, out) {
        Ok(code) => code,
        Err(e) => {
            let _ = writeln!(err, "error: {e}");
            2
        }
    }
}

fn dispatch(argv: &[String], out: &mut dyn Write) -> Result<i32, ArgError> {
    let Some(command) = argv.first() else {
        let _ = write!(out, "{USAGE}");
        return Ok(2);
    };
    let rest = &argv[1..];
    match command.as_str() {
        "sat" => cmd_sat::run(Parsed::parse(rest)?, out),
        "imp" => cmd_imp::run(Parsed::parse(rest)?, out),
        "minimize" => cmd_minimize::run(Parsed::parse(rest)?, out),
        "detect" => cmd_detect::run(Parsed::parse(rest)?, out),
        "gen" => cmd_gen::run(Parsed::parse(rest)?, out),
        "fmt" => cmd_fmt::run(Parsed::parse(rest)?, out),
        "ged-sat" => cmd_ged::run_sat(Parsed::parse(rest)?, out),
        "ged-imp" => cmd_ged::run_imp(Parsed::parse(rest)?, out),
        "resolve" => cmd_ged::run_resolve(Parsed::parse(rest)?, out),
        "trace-check" => cmd_trace_check::run(Parsed::parse(rest)?, out),
        "help" | "--help" | "-h" => {
            let _ = write!(out, "{USAGE}");
            Ok(0)
        }
        other => Err(ArgError::new(format!(
            "unknown command `{other}` (try `gfd help`)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run through the stderr-routing entry point and concatenate both
    /// streams, so assertions can match either results or diagnostics.
    fn run_vec(args: &[&str]) -> (i32, String) {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let (mut out, mut err) = (Vec::new(), Vec::new());
        let code = run_with_err(&argv, &mut out, &mut err);
        let mut text = String::from_utf8(out).unwrap();
        text.push_str(&String::from_utf8(err).unwrap());
        (code, text)
    }

    #[test]
    fn no_args_prints_usage() {
        let (code, text) = run_vec(&[]);
        assert_eq!(code, 2);
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn help_exits_zero() {
        let (code, text) = run_vec(&["help"]);
        assert_eq!(code, 0);
        assert!(text.contains("minimize"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        let (code, text) = run_vec(&["frobnicate"]);
        assert_eq!(code, 2);
        assert!(text.contains("unknown command"));
    }

    #[test]
    fn missing_file_is_reported() {
        let (code, text) = run_vec(&["sat", "/nonexistent/path.gfd"]);
        assert_eq!(code, 2);
        assert!(text.contains("error"), "{text}");
    }

    #[test]
    fn end_to_end_sat_on_temp_file() {
        let dir = std::env::temp_dir().join("gfd-cli-test-sat");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unsat.gfd");
        std::fs::write(
            &path,
            "gfd a { pattern { node x: _ } then { x.v = 1 } }\n\
             gfd b { pattern { node x: _ } then { x.v = 2 } }\n",
        )
        .unwrap();
        let (code, text) = run_vec(&["sat", path.to_str().unwrap()]);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("UNSATISFIABLE"), "{text}");

        let path2 = dir.join("sat.gfd");
        std::fs::write(
            &path2,
            "gfd a { pattern { node x: person } then { x.v = 1 } }\n",
        )
        .unwrap();
        let (code, text) = run_vec(&["sat", path2.to_str().unwrap()]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("SATISFIABLE"), "{text}");
    }

    #[test]
    fn end_to_end_ged_sat_and_resolve() {
        let dir = std::env::temp_dir().join("gfd-cli-test-ged");
        std::fs::create_dir_all(&dir).unwrap();
        // GED sat: conflicting bounds.
        let path = dir.join("bounds.gfd");
        std::fs::write(
            &path,
            "ged lo { pattern { node x: _ } then { x.a < 5 } }\n\
             ged hi { pattern { node x: _ } then { x.a > 7 } }\n",
        )
        .unwrap();
        let (code, text) = run_vec(&["ged-sat", path.to_str().unwrap()]);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("UNSATISFIABLE"), "{text}");

        // GED imp: order deduction.
        let path2 = dir.join("imp.gfd");
        std::fs::write(
            &path2,
            "ged r { pattern { node x: t } then { x.a = 1 } }\n\
             ged q { pattern { node x: t } then { x.a >= 1 } }\n",
        )
        .unwrap();
        let (code, text) = run_vec(&["ged-imp", path2.to_str().unwrap(), "--phi", "q"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("IMPLIED"), "{text}");

        // Entity resolution via a key.
        let path3 = dir.join("resolve.gfd");
        std::fs::write(
            &path3,
            r#"
            graph people {
              node a: person { email = "x@y" }
              node b: person { email = "x@y" }
              node c: person { email = "z@w" }
            }
            ged key {
              pattern { node x: person node y: person }
              when { x.email = y.email }
              then { x.id = y.id }
            }
            "#,
        )
        .unwrap();
        let (code, text) = run_vec(&["resolve", path3.to_str().unwrap()]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("1 merge(s)"), "{text}");
        assert!(text.contains("2 node(s) remain"), "{text}");
    }

    #[test]
    fn end_to_end_detect_stream() {
        let dir = std::env::temp_dir().join("gfd-cli-test-stream");
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("stream.gfd");
        std::fs::write(
            &rules,
            r#"
            graph g {
              node a: t { v = 1 }
              node b: t { v = 1 }
              edge a -e-> b
            }
            gfd same {
              pattern { node x: t node y: t edge x -e-> y }
              then { x.v = y.v }
            }
            "#,
        )
        .unwrap();
        // Batch 1 breaks the pair; batch 2 adds a clean node; batch 3
        // deletes the offending edge.
        let log = dir.join("stream.delta");
        std::fs::write(
            &log,
            "batch\nattr 1 v=2\nbatch\nnode t\nattr 2 v=1\nedge 1 e 2\nbatch\ndel 0 e 1\n",
        )
        .unwrap();

        let (code, text) = run_vec(&[
            "detect",
            rules.to_str().unwrap(),
            "--stream",
            log.to_str().unwrap(),
            "--metrics",
        ]);
        assert!(text.contains("0 violation(s) before the stream"), "{text}");
        assert!(text.contains("batch 1:"), "{text}");
        // Batch 1 creates the x.v = y.v violation; batch 2 adds a second
        // (1 -e-> 2 with v=2 vs v=1); batch 3 removes only the first.
        assert!(text.contains("batch 3:"), "{text}");
        assert!(text.contains("1 violation(s)\n"), "{text}");
        assert_eq!(code, 1, "{text}");

        // A clean log replay exits 0.
        let clean_log = dir.join("clean.delta");
        std::fs::write(&clean_log, "batch\nattr 1 v=1\n").unwrap();
        let (code, text) = run_vec(&[
            "detect",
            rules.to_str().unwrap(),
            "--stream",
            clean_log.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{text}");

        // A log referencing a node that never exists is a normal error
        // (exit 2), not a panic — node 7 in a 2-node graph.
        let bad_log = dir.join("bad-node.delta");
        std::fs::write(&bad_log, "batch\nedge 7 e 0\n").unwrap();
        let (code, text) = run_vec(&[
            "detect",
            rules.to_str().unwrap(),
            "--stream",
            bad_log.to_str().unwrap(),
        ]);
        assert_eq!(code, 2, "{text}");
        assert!(text.contains("refers to node 7"), "{text}");
        // But referencing a node created earlier in the log is fine.
        let grow_log = dir.join("grow.delta");
        std::fs::write(&grow_log, "batch\nnode t\nattr 2 v=1\nedge 0 e 2\n").unwrap();
        let (code, text) = run_vec(&[
            "detect",
            rules.to_str().unwrap(),
            "--stream",
            grow_log.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{text}");

        // Flags that cannot work in streaming mode are rejected, not
        // silently ignored.
        let (code, text) = run_vec(&[
            "detect",
            rules.to_str().unwrap(),
            "--stream",
            clean_log.to_str().unwrap(),
            "--repair",
        ]);
        assert_eq!(code, 2, "{text}");
        assert!(text.contains("--repair"), "{text}");
        let (code, text) = run_vec(&[
            "detect",
            rules.to_str().unwrap(),
            "--stream",
            clean_log.to_str().unwrap(),
            "--limit",
            "3",
        ]);
        assert_eq!(code, 2, "{text}");
        assert!(text.contains("--limit"), "{text}");
    }

    #[test]
    fn ged_commands_take_scheduler_flags() {
        let dir = std::env::temp_dir().join("gfd-cli-test-ged-sched");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rules.gfd");
        std::fs::write(
            &path,
            "ged lo { pattern { node x: _ } then { x.a < 5 } }\n\
             ged hi { pattern { node x: _ } then { x.a > 7 } }\n\
             ged q  { pattern { node x: _ } then { x.a < 9 } }\n",
        )
        .unwrap();
        let (code, text) = run_vec(&[
            "ged-sat",
            path.to_str().unwrap(),
            "--workers",
            "4",
            "--metrics",
        ]);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("UNSATISFIABLE"), "{text}");
        assert!(text.contains("4 worker(s)"), "{text}");
        assert!(text.contains("branches explored"), "{text}");
        assert!(text.contains("units:"), "{text}");

        let (code, text) = run_vec(&[
            "ged-imp",
            path.to_str().unwrap(),
            "--phi",
            "q",
            "--workers",
            "2",
            "--metrics",
        ]);
        // Σ = {lo, hi} is unsatisfiable, so anything is implied.
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("IMPLIED"), "{text}");
        assert!(text.contains("branches explored"), "{text}");

        // A starved branch budget is a clean exit-2 error, not a panic.
        // The disjunctions force a choice tree deeper than one branch.
        let deep = dir.join("deep.gfd");
        std::fs::write(
            &deep,
            "ged d0 { pattern { node x: _ } then { x.a = 0 } or { x.a = 1 } }\n\
             ged d1 { pattern { node x: _ } then { x.a = 2 } or { x.a = 3 } }\n",
        )
        .unwrap();
        let (code, text) = run_vec(&["ged-sat", deep.to_str().unwrap(), "--max-branches", "1"]);
        assert_eq!(code, 2, "{text}");
        assert!(text.contains("branch budget"), "{text}");
    }

    #[test]
    fn bad_compact_frac_values_are_rejected() {
        let dir = std::env::temp_dir().join("gfd-cli-test-compact-frac");
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("rules.gfd");
        std::fs::write(
            &rules,
            "graph g { node a: t { v = 1 } }\n\
             gfd r { pattern { node x: t } then { x.v = 1 } }\n",
        )
        .unwrap();
        let log = dir.join("log.delta");
        std::fs::write(&log, "batch\nattr 0 v=2\n").unwrap();

        for bad in ["NaN", "-0.5", "inf", "-inf"] {
            let (code, text) = run_vec(&[
                "detect",
                rules.to_str().unwrap(),
                "--stream",
                log.to_str().unwrap(),
                "--compact-frac",
                bad,
            ]);
            assert_eq!(code, 2, "`{bad}` accepted: {text}");
            assert!(text.contains("--compact-frac"), "{text}");
        }
        // 0.0 is legal: compact after every batch.
        let (code, text) = run_vec(&[
            "detect",
            rules.to_str().unwrap(),
            "--stream",
            log.to_str().unwrap(),
            "--compact-frac",
            "0.0",
        ]);
        assert_eq!(code, 1, "{text}"); // the attr write breaks the rule
    }

    #[test]
    fn end_to_end_mixed_ggd_sat_imp_detect_fmt() {
        let dir = std::env::temp_dir().join("gfd-cli-test-ggd");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mixed.gfd");
        // A data graph with one lonely person, a GGD demanding every
        // person belongs to a team, and a literal rule off the generated
        // attribute.
        std::fs::write(
            &path,
            r#"
            graph g {
              node a: person { city = "nbo" }
              node b: person { city = "nbo" }
              node t: team { city = "nbo", open = true }
              edge a -memberOf-> t
            }
            ggd has_team {
              pattern { node x: person }
              create {
                node m: team
                edge x -memberOf-> m
                set { m.city = x.city }
              }
            }
            gfd team_city {
              pattern { node m: team }
              when { m.city = "nbo" }
              then { m.open = true }
            }
            "#,
        )
        .unwrap();

        // fmt canonicalizes the create block and is a fixpoint.
        let (code, formatted) = run_vec(&["fmt", path.to_str().unwrap()]);
        assert_eq!(code, 0, "{formatted}");
        assert!(formatted.contains("ggd has_team {"), "{formatted}");
        assert!(formatted.contains("create {"), "{formatted}");
        let path2 = dir.join("mixed2.gfd");
        std::fs::write(&path2, &formatted).unwrap();
        let (code, formatted2) = run_vec(&["fmt", path2.to_str().unwrap()]);
        assert_eq!(code, 0, "{formatted2}");
        assert_eq!(formatted, formatted2, "fmt must be a fixpoint");

        // sat routes through the GGD chase and finds a model.
        for workers in ["1", "2", "8"] {
            let (code, text) = run_vec(&[
                "sat",
                path.to_str().unwrap(),
                "--workers",
                workers,
                "--metrics",
            ]);
            assert_eq!(code, 0, "workers={workers}: {text}");
            assert!(text.contains("GGD chase"), "{text}");
            assert!(text.contains("SATISFIABLE"), "{text}");
            assert!(text.contains("chase:"), "{text}");
        }

        // imp: the chain GGD implies that persons have a team over
        // memberOf; a differently-labelled requirement is not implied.
        let imp_file = dir.join("imp.gfd");
        std::fs::write(
            &imp_file,
            r#"
            ggd has_team {
              pattern { node x: person }
              create { node m: team edge x -memberOf-> m }
            }
            ggd probe_good {
              pattern { node x: person }
              create { node m: team edge x -memberOf-> m }
            }
            ggd probe_bad {
              pattern { node x: person }
              create { node m: team edge x -leads-> m }
            }
            "#,
        )
        .unwrap();
        for workers in ["1", "2", "8"] {
            let (code, text) = run_vec(&[
                "imp",
                imp_file.to_str().unwrap(),
                "--phi",
                "probe_good",
                "--workers",
                workers,
            ]);
            assert_eq!(code, 0, "workers={workers}: {text}");
            assert!(text.contains("IMPLIED"), "{text}");
            let (code, text) = run_vec(&[
                "imp",
                imp_file.to_str().unwrap(),
                "--phi",
                "probe_bad",
                "--workers",
                workers,
            ]);
            assert_eq!(code, 1, "workers={workers}: {text}");
        }

        // detect: person b has no team — a violation with a
        // missing-subgraph witness; person a's is realized.
        for workers in ["1", "2", "8"] {
            let (code, text) = run_vec(&["detect", path.to_str().unwrap(), "--workers", workers]);
            assert_eq!(code, 1, "workers={workers}: {text}");
            assert!(text.contains("1 violation(s) across 1 rule(s)"), "{text}");
            assert!(text.contains("missing"), "{text}");
            assert!(text.contains("requires node m: team"), "{text}");
        }

        // A generating candidate against literal Σ exercises the driver
        // route (Goal::GgdImp): x.v = 1 as a generated assignment follows
        // from the literal rule.
        let drv_file = dir.join("driver.gfd");
        std::fs::write(
            &drv_file,
            r#"
            gfd seed { pattern { node x: t } then { x.v = 1 } }
            ggd probe { pattern { node x: t } create { set { x.v = 1 } } }
            "#,
        )
        .unwrap();
        let (code, text) = run_vec(&["imp", drv_file.to_str().unwrap(), "--phi", "probe"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("IMPLIED"), "{text}");
    }

    #[test]
    fn ggd_gen_budget_exhaustion_is_a_clean_error() {
        let dir = std::env::temp_dir().join("gfd-cli-test-ggd-budget");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("runaway.gfd");
        std::fs::write(
            &path,
            "ggd spawn { pattern { node x: person } \
             create { node y: person edge x -parentOf-> y } }\n",
        )
        .unwrap();
        let (code, text) = run_vec(&["sat", path.to_str().unwrap(), "--gen-budget", "25"]);
        assert_eq!(code, 2, "{text}");
        assert!(text.contains("generation budget"), "{text}");
    }

    #[test]
    fn malformed_rule_files_exit_2_on_every_subcommand() {
        let dir = std::env::temp_dir().join("gfd-cli-test-malformed");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.gfd");
        std::fs::write(&path, "gfd broken { pattern { node x: } \x07\x00 oops").unwrap();
        let p = path.to_str().unwrap();
        for argv in [
            vec!["sat", p],
            vec!["imp", p, "--phi", "x"],
            vec!["minimize", p],
            vec!["detect", p],
            vec!["fmt", p],
            vec!["ged-sat", p],
            vec!["ged-imp", p, "--phi", "x"],
            vec!["resolve", p],
        ] {
            let (code, text) = run_vec(&argv);
            assert_eq!(code, 2, "{argv:?}: {text}");
            assert!(text.starts_with("error:"), "{argv:?}: {text}");
            assert_eq!(text.trim_end().lines().count(), 1, "one-line diag: {text}");
        }
    }

    #[test]
    fn error_diagnostics_go_to_stderr() {
        let argv = vec!["sat".to_string(), "/nonexistent/x.gfd".to_string()];
        let (mut out, mut err) = (Vec::new(), Vec::new());
        let code = run_with_err(&argv, &mut out, &mut err);
        assert_eq!(code, 2);
        assert!(out.is_empty(), "stdout stays clean on failure");
        assert!(String::from_utf8(err).unwrap().starts_with("error:"));
    }

    #[test]
    fn expired_deadline_degrades_to_exit_2_everywhere() {
        let dir = std::env::temp_dir().join("gfd-cli-test-deadline");
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("rules.gfd");
        // Unsatisfiable set: without the budget both sat routes exit 1.
        std::fs::write(
            &rules,
            "graph g { node a: t { v = 2 } }\n\
             gfd a { pattern { node x: t } then { x.v = 1 } }\n\
             gfd b { pattern { node x: t } then { x.v = 2 } }\n",
        )
        .unwrap();
        let p = rules.to_str().unwrap();
        for argv in [
            vec!["sat", p, "--deadline-ms", "0"],
            vec!["sat", p, "--seq", "--deadline-ms", "0"],
            vec!["imp", p, "--phi", "a", "--deadline-ms", "0"],
            vec!["ged-sat", p, "--deadline-ms", "0"],
            vec!["ged-imp", p, "--phi", "a", "--deadline-ms", "0"],
            vec!["detect", p, "--deadline-ms", "0"],
        ] {
            let (code, text) = run_vec(&argv);
            assert_eq!(code, 2, "{argv:?}: {text}");
            assert!(
                text.contains("deadline expired"),
                "{argv:?} must name the interrupt: {text}"
            );
            assert!(
                !text.contains("UNSATISFIABLE") && !text.contains("NOT IMPLIED"),
                "an expired run must not claim a definite verdict: {text}"
            );
        }
        // Without the flag the same files produce definite verdicts.
        let (code, text) = run_vec(&["sat", p]);
        assert_eq!(code, 1, "{text}");
        let (code, _) = run_vec(&["detect", p]);
        assert_eq!(code, 1);
    }

    #[test]
    fn stream_checkpoint_resume_matches_a_full_replay() {
        let dir = std::env::temp_dir().join("gfd-cli-test-ckpt");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("stream.gfd");
        std::fs::write(
            &rules,
            "graph g {\n\
               node a: t { v = 1 }\n\
               node b: t { v = 1 }\n\
               edge a -e-> b\n\
             }\n\
             gfd same {\n\
               pattern { node x: t node y: t edge x -e-> y }\n\
               then { x.v = y.v }\n\
             }\n",
        )
        .unwrap();
        let full = "batch\nattr 1 v=2\nbatch\nnode t\nattr 2 v=1\nedge 1 e 2\nbatch\ndel 0 e 1\n";
        let log = dir.join("full.delta");
        std::fs::write(&log, full).unwrap();

        // Reference: a plain full replay.
        let (ref_code, ref_text) = run_vec(&[
            "detect",
            rules.to_str().unwrap(),
            "--stream",
            log.to_str().unwrap(),
        ]);
        let ref_final = ref_text.split("after ").nth(1).unwrap();

        // Crashed run: only batch 1 was applied before the "crash",
        // leaving a checkpoint behind.
        let partial = dir.join("partial.delta");
        std::fs::write(&partial, "batch\nattr 1 v=2\n").unwrap();
        let ckpt = dir.join("state.ckpt");
        let (code, text) = run_vec(&[
            "detect",
            rules.to_str().unwrap(),
            "--stream",
            partial.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ]);
        assert_eq!(code, 1, "{text}");
        assert!(ckpt.exists(), "checkpoint written");

        // Resume against the full log: batches 2 and 3 replay on top of
        // the persisted state and the final report matches the reference.
        let (code, text) = run_vec(&[
            "detect",
            rules.to_str().unwrap(),
            "--stream",
            log.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ]);
        assert_eq!(code, ref_code, "{text}");
        assert!(text.contains("resumed from"), "{text}");
        assert!(text.contains("at batch 1"), "{text}");
        assert!(
            !text.contains("batch 1:"),
            "batch 1 must not replay: {text}"
        );
        assert!(text.contains("batch 2:"), "{text}");
        let resumed_final = text.split("after ").nth(1).unwrap();
        assert_eq!(resumed_final, ref_final, "resume must match full replay");

        // A checkpoint ahead of its log is a clean error.
        let (code, text) = run_vec(&[
            "detect",
            rules.to_str().unwrap(),
            "--stream",
            partial.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ]);
        assert_eq!(code, 2, "{text}");
        assert!(text.contains("ahead of the log"), "{text}");

        // Checkpoint flags outside --stream are rejected.
        let (code, text) = run_vec(&[
            "detect",
            rules.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ]);
        assert_eq!(code, 2, "{text}");
        assert!(text.contains("--checkpoint"), "{text}");
    }

    #[test]
    fn stream_skip_corrupt_salvages_the_readable_lines() {
        let dir = std::env::temp_dir().join("gfd-cli-test-skipcorrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("rules.gfd");
        std::fs::write(
            &rules,
            "graph g { node a: t { v = 1 } }\n\
             gfd r { pattern { node x: t } then { x.v = 1 } }\n",
        )
        .unwrap();
        // Line 3 is garbled mid-write; line 4 still parses.
        let log = dir.join("torn.delta");
        std::fs::write(&log, "batch\nattr 0 v=2\nattr 0 \nbatch\nattr 0 v=1\n").unwrap();

        let (code, text) = run_vec(&[
            "detect",
            rules.to_str().unwrap(),
            "--stream",
            log.to_str().unwrap(),
        ]);
        assert_eq!(code, 2, "strict mode rejects the log: {text}");

        let (code, text) = run_vec(&[
            "detect",
            rules.to_str().unwrap(),
            "--stream",
            log.to_str().unwrap(),
            "--skip-corrupt",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("skipped corrupt line 3"), "{text}");
        assert!(text.contains("skipped 1 corrupt line(s)"), "{text}");
        assert!(text.contains("batch 2:"), "the good lines replay: {text}");

        // --skip-corrupt outside streaming mode is rejected.
        let (code, text) = run_vec(&["detect", rules.to_str().unwrap(), "--skip-corrupt"]);
        assert_eq!(code, 2, "{text}");
        assert!(text.contains("--skip-corrupt"), "{text}");
    }

    /// The shared streaming fixture: a two-node graph, one rule, a
    /// three-batch delta log that creates, extends and partly repairs a
    /// violation.
    fn stream_fixture(dir_name: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(dir_name);
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("stream.gfd");
        std::fs::write(
            &rules,
            "graph g {\n\
               node a: t { v = 1 }\n\
               node b: t { v = 1 }\n\
               edge a -e-> b\n\
             }\n\
             gfd same {\n\
               pattern { node x: t node y: t edge x -e-> y }\n\
               then { x.v = y.v }\n\
             }\n",
        )
        .unwrap();
        let log = dir.join("stream.delta");
        std::fs::write(
            &log,
            "batch\nattr 1 v=2\nbatch\nnode t\nattr 2 v=1\nedge 1 e 2\nbatch\ndel 0 e 1\n",
        )
        .unwrap();
        (rules, log)
    }

    #[test]
    fn stream_metrics_accumulate_into_whole_run_totals() {
        let (rules, log) = stream_fixture("gfd-cli-test-stream-totals");
        let (code, text) = run_vec(&[
            "detect",
            rules.to_str().unwrap(),
            "--stream",
            log.to_str().unwrap(),
            "--metrics",
        ]);
        assert_eq!(code, 1, "{text}");
        // One metrics block per batch plus the merged end-of-stream block.
        assert_eq!(text.matches("  workers:").count(), 4, "{text}");
        let totals = text.split("stream totals:").nth(1).expect("totals block");
        // The totals print before the `after N batch(es)` summary so
        // scripts parsing that tail stay stable.
        assert!(totals.contains("after 3 batch(es)"), "{text}");
        // Accumulated scheduler work is visible in the totals block.
        let units = totals
            .lines()
            .find(|l| l.trim_start().starts_with("units:"))
            .expect("totals units line");
        let generated: u64 = units
            .trim_start()
            .strip_prefix("units: ")
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(generated > 0, "merged totals must carry the batches' work");
    }

    #[test]
    fn trace_profile_and_metrics_json_exporters_end_to_end() {
        let (rules, log) = stream_fixture("gfd-cli-test-trace");
        let dir = std::env::temp_dir().join("gfd-cli-test-trace");
        let trace = dir.join("out.trace.json");
        let metrics = dir.join("out.metrics.json");
        let (code, text) = run_vec(&[
            "detect",
            rules.to_str().unwrap(),
            "--stream",
            log.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
            "--profile",
            "--metrics-json",
            metrics.to_str().unwrap(),
        ]);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("wrote trace"), "{text}");
        assert!(text.contains("profile: per-rule evaluation"), "{text}");
        assert!(text.contains("same"), "rule name labels the table: {text}");
        assert!(text.contains("Batch"), "per-batch phase rows: {text}");

        // The emitted Chrome trace validates, both against the built-in
        // field list and against the checked-in schema.
        let (code, check) = run_vec(&["trace-check", trace.to_str().unwrap()]);
        assert_eq!(code, 0, "{check}");
        assert!(check.contains("valid"), "{check}");
        let schema = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../schemas/chrome-trace.schema.json"
        );
        let (code, check) = run_vec(&["trace-check", trace.to_str().unwrap(), "--schema", schema]);
        assert_eq!(code, 0, "{check}");

        // The machine-readable report parses with the interchange parser
        // and embeds the aggregated profile.
        let json = std::fs::read_to_string(&metrics).unwrap();
        let doc = gfd_io::jsonval::parse(&json).expect("metrics JSON parses");
        assert!(doc.get("profile").is_some(), "{json}");
        assert!(doc.get("units_dispatched").is_some(), "{json}");

        // A corrupted trace file is rejected with exit 2.
        std::fs::write(&trace, "{\"traceEvents\": [{\"ph\": \"X\"}]}").unwrap();
        let (code, check) = run_vec(&["trace-check", trace.to_str().unwrap()]);
        assert_eq!(code, 2, "{check}");

        // The non-stream path exports through the same flags.
        let (code, text) = run_vec(&["detect", rules.to_str().unwrap(), "--profile"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("profile:"), "{text}");
    }

    #[test]
    fn deadline_overshoot_reports_signed_slack() {
        let dir = std::env::temp_dir().join("gfd-cli-test-overshoot");
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("rules.gfd");
        std::fs::write(
            &rules,
            "graph g { node a: t { v = 2 } }\n\
             gfd a { pattern { node x: t } then { x.v = 1 } }\n",
        )
        .unwrap();
        // An already-expired deadline: the run finishes past the cut, so
        // the diagnostic must carry strictly negative slack — a
        // sub-millisecond overshoot may not round to `0ms` or vanish.
        let (code, text) = run_vec(&["detect", rules.to_str().unwrap(), "--deadline-ms", "0"]);
        assert_eq!(code, 2, "{text}");
        assert!(text.contains("deadline slack -"), "{text}");
    }

    #[test]
    fn end_to_end_gen_then_fmt() {
        let (code, text) = run_vec(&["gen", "--rules", "5", "--k", "3", "--l", "2", "--seed", "7"]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("gfd "), "{text}");
        // The generated output must itself parse: pipe through fmt.
        let dir = std::env::temp_dir().join("gfd-cli-test-gen");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen.gfd");
        std::fs::write(&path, &text).unwrap();
        let (code, formatted) = run_vec(&["fmt", path.to_str().unwrap()]);
        assert_eq!(code, 0, "{formatted}");
    }
}
