//! `gfd minimize FILE` — cover computation via implication.
//!
//! The paper's motivating use of the implication analysis: "eliminates
//! redundant GFDs that are entailed by others … an optimization strategy
//! to speed up, e.g., error detection" (§I). The greedy algorithm scans
//! rules in file order and drops each rule implied by the remaining set —
//! the classical cover construction.

use crate::args::{load_document, ArgError, Parsed};
use crate::output::fmt_duration;
use gfd_core::GfdSet;
use gfd_parallel::ParConfig;
use std::io::Write;
use std::time::{Duration, Instant};

const HELP: &str = "\
gfd minimize FILE [--workers N] [--ttl-ms T] [--seq] [--out PATH]

Removes rules implied by the rest of the set (a cover). Order-dependent
but always sound: the reduced set is equivalent to the original.
  --out PATH    write the reduced set (DSL) to PATH
  --workers N   parallel workers for each implication check (default 4)
  --seq         use sequential SeqImp
Exit code: 0 (prints how many rules were removed), 2 on error.
";

pub(crate) fn run(args: Parsed, out: &mut dyn Write) -> Result<i32, ArgError> {
    if args.flag("help") {
        let _ = write!(out, "{HELP}");
        return Ok(0);
    }
    let path = args.positional(0, "FILE")?.to_string();
    let workers = args.opt_usize("workers", 4)?;
    let ttl = Duration::from_millis(args.opt_u64("ttl-ms", 2000)?);
    let sequential = args.flag("seq");
    let out_path = args.opt_str("out")?.map(str::to_string);
    args.finish()?;

    let mut vocab = gfd_graph::Vocab::new();
    let doc = load_document(&path, &mut vocab)?;
    if doc.deps.has_generating() {
        return Err(ArgError::new(
            "minimize supports literal GFD rules only (GGD implication is \
             chase-based and a cover under it may not round-trip; drop the \
             `ggd` blocks or minimize them separately)",
        ));
    }
    let rules: Vec<_> = doc.gfds.iter().map(|(_, g)| g.clone()).collect();
    if rules.is_empty() {
        return Err(ArgError::new(format!("{path} contains no GFDs")));
    }

    let cfg = ParConfig::with_workers(workers).with_ttl(ttl);
    let start = Instant::now();
    let mut kept: Vec<bool> = vec![true; rules.len()];
    for i in 0..rules.len() {
        // Σᵢ = every rule still kept, except i.
        let sigma_i = GfdSet::from_vec(
            rules
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i && kept[*j])
                .map(|(_, g)| g.clone())
                .collect(),
        );
        if sigma_i.is_empty() {
            continue;
        }
        let implied = if sequential {
            gfd_core::seq_imp(&sigma_i, &rules[i]).is_implied()
        } else {
            gfd_parallel::par_imp(&sigma_i, &rules[i], &cfg).is_implied()
        };
        if implied {
            kept[i] = false;
            let _ = writeln!(out, "removed {} (implied by the rest)", rules[i].name);
        }
    }
    let elapsed = start.elapsed();

    let reduced = GfdSet::from_vec(
        rules
            .iter()
            .zip(&kept)
            .filter(|(_, &k)| k)
            .map(|(g, _)| g.clone())
            .collect(),
    );
    let removed = rules.len() - reduced.len();
    let _ = writeln!(
        out,
        "cover: kept {} of {} rule(s), removed {removed} ({})",
        reduced.len(),
        rules.len(),
        fmt_duration(elapsed),
    );
    if let Some(out_path) = out_path {
        std::fs::write(&out_path, gfd_dsl::print_gfd_set(&reduced, &vocab))
            .map_err(|e| ArgError::new(format!("cannot write {out_path}: {e}")))?;
        let _ = writeln!(out, "wrote {out_path}");
    }
    Ok(0)
}
