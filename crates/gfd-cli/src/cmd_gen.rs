//! `gfd gen` — reproducible synthetic rule sets (the paper's generator).

use crate::args::{ArgError, Parsed};
use gfd_gen::{real_life_workload, synthetic_workload, Dataset};
use std::io::Write;

const HELP: &str = "\
gfd gen [--rules N] [--k K] [--l L] [--seed S] [--dataset NAME]
        [--unsat-chain D] [--out PATH]

Generates a rule set with the paper's generator (§VII: |Σ| up to 10000,
k ≤ 10 pattern nodes, l ≤ 5 literals) and prints it as DSL.
  --rules N       number of rules (default 20)
  --k K           max pattern nodes (default 4; synthetic only)
  --l L           max literals per side (default 3; synthetic only)
  --seed S        RNG seed (default 42)
  --dataset NAME  dbpedia | yago2 | pokec | tiny | synthetic (default)
  --unsat-chain D append an Example-4-style conflict chain of depth D
  --out PATH      write to PATH instead of stdout
Exit code: 0, or 2 on error.
";

pub(crate) fn run(args: Parsed, out: &mut dyn Write) -> Result<i32, ArgError> {
    if args.flag("help") {
        let _ = write!(out, "{HELP}");
        return Ok(0);
    }
    let rules = args.opt_usize("rules", 20)?;
    let k = args.opt_usize("k", 4)?;
    let l = args.opt_usize("l", 3)?;
    let seed = args.opt_u64("seed", 42)?;
    let dataset = args.opt_str("dataset")?.unwrap_or("synthetic").to_string();
    let unsat_chain =
        match args.opt_str("unsat-chain")? {
            None => None,
            Some(v) => Some(v.parse::<usize>().map_err(|_| {
                ArgError::new(format!("--unsat-chain expects an integer, got `{v}`"))
            })?),
        };
    let out_path = args.opt_str("out")?.map(str::to_string);
    args.finish()?;

    let workload = match dataset.as_str() {
        "synthetic" => {
            let mut w = synthetic_workload(rules, k, l, seed);
            if let Some(_d) = unsat_chain {
                // Regenerate through the real-life path which supports
                // chain injection on the same schema family.
                w = real_life_workload(Dataset::DBpedia, rules, seed, unsat_chain);
            }
            w
        }
        "dbpedia" => real_life_workload(Dataset::DBpedia, rules, seed, unsat_chain),
        "yago2" => real_life_workload(Dataset::Yago2, rules, seed, unsat_chain),
        "pokec" => real_life_workload(Dataset::Pokec, rules, seed, unsat_chain),
        "tiny" => real_life_workload(Dataset::Tiny, rules, seed, unsat_chain),
        other => {
            return Err(ArgError::new(format!(
                "unknown dataset `{other}` (dbpedia|yago2|pokec|tiny|synthetic)"
            )))
        }
    };

    let text = gfd_dsl::print_gfd_set(&workload.sigma, &workload.vocab);
    match out_path {
        Some(p) => {
            std::fs::write(&p, &text)
                .map_err(|e| ArgError::new(format!("cannot write {p}: {e}")))?;
            let _ = writeln!(out, "wrote {} rule(s) to {p}", workload.sigma.len());
        }
        None => {
            let _ = write!(out, "{text}");
        }
    }
    Ok(0)
}
