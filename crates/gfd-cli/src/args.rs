//! A small, dependency-free argument parser.
//!
//! Grammar: positional arguments and `--flag [value]` options. A flag
//! without a following value (next token starts with `--`, or end of
//! input) is boolean. Only the option names each command queries are
//! accepted — unknown options are reported, not ignored.

use std::collections::BTreeMap;
use std::fmt;

/// A usage or input error; rendered to the user verbatim.
#[derive(Debug)]
pub struct ArgError(String);

impl ArgError {
    /// Build an error from any message.
    pub fn new(msg: impl Into<String>) -> Self {
        ArgError(msg.into())
    }
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl From<std::io::Error> for ArgError {
    fn from(e: std::io::Error) -> Self {
        ArgError(e.to_string())
    }
}

/// Parsed command-line arguments.
#[derive(Clone, Debug, Default)]
pub struct Parsed {
    positional: Vec<String>,
    options: BTreeMap<String, Option<String>>,
    /// Option names a command has queried (for unknown-option detection).
    queried: std::cell::RefCell<Vec<String>>,
}

impl Parsed {
    /// Parse raw arguments.
    pub fn parse(args: &[String]) -> Result<Self, ArgError> {
        let mut parsed = Parsed::default();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                if name.is_empty() {
                    return Err(ArgError::new("unexpected `--`"));
                }
                let value = match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        i += 1;
                        Some(v.clone())
                    }
                    _ => None,
                };
                if parsed.options.insert(name.to_string(), value).is_some() {
                    return Err(ArgError::new(format!("duplicate option --{name}")));
                }
            } else {
                parsed.positional.push(a.clone());
            }
            i += 1;
        }
        Ok(parsed)
    }

    /// The `n`-th positional argument, or an error naming it.
    pub fn positional(&self, n: usize, name: &str) -> Result<&str, ArgError> {
        self.positional
            .get(n)
            .map(String::as_str)
            .ok_or_else(|| ArgError::new(format!("missing required argument <{name}>")))
    }

    /// All positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.positional
    }

    fn note(&self, name: &str) {
        self.queried.borrow_mut().push(name.to_string());
    }

    /// A boolean flag (present without value).
    pub fn flag(&self, name: &str) -> bool {
        self.note(name);
        self.options.contains_key(name)
    }

    /// A string option.
    pub fn opt_str(&self, name: &str) -> Result<Option<&str>, ArgError> {
        self.note(name);
        match self.options.get(name) {
            None => Ok(None),
            Some(Some(v)) => Ok(Some(v)),
            Some(None) => Err(ArgError::new(format!("option --{name} needs a value"))),
        }
    }

    /// An integer option with a default.
    pub fn opt_usize(&self, name: &str, default: usize) -> Result<usize, ArgError> {
        match self.opt_str(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::new(format!("--{name} expects an integer, got `{v}`"))),
        }
    }

    /// A `u64` option with a default.
    pub fn opt_u64(&self, name: &str, default: u64) -> Result<u64, ArgError> {
        match self.opt_str(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::new(format!("--{name} expects an integer, got `{v}`"))),
        }
    }

    /// Reject any option the command never queried. Call after all reads.
    pub fn finish(&self) -> Result<(), ArgError> {
        let queried = self.queried.borrow();
        for name in self.options.keys() {
            if !queried.iter().any(|q| q == name) {
                return Err(ArgError::new(format!("unknown option --{name}")));
            }
        }
        Ok(())
    }
}

/// Parse the uniform resource-budget flags every reasoning command
/// accepts: `--deadline-ms T` (wall-clock) and `--max-units N`
/// (scheduler work units). Exhausting either limit is reported as a
/// clean exit-2 diagnostic — never a wrong definite verdict.
pub fn parse_budget(args: &Parsed) -> Result<gfd_core::Budget, ArgError> {
    let mut budget = gfd_core::Budget::unlimited();
    if let Some(v) = args.opt_str("deadline-ms")? {
        let ms: u64 = v
            .parse()
            .map_err(|_| ArgError::new(format!("--deadline-ms expects an integer, got `{v}`")))?;
        budget = budget.with_deadline_ms(ms);
    }
    if let Some(v) = args.opt_str("max-units")? {
        let n: u64 = v
            .parse()
            .map_err(|_| ArgError::new(format!("--max-units expects an integer, got `{v}`")))?;
        if n == 0 {
            return Err(ArgError::new("--max-units must be positive"));
        }
        budget = budget.with_max_units(n);
    }
    Ok(budget)
}

/// Read a rule file and parse it as a DSL document.
pub fn load_document(
    path: &str,
    vocab: &mut gfd_graph::Vocab,
) -> Result<gfd_dsl::Document, ArgError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| ArgError::new(format!("cannot read {path}: {e}")))?;
    gfd_dsl::parse_document(&src, vocab)
        .map_err(|e| ArgError::new(format!("parse error in {path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Parsed {
        Parsed::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn positional_and_options_mix() {
        let p = parse(&["file.gfd", "--workers", "8", "--seq"]);
        assert_eq!(p.positional(0, "file").unwrap(), "file.gfd");
        assert_eq!(p.opt_usize("workers", 4).unwrap(), 8);
        assert!(p.flag("seq"));
        assert!(!p.flag("verbose"));
        assert!(p.finish().is_ok());
    }

    #[test]
    fn missing_positional_is_named() {
        let p = parse(&["--workers", "8"]);
        let err = p.positional(0, "file").unwrap_err();
        assert!(err.to_string().contains("<file>"));
    }

    #[test]
    fn flag_followed_by_flag_is_boolean() {
        let p = parse(&["--seq", "--workers", "2"]);
        assert!(p.flag("seq"));
        assert_eq!(p.opt_usize("workers", 0).unwrap(), 2);
    }

    #[test]
    fn bad_integer_is_an_error() {
        let p = parse(&["--workers", "lots"]);
        assert!(p.opt_usize("workers", 4).is_err());
    }

    #[test]
    fn duplicate_option_rejected() {
        let args: Vec<String> = ["--a", "1", "--a", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(Parsed::parse(&args).is_err());
    }

    #[test]
    fn unknown_option_detected_by_finish() {
        let p = parse(&["--mystery", "4"]);
        let _ = p.flag("known");
        let err = p.finish().unwrap_err();
        assert!(err.to_string().contains("--mystery"));
    }

    #[test]
    fn value_needed_error() {
        let p = parse(&["--phi"]);
        assert!(p.opt_str("phi").is_err());
    }
}
