//! `gfd fmt FILE` — canonical reformatting.

use crate::args::{load_document, ArgError, Parsed};
use std::io::Write;

const HELP: &str = "\
gfd fmt FILE [--write]

Parses FILE and prints it in the canonical DSL form: graphs first, then
rules (`gfd` and `ggd` blocks, `create` consequences canonicalized), then
GEDs. With --write, the file is rewritten in place.
Exit code: 0, or 2 on parse error.
";

pub(crate) fn run(args: Parsed, out: &mut dyn Write) -> Result<i32, ArgError> {
    if args.flag("help") {
        let _ = write!(out, "{HELP}");
        return Ok(0);
    }
    let path = args.positional(0, "FILE")?.to_string();
    let write_back = args.flag("write");
    args.finish()?;

    let mut vocab = gfd_graph::Vocab::new();
    let doc = load_document(&path, &mut vocab)?;
    let mut text = String::new();
    for (name, graph) in &doc.graphs {
        text.push_str(&gfd_dsl::print_graph(name, graph, &vocab));
        text.push('\n');
    }
    // All generalized rules (gfd + ggd blocks) in source order; literal
    // rules print exactly as `print_gfd_set` used to. GEDs follow (they
    // were previously dropped by `fmt --write` — a silent data loss).
    text.push_str(&gfd_dsl::print_dep_set(&doc.deps, &vocab));
    text.push_str(&gfd_dsl::print_ged_set(&doc.geds, &vocab));

    if write_back {
        std::fs::write(&path, &text)
            .map_err(|e| ArgError::new(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "rewrote {path}");
    } else {
        let _ = write!(out, "{text}");
    }
    Ok(0)
}
