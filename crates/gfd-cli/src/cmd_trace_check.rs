//! `gfd trace-check FILE` — validate a Chrome trace-event JSON file.
//!
//! The emitter (`--trace FILE`) promises three things CI leans on: the
//! document is well-formed integer-only JSON, every event carries the
//! fields the Chrome trace viewer requires, and timestamps are monotone
//! non-decreasing per `tid` (the exporter sorts per worker). This command
//! re-checks all three against the checked-in schema
//! (`schemas/chrome-trace.schema.json`), so a regression in the exporter
//! fails fast instead of producing a file Perfetto silently mis-renders.

use crate::args::{ArgError, Parsed};
use gfd_io::jsonval::{self, Json};
use std::io::Write;

const HELP: &str = "\
gfd trace-check FILE [--schema PATH] [--quiet]

Validates a Chrome trace-event JSON file written by `--trace FILE`:
well-formed JSON, the required fields on every event (per the schema),
legal phase types, and monotone non-decreasing timestamps per tid.
  --schema PATH  the schema listing required event fields
                 (default: schemas/chrome-trace.schema.json next to the
                 repo root, falling back to the built-in field list)
  --quiet        print nothing on success
Exit code: 0 valid, 2 invalid or unreadable.
";

/// The field list the built-in check enforces when no schema file is
/// given; mirrors `schemas/chrome-trace.schema.json`.
const REQUIRED_FIELDS: &[&str] = &["name", "cat", "ph", "pid", "tid", "ts"];

pub(crate) fn run(args: Parsed, out: &mut dyn Write) -> Result<i32, ArgError> {
    if args.flag("help") {
        let _ = write!(out, "{HELP}");
        return Ok(0);
    }
    let path = args.positional(0, "FILE")?.to_string();
    let schema_path = args.opt_str("schema")?.map(str::to_string);
    let quiet = args.flag("quiet");
    args.finish()?;

    let required = match &schema_path {
        Some(p) => {
            let src = std::fs::read_to_string(p)
                .map_err(|e| ArgError::new(format!("cannot read schema {p}: {e}")))?;
            required_fields_from_schema(&src)
                .map_err(|e| ArgError::new(format!("bad schema {p}: {e}")))?
        }
        None => REQUIRED_FIELDS.iter().map(|s| s.to_string()).collect(),
    };

    let src = std::fs::read_to_string(&path)
        .map_err(|e| ArgError::new(format!("cannot read {path}: {e}")))?;
    let doc = jsonval::parse(&src)
        .map_err(|e| ArgError::new(format!("{path}: not well-formed JSON: {e}")))?;
    let summary = validate(&doc, &required).map_err(|e| ArgError::new(format!("{path}: {e}")))?;
    if !quiet {
        let _ = writeln!(
            out,
            "{path}: valid — {} event(s) on {} tid(s), {} dropped",
            summary.events, summary.tids, summary.dropped
        );
    }
    Ok(0)
}

/// Extract the `required` field names from the checked-in schema document
/// (`properties.traceEvents.items.required` in its JSON-Schema shape).
fn required_fields_from_schema(src: &str) -> Result<Vec<String>, String> {
    let doc = jsonval::parse(src).map_err(|e| e.to_string())?;
    let required = doc
        .get("properties")
        .and_then(|p| p.get("traceEvents"))
        .and_then(|t| t.get("items"))
        .and_then(|i| i.get("required"))
        .and_then(Json::as_array)
        .ok_or("no properties.traceEvents.items.required array")?;
    required
        .iter()
        .map(|f| {
            f.as_str()
                .map(str::to_string)
                .ok_or_else(|| "non-string entry in required".to_string())
        })
        .collect()
}

/// What a valid file contained, for the success line.
#[derive(Debug)]
struct Summary {
    events: usize,
    tids: usize,
    dropped: i64,
}

/// The structural checks behind [`run`], separated for unit testing.
fn validate(doc: &Json, required: &[String]) -> Result<Summary, String> {
    let events = doc
        .get("traceEvents")
        .ok_or("missing top-level \"traceEvents\"")?
        .as_array()
        .ok_or("\"traceEvents\" is not an array")?;
    let dropped = doc
        .get("otherData")
        .and_then(|o| o.get("dropped_events"))
        .and_then(Json::as_int)
        .unwrap_or(0);
    // (tid, last ts seen) pairs; traces have a handful of tids, so a
    // linear scan beats pulling in a map.
    let mut tids: Vec<(i64, i64)> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let fail = |msg: String| Err(format!("event {i}: {msg}"));
        if !matches!(e, Json::Object(_)) {
            return fail("not an object".into());
        }
        for field in required {
            if e.get(field).is_none() {
                return fail(format!("missing required field \"{field}\""));
            }
        }
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: \"ph\" is not a string"))?;
        match ph {
            "X" => {
                let dur = e.get("dur").and_then(Json::as_int);
                if dur.is_none_or(|d| d < 0) {
                    return fail("complete event (ph=X) needs an integer dur >= 0".into());
                }
            }
            "i" => {}
            other => return fail(format!("unsupported phase type \"{other}\"")),
        }
        let tid = e
            .get("tid")
            .and_then(Json::as_int)
            .ok_or_else(|| format!("event {i}: \"tid\" is not an integer"))?;
        let ts = e
            .get("ts")
            .and_then(Json::as_int)
            .ok_or_else(|| format!("event {i}: \"ts\" is not an integer"))?;
        if ts < 0 {
            return fail(format!("negative timestamp {ts}"));
        }
        match tids.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, last)) => {
                if ts < *last {
                    return fail(format!(
                        "timestamp {ts} goes backwards on tid {tid} (last {last})"
                    ));
                }
                *last = ts;
            }
            None => tids.push((tid, ts)),
        }
    }
    Ok(Summary {
        events: events.len(),
        tids: tids.len(),
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> Vec<String> {
        REQUIRED_FIELDS.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn accepts_a_minimal_valid_trace() {
        let doc = jsonval::parse(
            r#"{"otherData": {"dropped_events": 2}, "traceEvents": [
                {"name": "UnitExec", "cat": "gfd", "ph": "X", "pid": 1,
                 "tid": 1, "ts": 5, "dur": 3, "args": {"id": 0}},
                {"name": "Steal", "cat": "gfd", "ph": "i", "s": "t",
                 "pid": 1, "tid": 1, "ts": 9, "args": {"id": 0}}
            ]}"#,
        )
        .unwrap();
        let s = validate(&doc, &req()).unwrap();
        assert_eq!((s.events, s.tids, s.dropped), (2, 1, 2));
    }

    #[test]
    fn rejects_backwards_timestamps_per_tid() {
        let doc = jsonval::parse(
            r#"{"traceEvents": [
                {"name": "a", "cat": "gfd", "ph": "i", "pid": 1, "tid": 2, "ts": 9},
                {"name": "b", "cat": "gfd", "ph": "i", "pid": 1, "tid": 2, "ts": 4}
            ]}"#,
        )
        .unwrap();
        let err = validate(&doc, &req()).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
        // The same timestamps on different tids are fine.
        let doc = jsonval::parse(
            r#"{"traceEvents": [
                {"name": "a", "cat": "gfd", "ph": "i", "pid": 1, "tid": 2, "ts": 9},
                {"name": "b", "cat": "gfd", "ph": "i", "pid": 1, "tid": 3, "ts": 4}
            ]}"#,
        )
        .unwrap();
        assert!(validate(&doc, &req()).is_ok());
    }

    #[test]
    fn rejects_missing_fields_and_bad_phases() {
        let doc = jsonval::parse(
            r#"{"traceEvents": [{"name": "a", "ph": "i", "pid": 1, "tid": 0, "ts": 1}]}"#,
        )
        .unwrap();
        let err = validate(&doc, &req()).unwrap_err();
        assert!(err.contains("\"cat\""), "{err}");
        let doc = jsonval::parse(
            r#"{"traceEvents": [
                {"name": "a", "cat": "gfd", "ph": "B", "pid": 1, "tid": 0, "ts": 1}
            ]}"#,
        )
        .unwrap();
        let err = validate(&doc, &req()).unwrap_err();
        assert!(err.contains("unsupported phase"), "{err}");
        // A complete event without dur is rejected.
        let doc = jsonval::parse(
            r#"{"traceEvents": [
                {"name": "a", "cat": "gfd", "ph": "X", "pid": 1, "tid": 0, "ts": 1}
            ]}"#,
        )
        .unwrap();
        assert!(validate(&doc, &req()).unwrap_err().contains("dur"));
    }

    #[test]
    fn schema_required_list_parses() {
        let schema = r#"{
            "properties": {"traceEvents": {"items": {
                "required": ["name", "ph", "ts"]
            }}}
        }"#;
        assert_eq!(
            required_fields_from_schema(schema).unwrap(),
            vec!["name", "ph", "ts"]
        );
        assert!(required_fields_from_schema("{}").is_err());
    }
}
