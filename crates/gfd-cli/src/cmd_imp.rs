//! `gfd imp FILE` — implication checking.

use crate::args::{load_document, ArgError, Parsed};
use crate::output::{fmt_duration, fmt_metrics};
use gfd_core::GfdSet;
use gfd_parallel::ParConfig;
use std::io::Write;
use std::time::{Duration, Instant};

const HELP: &str = "\
gfd imp FILE --phi NAME [--workers N] [--ttl-ms T] [--seq] [--metrics]

Checks whether the other rules in FILE imply rule NAME (§VI).
  --phi NAME    the candidate rule ϕ (by its name in the file)
  --workers N   parallel workers (default 4)
  --seq         use the sequential SeqImp algorithm (workers = 1)
  --ttl-ms T    straggler TTL in milliseconds (default 2000)
  --metrics     print scheduler metrics (units, splits, steals, idle time)
Exit code: 0 implied, 1 not implied, 2 error.
";

pub(crate) fn run(args: Parsed, out: &mut dyn Write) -> Result<i32, ArgError> {
    if args.flag("help") {
        let _ = write!(out, "{HELP}");
        return Ok(0);
    }
    let path = args.positional(0, "FILE")?.to_string();
    let phi_name = args
        .opt_str("phi")?
        .ok_or_else(|| ArgError::new("imp requires --phi NAME"))?
        .to_string();
    let workers = args.opt_usize("workers", 4)?;
    let ttl = Duration::from_millis(args.opt_u64("ttl-ms", 2000)?);
    let sequential = args.flag("seq");
    let show_metrics = args.flag("metrics");
    args.finish()?;

    let mut vocab = gfd_graph::Vocab::new();
    let doc = load_document(&path, &mut vocab)?;
    let mut sigma = GfdSet::new();
    let mut phi = None;
    for (_, gfd) in doc.gfds.iter() {
        if gfd.name == phi_name {
            phi = Some(gfd.clone());
        } else {
            sigma.push(gfd.clone());
        }
    }
    let phi = phi.ok_or_else(|| ArgError::new(format!("no rule named `{phi_name}` in {path}")))?;

    let _ = writeln!(
        out,
        "Σ: {} rule(s); ϕ = {}",
        sigma.len(),
        phi.display(&vocab)
    );
    let start = Instant::now();
    let (implied, metrics) = if sequential {
        let r = gfd_core::seq_imp(&sigma, &phi);
        (r.is_implied(), r.stats)
    } else {
        let cfg = ParConfig::with_workers(workers).with_ttl(ttl);
        let r = gfd_parallel::par_imp(&sigma, &phi, &cfg);
        (r.is_implied(), r.metrics)
    };
    let elapsed = start.elapsed();

    let verdict = if implied { "IMPLIED" } else { "NOT IMPLIED" };
    let _ = writeln!(out, "{verdict} ({})", fmt_duration(elapsed));
    if show_metrics {
        let _ = write!(out, "{}", fmt_metrics(&metrics));
    }
    Ok(if implied { 0 } else { 1 })
}
