//! `gfd imp FILE` — implication checking.

use crate::args::{load_document, parse_budget, ArgError, Parsed};
use crate::cmd_sat::interrupted;
use crate::output::{fmt_chase_stats, fmt_duration, fmt_metrics};
use crate::traceopt::{dep_rule_names, gfd_rule_names, TraceArgs, TRACE_HELP};
use gfd_core::{DepSet, ReasonConfig};
use gfd_parallel::ParConfig;
use std::io::Write;
use std::time::{Duration, Instant};

const HELP: &str = "\
gfd imp FILE --phi NAME [--workers N] [--ttl-ms T] [--seq] [--metrics]
             [--gen-budget B] [--deadline-ms T] [--max-units N]
             [--trace FILE] [--profile] [--metrics-json FILE]

Checks whether the other rules in FILE imply rule NAME (§VI). FILE may
mix `gfd` and `ggd` blocks: a generating candidate against literal rules
runs on the unified driver (realization early-exit); a generating Σ runs
the GGD chase over the candidate's canonical graph.
  --phi NAME     the candidate rule ϕ (by its name in the file)
  --workers N    parallel workers (default 4)
  --seq          use the sequential algorithm (workers = 1)
  --ttl-ms T     straggler TTL in milliseconds (default 2000)
  --metrics      print scheduler metrics (units, splits, steals, idle)
  --gen-budget B fresh-node budget of the GGD chase (default 100000);
                 exhaustion exits 2
  --deadline-ms T wall-clock budget; an expired run degrades to unknown
                 (exit 2), never to a wrong definite verdict
  --max-units N  scheduler work-unit budget; exhaustion exits 2
{TRACE}\
Exit code: 0 implied, 1 not implied, 2 error or budget exhausted.
";

pub(crate) fn run(args: Parsed, out: &mut dyn Write) -> Result<i32, ArgError> {
    if args.flag("help") {
        let _ = write!(out, "{}", HELP.replace("{TRACE}", TRACE_HELP));
        return Ok(0);
    }
    let path = args.positional(0, "FILE")?.to_string();
    let phi_name = args
        .opt_str("phi")?
        .ok_or_else(|| ArgError::new("imp requires --phi NAME"))?
        .to_string();
    let workers = args.opt_usize("workers", 4)?;
    let ttl = Duration::from_millis(args.opt_u64("ttl-ms", 2000)?);
    let sequential = args.flag("seq");
    let show_metrics = args.flag("metrics");
    let gen_budget = args.opt_u64("gen-budget", 100_000)?;
    let budget = parse_budget(&args)?;
    let tracing = TraceArgs::parse(&args)?;
    args.finish()?;

    let mut vocab = gfd_graph::Vocab::new();
    let doc = load_document(&path, &mut vocab)?;
    let mut sigma = DepSet::new();
    let mut phi = None;
    for (_, dep) in doc.deps.iter() {
        if dep.name == phi_name {
            phi = Some(dep.clone());
        } else {
            sigma.push(dep.clone());
        }
    }
    let phi = phi.ok_or_else(|| ArgError::new(format!("no rule named `{phi_name}` in {path}")))?;

    let _ = writeln!(
        out,
        "Σ: {} rule(s); ϕ = {}",
        sigma.len(),
        phi.display(&vocab)
    );
    let start = Instant::now();

    // Route: a literal Σ with a literal ϕ is exactly the pre-refactor
    // SeqImp/ParImp; a literal Σ with a generating ϕ runs the same driver
    // under `Goal::GgdImp`; a generating Σ needs the chase.
    let (implied, metrics, chase_stats, rule_names) = match (sigma.to_gfds(), phi.as_gfd()) {
        (Some(gfds), Some(gfd)) => {
            let cfg = if sequential {
                gfd_core::ReasonConfig {
                    split: false,
                    ..ParConfig::with_workers(1)
                        .with_ttl(ttl)
                        .with_budget(budget)
                        .with_trace(tracing.spec())
                }
            } else {
                ParConfig::with_workers(workers)
                    .with_ttl(ttl)
                    .with_budget(budget)
                    .with_trace(tracing.spec())
            };
            let r = gfd_parallel::par_imp(&gfds, &gfd, &cfg);
            // Check the unknown arm before the yes/no split: a deadline
            // expiry must exit 2, not report NOT IMPLIED.
            if let gfd_core::ImpOutcome::Unknown(i) = &r.outcome {
                return Err(interrupted(i, &r.metrics));
            }
            (r.is_implied(), r.metrics, None, gfd_rule_names(&gfds))
        }
        (Some(gfds), None) => {
            let cfg = ReasonConfig {
                workers: if sequential { 1 } else { workers.max(1) },
                ttl,
                budget,
                trace: tracing.spec(),
                ..ReasonConfig::default()
            };
            let r = gfd_core::ggd_imp_with_config(&gfds, &phi, &cfg);
            if let Some(i) = r.interrupt() {
                return Err(interrupted(i, &r.stats));
            }
            (r.is_implied(), r.stats, None, gfd_rule_names(&gfds))
        }
        (None, _) => {
            let cfg = gfd_chase::ChaseConfig {
                workers: if sequential { 1 } else { workers.max(1) },
                ttl,
                max_generated_nodes: gen_budget,
                budget,
                trace: tracing.spec(),
                ..gfd_chase::ChaseConfig::default()
            };
            let r = gfd_chase::dep_imp_with_config(&sigma, &phi, &cfg);
            if let gfd_chase::DepImpOutcome::Unknown { generated_nodes } = &r.outcome {
                return Err(ArgError::new(format!(
                    "generation budget ({gen_budget}) exhausted after materializing \
                     {generated_nodes} node(s); raise --gen-budget to keep going"
                )));
            }
            if let gfd_chase::DepImpOutcome::Interrupted(i) = &r.outcome {
                return Err(interrupted(i, &r.metrics));
            }
            (
                r.is_implied(),
                r.metrics,
                Some(r.stats),
                dep_rule_names(&sigma),
            )
        }
    };
    let elapsed = start.elapsed();

    let verdict = if implied { "IMPLIED" } else { "NOT IMPLIED" };
    let _ = writeln!(out, "{verdict} ({})", fmt_duration(elapsed));
    if show_metrics {
        let _ = write!(out, "{}", fmt_metrics(&metrics));
        if let Some(stats) = &chase_stats {
            let _ = write!(out, "{}", fmt_chase_stats(stats));
        }
    }
    tracing.emit(&metrics, &rule_names, out)?;
    Ok(if implied { 0 } else { 1 })
}
