//! Structured tracing for the GFD reasoning stack.
//!
//! Every scheduler worker owns a bounded ring buffer ([`TraceBuf`]) of
//! fixed-size [`TraceEvent`]s. Recording is strictly worker-local — no
//! shared-state writes on the hot path, no locks, no allocation after the
//! ring is created — and collapses to a single branch when tracing is
//! disabled ([`TraceSpec::disabled`], the default). At quiescence the
//! scheduler drains every ring into one [`Trace`], which rides the
//! existing `RunMetrics` return path up to the CLI.
//!
//! Two exporters consume a [`Trace`]:
//!
//! * [`Trace::to_chrome_json`] — the Chrome trace-event format, loadable
//!   in `chrome://tracing` and Perfetto (`gfd ... --trace FILE`);
//! * [`Trace::profile`] — an aggregated [`Profile`] (per-rule
//!   time/matches/violations, per-worker busy/steal counters, per-phase
//!   breakdown) rendered as text (`--profile`) or JSON (`--metrics-json`).
//!
//! The crate is dependency-free and knows nothing about graphs or
//! schedulers: layers record events through the [`TraceBuf`] they were
//! handed, and the taxonomy ([`EventKind`]) is the shared vocabulary.
//! See DESIGN.md §13 for the drain protocol and the non-interference
//! argument.

#![warn(missing_docs)]

use std::time::Instant;

/// Worker id used for control-track events recorded outside any scheduler
/// worker (round orchestration, batch application, checkpoint writes).
pub const CONTROL_WORKER: u32 = u32::MAX;

/// The event taxonomy shared by every layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// One work-unit execution on a scheduler worker (span; `a` = attempt).
    UnitExec,
    /// A successful steal: claimed units from a victim's deque (instant;
    /// `a` = units claimed, `b` = victim worker).
    Steal,
    /// TTL straggler split (instant; `a` = units pushed).
    Split,
    /// A panicked unit was requeued for another attempt (instant;
    /// `a` = attempt number of the failed try).
    PanicRetry,
    /// A cooperative budget tripped on this worker (instant;
    /// `a` = units executed so far, `b` = 0 deadline / 1 max-units).
    BudgetCut,
    /// One rule evaluation (span; `id` = rule index, `a` = matches,
    /// `b` = violations / consequences fired).
    RuleEval,
    /// One chase round's premise scan (span; `id` = round, `a` = matches
    /// enumerated, `b` = rules scanned).
    ChaseRound,
    /// The parallel apply planning pass of one chase round (span;
    /// `id` = round, `a` = firings planned, `b` = realization checks).
    ApplyPlan,
    /// The commit walk of one chase round (span; `id` = round,
    /// `a` = independent firings, `b` = conflicting firings).
    ApplyCommit,
    /// One bounded dirty-frontier BFS in the incremental engine (span;
    /// `a` = dirty seed nodes, `b` = frontier size reached).
    FrontierBfs,
    /// One delta batch applied by the incremental engine (span;
    /// `id` = batch index, `a` = ops, `b` = pivots re-run).
    Batch,
    /// An overlay compaction (span; `a` = overlay ops folded).
    Compact,
    /// A checkpoint write (span; `a` = batches applied at the cut).
    Checkpoint,
    /// A GED branch-and-bound unit's branch exploration (span;
    /// `a` = branches opened, `b` = branches pruned).
    GedBranch,
}

impl EventKind {
    /// The stable name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::UnitExec => "UnitExec",
            EventKind::Steal => "Steal",
            EventKind::Split => "Split",
            EventKind::PanicRetry => "PanicRetry",
            EventKind::BudgetCut => "BudgetCut",
            EventKind::RuleEval => "RuleEval",
            EventKind::ChaseRound => "ChaseRound",
            EventKind::ApplyPlan => "ApplyPlan",
            EventKind::ApplyCommit => "ApplyCommit",
            EventKind::FrontierBfs => "FrontierBfs",
            EventKind::Batch => "Batch",
            EventKind::Compact => "Compact",
            EventKind::Checkpoint => "Checkpoint",
            EventKind::GedBranch => "GedBranch",
        }
    }

    /// Names for the two payload counters (`""` = counter unused).
    pub fn payload_names(self) -> (&'static str, &'static str) {
        match self {
            EventKind::UnitExec => ("attempt", ""),
            EventKind::Steal => ("claimed", "victim"),
            EventKind::Split => ("units", ""),
            EventKind::PanicRetry => ("attempt", ""),
            EventKind::BudgetCut => ("units_executed", "cause"),
            EventKind::RuleEval => ("matches", "violations"),
            EventKind::ChaseRound => ("matches", "rules"),
            EventKind::ApplyPlan => ("fired", "checks"),
            EventKind::ApplyCommit => ("independent", "conflicts"),
            EventKind::FrontierBfs => ("dirty", "frontier"),
            EventKind::Batch => ("ops", "rerun_pivots"),
            EventKind::Compact => ("ops", ""),
            EventKind::Checkpoint => ("batches", ""),
            EventKind::GedBranch => ("branches", "pruned"),
        }
    }
}

/// One recorded event: a span (`dur_ns > 0`) or an instant (`dur_ns == 0`).
///
/// Fixed-size and `Copy` so the ring buffer is a flat preallocated array
/// the hot path writes into without ever allocating.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// The worker that recorded it ([`CONTROL_WORKER`] for control-track
    /// events recorded outside the scheduler).
    pub worker: u32,
    /// Kind-specific identifier: rule index for [`EventKind::RuleEval`],
    /// round for the chase kinds, batch index for [`EventKind::Batch`].
    pub id: u32,
    /// Start time in nanoseconds since the [`TraceSpec`] epoch.
    pub t0_ns: u64,
    /// Span duration in nanoseconds; `0` marks an instant. Spans clamp to
    /// at least 1ns so a sub-nanosecond span never reads as an instant.
    pub dur_ns: u64,
    /// First payload counter (see [`EventKind::payload_names`]).
    pub a: u64,
    /// Second payload counter.
    pub b: u64,
}

/// Tracing configuration, plumbed by value through every layer's config.
///
/// `Copy` so it can live inside the scheduler's `SchedOptions`. All
/// buffers created from one spec share its epoch, which keeps every
/// layer's timestamps on a single timeline.
#[derive(Clone, Copy, Debug)]
pub struct TraceSpec {
    /// Record events? When `false`, every recording call is one branch.
    pub enabled: bool,
    /// Ring capacity per worker, in events. When the ring is full the
    /// oldest event is overwritten and the drop counter incremented —
    /// the hot path never blocks and never reallocates.
    pub capacity: usize,
    /// The zero point of every timestamp recorded under this spec.
    pub epoch: Instant,
}

/// Default per-worker ring capacity (events; ~3 MiB of 48-byte events).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

impl TraceSpec {
    /// Tracing off: recording is a no-op, drains produce nothing.
    pub fn disabled() -> Self {
        TraceSpec {
            enabled: false,
            capacity: 0,
            epoch: Instant::now(),
        }
    }

    /// Tracing on with the default per-worker ring capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Tracing on with an explicit per-worker ring capacity (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceSpec {
            enabled: true,
            capacity: capacity.max(1),
            epoch: Instant::now(),
        }
    }

    /// A derived spec for a low-volume control-track buffer: same epoch
    /// (one timeline) and enabled flag, but a small ring — control
    /// phases record a handful of events per round or batch, so a
    /// full-size per-worker ring would be wasted allocation.
    pub fn control(self) -> Self {
        TraceSpec {
            capacity: self.capacity.min(1024),
            ..self
        }
    }
}

impl Default for TraceSpec {
    fn default() -> Self {
        Self::disabled()
    }
}

/// The start of a span: captured by [`TraceBuf::start`], consumed by
/// [`TraceBuf::span`]. Holds nothing when tracing is disabled, so the
/// disabled path never reads the clock.
#[derive(Clone, Copy, Debug)]
pub struct SpanStart(Option<Instant>);

impl SpanStart {
    /// A start that records nothing (for code paths without a buffer).
    pub fn none() -> Self {
        SpanStart(None)
    }
}

/// A per-worker bounded event ring. Strictly single-owner: only the
/// worker that owns it ever writes, so recording needs no atomics.
#[derive(Debug)]
pub struct TraceBuf {
    spec: TraceSpec,
    worker: u32,
    events: Vec<TraceEvent>,
    /// Oldest element once the ring has wrapped; next overwrite target.
    head: usize,
    dropped: u64,
}

impl TraceBuf {
    /// A ring for `worker` under `spec`. Disabled specs allocate nothing.
    pub fn new(spec: TraceSpec, worker: u32) -> Self {
        let events = if spec.enabled {
            Vec::with_capacity(spec.capacity)
        } else {
            Vec::new()
        };
        TraceBuf {
            spec,
            worker,
            events,
            head: 0,
            dropped: 0,
        }
    }

    /// Is this buffer recording?
    pub fn enabled(&self) -> bool {
        self.spec.enabled
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// No events recorded (always true when disabled)?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Capture a span start. Reads the clock only when enabled.
    pub fn start(&self) -> SpanStart {
        if self.spec.enabled {
            SpanStart(Some(Instant::now()))
        } else {
            SpanStart(None)
        }
    }

    /// Record a span opened by [`TraceBuf::start`]. A `SpanStart` taken
    /// while disabled records nothing.
    pub fn span(&mut self, kind: EventKind, id: u32, start: SpanStart, a: u64, b: u64) {
        let Some(t0) = start.0 else { return };
        if !self.spec.enabled {
            return;
        }
        let dur = t0.elapsed().as_nanos().max(1) as u64;
        let t0_ns = t0.saturating_duration_since(self.spec.epoch).as_nanos() as u64;
        self.push(TraceEvent {
            kind,
            worker: self.worker,
            id,
            t0_ns,
            dur_ns: dur,
            a,
            b,
        });
    }

    /// Record an instant event (duration zero).
    pub fn instant(&mut self, kind: EventKind, id: u32, a: u64, b: u64) {
        if !self.spec.enabled {
            return;
        }
        let t0_ns = Instant::now()
            .saturating_duration_since(self.spec.epoch)
            .as_nanos() as u64;
        self.push(TraceEvent {
            kind,
            worker: self.worker,
            id,
            t0_ns,
            dur_ns: 0,
            a,
            b,
        });
    }

    /// Ring insert: append until full, then overwrite the oldest slot.
    /// Never reallocates (`events` was created at full capacity) and
    /// never blocks — overflow only bumps the drop counter.
    fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.spec.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.spec.capacity;
            self.dropped += 1;
        }
    }

    /// Drain into record order (oldest surviving event first).
    fn drain_ordered(mut self) -> (Vec<TraceEvent>, u64) {
        if self.head > 0 {
            self.events.rotate_left(self.head);
        }
        (self.events, self.dropped)
    }
}

/// The merged whole-run event collection every layer's metrics carry.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All drained events.
    pub events: Vec<TraceEvent>,
    /// Total events dropped to ring overflow across all buffers.
    pub dropped: u64,
}

impl Trace {
    /// No events and no drops (the disabled-tracing shape)?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    /// Fold one worker's drained ring into the collection.
    pub fn absorb_buf(&mut self, buf: TraceBuf) {
        let (events, dropped) = buf.drain_ordered();
        if self.events.is_empty() {
            self.events = events;
        } else {
            self.events.extend_from_slice(&events);
        }
        self.dropped += dropped;
    }

    /// Fold another trace in (e.g. a later stream batch, or a nested
    /// scheduler run's events into the enclosing engine's trace).
    pub fn merge(&mut self, other: &Trace) {
        self.events.extend_from_slice(&other.events);
        self.dropped += other.dropped;
    }

    /// Export as a Chrome trace-event JSON document (the `traceEvents`
    /// object form), loadable in `chrome://tracing` / Perfetto.
    ///
    /// `rule_names[i]` labels `RuleEval` events with `id == i`; out-of-range
    /// ids fall back to `rule<id>`. Events are emitted sorted by
    /// `(worker, start)`, so timestamps are monotone per `tid` — the
    /// property `gfd trace-check` validates. Timestamps and durations are
    /// integer microseconds (the format's unit).
    pub fn to_chrome_json(&self, rule_names: &[String]) -> String {
        let mut events = self.events.clone();
        events.sort_by_key(|e| (e.worker, e.t0_ns, e.dur_ns));
        let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n");
        out.push_str(&format!(
            "  \"otherData\": {{\"dropped_events\": {}}},\n",
            self.dropped
        ));
        out.push_str("  \"traceEvents\": [\n");
        for (i, e) in events.iter().enumerate() {
            let name = match e.kind {
                EventKind::RuleEval => format!("RuleEval:{}", rule_label(rule_names, e.id)),
                k => k.name().to_string(),
            };
            // CONTROL_WORKER renders as tid 0; real workers as 1-based
            // tids, keeping every tid a small non-negative integer.
            let tid = if e.worker == CONTROL_WORKER {
                0
            } else {
                e.worker as u64 + 1
            };
            let (an, bn) = e.kind.payload_names();
            let mut args = format!("{{\"id\": {}", e.id);
            if !an.is_empty() {
                args.push_str(&format!(", \"{}\": {}", an, e.a));
            }
            if !bn.is_empty() {
                args.push_str(&format!(", \"{}\": {}", bn, e.b));
            }
            args.push('}');
            let common = format!(
                "\"name\": \"{}\", \"cat\": \"gfd\", \"pid\": 1, \"tid\": {}, \
                 \"ts\": {}, \"args\": {}",
                name,
                tid,
                e.t0_ns / 1_000,
                args
            );
            let body = if e.dur_ns == 0 {
                format!("{{\"ph\": \"i\", \"s\": \"t\", {common}}}")
            } else {
                format!("{{\"ph\": \"X\", \"dur\": {}, {common}}}", e.dur_ns / 1_000)
            };
            out.push_str("    ");
            out.push_str(&body);
            out.push_str(if i + 1 == events.len() { "\n" } else { ",\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Aggregate into the per-rule / per-worker / per-phase [`Profile`].
    pub fn profile(&self) -> Profile {
        let mut rules: Vec<RuleProfile> = Vec::new();
        let mut workers: Vec<WorkerProfile> = Vec::new();
        let mut phases: Vec<PhaseProfile> = Vec::new();
        for e in &self.events {
            match e.kind {
                EventKind::RuleEval => {
                    let row = match rules.iter_mut().find(|r| r.id == e.id) {
                        Some(row) => row,
                        None => {
                            rules.push(RuleProfile {
                                id: e.id,
                                ..Default::default()
                            });
                            rules.last_mut().expect("just pushed")
                        }
                    };
                    row.evals += 1;
                    row.time_ns += e.dur_ns;
                    row.matches += e.a;
                    row.violations += e.b;
                }
                EventKind::UnitExec
                | EventKind::Steal
                | EventKind::Split
                | EventKind::PanicRetry
                | EventKind::BudgetCut => {
                    let row = match workers.iter_mut().find(|w| w.worker == e.worker) {
                        Some(row) => row,
                        None => {
                            workers.push(WorkerProfile {
                                worker: e.worker,
                                ..Default::default()
                            });
                            workers.last_mut().expect("just pushed")
                        }
                    };
                    match e.kind {
                        EventKind::UnitExec => {
                            row.units += 1;
                            row.exec_ns += e.dur_ns;
                        }
                        EventKind::Steal => {
                            row.steals += 1;
                            row.stolen += e.a;
                        }
                        EventKind::Split => {
                            row.splits += 1;
                            row.split_units += e.a;
                        }
                        EventKind::PanicRetry => row.retries += 1,
                        EventKind::BudgetCut => row.budget_cuts += 1,
                        _ => unreachable!(),
                    }
                }
                kind => {
                    let row = match phases.iter_mut().find(|p| p.kind == kind && p.id == e.id) {
                        Some(row) => row,
                        None => {
                            phases.push(PhaseProfile {
                                kind,
                                id: e.id,
                                count: 0,
                                time_ns: 0,
                                a: 0,
                                b: 0,
                            });
                            phases.last_mut().expect("just pushed")
                        }
                    };
                    row.count += 1;
                    row.time_ns += e.dur_ns;
                    row.a += e.a;
                    row.b += e.b;
                }
            }
        }
        rules.sort_by_key(|r| r.id);
        workers.sort_by_key(|w| w.worker);
        Profile {
            rules,
            workers,
            phases,
            dropped: self.dropped,
        }
    }
}

/// Label a rule id against a name table (fallback `rule<id>`).
pub fn rule_label(names: &[String], id: u32) -> String {
    names
        .get(id as usize)
        .cloned()
        .unwrap_or_else(|| format!("rule{id}"))
}

/// Aggregated evaluation profile for one rule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleProfile {
    /// Rule index ([`TraceEvent::id`] of its `RuleEval` events).
    pub id: u32,
    /// Evaluation spans recorded.
    pub evals: u64,
    /// Total evaluation time, ns.
    pub time_ns: u64,
    /// Matches found.
    pub matches: u64,
    /// Violations (or consequences fired) attributed to the rule.
    pub violations: u64,
}

/// Aggregated scheduler activity for one worker.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Worker id.
    pub worker: u32,
    /// Units executed.
    pub units: u64,
    /// Time inside unit execution, ns.
    pub exec_ns: u64,
    /// Successful steal operations.
    pub steals: u64,
    /// Units claimed by those steals.
    pub stolen: u64,
    /// Split operations performed.
    pub splits: u64,
    /// Units pushed by those splits.
    pub split_units: u64,
    /// Panicked units this worker requeued.
    pub retries: u64,
    /// Budget cuts this worker observed first.
    pub budget_cuts: u64,
}

/// Aggregated control-track activity keyed by `(kind, id)` — chase
/// rounds, incremental batches, frontier BFS, compactions, checkpoints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseProfile {
    /// The phase kind.
    pub kind: EventKind,
    /// The kind-specific id (round / batch index).
    pub id: u32,
    /// Events aggregated into this row.
    pub count: u64,
    /// Total span time, ns.
    pub time_ns: u64,
    /// Summed first payload counter.
    pub a: u64,
    /// Summed second payload counter.
    pub b: u64,
}

/// The aggregated profile report both CLI renderers consume.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Per-rule evaluation rows, ordered by rule id.
    pub rules: Vec<RuleProfile>,
    /// Per-worker scheduler rows, ordered by worker id.
    pub workers: Vec<WorkerProfile>,
    /// Per-phase rows in first-appearance order.
    pub phases: Vec<PhaseProfile>,
    /// Events lost to ring overflow.
    pub dropped: u64,
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl Profile {
    /// Nothing was recorded?
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.workers.is_empty() && self.phases.is_empty()
    }

    /// Render the profile as indented text tables (the CLI's `--profile`).
    pub fn render_text(&self, rule_names: &[String]) -> String {
        let mut out = String::new();
        if !self.rules.is_empty() {
            out.push_str("profile: per-rule evaluation\n");
            out.push_str(&format!(
                "  {:<24} {:>8} {:>10} {:>10} {:>10}\n",
                "rule", "evals", "time", "matches", "violations"
            ));
            for r in &self.rules {
                out.push_str(&format!(
                    "  {:<24} {:>8} {:>10} {:>10} {:>10}\n",
                    rule_label(rule_names, r.id),
                    r.evals,
                    fmt_ns(r.time_ns),
                    r.matches,
                    r.violations
                ));
            }
        }
        if !self.workers.is_empty() {
            out.push_str("profile: per-worker scheduler\n");
            out.push_str(&format!(
                "  {:<8} {:>8} {:>10} {:>7} {:>7} {:>7} {:>8}\n",
                "worker", "units", "exec", "steals", "stolen", "splits", "retries"
            ));
            for w in &self.workers {
                let label = if w.worker == CONTROL_WORKER {
                    "ctl".to_string()
                } else {
                    w.worker.to_string()
                };
                out.push_str(&format!(
                    "  {:<8} {:>8} {:>10} {:>7} {:>7} {:>7} {:>8}\n",
                    label,
                    w.units,
                    fmt_ns(w.exec_ns),
                    w.steals,
                    w.stolen,
                    w.splits,
                    w.retries
                ));
            }
        }
        if !self.phases.is_empty() {
            out.push_str("profile: phases\n");
            out.push_str(&format!(
                "  {:<12} {:>5} {:>6} {:>10}  payload\n",
                "phase", "id", "count", "time"
            ));
            for p in &self.phases {
                let (an, bn) = p.kind.payload_names();
                let mut payload = String::new();
                if !an.is_empty() {
                    payload.push_str(&format!("{}={}", an, p.a));
                }
                if !bn.is_empty() {
                    payload.push_str(&format!(" {}={}", bn, p.b));
                }
                out.push_str(&format!(
                    "  {:<12} {:>5} {:>6} {:>10}  {}\n",
                    p.kind.name(),
                    p.id,
                    p.count,
                    fmt_ns(p.time_ns),
                    payload.trim()
                ));
            }
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "profile: {} event(s) dropped to ring overflow\n",
                self.dropped
            ));
        }
        out
    }

    /// Render the profile as a JSON object (embedded by `--metrics-json`
    /// and the bench harness; integer fields only).
    pub fn to_json(&self, rule_names: &[String], indent: usize) -> String {
        let pad = "  ".repeat(indent);
        let inner = "  ".repeat(indent + 1);
        let mut out = String::from("{\n");
        out.push_str(&format!("{inner}\"dropped\": {},\n", self.dropped));
        out.push_str(&format!("{inner}\"rules\": ["));
        for (i, r) in self.rules.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"rule\": \"{}\", \"id\": {}, \"evals\": {}, \"time_ns\": {}, \
                 \"matches\": {}, \"violations\": {}}}",
                if i == 0 { "" } else { ", " },
                rule_label(rule_names, r.id).replace('"', "'"),
                r.id,
                r.evals,
                r.time_ns,
                r.matches,
                r.violations
            ));
        }
        out.push_str("],\n");
        out.push_str(&format!("{inner}\"workers\": ["));
        for (i, w) in self.workers.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"worker\": {}, \"units\": {}, \"exec_ns\": {}, \"steals\": {}, \
                 \"stolen\": {}, \"splits\": {}, \"retries\": {}}}",
                if i == 0 { "" } else { ", " },
                i64::from(w.worker as i32),
                w.units,
                w.exec_ns,
                w.steals,
                w.stolen,
                w.splits,
                w.retries
            ));
        }
        out.push_str("],\n");
        out.push_str(&format!("{inner}\"phases\": ["));
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"kind\": \"{}\", \"id\": {}, \"count\": {}, \"time_ns\": {}, \
                 \"a\": {}, \"b\": {}}}",
                if i == 0 { "" } else { ", " },
                p.kind.name(),
                p.id,
                p.count,
                p.time_ns,
                p.a,
                p.b
            ));
        }
        out.push_str("]\n");
        out.push_str(&format!("{pad}}}"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(
        kind: EventKind,
        worker: u32,
        id: u32,
        t0: u64,
        dur: u64,
        a: u64,
        b: u64,
    ) -> TraceEvent {
        TraceEvent {
            kind,
            worker,
            id,
            t0_ns: t0,
            dur_ns: dur,
            a,
            b,
        }
    }

    #[test]
    fn disabled_buf_records_nothing_and_allocates_nothing() {
        let mut buf = TraceBuf::new(TraceSpec::disabled(), 0);
        assert!(!buf.enabled());
        let s = buf.start();
        buf.span(EventKind::UnitExec, 0, s, 1, 0);
        buf.instant(EventKind::Steal, 0, 3, 1);
        assert!(buf.is_empty());
        assert_eq!(buf.events.capacity(), 0, "disabled ring must not allocate");
        let mut t = Trace::default();
        t.absorb_buf(buf);
        assert!(t.is_empty());
    }

    #[test]
    fn ring_wrap_drops_oldest_counts_drops_and_never_reallocates() {
        let spec = TraceSpec::with_capacity(4);
        let mut buf = TraceBuf::new(spec, 7);
        let cap_before = buf.events.capacity();
        for i in 0..10u32 {
            buf.instant(EventKind::Steal, i, i as u64, 0);
        }
        assert_eq!(buf.len(), 4, "ring holds exactly its capacity");
        assert_eq!(buf.dropped(), 6, "six oldest events overwritten");
        assert_eq!(
            buf.events.capacity(),
            cap_before,
            "overflow must never reallocate the ring"
        );
        let mut t = Trace::default();
        t.absorb_buf(buf);
        // Oldest-first drain: the four survivors are the newest events.
        let ids: Vec<u32> = t.events.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
        assert_eq!(t.dropped, 6);
    }

    #[test]
    fn spans_carry_duration_and_epoch_relative_start() {
        let spec = TraceSpec::enabled();
        let mut buf = TraceBuf::new(spec, 1);
        let s = buf.start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        buf.span(EventKind::RuleEval, 5, s, 10, 2);
        assert_eq!(buf.len(), 1);
        let e = buf.events[0];
        assert_eq!(e.kind, EventKind::RuleEval);
        assert_eq!(e.id, 5);
        assert!(e.dur_ns >= 1_000_000, "slept 2ms, got {}ns", e.dur_ns);
        assert_eq!((e.a, e.b), (10, 2));
    }

    #[test]
    fn merge_concatenates_events_and_drops() {
        let mut a = Trace {
            events: vec![event(EventKind::UnitExec, 0, 0, 5, 10, 1, 0)],
            dropped: 2,
        };
        let b = Trace {
            events: vec![event(EventKind::Steal, 1, 0, 7, 0, 3, 0)],
            dropped: 1,
        };
        a.merge(&b);
        assert_eq!(a.events.len(), 2);
        assert_eq!(a.dropped, 3);
    }

    #[test]
    fn profile_aggregates_rules_workers_and_phases() {
        let t = Trace {
            events: vec![
                event(EventKind::RuleEval, 0, 2, 0, 100, 5, 1),
                event(EventKind::RuleEval, 1, 2, 50, 300, 7, 0),
                event(EventKind::RuleEval, 1, 0, 60, 50, 1, 1),
                event(EventKind::UnitExec, 0, 0, 0, 400, 1, 0),
                event(EventKind::Steal, 0, 0, 10, 0, 4, 1),
                event(EventKind::ChaseRound, CONTROL_WORKER, 0, 0, 900, 12, 3),
                event(EventKind::ChaseRound, CONTROL_WORKER, 1, 1000, 100, 2, 3),
            ],
            dropped: 1,
        };
        let p = t.profile();
        assert_eq!(p.rules.len(), 2);
        let r2 = p.rules.iter().find(|r| r.id == 2).unwrap();
        assert_eq!(
            (r2.evals, r2.time_ns, r2.matches, r2.violations),
            (2, 400, 12, 1)
        );
        assert_eq!(p.workers.len(), 1);
        assert_eq!(p.workers[0].units, 1);
        assert_eq!(p.workers[0].steals, 1);
        assert_eq!(p.workers[0].stolen, 4);
        assert_eq!(p.phases.len(), 2, "rounds keyed by id");
        assert_eq!(p.dropped, 1);
        let text = p.render_text(&["a".into(), "b".into(), "phi3".into()]);
        assert!(text.contains("phi3"), "{text}");
        assert!(text.contains("ChaseRound"), "{text}");
        assert!(text.contains("dropped"), "{text}");
        let json = p.to_json(&[], 0);
        assert!(json.contains("\"rule\": \"rule2\""), "{json}");
    }

    #[test]
    fn chrome_export_sorts_per_worker_and_distinguishes_spans() {
        // Worker 0's events recorded out of t0 order (inner span ends
        // before its enclosing UnitExec is pushed).
        let t = Trace {
            events: vec![
                event(EventKind::RuleEval, 0, 1, 5_000, 2_000, 3, 0),
                event(EventKind::UnitExec, 0, 0, 1_000, 9_000, 1, 0),
                event(EventKind::Steal, 1, 0, 3_000, 0, 2, 0),
            ],
            dropped: 0,
        };
        let json = t.to_chrome_json(&["r0".into(), "r1".into()]);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("RuleEval:r1"), "{json}");
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        assert!(json.contains("\"ph\": \"i\""), "{json}");
        // Emitted order is (worker, t0): UnitExec(ts=1µs) before
        // RuleEval(ts=5µs), then worker 1's Steal.
        let unit_pos = json.find("\"UnitExec\"").unwrap();
        let rule_pos = json.find("RuleEval:r1").unwrap();
        let steal_pos = json.find("\"Steal\"").unwrap();
        assert!(unit_pos < rule_pos && rule_pos < steal_pos, "{json}");
        assert!(json.contains("\"dropped_events\": 0"), "{json}");
    }
}
