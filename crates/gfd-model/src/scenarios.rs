//! The checked scenarios: the runtime's lock-free protocols as small,
//! bounded, assertion-carrying programs (DESIGN.md §14.5).
//!
//! Every loop is bounded (fixed steal attempts, iteration caps) so
//! bounded-exhaustive exploration terminates; the scenario root keeps
//! its `Arc`s until after every virtual join, so destructors run with
//! fully joined clocks. Scenario-local result collection uses host
//! `std::sync::Mutex` — invisible to the model (no shadow state) and
//! already ordered by the VM's own serialization.

use crate::shim::ModelAtomics;
use crate::vm::Env;
use gfd_runtime::atomics::{AtomicFlag, AtomicInt, Atomics, DataSlot};
use gfd_runtime::deque::{Steal, WsDeque};
use gfd_runtime::quiesce::Quiesce;
use std::sync::atomic::Ordering::SeqCst;
use std::sync::{Arc, Mutex};

type MUsize = <ModelAtomics as Atomics>::Usize;
type MBool = <ModelAtomics as Atomics>::Bool;
type MSlotUsize = <ModelAtomics as Atomics>::Slot<usize>;

/// The Chase–Lev last-element race: one owner pushes two elements and
/// pops them back while a thief makes three steal attempts. Asserts
/// every element is claimed exactly once — the pop/steal SeqCst-fence
/// + top-CAS arbitration is what makes that true.
pub fn deque_last_element(env: &Env) {
    let d = Arc::new(WsDeque::<usize, ModelAtomics>::with_capacity(4));
    let stolen = Arc::new(Mutex::new(Vec::new()));
    let (d2, s2) = (Arc::clone(&d), Arc::clone(&stolen));
    let thief = env.spawn(move || {
        for _ in 0..3 {
            if let Steal::Success(v) = d2.steal() {
                s2.lock().unwrap().push(v);
            }
        }
    });
    d.push(1);
    d.push(2);
    let mut claimed = Vec::new();
    while let Some(v) = d.pop() {
        claimed.push(v);
    }
    thief.join();
    // Whatever neither side claimed during the race is still in the
    // deque; drain it (no contention remains, so no Retry loops).
    loop {
        match d.steal() {
            Steal::Success(v) => claimed.push(v),
            Steal::Empty => break,
            Steal::Retry => {}
        }
    }
    claimed.extend(stolen.lock().unwrap().iter().copied());
    claimed.sort_unstable();
    assert_eq!(claimed, vec![1, 2], "elements lost or double-claimed");
}

/// Grow-under-steal: a capacity-2 deque forced to grow by a third push
/// while a thief probes, so the thief can hold the retired buffer (or
/// acquire the new one) mid-steal. Asserts the claims multiset.
pub fn deque_grow_under_steal(env: &Env) {
    let d = Arc::new(WsDeque::<usize, ModelAtomics>::with_capacity(2));
    let stolen = Arc::new(Mutex::new(Vec::new()));
    let (d2, s2) = (Arc::clone(&d), Arc::clone(&stolen));
    let thief = env.spawn(move || {
        for _ in 0..2 {
            if let Steal::Success(v) = d2.steal() {
                s2.lock().unwrap().push(v);
            }
        }
    });
    d.push(1);
    d.push(2);
    d.push(3); // exceeds capacity 2: grows, retiring the old buffer
    let mut claimed = Vec::new();
    while let Some(v) = d.pop() {
        claimed.push(v);
    }
    thief.join();
    loop {
        match d.steal() {
            Steal::Success(v) => claimed.push(v),
            Steal::Empty => break,
            Steal::Retry => {}
        }
    }
    claimed.extend(stolen.lock().unwrap().iter().copied());
    claimed.sort_unstable();
    assert_eq!(claimed, vec![1, 2, 3], "elements lost or double-claimed");
}

/// The quiescence split protocol: two workers drain a shared counter
/// "queue" seeded with one unit; whichever worker executes the seed
/// splits two child units into the queue through [`Quiesce::split`].
/// A worker that observes `quiescent()` asserts the exit licence: the
/// queue is empty and every created unit executed. The count-first
/// publication order in `split` is exactly what makes the licence
/// sound; `Weaken::QuiesceSplitPublish` flips it and an early-exit
/// schedule fires the assertion.
pub fn quiesce_split_protocol(env: &Env) {
    let q = Arc::new(Quiesce::<ModelAtomics>::new(1));
    let queue = Arc::new(MUsize::new(1));
    let executed = Arc::new(MUsize::new(0));
    let created = Arc::new(MUsize::new(1));
    let split_claim = Arc::new(MUsize::new(0));
    let mut workers = Vec::new();
    for _ in 0..2 {
        let q = Arc::clone(&q);
        let queue = Arc::clone(&queue);
        let executed = Arc::clone(&executed);
        let created = Arc::clone(&created);
        let split_claim = Arc::clone(&split_claim);
        workers.push(env.spawn(move || {
            for _ in 0..6 {
                if q.quiescent() {
                    // The exit licence: zero in-flight must mean no
                    // queued work and every created unit executed.
                    let queued = queue.load(SeqCst);
                    let done = executed.load(SeqCst);
                    let total = created.load(SeqCst);
                    assert!(
                        queued == 0 && done == total,
                        "early exit: queued={queued} executed={done} created={total}"
                    );
                    break;
                }
                let n = queue.load(SeqCst);
                if n > 0 && queue.compare_exchange(n, n - 1, SeqCst, SeqCst).is_ok() {
                    if split_claim.compare_exchange(0, 1, SeqCst, SeqCst).is_ok() {
                        // The seed unit splits into two children.
                        q.split(2, || {
                            queue.fetch_add(2, SeqCst);
                            created.fetch_add(2, SeqCst);
                        });
                    }
                    executed.fetch_add(1, SeqCst);
                    q.complete_one();
                }
            }
        }));
    }
    for w in workers {
        w.join();
    }
    assert_eq!(executed.load(SeqCst), 3);
    assert_eq!(queue.load(SeqCst), 0);
    assert!(q.quiescent());
}

/// The cancellation handshake done right: the canceller writes its
/// verdict into a raw slot, then raises the stop flag (SeqCst); the
/// worker polls the flag relaxed but never touches the verdict — the
/// root reads it only after joining both, through the join edges.
/// Explores cleanly: the relaxed poll is a latency hint, not a
/// synchronization edge, and nothing relies on it being one.
pub fn stop_flag_handshake(env: &Env) {
    let stop = Arc::new(MBool::new(false));
    let verdict = Arc::new(MSlotUsize::vacant());
    let s2 = Arc::clone(&stop);
    let worker = env.spawn(move || {
        for _ in 0..4 {
            if Quiesce::<ModelAtomics>::stop_requested(&s2) {
                break;
            }
        }
    });
    let (s3, v3) = (Arc::clone(&stop), Arc::clone(&verdict));
    let canceller = env.spawn(move || {
        // SAFETY: the slot is written once, by us; the only read is the
        // root's, ordered after our exit by its join.
        unsafe { v3.write(42) };
        Quiesce::<ModelAtomics>::raise_stop(&s3);
    });
    worker.join();
    canceller.join();
    assert!(Quiesce::<ModelAtomics>::stop_requested(&stop));
    // SAFETY: written by the canceller, which we joined.
    let v = unsafe { verdict.read() };
    assert_eq!(v, 42);
}

/// The cancellation handshake done wrong: the worker reads the verdict
/// slot as soon as its *relaxed* stop poll returns true. The relaxed
/// load carries no acquire edge, so the read races with the
/// canceller's write — the detector flags exactly the bug that forced
/// the real scheduler to route verdicts through its mutex-protected
/// slot and thread joins instead of the stop flag.
pub fn stop_flag_poll_read(env: &Env) {
    let stop = Arc::new(MBool::new(false));
    let verdict = Arc::new(MSlotUsize::vacant());
    let observed = Arc::new(Mutex::new(None));
    let (s2, v2, o2) = (
        Arc::clone(&stop),
        Arc::clone(&verdict),
        Arc::clone(&observed),
    );
    let worker = env.spawn(move || {
        for _ in 0..4 {
            if Quiesce::<ModelAtomics>::stop_requested(&s2) {
                // BUG (deliberate): no acquire edge orders this read
                // after the canceller's write.
                // SAFETY (claimed): "the flag was true, so the write
                // happened" — value-wise true, ordering-wise false.
                let v = unsafe { v2.read() };
                *o2.lock().unwrap() = Some(v);
                break;
            }
        }
    });
    let (s3, v3) = (Arc::clone(&stop), Arc::clone(&verdict));
    let canceller = env.spawn(move || {
        // SAFETY: single writer; see `stop_flag_handshake`.
        unsafe { v3.write(42) };
        Quiesce::<ModelAtomics>::raise_stop(&s3);
    });
    worker.join();
    canceller.join();
}
