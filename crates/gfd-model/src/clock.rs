//! Vector clocks and epochs — the happens-before bookkeeping the race
//! detector (DESIGN.md §14.3) runs on.
//!
//! A [`VClock`] maps a thread id to the count of operations of that
//! thread known (transitively, through synchronization edges) to have
//! happened before the clock's owner. An *epoch* `(tid, k)` names one
//! operation; `clock.covers((tid, k))` is the FastTrack-style "does the
//! reader's clock dominate the writer's epoch" test.

/// A virtual thread id. Thread 0 is the scenario root; spawns number
/// children in program order, so ids are deterministic across replays.
pub type Tid = usize;

/// One operation of one thread: `(tid, per-thread op count)`.
pub type Epoch = (Tid, u64);

/// A vector clock over the (small, dense) virtual thread id space.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The zero clock: nothing is known to have happened before.
    pub fn new() -> Self {
        VClock(Vec::new())
    }

    /// The component for `tid` (0 when never touched).
    pub fn get(&self, tid: Tid) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Set the component for `tid`.
    pub fn set(&mut self, tid: Tid, v: u64) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = v;
    }

    /// Advance `tid`'s own component by one and return the new value —
    /// the epoch of the operation being performed.
    pub fn tick(&mut self, tid: Tid) -> u64 {
        let v = self.get(tid) + 1;
        self.set(tid, v);
        v
    }

    /// Pointwise maximum: absorb everything `other` has seen.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// Does this clock dominate the epoch — i.e. is the operation it
    /// names ordered before everything the clock's owner does next?
    pub fn covers(&self, epoch: Epoch) -> bool {
        self.get(epoch.0) >= epoch.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VClock::new();
        b.set(0, 1);
        b.set(1, 5);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 1);
        assert_eq!(a.get(9), 0);
    }

    #[test]
    fn covers_is_the_epoch_test() {
        let mut c = VClock::new();
        assert!(!c.covers((1, 1)));
        let e = c.tick(1);
        assert!(c.covers((1, e)));
        assert!(!c.covers((1, e + 1)));
        assert!(c.covers((7, 0)));
    }
}
