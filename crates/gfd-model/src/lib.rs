//! A mini concurrency model checker for the `gfd-runtime` lock-free
//! core (DESIGN.md §14).
//!
//! The runtime's Chase–Lev deque and quiescence protocol are generic
//! over the [`gfd_runtime::atomics::Atomics`] family. This crate
//! provides the second family, [`ModelAtomics`]: every load, store,
//! CAS, fence and raw slot access routes through a controlled
//! interleaving VM, turning the production source — unchanged — into a
//! model-checkable program. On top of the VM sit:
//!
//! * a deterministic interleaving explorer ([`explore`]):
//!   bounded-exhaustive DFS with a preemption bound, seeded PCT-style
//!   randomized scheduling, and exact replay of recorded schedules;
//! * a FastTrack-style vector-clock happens-before race detector over
//!   per-slot shadow memory, flagging unordered conflicting accesses,
//!   reads of retired deque buffers and confirmed reads of
//!   uninitialized `MaybeUninit` slots;
//! * checked [`scenarios`] porting the deque's last-element race and
//!   grow-under-steal path and the scheduler's quiescence/stop-flag
//!   protocols, with user assertions checked on every explored
//!   schedule.
//!
//! Counterexamples print as deterministic replay traces
//! ([`Failure`]): the schedule string feeds [`Config::replay`] and is
//! checked in as a regression (`tests/regressions.rs`).
//!
//! The model executes schedules sequentially consistently and detects
//! weak-memory bugs through the happens-before relation the code's own
//! acquire/release annotations claim — see DESIGN.md §14.6 for what
//! that does and does not catch.

#![warn(missing_docs)]

pub mod clock;
mod explore;
pub mod scenarios;
mod shim;
mod vm;

pub use clock::Tid;
pub use explore::{explore, Config, Mode, Report};
pub use shim::{MAtomicIsize, MAtomicUsize, MBool, MPtr, MSlot, ModelAtomics};
pub use vm::{Env, Failure, FailureKind, Schedule, SpecGuard, VJoin};
