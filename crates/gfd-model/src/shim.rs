//! The model atomics family: [`ModelAtomics`] implements
//! [`gfd_runtime::atomics::Atomics`] by routing every load, store,
//! CAS, fence and raw slot access through the interleaving VM
//! (DESIGN.md §14.2). Instantiating `WsDeque<T, ModelAtomics>` or
//! `Quiesce<ModelAtomics>` turns the production source, unchanged,
//! into a model-checkable program.
//!
//! Values live in `UnsafeCell`s inside the shim types; the VM's
//! central mutex serializes every access (one virtual thread runs at a
//! time, and even abort-mode accesses take the lock), which is what
//! makes the pervasive `unsafe impl Send/Sync` below sound.

use crate::vm::{current, current_opt, SpecGuard};
use gfd_runtime::atomics::{AtomicFlag, AtomicInt, AtomicPtrCell, Atomics, DataSlot, Weaken};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::Ordering;

/// The VM-backed atomics family. Usable only on threads of a model
/// execution (the scenario root or [`crate::Env::spawn`]ed threads);
/// construction or access anywhere else panics.
#[derive(Debug, Default, Clone, Copy)]
pub struct ModelAtomics;

macro_rules! model_atomic_int {
    ($(#[$doc:meta])* $name:ident, $v:ty) => {
        $(#[$doc])*
        pub struct $name {
            id: usize,
            val: UnsafeCell<$v>,
        }

        // SAFETY: all access to `val` goes through the VM, which holds
        // its central mutex for the duration of every read and write.
        unsafe impl Send for $name {}
        // SAFETY: as above — the VM serializes shared access.
        unsafe impl Sync for $name {}

        impl AtomicInt<$v> for $name {
            fn new(v: $v) -> Self {
                let (vm, _) = current();
                $name {
                    id: vm.alloc_atomic(),
                    val: UnsafeCell::new(v),
                }
            }
            fn load(&self, order: Ordering) -> $v {
                let (vm, tid) = current();
                vm.atomic_load(tid, self.id, &self.val, order)
            }
            fn store(&self, v: $v, order: Ordering) {
                let (vm, tid) = current();
                vm.atomic_store(tid, self.id, &self.val, v, order)
            }
            fn compare_exchange(
                &self,
                current_v: $v,
                new: $v,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$v, $v> {
                let (vm, tid) = current();
                vm.atomic_cas(tid, self.id, &self.val, current_v, new, success, failure)
            }
            fn fetch_add(&self, v: $v, order: Ordering) -> $v {
                let (vm, tid) = current();
                vm.atomic_rmw(tid, self.id, &self.val, order, "fetch_add", |old| {
                    old.wrapping_add(v)
                })
            }
            fn fetch_sub(&self, v: $v, order: Ordering) -> $v {
                let (vm, tid) = current();
                vm.atomic_rmw(tid, self.id, &self.val, order, "fetch_sub", |old| {
                    old.wrapping_sub(v)
                })
            }
            fn unsync_load(&mut self) -> $v {
                *self.val.get_mut()
            }
        }
    };
}

model_atomic_int!(
    /// Model `AtomicIsize` (deque `bottom`/`top`).
    MAtomicIsize,
    isize
);
model_atomic_int!(
    /// Model `AtomicUsize` (quiescence counter, scenario counters).
    MAtomicUsize,
    usize
);

/// Model `AtomicBool` (the stop flag).
pub struct MBool {
    id: usize,
    val: UnsafeCell<bool>,
}

// SAFETY: VM-serialized access (see module docs).
unsafe impl Send for MBool {}
// SAFETY: VM-serialized access (see module docs).
unsafe impl Sync for MBool {}

impl AtomicFlag for MBool {
    fn new(v: bool) -> Self {
        let (vm, _) = current();
        MBool {
            id: vm.alloc_atomic(),
            val: UnsafeCell::new(v),
        }
    }
    fn load(&self, order: Ordering) -> bool {
        let (vm, tid) = current();
        vm.atomic_load(tid, self.id, &self.val, order)
    }
    fn store(&self, v: bool, order: Ordering) {
        let (vm, tid) = current();
        vm.atomic_store(tid, self.id, &self.val, v, order)
    }
}

/// Model `AtomicPtr` (the deque's buffer pointer).
pub struct MPtr<P> {
    id: usize,
    val: UnsafeCell<*mut P>,
}

// SAFETY: VM-serialized access; like `std::sync::atomic::AtomicPtr`,
// only the address is shared, never `P` itself.
unsafe impl<P> Send for MPtr<P> {}
// SAFETY: as above.
unsafe impl<P> Sync for MPtr<P> {}

impl<P> AtomicPtrCell<P> for MPtr<P> {
    fn new(p: *mut P) -> Self {
        let (vm, _) = current();
        MPtr {
            id: vm.alloc_atomic(),
            val: UnsafeCell::new(p),
        }
    }
    fn load(&self, order: Ordering) -> *mut P {
        let (vm, tid) = current();
        vm.atomic_load(tid, self.id, &self.val, order)
    }
    fn store(&self, p: *mut P, order: Ordering) {
        let (vm, tid) = current();
        vm.atomic_store(tid, self.id, &self.val, p, order)
    }
    fn unsync_load(&mut self) -> *mut P {
        *self.val.get_mut()
    }
}

/// Model data slot: a `MaybeUninit` cell with VM shadow state
/// (initialized-ness, last-writer epoch, reader epochs). Every access
/// is race-checked; speculative reads get their verdict deferred to
/// [`DataSlot::confirm`] / [`DataSlot::discard`].
pub struct MSlot<V> {
    id: usize,
    val: UnsafeCell<MaybeUninit<V>>,
}

// SAFETY: VM-serialized access (see module docs); `V: Send` because a
// slot transfers elements between virtual threads.
unsafe impl<V: Send> Send for MSlot<V> {}
// SAFETY: as above.
unsafe impl<V: Send> Sync for MSlot<V> {}

impl<V> DataSlot<V> for MSlot<V> {
    type Guard = SpecGuard;

    fn vacant() -> Self {
        let (vm, _) = current();
        MSlot {
            id: vm.alloc_cell(),
            val: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    unsafe fn read(&self) -> V {
        let (vm, tid) = current();
        vm.cell_read(tid, self.id, &self.val)
    }

    unsafe fn write(&self, value: V) {
        let (vm, tid) = current();
        vm.cell_write(tid, self.id, &self.val, value)
    }

    unsafe fn read_speculative(&self) -> (MaybeUninit<V>, SpecGuard) {
        let (vm, tid) = current();
        vm.cell_read_spec(tid, self.id, &self.val)
    }

    fn confirm(guard: SpecGuard) {
        let (vm, _) = current();
        vm.spec_confirm(guard);
    }

    fn discard(guard: SpecGuard) {
        let (vm, _) = current();
        vm.spec_discard(guard);
    }
}

impl Atomics for ModelAtomics {
    type Isize = MAtomicIsize;
    type Usize = MAtomicUsize;
    type Bool = MBool;
    type Ptr<P> = MPtr<P>;
    type Slot<V> = MSlot<V>;

    fn fence(order: Ordering) {
        let (vm, tid) = current();
        vm.fence(tid, order);
    }

    fn weakened(site: Weaken) -> bool {
        current_opt().is_some_and(|(vm, _)| vm.is_weakened(site))
    }
}
