//! Schedule exploration (DESIGN.md §14.4): bounded-exhaustive DFS with
//! a preemption bound, seeded PCT-style randomized scheduling, and
//! deterministic replay of recorded schedules.

use crate::vm::{run_one, Controller, Env, Failure, Schedule};
use crate::Tid;
use gfd_runtime::atomics::Weaken;
use rand::{Rng, SeedableRng, StdRng};
use std::sync::{Arc, Mutex};

/// How to drive the schedule space.
#[derive(Clone, Debug)]
pub enum Mode {
    /// Depth-first enumeration of every schedule within the preemption
    /// bound. Complete (up to the bound) for bounded scenarios.
    Exhaustive,
    /// PCT-style randomized priority scheduling: each iteration assigns
    /// random thread priorities and lowers the running thread's
    /// priority at a few random change points. Cheap probabilistic
    /// coverage for state spaces too large to enumerate.
    Pct {
        /// Base seed; iteration `i` runs with `seed + i`.
        seed: u64,
        /// Number of randomized executions.
        iters: usize,
        /// Priority change points per execution.
        change_points: usize,
    },
    /// Replay one recorded schedule exactly, then (if the schedule is a
    /// prefix) continue with the deterministic default policy.
    Replay(Schedule),
}

/// An exploration configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum preemptions (involuntary context switches) per schedule
    /// in exhaustive mode. Most concurrency bugs need very few; 2–3
    /// keeps bounded scenarios enumerable.
    pub preemption_bound: usize,
    /// Per-execution step budget (schedule points); exceeding it is a
    /// [`crate::FailureKind::StepBudget`] failure.
    pub max_steps: usize,
    /// Cap on explored schedules; hitting it ends exploration with
    /// `complete = false`.
    pub max_schedules: usize,
    /// Deliberately weaken one named ordering site
    /// ([`gfd_runtime::atomics::Weaken`]) — used to prove the checker
    /// catches the bug the site prevents.
    pub weaken: Option<Weaken>,
    /// The exploration strategy.
    pub mode: Mode,
}

impl Config {
    /// Bounded-exhaustive exploration with the given preemption bound.
    pub fn exhaustive(preemption_bound: usize) -> Config {
        Config {
            preemption_bound,
            max_steps: 20_000,
            max_schedules: 500_000,
            weaken: None,
            mode: Mode::Exhaustive,
        }
    }

    /// Seeded randomized (PCT-style) exploration.
    pub fn pct(seed: u64, iters: usize) -> Config {
        Config {
            preemption_bound: usize::MAX,
            max_steps: 20_000,
            max_schedules: iters,
            weaken: None,
            mode: Mode::Pct {
                seed,
                iters,
                change_points: 3,
            },
        }
    }

    /// Deterministic replay of a recorded schedule.
    pub fn replay(schedule: Schedule) -> Config {
        Config {
            preemption_bound: usize::MAX,
            max_steps: 20_000,
            max_schedules: 1,
            weaken: None,
            mode: Mode::Replay(schedule),
        }
    }

    /// Weaken one ordering site for this exploration.
    pub fn weaken(mut self, site: Weaken) -> Config {
        self.weaken = Some(site);
        self
    }

    /// Override the per-execution step budget.
    pub fn max_steps(mut self, steps: usize) -> Config {
        self.max_steps = steps;
        self
    }

    /// Override the explored-schedule cap.
    pub fn max_schedules(mut self, n: usize) -> Config {
        self.max_schedules = n;
        self
    }
}

/// The outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Number of schedules executed.
    pub explored: usize,
    /// Did the strategy finish (exhaustive space drained / all PCT
    /// iterations run) without hitting `max_schedules`?
    pub complete: bool,
    /// The first counterexample found, if any. Exploration stops at the
    /// first failure.
    pub failure: Option<Failure>,
}

impl Report {
    /// Assert the exploration found nothing, with the full
    /// counterexample (replay schedule + trace) as the panic message.
    pub fn assert_clean(&self) {
        if let Some(f) = &self.failure {
            panic!("model exploration found a counterexample:\n{f}");
        }
    }
}

/// Explore `scenario` under `config`. Each execution runs the scenario
/// from scratch on fresh virtual threads; exploration stops at the
/// first failure (whose [`Failure::schedule`] replays it
/// deterministically) or when the strategy completes.
pub fn explore<F>(config: Config, scenario: F) -> Report
where
    F: Fn(&Env) + Send + Sync + 'static,
{
    let scenario: Arc<dyn Fn(&Env) + Send + Sync> = Arc::new(scenario);
    match &config.mode {
        Mode::Exhaustive => {
            let dfs = Arc::new(Mutex::new(DfsState::new(config.preemption_bound)));
            let mut explored = 0usize;
            loop {
                dfs.lock().unwrap().depth = 0;
                let ctrl = Box::new(DfsController {
                    state: Arc::clone(&dfs),
                });
                let res = run_one(config.weaken, config.max_steps, ctrl, Arc::clone(&scenario));
                explored += 1;
                if res.failure.is_some() {
                    return Report {
                        explored,
                        complete: false,
                        failure: res.failure,
                    };
                }
                if !dfs.lock().unwrap().advance() {
                    return Report {
                        explored,
                        complete: true,
                        failure: None,
                    };
                }
                if explored >= config.max_schedules {
                    return Report {
                        explored,
                        complete: false,
                        failure: None,
                    };
                }
            }
        }
        Mode::Pct {
            seed,
            iters,
            change_points,
        } => {
            for i in 0..*iters {
                let ctrl = Box::new(PctController::new(
                    seed.wrapping_add(i as u64),
                    *change_points,
                ));
                let res = run_one(config.weaken, config.max_steps, ctrl, Arc::clone(&scenario));
                if res.failure.is_some() {
                    return Report {
                        explored: i + 1,
                        complete: false,
                        failure: res.failure,
                    };
                }
            }
            Report {
                explored: *iters,
                complete: true,
                failure: None,
            }
        }
        Mode::Replay(schedule) => {
            let ctrl = Box::new(ReplayController {
                sched: schedule.0.clone(),
                next: 0,
            });
            let res = run_one(config.weaken, config.max_steps, ctrl, scenario);
            Report {
                explored: 1,
                complete: true,
                failure: res.failure,
            }
        }
    }
}

// ---- DFS ------------------------------------------------------------------

struct Frame {
    /// The choices allowed at this decision, in exploration order
    /// (current thread first — run-to-completion is the base schedule).
    choices: Vec<Tid>,
    /// Which choice the current execution takes.
    next: usize,
}

pub(crate) struct DfsState {
    frames: Vec<Frame>,
    /// Decision depth within the current execution.
    pub(crate) depth: usize,
    bound: usize,
}

impl DfsState {
    pub(crate) fn new(bound: usize) -> DfsState {
        DfsState {
            frames: Vec::new(),
            depth: 0,
            bound,
        }
    }

    pub(crate) fn choose(&mut self, current: Tid, enabled: &[Tid], preemptions: usize) -> Tid {
        let d = self.depth;
        self.depth += 1;
        if d < self.frames.len() {
            // Replaying the committed prefix of this branch.
            let f = &self.frames[d];
            return f.choices[f.next];
        }
        let cur_enabled = enabled.contains(&current);
        let choices = if cur_enabled && preemptions >= self.bound {
            // Out of preemption budget: the running thread must keep
            // the baton (a switch away from a blocked/finished thread
            // is not a preemption and stays allowed below).
            vec![current]
        } else {
            let mut v = Vec::with_capacity(enabled.len());
            if cur_enabled {
                v.push(current);
            }
            v.extend(enabled.iter().copied().filter(|&t| t != current));
            v
        };
        self.frames.push(Frame { choices, next: 0 });
        self.frames[d].choices[0]
    }

    /// Move to the next unexplored branch: advance the deepest frame
    /// with remaining choices, dropping exhausted deeper frames.
    /// Returns false when the space is drained.
    pub(crate) fn advance(&mut self) -> bool {
        self.depth = 0;
        while let Some(f) = self.frames.last_mut() {
            if f.next + 1 < f.choices.len() {
                f.next += 1;
                return true;
            }
            self.frames.pop();
        }
        false
    }
}

struct DfsController {
    state: Arc<Mutex<DfsState>>,
}

impl Controller for DfsController {
    fn choose(&mut self, current: Tid, enabled: &[Tid], preemptions: usize) -> Tid {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .choose(current, enabled, preemptions)
    }
}

// ---- PCT ------------------------------------------------------------------

struct PctController {
    rng: StdRng,
    prio: Vec<i64>,
    change: Vec<usize>,
    decision: usize,
    low: i64,
}

impl PctController {
    fn new(seed: u64, change_points: usize) -> PctController {
        let mut rng = StdRng::seed_from_u64(seed);
        let change = (0..change_points)
            .map(|_| rng.random_range(1usize..128))
            .collect();
        PctController {
            rng,
            prio: Vec::new(),
            change,
            decision: 0,
            low: 0,
        }
    }
}

impl Controller for PctController {
    fn choose(&mut self, current: Tid, enabled: &[Tid], _preemptions: usize) -> Tid {
        self.decision += 1;
        let max_tid = enabled.iter().copied().max().unwrap_or(0);
        while self.prio.len() <= max_tid {
            // High random band; change points move threads into the
            // (strictly lower) `low` band.
            self.prio.push((self.rng.next_u64() >> 33) as i64 + 1_000);
        }
        if self.change.contains(&self.decision) && current < self.prio.len() {
            self.low -= 1;
            self.prio[current] = self.low;
        }
        *enabled
            .iter()
            .max_by_key(|&&t| self.prio[t])
            .expect("enabled set is never empty here")
    }
}

// ---- Replay ---------------------------------------------------------------

struct ReplayController {
    sched: Vec<Tid>,
    next: usize,
}

impl Controller for ReplayController {
    fn choose(&mut self, current: Tid, enabled: &[Tid], _preemptions: usize) -> Tid {
        if self.next < self.sched.len() {
            let t = self.sched[self.next];
            self.next += 1;
            return t;
        }
        // Past the recorded prefix: deterministic default policy.
        if enabled.contains(&current) {
            current
        } else {
            enabled[0]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_enumerates_a_two_choice_tree() {
        // Depth-2 tree with 2 choices each => 4 paths.
        let mut dfs = DfsState::new(usize::MAX);
        let mut paths = Vec::new();
        loop {
            dfs.depth = 0;
            let a = dfs.choose(0, &[0, 1], 0);
            let b = dfs.choose(a, &[0, 1], 0);
            paths.push((a, b));
            if !dfs.advance() {
                break;
            }
        }
        // Exploration order is current-first: once branch (1, _) is
        // taken, thread 1 is `current` at the second decision, so its
        // run-to-completion child (1, 1) comes before the switch (1, 0).
        assert_eq!(paths, vec![(0, 0), (0, 1), (1, 1), (1, 0)]);
    }

    #[test]
    fn dfs_preemption_bound_pins_the_running_thread() {
        let mut dfs = DfsState::new(0);
        // With zero budget and the current thread enabled, the only
        // choice is to keep running it.
        assert_eq!(dfs.choose(1, &[0, 1], 0), 1);
        // A necessary switch (current not enabled) is not a preemption.
        let mut dfs = DfsState::new(0);
        assert_eq!(dfs.choose(2, &[0, 1], 0), 0);
    }

    #[test]
    fn replay_follows_then_defaults() {
        let mut r = ReplayController {
            sched: vec![1, 0],
            next: 0,
        };
        assert_eq!(r.choose(0, &[0, 1], 0), 1);
        assert_eq!(r.choose(1, &[0, 1], 0), 0);
        // Prefix exhausted: run-to-completion default.
        assert_eq!(r.choose(0, &[0, 1], 0), 0);
        assert_eq!(r.choose(9, &[0, 1], 0), 0);
    }

    #[test]
    fn pct_is_deterministic_per_seed() {
        let run = || {
            let mut p = PctController::new(42, 3);
            (0..10)
                .map(|_| p.choose(0, &[0, 1, 2], 0))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
