//! The interleaving VM: virtual threads, controlled scheduling, vector
//! clocks, shadow memory and the happens-before race detector
//! (DESIGN.md §14.2–§14.3).
//!
//! Every execution runs the scenario on real OS threads serialized by a
//! baton: exactly one virtual thread runs at a time, and every atomic
//! operation and fence is a *schedule point* where a [`Controller`]
//! picks which thread holds the baton next. The executed interleaving
//! is therefore sequentially consistent; weak-memory bugs are caught
//! not by simulating reorderings but by a FastTrack-style
//! happens-before detector over the *claimed* synchronization: if the
//! code's acquire/release edges (as written, including any
//! deliberately weakened site) do not order two conflicting data-slot
//! accesses, the schedule that interleaves them is flagged as a data
//! race even though the SC execution read "correct" values.

use crate::clock::{Epoch, Tid, VClock};
use gfd_runtime::atomics::Weaken;
use std::any::Any;
use std::cell::{Cell, RefCell, UnsafeCell};
use std::fmt;
use std::mem::MaybeUninit;
use std::panic::{self, AssertUnwindSafe};
use std::str::FromStr;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

/// A recorded schedule: the sequence of baton passes (chosen thread
/// ids), one per schedule point. Replaying the same schedule on the
/// same scenario reproduces the same execution bit-for-bit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule(pub Vec<Tid>);

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for t in &self.0 {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{t}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromStr for Schedule {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Schedule(Vec::new()));
        }
        s.split('.')
            .map(|p| p.parse::<Tid>().map_err(|e| format!("bad tid {p:?}: {e}")))
            .collect::<Result<Vec<_>, _>>()
            .map(Schedule)
    }
}

/// What kind of property violation an exploration found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// Two conflicting data-slot accesses with no happens-before edge.
    DataRace,
    /// A (confirmed) read of a slot no write ever initialized.
    UninitRead,
    /// A scenario `assert!` fired.
    Assertion,
    /// Every live virtual thread was blocked.
    Deadlock,
    /// The per-execution step budget was exhausted (livelock or an
    /// unbounded loop in the scenario).
    StepBudget,
    /// A replayed schedule chose a thread that was not enabled — the
    /// scenario or the checked code changed since the schedule was
    /// recorded.
    ReplayDivergence,
}

/// A counterexample: what went wrong, the deterministic replay
/// schedule that reaches it, and the full operation trace.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The violated property.
    pub kind: FailureKind,
    /// Human-readable description of the violation.
    pub message: String,
    /// The schedule that deterministically reproduces it (pass to
    /// `Config::replay`).
    pub schedule: Schedule,
    /// The per-operation trace of the failing execution.
    pub trace: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:?}: {}", self.kind, self.message)?;
        writeln!(f, "replay schedule: {}", self.schedule)?;
        writeln!(f, "trace:")?;
        for line in self.trace.lines() {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// A scheduling strategy: given the thread currently holding the baton
/// and the enabled set (sorted ascending), pick who runs next.
pub(crate) trait Controller: Send {
    fn choose(&mut self, current: Tid, enabled: &[Tid], preemptions: usize) -> Tid;
}

/// Panic payload used to unwind virtual threads when an execution
/// aborts (failure found elsewhere, or budget exhausted). Swallowed at
/// each thread's catch_unwind rim.
pub(crate) struct ModelAbort;

#[derive(Clone, Debug, PartialEq, Eq)]
enum TState {
    Runnable,
    Blocked(Tid),
    Finished,
}

struct ThreadEntry {
    state: TState,
    clock: VClock,
}

#[derive(Default)]
struct AtomicShadow {
    /// The clock an acquire load of this location joins: the release
    /// head's clock, maintained under pre-C++20 release-sequence rules
    /// (same-thread relaxed stores continue the sequence, other-thread
    /// relaxed stores break it; RMWs always continue it).
    sync: VClock,
    /// Which thread's release currently heads the sequence.
    rel_head: Option<Tid>,
}

#[derive(Default)]
struct CellShadow {
    init: bool,
    last_write: Option<Epoch>,
    reads: Vec<Epoch>,
}

struct Central {
    threads: Vec<ThreadEntry>,
    active: Tid,
    live: usize,
    abort: bool,
    failure: Option<Failure>,
    atomics: Vec<AtomicShadow>,
    cells: Vec<CellShadow>,
    /// The generous SeqCst clock: every SeqCst op/fence joins it both
    /// ways, over-approximating the SC total order (DESIGN.md §14.6).
    sc: VClock,
    schedule: Vec<Tid>,
    trace: Vec<String>,
    steps: usize,
    preemptions: usize,
    controller: Box<dyn Controller>,
}

/// One model execution: the serialization baton, shadow state and
/// scheduling machinery shared by every virtual thread.
pub(crate) struct Vm {
    central: Mutex<Central>,
    cond: Condvar,
    weaken: Option<Weaken>,
    max_steps: usize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Vm>, Tid)>> = const { RefCell::new(None) };
    static SUPPRESS: Cell<bool> = const { Cell::new(false) };
}

/// The VM and virtual tid of the calling OS thread. Panics when called
/// from outside a model run — model atomics only work under the VM.
pub(crate) fn current() -> (Arc<Vm>, Tid) {
    CURRENT
        .with(|c| c.borrow().clone())
        .expect("gfd-model atomics used outside a model run")
}

pub(crate) fn current_opt() -> Option<(Arc<Vm>, Tid)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Install (once, process-wide) a panic hook that silences panics from
/// model threads: aborts and caught scenario assertions are recorded as
/// [`Failure`]s, not stderr noise. Non-model threads keep the previous
/// hook behavior.
fn install_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS.with(|s| s.get()) {
                prev(info);
            }
        }));
    });
}

fn acquires(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// The deferred race verdict of a speculative slot read
/// ([`gfd_runtime::atomics::DataSlot::read_speculative`]): everything
/// the detector needs to judge the read once the validating CAS
/// resolves.
pub struct SpecGuard {
    cell: usize,
    tid: Tid,
    epoch: u64,
    read_clock: VClock,
    observed: Option<Epoch>,
    observed_init: bool,
}

impl Vm {
    pub(crate) fn new(
        weaken: Option<Weaken>,
        max_steps: usize,
        controller: Box<dyn Controller>,
    ) -> Arc<Vm> {
        Arc::new(Vm {
            central: Mutex::new(Central {
                threads: Vec::new(),
                active: 0,
                live: 0,
                abort: false,
                failure: None,
                atomics: Vec::new(),
                cells: Vec::new(),
                sc: VClock::new(),
                schedule: Vec::new(),
                trace: Vec::new(),
                steps: 0,
                preemptions: 0,
                controller,
            }),
            cond: Condvar::new(),
            weaken,
            max_steps,
            handles: Mutex::new(Vec::new()),
        })
    }

    pub(crate) fn is_weakened(&self, site: Weaken) -> bool {
        self.weaken == Some(site)
    }

    fn lock(&self) -> MutexGuard<'_, Central> {
        self.central.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(&self, c: MutexGuard<'a, Central>) -> MutexGuard<'a, Central> {
        self.cond.wait(c).unwrap_or_else(|e| e.into_inner())
    }

    fn fail_locked(&self, c: &mut Central, kind: FailureKind, message: String) {
        if c.failure.is_none() {
            c.trace.push(format!("!! {kind:?}: {message}"));
            c.failure = Some(Failure {
                kind,
                message,
                schedule: Schedule(c.schedule.clone()),
                trace: c.trace.join("\n"),
            });
        }
        c.abort = true;
        self.cond.notify_all();
    }

    fn abort_now(&self, c: MutexGuard<'_, Central>) -> ! {
        drop(c);
        panic::panic_any(ModelAbort);
    }

    /// Make the next scheduling decision at a schedule point reached by
    /// `current`. Sets `active` and wakes the chosen thread.
    fn decide(&self, c: &mut Central, current: Tid) {
        let enabled: Vec<Tid> = c
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == TState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            let live = c.live;
            self.fail_locked(
                c,
                FailureKind::Deadlock,
                format!("all {live} live threads blocked"),
            );
            return;
        }
        let pre = c.preemptions;
        let chosen = c.controller.choose(current, &enabled, pre);
        if !enabled.contains(&chosen) {
            self.fail_locked(
                c,
                FailureKind::ReplayDivergence,
                format!("schedule chose t{chosen} but enabled set is {enabled:?}"),
            );
            return;
        }
        if chosen != current && enabled.contains(&current) {
            c.preemptions += 1;
        }
        c.schedule.push(chosen);
        c.active = chosen;
        self.cond.notify_all();
    }

    /// The common schedule-point prologue for atomic ops and fences:
    /// decide, park until chosen, charge the step budget. Returns the
    /// guard plus `raw = true` when the execution is aborting (the op
    /// should update the value and skip all model bookkeeping so
    /// unwinding destructors run cleanly).
    fn enter_op<'a>(&'a self, tid: Tid) -> (MutexGuard<'a, Central>, bool) {
        let mut c = self.lock();
        if c.abort {
            return (c, true);
        }
        self.decide(&mut c, tid);
        while c.active != tid && !c.abort {
            c = self.wait(c);
        }
        if c.abort {
            self.abort_now(c);
        }
        c.steps += 1;
        if c.steps > self.max_steps {
            let msg = format!(
                "step budget of {} exceeded (livelock or unbounded scenario loop)",
                self.max_steps
            );
            self.fail_locked(&mut c, FailureKind::StepBudget, msg);
            self.abort_now(c);
        }
        (c, false)
    }

    /// Join the generous SeqCst clock both ways (DESIGN.md §14.6).
    fn sc_join(&self, c: &mut Central, tid: Tid) {
        let s = c.sc.clone();
        c.threads[tid].clock.join(&s);
        let t = c.threads[tid].clock.clone();
        c.sc.join(&t);
    }

    // ---- shadow allocation -------------------------------------------------

    pub(crate) fn alloc_atomic(&self) -> usize {
        let mut c = self.lock();
        c.atomics.push(AtomicShadow::default());
        c.atomics.len() - 1
    }

    pub(crate) fn alloc_cell(&self) -> usize {
        let mut c = self.lock();
        c.cells.push(CellShadow::default());
        c.cells.len() - 1
    }

    // ---- atomic operations -------------------------------------------------

    pub(crate) fn atomic_load<V: Copy + fmt::Debug>(
        &self,
        tid: Tid,
        id: usize,
        val: &UnsafeCell<V>,
        ord: Ordering,
    ) -> V {
        let (mut c, raw) = self.enter_op(tid);
        // SAFETY: every access to a model value cell happens with the
        // central lock held; in normal mode the holder is additionally
        // the single active thread. No concurrent access exists.
        let v = unsafe { *val.get() };
        if !raw {
            if acquires(ord) {
                let sync = c.atomics[id].sync.clone();
                c.threads[tid].clock.join(&sync);
            }
            if ord == Ordering::SeqCst {
                self.sc_join(&mut c, tid);
            }
            c.threads[tid].clock.tick(tid);
            c.trace
                .push(format!("t{tid}: load a{id} ({ord:?}) -> {v:?}"));
        }
        v
    }

    pub(crate) fn atomic_store<V: Copy + fmt::Debug>(
        &self,
        tid: Tid,
        id: usize,
        val: &UnsafeCell<V>,
        v: V,
        ord: Ordering,
    ) {
        let (mut c, raw) = self.enter_op(tid);
        // SAFETY: serialized under the central lock (see atomic_load).
        unsafe { *val.get() = v };
        if !raw {
            if releases(ord) {
                c.atomics[id].sync = c.threads[tid].clock.clone();
                c.atomics[id].rel_head = Some(tid);
            } else if c.atomics[id].rel_head != Some(tid) {
                // A relaxed store by another thread breaks the release
                // sequence (pre-C++20 rules); by the head's own thread
                // it continues it, keeping `sync` as-is.
                c.atomics[id].sync = VClock::new();
                c.atomics[id].rel_head = None;
            }
            if ord == Ordering::SeqCst {
                self.sc_join(&mut c, tid);
            }
            c.threads[tid].clock.tick(tid);
            c.trace
                .push(format!("t{tid}: store a{id} = {v:?} ({ord:?})"));
        }
    }

    pub(crate) fn atomic_rmw<V: Copy + fmt::Debug>(
        &self,
        tid: Tid,
        id: usize,
        val: &UnsafeCell<V>,
        ord: Ordering,
        name: &str,
        apply: impl FnOnce(V) -> V,
    ) -> V {
        let (mut c, raw) = self.enter_op(tid);
        // SAFETY: serialized under the central lock (see atomic_load).
        let old = unsafe { *val.get() };
        let newv = apply(old);
        // SAFETY: as above.
        unsafe { *val.get() = newv };
        if !raw {
            self.rmw_edges(&mut c, tid, id, ord);
            c.threads[tid].clock.tick(tid);
            c.trace.push(format!(
                "t{tid}: {name} a{id}: {old:?} -> {newv:?} ({ord:?})"
            ));
        }
        old
    }

    /// Acquire/release edges of a successful read-modify-write. An RMW
    /// always continues the location's release sequence, so a release
    /// RMW *joins* its clock into `sync` instead of replacing it.
    fn rmw_edges(&self, c: &mut Central, tid: Tid, id: usize, ord: Ordering) {
        if acquires(ord) {
            let sync = c.atomics[id].sync.clone();
            c.threads[tid].clock.join(&sync);
        }
        if releases(ord) {
            let clk = c.threads[tid].clock.clone();
            c.atomics[id].sync.join(&clk);
            c.atomics[id].rel_head = Some(tid);
        }
        if ord == Ordering::SeqCst {
            self.sc_join(c, tid);
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors `compare_exchange`'s own arity
    pub(crate) fn atomic_cas<V: Copy + PartialEq + fmt::Debug>(
        &self,
        tid: Tid,
        id: usize,
        val: &UnsafeCell<V>,
        expect: V,
        newv: V,
        success: Ordering,
        failure: Ordering,
    ) -> Result<V, V> {
        let (mut c, raw) = self.enter_op(tid);
        // SAFETY: serialized under the central lock (see atomic_load).
        let old = unsafe { *val.get() };
        if old == expect {
            // SAFETY: as above.
            unsafe { *val.get() = newv };
            if !raw {
                self.rmw_edges(&mut c, tid, id, success);
                c.threads[tid].clock.tick(tid);
                c.trace.push(format!(
                    "t{tid}: cas a{id} {expect:?} -> {newv:?} ok ({success:?})"
                ));
            }
            Ok(old)
        } else {
            if !raw {
                if acquires(failure) {
                    let sync = c.atomics[id].sync.clone();
                    c.threads[tid].clock.join(&sync);
                }
                if failure == Ordering::SeqCst {
                    self.sc_join(&mut c, tid);
                }
                c.threads[tid].clock.tick(tid);
                c.trace.push(format!(
                    "t{tid}: cas a{id} {expect:?} -> {newv:?} failed, saw {old:?}"
                ));
            }
            Err(old)
        }
    }

    pub(crate) fn fence(&self, tid: Tid, ord: Ordering) {
        let (mut c, raw) = self.enter_op(tid);
        if !raw {
            // Modeled generously: every fence gets the full SeqCst
            // treatment (both-ways join with the SC clock). This
            // over-approximates Acquire/Release fences; the runtime
            // core only issues SeqCst fences (DESIGN.md §14.6).
            self.sc_join(&mut c, tid);
            c.threads[tid].clock.tick(tid);
            c.trace.push(format!("t{tid}: fence ({ord:?})"));
        }
    }

    // ---- data-slot (non-atomic) operations ---------------------------------
    //
    // Slot accesses are not schedule points: they run atomically with
    // the preceding schedule point, which keeps the explored state
    // space focused on synchronization interleavings. The detector
    // still checks every access for happens-before ordering.

    pub(crate) fn cell_write<V>(
        &self,
        tid: Tid,
        id: usize,
        val: &UnsafeCell<MaybeUninit<V>>,
        v: V,
    ) {
        let mut c = self.lock();
        // SAFETY: serialized under the central lock; writing through
        // `MaybeUninit::write` never drops previous content (the slot
        // protocol guarantees any previous element was moved out).
        unsafe { (*val.get()).write(v) };
        if c.abort {
            return;
        }
        let clock = c.threads[tid].clock.clone();
        let racy = {
            let sh = &c.cells[id];
            let write_race = sh.last_write.filter(|&w| !clock.covers(w)).map(|w| {
                format!(
                    "write to c{id} by t{tid} races with write by t{} (epoch {}:{})",
                    w.0, w.0, w.1
                )
            });
            let read_race = sh.reads.iter().find(|&&r| !clock.covers(r)).map(|&r| {
                format!(
                    "write to c{id} by t{tid} races with read by t{} (epoch {}:{})",
                    r.0, r.0, r.1
                )
            });
            write_race.or(read_race)
        };
        if let Some(msg) = racy {
            self.fail_locked(&mut c, FailureKind::DataRace, msg);
            self.abort_now(c);
        }
        let e = c.threads[tid].clock.tick(tid);
        let sh = &mut c.cells[id];
        sh.last_write = Some((tid, e));
        sh.reads.clear();
        sh.init = true;
        c.trace.push(format!("t{tid}: write c{id}"));
    }

    pub(crate) fn cell_read<V>(&self, tid: Tid, id: usize, val: &UnsafeCell<MaybeUninit<V>>) -> V {
        let mut c = self.lock();
        if !c.abort {
            let clock = c.threads[tid].clock.clone();
            let (init, last_write) = {
                let sh = &c.cells[id];
                (sh.init, sh.last_write)
            };
            if !init {
                self.fail_locked(
                    &mut c,
                    FailureKind::UninitRead,
                    format!("t{tid} read uninitialized slot c{id}"),
                );
                self.abort_now(c);
            }
            if let Some(w) = last_write.filter(|&w| !clock.covers(w)) {
                self.fail_locked(
                    &mut c,
                    FailureKind::DataRace,
                    format!(
                        "read of c{id} by t{tid} races with write by t{} (epoch {}:{})",
                        w.0, w.0, w.1
                    ),
                );
                self.abort_now(c);
            }
            let e = c.threads[tid].clock.tick(tid);
            c.cells[id].reads.push((tid, e));
            c.trace.push(format!("t{tid}: read c{id}"));
        }
        // SAFETY: serialized under the central lock; initialization was
        // just verified (or, in abort mode, is the caller's contract —
        // unwinding drop paths only read slots their own pushes wrote).
        unsafe { (*val.get()).assume_init_read() }
    }

    pub(crate) fn cell_read_spec<V>(
        &self,
        tid: Tid,
        id: usize,
        val: &UnsafeCell<MaybeUninit<V>>,
    ) -> (MaybeUninit<V>, SpecGuard) {
        let mut c = self.lock();
        // SAFETY: a bit copy into a `MaybeUninit` destination is
        // defined even for uninitialized or concurrently-recycled
        // bytes (serialized here anyway); the caller must not
        // materialize `V` unless the guard is confirmed.
        let bits = unsafe { std::ptr::read(val.get()) };
        let guard = if c.abort {
            SpecGuard {
                cell: id,
                tid,
                epoch: 0,
                read_clock: VClock::new(),
                observed: None,
                observed_init: false,
            }
        } else {
            let read_clock = c.threads[tid].clock.clone();
            let epoch = c.threads[tid].clock.tick(tid);
            let (observed, observed_init) = {
                let sh = &c.cells[id];
                (sh.last_write, sh.init)
            };
            c.trace.push(format!("t{tid}: spec-read c{id}"));
            SpecGuard {
                cell: id,
                tid,
                epoch,
                read_clock,
                observed,
                observed_init,
            }
        };
        (bits, guard)
    }

    /// The validating claim of a speculative read succeeded: judge the
    /// read with the clocks it ran under, and only now record it in
    /// shadow state (an unconfirmed speculative read is excused — the
    /// bits were discarded, so whatever it raced with never mattered).
    pub(crate) fn spec_confirm(&self, g: SpecGuard) {
        let mut c = self.lock();
        if c.abort {
            return;
        }
        if !g.observed_init {
            self.fail_locked(
                &mut c,
                FailureKind::UninitRead,
                format!(
                    "t{} confirmed a speculative read of uninitialized slot c{}",
                    g.tid, g.cell
                ),
            );
            self.abort_now(c);
        }
        if let Some(w) = g.observed.filter(|&w| !g.read_clock.covers(w)) {
            self.fail_locked(
                &mut c,
                FailureKind::DataRace,
                format!(
                    "confirmed speculative read of c{} by t{} races with write by t{} (epoch {}:{})",
                    g.cell, g.tid, w.0, w.0, w.1
                ),
            );
            self.abort_now(c);
        }
        if c.cells[g.cell].last_write != g.observed {
            self.fail_locked(
                &mut c,
                FailureKind::DataRace,
                format!(
                    "slot c{} was rewritten inside t{}'s confirmed speculative read window",
                    g.cell, g.tid
                ),
            );
            self.abort_now(c);
        }
        c.cells[g.cell].reads.push((g.tid, g.epoch));
        c.trace.push(format!("t{}: confirm c{}", g.tid, g.cell));
    }

    pub(crate) fn spec_discard(&self, g: SpecGuard) {
        let mut c = self.lock();
        if !c.abort {
            c.trace.push(format!("t{}: discard c{}", g.tid, g.cell));
        }
    }

    // ---- thread lifecycle --------------------------------------------------

    fn register_root(&self) {
        let mut c = self.lock();
        debug_assert!(c.threads.is_empty());
        let mut clock = VClock::new();
        clock.tick(0);
        c.threads.push(ThreadEntry {
            state: TState::Runnable,
            clock,
        });
        c.active = 0;
        c.live = 1;
    }

    pub(crate) fn spawn_virtual(
        self: &Arc<Self>,
        parent: Tid,
        f: Box<dyn FnOnce() + Send + 'static>,
    ) -> Tid {
        let tid = {
            let mut c = self.lock();
            let tid = c.threads.len();
            let mut clock = c.threads[parent].clock.clone();
            clock.tick(tid);
            c.threads.push(ThreadEntry {
                state: TState::Runnable,
                clock,
            });
            c.threads[parent].clock.tick(parent);
            c.live += 1;
            c.trace.push(format!("t{parent}: spawn t{tid}"));
            tid
        };
        let vm = Arc::clone(self);
        let h = std::thread::Builder::new()
            .name(format!("gfd-model-t{tid}"))
            .spawn(move || {
                install_hook();
                SUPPRESS.with(|s| s.set(true));
                CURRENT.with(|cur| *cur.borrow_mut() = Some((Arc::clone(&vm), tid)));
                let res = panic::catch_unwind(AssertUnwindSafe(|| {
                    vm.thread_start(tid);
                    f();
                }));
                if let Err(p) = res {
                    vm.user_panic(p);
                }
                vm.thread_exit(tid);
            })
            .expect("failed to spawn model thread");
        self.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(h);
        tid
    }

    /// Park a freshly spawned thread until a decision hands it the
    /// baton for the first time.
    fn thread_start(&self, tid: Tid) {
        let mut c = self.lock();
        while c.active != tid && !c.abort {
            c = self.wait(c);
        }
        if c.abort {
            self.abort_now(c);
        }
    }

    pub(crate) fn thread_exit(&self, tid: Tid) {
        let mut c = self.lock();
        c.threads[tid].state = TState::Finished;
        c.live -= 1;
        for i in 0..c.threads.len() {
            if c.threads[i].state == TState::Blocked(tid) {
                c.threads[i].state = TState::Runnable;
            }
        }
        c.trace.push(format!("t{tid}: exit"));
        if c.live == 0 || c.abort {
            self.cond.notify_all();
            return;
        }
        self.decide(&mut c, tid);
    }

    pub(crate) fn join_virtual(&self, tid: Tid, target: Tid) {
        let mut c = self.lock();
        if c.abort {
            self.abort_now(c);
        }
        if c.threads[target].state != TState::Finished {
            c.threads[tid].state = TState::Blocked(target);
            c.trace.push(format!("t{tid}: blocked joining t{target}"));
            self.decide(&mut c, tid);
            while c.active != tid && !c.abort {
                c = self.wait(c);
            }
            if c.abort {
                self.abort_now(c);
            }
        }
        let tc = c.threads[target].clock.clone();
        c.threads[tid].clock.join(&tc);
        c.threads[tid].clock.tick(tid);
        c.trace.push(format!("t{tid}: join t{target}"));
    }

    fn user_panic(&self, p: Box<dyn Any + Send>) {
        if p.downcast_ref::<ModelAbort>().is_some() {
            return;
        }
        let msg = if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic with non-string payload".to_string()
        };
        let mut c = self.lock();
        self.fail_locked(&mut c, FailureKind::Assertion, msg);
    }
}

/// The scenario's handle to the VM: spawn virtual threads from it. The
/// model atomics themselves need no handle — they find the VM through
/// the executing thread.
pub struct Env {
    vm: Arc<Vm>,
}

impl Env {
    /// Spawn a virtual thread running `f`. Scheduling is entirely
    /// controlled: the child runs only when the explorer hands it the
    /// baton. Establishes the usual spawn happens-before edge.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) -> VJoin {
        let (_, parent) = current();
        let target = self.vm.spawn_virtual(parent, Box::new(f));
        VJoin {
            vm: Arc::clone(&self.vm),
            target,
        }
    }
}

/// A virtual join handle: [`VJoin::join`] blocks the calling virtual
/// thread until the target finishes, with the usual join
/// happens-before edge.
pub struct VJoin {
    vm: Arc<Vm>,
    target: Tid,
}

impl VJoin {
    /// Wait (virtually) for the spawned thread to finish.
    pub fn join(self) {
        let (_, tid) = current();
        self.vm.join_virtual(tid, self.target);
    }
}

/// The outcome of a single controlled execution.
pub(crate) struct ExecResult {
    #[allow(dead_code)]
    pub(crate) schedule: Schedule,
    pub(crate) failure: Option<Failure>,
    #[allow(dead_code)]
    pub(crate) steps: usize,
}

/// Run the scenario once under `controller`, to completion or abort,
/// and report what happened. Joins every OS thread before returning,
/// so all destructors have run.
pub(crate) fn run_one(
    weaken: Option<Weaken>,
    max_steps: usize,
    controller: Box<dyn Controller>,
    scenario: Arc<dyn Fn(&Env) + Send + Sync>,
) -> ExecResult {
    let vm = Vm::new(weaken, max_steps, controller);
    vm.register_root();
    let v = Arc::clone(&vm);
    let root = std::thread::Builder::new()
        .name("gfd-model-t0".to_string())
        .spawn(move || {
            install_hook();
            SUPPRESS.with(|s| s.set(true));
            CURRENT.with(|cur| *cur.borrow_mut() = Some((Arc::clone(&v), 0)));
            let env = Env { vm: Arc::clone(&v) };
            let res = panic::catch_unwind(AssertUnwindSafe(|| scenario(&env)));
            if let Err(p) = res {
                v.user_panic(p);
            }
            v.thread_exit(0);
        })
        .expect("failed to spawn model root thread");
    {
        let mut c = vm.lock();
        while c.live > 0 {
            c = vm.wait(c);
        }
    }
    let _ = root.join();
    loop {
        let h = vm.handles.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match h {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }
    let c = vm.lock();
    ExecResult {
        schedule: Schedule(c.schedule.clone()),
        failure: c.failure.clone(),
        steps: c.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_roundtrips_through_display() {
        let s = Schedule(vec![0, 1, 0, 2, 1]);
        let printed = s.to_string();
        assert_eq!(printed, "0.1.0.2.1");
        assert_eq!(printed.parse::<Schedule>().unwrap(), s);
        assert_eq!("".parse::<Schedule>().unwrap(), Schedule(Vec::new()));
        assert!("0.x.1".parse::<Schedule>().is_err());
    }

    #[test]
    fn failure_display_carries_the_replay_line() {
        let f = Failure {
            kind: FailureKind::DataRace,
            message: "write races with read".to_string(),
            schedule: Schedule(vec![0, 1, 1]),
            trace: "t0: store a0\nt1: read c1".to_string(),
        };
        let text = f.to_string();
        assert!(text.contains("replay schedule: 0.1.1"));
        assert!(text.contains("DataRace"));
        assert!(text.contains("  t1: read c1"));
    }
}
