//! The checked-in counterexample corpus (DESIGN.md §14.4): schedules
//! captured from bounded-exhaustive runs against deliberately weakened
//! orderings, replayed deterministically. Each entry pins the failing
//! interleaving itself — if the deque, the quiescence protocol, the
//! shim, or the detector drifts so that the schedule diverges or the
//! verdict changes, these fail long before a fresh exploration would.
//!
//! To regenerate after an intentional protocol change: run the
//! corresponding `explore(Config::exhaustive(2).weaken(..), ..)` and
//! paste `failure.schedule` / `failure.kind` from its report.

use gfd_model::{explore, scenarios, Config, Failure, FailureKind, Schedule};
use gfd_runtime::atomics::Weaken;

fn replay(
    schedule: &str,
    weaken: Option<Weaken>,
    scenario: fn(&gfd_model::Env),
) -> Option<Failure> {
    let schedule: Schedule = schedule.parse().expect("corpus schedule must parse");
    let mut config = Config::replay(schedule);
    if let Some(site) = weaken {
        config = config.weaken(site);
    }
    explore(config, scenario).failure
}

/// Relaxed (instead of release) publication of `bottom` in `push`: the
/// thief's confirmed read of the pushed slot is not covered by any
/// release edge. Captured from `Config::exhaustive(2)`.
#[test]
fn corpus_push_publish_race() {
    let failure = replay(
        "0.0.0.0.0.0.0.0.0.0.0.1.1.1.1.1.1",
        Some(Weaken::DequePushPublish),
        scenarios::deque_last_element,
    )
    .expect("corpus schedule must still fail");
    assert_eq!(failure.kind, FailureKind::DataRace, "{failure}");
}

/// Relaxed (instead of release) publication of the grown buffer
/// pointer: the thief acquires the new buffer without the copy-writes
/// ordered before its read. Captured from `Config::exhaustive(2)`.
#[test]
fn corpus_buffer_publish_race() {
    let failure = replay(
        "0.0.0.0.0.0.0.0.0.0.0.0.1.1.1.1.1.1",
        Some(Weaken::DequeBufPublish),
        scenarios::deque_grow_under_steal,
    )
    .expect("corpus schedule must still fail");
    assert_eq!(failure.kind, FailureKind::DataRace, "{failure}");
}

/// Publish-before-count split order: a sibling drains the child unit
/// and sees the counter hit zero while the seed is still in flight,
/// taking the quiescent exit with work outstanding. Captured from
/// `Config::exhaustive(2)`.
#[test]
fn corpus_split_order_early_exit() {
    let failure = replay(
        "1.1.1.1.1.1.1.2.2.2.2.2.2.2.2.2.2.2",
        Some(Weaken::QuiesceSplitPublish),
        scenarios::quiesce_split_protocol,
    )
    .expect("corpus schedule must still fail");
    assert_eq!(failure.kind, FailureKind::Assertion, "{failure}");
    assert!(failure.message.contains("early exit"), "{failure}");
}

/// Verdict read gated only by a relaxed stop-flag poll: no acquire
/// edge orders it after the canceller's write. This one needs no
/// weaken knob — the scenario itself is the bug. Captured from
/// `Config::exhaustive(2)`.
#[test]
fn corpus_relaxed_poll_verdict_race() {
    let failure = replay("1.1.1.1.2.2.1", None, scenarios::stop_flag_poll_read)
        .expect("corpus schedule must still fail");
    assert_eq!(failure.kind, FailureKind::DataRace, "{failure}");
}

/// Passing entries: the default deterministic schedule (empty replay
/// prefix, run-to-completion) must stay clean on the correct
/// orderings. Guards against detector false positives creeping into
/// the common path.
#[test]
fn corpus_default_schedules_stay_clean() {
    for scenario in [
        scenarios::deque_last_element,
        scenarios::deque_grow_under_steal,
        scenarios::quiesce_split_protocol,
        scenarios::stop_flag_handshake,
    ] {
        if let Some(failure) = replay("", None, scenario) {
            panic!("default schedule must be clean: {failure}");
        }
    }
}
