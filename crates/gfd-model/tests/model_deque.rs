//! Model-checking the Chase–Lev deque (DESIGN.md §14.5): the
//! last-element race and grow-under-steal explore cleanly within the
//! preemption bound, and each deliberately weakened publish ordering
//! is caught with a deterministic, replayable counterexample.

use gfd_model::{explore, scenarios, Config, FailureKind, Schedule};
use gfd_runtime::atomics::Weaken;

/// Exhaustive exploration budget for the deep (`--ignored`) variants:
/// override with `GFD_MODEL_BOUND=<n>` to push the preemption bound.
fn deep_bound() -> usize {
    std::env::var("GFD_MODEL_BOUND")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

#[test]
fn last_element_race_explores_clean() {
    let report = explore(Config::exhaustive(2), scenarios::deque_last_element);
    assert!(report.complete, "exploration did not drain the space");
    assert!(
        report.explored > 100,
        "suspiciously small space: {} schedules",
        report.explored
    );
    report.assert_clean();
}

#[test]
fn grow_under_steal_explores_clean() {
    let report = explore(Config::exhaustive(2), scenarios::deque_grow_under_steal);
    assert!(report.complete, "exploration did not drain the space");
    assert!(
        report.explored > 100,
        "suspiciously small space: {} schedules",
        report.explored
    );
    report.assert_clean();
}

#[test]
fn weakened_push_publish_is_caught_and_replays() {
    let report = explore(
        Config::exhaustive(2).weaken(Weaken::DequePushPublish),
        scenarios::deque_last_element,
    );
    let failure = report
        .failure
        .expect("relaxed push publish must be caught as a counterexample");
    assert_eq!(failure.kind, FailureKind::DataRace, "{failure}");
    // The counterexample must print as a deterministic replay trace…
    let text = failure.to_string();
    assert!(text.contains("replay schedule:"), "{text}");
    assert!(!failure.schedule.0.is_empty());
    // …and replaying that schedule must reproduce the same failure.
    let replay: Schedule = failure.schedule.to_string().parse().unwrap();
    let re = explore(
        Config::replay(replay).weaken(Weaken::DequePushPublish),
        scenarios::deque_last_element,
    );
    let re_failure = re.failure.expect("replay must reproduce the failure");
    assert_eq!(re_failure.kind, FailureKind::DataRace);
    assert_eq!(re_failure.schedule, failure.schedule);
}

#[test]
fn weakened_buffer_publish_is_caught_and_replays() {
    let report = explore(
        Config::exhaustive(2).weaken(Weaken::DequeBufPublish),
        scenarios::deque_grow_under_steal,
    );
    let failure = report
        .failure
        .expect("relaxed buffer publish must be caught as a counterexample");
    assert_eq!(failure.kind, FailureKind::DataRace, "{failure}");
    let re = explore(
        Config::replay(failure.schedule.clone()).weaken(Weaken::DequeBufPublish),
        scenarios::deque_grow_under_steal,
    );
    assert_eq!(
        re.failure.expect("replay must reproduce the failure").kind,
        FailureKind::DataRace
    );
}

#[test]
fn pct_finds_the_weakened_push_publish() {
    let report = explore(
        Config::pct(7, 200).weaken(Weaken::DequePushPublish),
        scenarios::deque_last_element,
    );
    let failure = report
        .failure
        .expect("randomized exploration should hit the race within 200 iterations");
    assert_eq!(failure.kind, FailureKind::DataRace);
}

// Deep variants for the budget-capped CI model-check job: a wider
// preemption bound over the same scenarios.
#[test]
#[ignore = "deep exploration; run via `cargo test -p gfd-model -- --ignored`"]
fn deep_last_element_race_explores_clean() {
    let report = explore(
        Config::exhaustive(deep_bound()),
        scenarios::deque_last_element,
    );
    assert!(report.complete);
    report.assert_clean();
}

#[test]
#[ignore = "deep exploration; run via `cargo test -p gfd-model -- --ignored`"]
fn deep_grow_under_steal_explores_clean() {
    let report = explore(
        Config::exhaustive(deep_bound()),
        scenarios::deque_grow_under_steal,
    );
    assert!(report.complete);
    report.assert_clean();
}
