//! Model-checking the scheduler's quiescence and cancellation
//! protocols (DESIGN.md §14.5): the count-first split order explores
//! clean, the flipped order is caught as an early-exit assertion, and
//! the stop-flag handshake demonstrates both the sound (join-edge) and
//! unsound (relaxed-poll read) verdict paths.

use gfd_model::{explore, scenarios, Config, FailureKind, MSlot, ModelAtomics};
use gfd_runtime::atomics::{Atomics, DataSlot, Weaken};

#[test]
fn quiesce_split_protocol_explores_clean() {
    let report = explore(Config::exhaustive(2), scenarios::quiesce_split_protocol);
    assert!(report.complete, "exploration did not drain the space");
    assert!(
        report.explored > 100,
        "suspiciously small space: {} schedules",
        report.explored
    );
    report.assert_clean();
}

#[test]
fn flipped_split_order_exits_early_and_replays() {
    let report = explore(
        Config::exhaustive(2).weaken(Weaken::QuiesceSplitPublish),
        scenarios::quiesce_split_protocol,
    );
    let failure = report
        .failure
        .expect("publish-before-count split order must be caught");
    assert_eq!(failure.kind, FailureKind::Assertion, "{failure}");
    assert!(failure.message.contains("early exit"), "{failure}");
    let re = explore(
        Config::replay(failure.schedule.clone()).weaken(Weaken::QuiesceSplitPublish),
        scenarios::quiesce_split_protocol,
    );
    let re_failure = re.failure.expect("replay must reproduce the failure");
    assert_eq!(re_failure.kind, FailureKind::Assertion);
    assert_eq!(re_failure.schedule, failure.schedule);
}

#[test]
fn stop_flag_handshake_explores_clean() {
    let report = explore(Config::exhaustive(2), scenarios::stop_flag_handshake);
    assert!(report.complete);
    report.assert_clean();
}

#[test]
fn verdict_read_through_relaxed_poll_is_a_race() {
    let report = explore(Config::exhaustive(2), scenarios::stop_flag_poll_read);
    let failure = report
        .failure
        .expect("reading the verdict off a relaxed poll must race");
    assert_eq!(failure.kind, FailureKind::DataRace, "{failure}");
}

#[test]
fn confirmed_speculative_read_of_uninitialized_slot_is_flagged() {
    // Drive the detector directly: a speculative read of a vacant slot
    // whose claim "succeeds" must be flagged at confirm time — the
    // deque relies on this to catch reads of never-written indices.
    let report = explore(Config::exhaustive(0), |_env| {
        let slot = <ModelAtomics as Atomics>::Slot::<usize>::vacant();
        // SAFETY: bits are never materialized — the guard goes to
        // confirm, which (correctly) fails the execution first.
        let (_bits, guard) = unsafe { slot.read_speculative() };
        MSlot::<usize>::confirm(guard);
    });
    let failure = report.failure.expect("uninit confirm must be flagged");
    assert_eq!(failure.kind, FailureKind::UninitRead);
}

#[test]
#[ignore = "deep exploration; run via `cargo test -p gfd-model -- --ignored`"]
fn deep_quiesce_split_protocol_explores_clean() {
    let bound = std::env::var("GFD_MODEL_BOUND")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let report = explore(Config::exhaustive(bound), scenarios::quiesce_split_protocol);
    assert!(report.complete);
    report.assert_clean();
}
