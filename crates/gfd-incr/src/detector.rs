//! The incremental detection engine: a cached violation set kept exact
//! under a stream of delta batches.

use crate::frontier::bounded_frontier;
use gfd_core::DepSet;
use gfd_detect::{
    detect_units, initial_units, units_for_pivots, DetectConfig, RulePlans, RunMetrics,
    ViolationRecord,
};
use gfd_graph::{DeltaBatch, DeltaIndex, Graph, LabelIndex, MatchIndex, NodeId};
use gfd_runtime::{failpoint, EventKind, TraceBuf, CONTROL_WORKER};
use rustc_hash::FxHashSet;

/// Configuration of an incremental detection session.
#[derive(Clone, Debug)]
pub struct IncrConfig {
    /// Scheduler knobs for every detection pass (initial and per batch).
    /// `max_violations` is ignored: the cache must hold the *complete*
    /// violation set, or carried-over results would be wrong.
    pub detect: DetectConfig,
    /// Compact (re-freeze base + delta into a fresh CSR) once the
    /// overlay reaches this fraction of the base edge count. `0.0` means
    /// "compact after every batch that left an overlay"; must be finite
    /// and non-negative (see [`IncrConfig::validate`]).
    pub compact_fraction: f64,
}

impl Default for IncrConfig {
    fn default() -> Self {
        IncrConfig {
            detect: DetectConfig::default(),
            compact_fraction: 0.25,
        }
    }
}

impl IncrConfig {
    /// A config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        IncrConfig {
            detect: DetectConfig::with_workers(workers),
            ..Default::default()
        }
    }

    /// Check the configuration for nonsense values.
    ///
    /// `compact_fraction` must be a non-negative finite number: NaN would
    /// make the compaction comparison silently always-false (the overlay
    /// would grow without bound), and a negative threshold is a typo for
    /// `0.0`. Callers that take the value from user input (the CLI's
    /// `--compact-frac`) should surface the error; library construction
    /// panics on it ([`IncrementalDetector::new`]).
    pub fn validate(&self) -> Result<(), String> {
        let f = self.compact_fraction;
        if f.is_nan() || f.is_infinite() || f < 0.0 {
            return Err(format!(
                "compact_fraction must be a non-negative finite number, got {f}"
            ));
        }
        Ok(())
    }
}

/// What one [`IncrementalDetector::apply`] call did.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Nodes the batch actually touched (no-op updates excluded).
    pub dirty_nodes: usize,
    /// Pivot candidates re-run across all rules (the dirty frontier).
    pub rerun_pivots: usize,
    /// Cached violations evicted because their pivot was re-run.
    pub evicted: usize,
    /// Violations found by the re-run (including re-confirmed ones).
    pub found: usize,
    /// Rules re-run in full because their pattern is disconnected (no
    /// locality bound exists for those).
    pub full_rerun_rules: usize,
    /// Did this batch trigger an overlay compaction (re-freeze)?
    pub compacted: bool,
    /// Total violations live after the merge.
    pub violations_total: usize,
    /// Scheduler metrics of the re-run detection pass.
    pub metrics: RunMetrics,
}

/// Per-rule facts the frontier computation needs, derived from the
/// current plans (pivots can move at compaction).
struct RuleMeta {
    /// Pattern radius at the pivot (locality-bounded rules only).
    radii: Vec<u32>,
    /// Does the rule have a locality bound? Disconnected patterns do not
    /// (a far component can match anywhere), and neither do generating
    /// consequences (the realization extension can bind a fresh variable
    /// to *any* node, so an update far from the pivot can realize — or
    /// un-realize — the target). Both get full per-rule re-runs.
    local: Vec<bool>,
    /// Largest radius over locality-bounded rules — the BFS bound.
    max_radius: u32,
}

impl RuleMeta {
    fn build(sigma: &DepSet, plans: &RulePlans) -> Self {
        let mut radii = Vec::with_capacity(sigma.len());
        let mut local = Vec::with_capacity(sigma.len());
        let mut max_radius = 0;
        for (id, dep) in sigma.iter() {
            let loc = dep.pattern.is_connected() && !dep.is_generating();
            let r = dep.pattern.radius_at(plans.pivots[id.index()]);
            if loc {
                max_radius = max_radius.max(r);
            }
            radii.push(r);
            local.push(loc);
        }
        RuleMeta {
            radii,
            local,
            max_radius,
        }
    }
}

/// A detection result kept live under streaming updates.
///
/// Owns the graph: every mutation must flow through
/// [`IncrementalDetector::apply`] so the delta overlay, the candidate
/// index and the violation cache stay in lockstep (a bypassed mutation
/// trips the overlay's staleness assertion on the next pass).
pub struct IncrementalDetector {
    graph: Graph,
    sigma: DepSet,
    index: DeltaIndex,
    plans: RulePlans,
    meta: RuleMeta,
    violations: Vec<ViolationRecord>,
    config: IncrConfig,
    /// Batches applied so far — the `id` of every [`EventKind::Batch`]
    /// span this session records.
    batches_applied: u64,
}

impl IncrementalDetector {
    /// Seed the session: one full detection pass over `graph` populates
    /// the cache; subsequent [`apply`](IncrementalDetector::apply) calls
    /// keep it exact incrementally.
    ///
    /// # Panics
    ///
    /// On an invalid configuration (see [`IncrConfig::validate`]).
    pub fn new(graph: Graph, sigma: impl Into<DepSet>, config: IncrConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid IncrConfig: {msg}");
        }
        let sigma: DepSet = sigma.into();
        let li = LabelIndex::build(&graph);
        let plans = RulePlans::build(&sigma, &li);
        let meta = RuleMeta::build(&sigma, &plans);
        let units = initial_units(&sigma, &li, &plans, config.detect.batch_size);
        let report = detect_units(
            &graph,
            &li,
            &sigma,
            &plans,
            units,
            &Self::find_all(&config.detect),
        );
        IncrementalDetector {
            graph,
            sigma,
            index: li.into_delta(),
            plans,
            meta,
            violations: report.violations,
            config,
            batches_applied: 0,
        }
    }

    /// Rebuild a session from checkpointed parts — the current graph and
    /// the violation cache — *without* the seeding detection pass.
    ///
    /// The candidate index is re-frozen from the graph (a resumed session
    /// starts with an empty overlay: resuming is also a compaction), so
    /// the only trust placed in the caller is that `violations` is the
    /// exact violation set of `graph` under `sigma` — which is what a
    /// checkpoint written by [`violations`](IncrementalDetector::violations)
    /// after an `apply` guarantees.
    ///
    /// # Panics
    ///
    /// On an invalid configuration (see [`IncrConfig::validate`]).
    pub fn from_parts(
        graph: Graph,
        sigma: impl Into<DepSet>,
        mut violations: Vec<ViolationRecord>,
        config: IncrConfig,
    ) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid IncrConfig: {msg}");
        }
        let sigma: DepSet = sigma.into();
        let li = LabelIndex::build(&graph);
        let plans = RulePlans::build(&sigma, &li);
        let meta = RuleMeta::build(&sigma, &plans);
        violations.sort_by(|a, b| (a.gfd, &a.m).cmp(&(b.gfd, &b.m)));
        IncrementalDetector {
            graph,
            sigma,
            index: li.into_delta(),
            plans,
            meta,
            violations,
            config,
            batches_applied: 0,
        }
    }

    /// The detect config with the violation budget disabled (the cache
    /// must be complete — see [`IncrConfig::detect`]).
    fn find_all(base: &DetectConfig) -> DetectConfig {
        DetectConfig {
            max_violations: usize::MAX,
            ..base.clone()
        }
    }

    /// The current graph (post all applied batches).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The rule set being enforced.
    pub fn sigma(&self) -> &DepSet {
        &self.sigma
    }

    /// The live violation set, sorted by `(rule, match)` — identical to
    /// what a from-scratch [`gfd_detect::detect`] on the current graph
    /// reports.
    pub fn violations(&self) -> &[ViolationRecord] {
        &self.violations
    }

    /// Is the current graph clean?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Overlay size relative to the frozen base (the compaction input).
    pub fn delta_fraction(&self) -> f64 {
        self.index.delta_fraction()
    }

    /// Apply one delta batch and restore exactness by re-reasoning only
    /// the dirty frontier. Returns what was done; the updated violation
    /// set is at [`violations`](IncrementalDetector::violations).
    pub fn apply(&mut self, batch: &DeltaBatch) -> BatchReport {
        // Control-track buffer for this batch's phase spans (`Batch`,
        // `FrontierBfs`, `Compact` — DESIGN.md §13), absorbed into the
        // report's trace before returning.
        let mut ctl = TraceBuf::new(self.config.detect.trace.control(), CONTROL_WORKER);
        let batch_span = ctl.start();
        self.batches_applied += 1;
        let bid = self.batches_applied as u32;
        let batch_ops = batch.len() as u64;

        let applied = self.index.apply(batch, &mut self.graph);
        let mut report = BatchReport {
            dirty_nodes: applied.dirty.len(),
            ..Default::default()
        };
        if applied.dirty.is_empty() {
            report.violations_total = self.violations.len();
            ctl.span(EventKind::Batch, bid, batch_span, batch_ops, 0);
            report.metrics.trace.absorb_buf(ctl);
            return report;
        }

        // Threshold-triggered compaction: fold the overlay into a fresh
        // freeze. Correctness is unaffected (the view answers the same
        // probes either way); this just restores probe locality. The
        // comparison is inclusive so a threshold of 0.0 means "compact
        // after every batch that left an overlay" — an empty overlay
        // (e.g. an attribute-only batch) has nothing to fold and skips
        // the re-freeze.
        // The `incr/compact` failpoint models a compaction that could
        // not run (e.g. an allocation failure caught upstream): deferring
        // the re-freeze is always safe — the overlay view answers the
        // same probes — so the fault degrades performance, never answers.
        if self.index.delta_fraction() >= self.config.compact_fraction
            && self.index.delta().delta_size() > 0
            && !failpoint::triggered("incr/compact")
        {
            let compact_span = ctl.start();
            let overlay_ops = self.index.delta().delta_size() as u64;
            self.index = LabelIndex::build(&self.graph).into_delta();
            report.compacted = true;
            ctl.span(EventKind::Compact, bid, compact_span, overlay_ops, 0);
        }

        // Re-plan against the live statistics: between compactions the
        // overlay reports delta-adjusted label/pair frequencies, so
        // pivots, variable orders and the radii derived from them track
        // the current graph rather than the frozen base (the stale-stats
        // bug this replaced planned a stream's whole lifetime on the
        // seed freeze's frequencies).
        self.plans = RulePlans::build(&self.sigma, &self.index);
        self.meta = RuleMeta::build(&self.sigma, &self.plans);

        // Dirty frontier: every pivot within the largest connected-rule
        // radius of a touched node (see `frontier` for the soundness
        // argument), filtered per rule by radius and pivot label.
        let bfs_span = ctl.start();
        let frontier = bounded_frontier(&self.graph, &applied.dirty, self.meta.max_radius);
        ctl.span(
            EventKind::FrontierBfs,
            bid,
            bfs_span,
            applied.dirty.len() as u64,
            frontier.len() as u64,
        );
        let mut rule_pivots: Vec<(gfd_graph::GfdId, Vec<NodeId>)> = Vec::new();
        for (id, dep) in self.sigma.iter() {
            let pivot_label = dep.pattern.label(self.plans.pivots[id.index()]);
            let pivots: Vec<NodeId> = if self.meta.local[id.index()] {
                frontier
                    .iter()
                    .filter(|&&(n, d)| {
                        d <= self.meta.radii[id.index()]
                            && pivot_label.pattern_matches(self.graph.label(n))
                    })
                    .map(|&(n, _)| n)
                    .collect()
            } else {
                // No locality bound: a disconnected pattern's non-pivot
                // component can match anywhere, and a generating
                // consequence's realization extension can bind fresh
                // variables anywhere — re-run every pivot of this rule.
                report.full_rerun_rules += 1;
                self.index.candidates(pivot_label).to_vec()
            };
            if !pivots.is_empty() {
                report.rerun_pivots += pivots.len();
                rule_pivots.push((id, pivots));
            }
        }

        // Evict every cached violation whose pivot is being re-run: the
        // re-run re-finds the ones that still hold, so the merge below
        // cannot duplicate or resurrect anything.
        let rerun_sets: Vec<Option<FxHashSet<NodeId>>> = {
            let mut sets: Vec<Option<FxHashSet<NodeId>>> = Vec::new();
            sets.resize_with(self.sigma.len(), || None);
            for (id, pivots) in &rule_pivots {
                sets[id.index()] = Some(pivots.iter().copied().collect());
            }
            sets
        };
        let before = self.violations.len();
        let pivots = &self.plans.pivots;
        self.violations.retain(|v| {
            rerun_sets[v.gfd.index()]
                .as_ref()
                .is_none_or(|set| !set.contains(&v.m[pivots[v.gfd.index()].index()]))
        });
        report.evicted = before - self.violations.len();

        // Re-reason the frontier on the shared scheduler, over the
        // overlay view — no re-freeze happened unless we compacted.
        let units = units_for_pivots(rule_pivots, self.config.detect.batch_size);
        let fresh = detect_units(
            &self.graph,
            &self.index,
            &self.sigma,
            &self.plans,
            units,
            &Self::find_all(&self.config.detect),
        );
        report.found = fresh.violations.len();
        report.metrics = fresh.metrics;
        self.violations.extend(fresh.violations);
        self.violations
            .sort_by(|a, b| (a.gfd, &a.m).cmp(&(b.gfd, &b.m)));
        report.violations_total = self.violations.len();
        ctl.span(
            EventKind::Batch,
            bid,
            batch_span,
            batch_ops,
            report.rerun_pivots as u64,
        );
        report.metrics.trace.absorb_buf(ctl);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::{Consequence, Dependency, GenerateConsequence, Gfd, GfdSet, Literal};
    use gfd_detect::detect_deps;
    use gfd_graph::{Pattern, Value, Vocab};

    /// The detector's cached set must equal a from-scratch detect on the
    /// same graph, as (rule, match) key sets.
    fn assert_matches_full_detect(incr: &IncrementalDetector) {
        let full = detect_deps(incr.graph(), incr.sigma(), &DetectConfig::with_workers(2));
        let key = |v: &ViolationRecord| (v.gfd, v.m.clone());
        let got: Vec<_> = incr.violations().iter().map(key).collect();
        let want: Vec<_> = full.violations.iter().map(key).collect();
        assert_eq!(got, want);
    }

    /// Chain graph t0 → t1 → … with alternating attribute values and a
    /// rule requiring equal values across each edge (every edge between
    /// a mismatched pair violates).
    fn chain_setup(n: usize) -> (Graph, GfdSet, Vocab) {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let e = vocab.label("e");
        let a = vocab.attr("a");
        let mut g = Graph::new();
        let mut prev = None;
        for i in 0..n {
            let node = g.add_node(t);
            g.set_attr(node, a, Value::int((i % 2) as i64));
            if let Some(p) = prev {
                g.add_edge(p, e, node);
            }
            prev = Some(node);
        }
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        p.add_edge(x, e, y);
        let gfd = Gfd::new(
            "eq-across-edge",
            p,
            vec![],
            vec![Literal::eq_attr(x, a, y, a)],
        );
        (g, GfdSet::from_vec(vec![gfd]), vocab)
    }

    #[test]
    fn seeding_matches_full_detect() {
        let (g, sigma, _) = chain_setup(40);
        let incr = IncrementalDetector::new(g, sigma, IncrConfig::with_workers(4));
        assert_eq!(incr.violations().len(), 39);
        assert_matches_full_detect(&incr);
    }

    #[test]
    fn attr_write_fixes_and_breaks_violations() {
        let (g, sigma, mut vocab) = chain_setup(20);
        let a = vocab.attr("a");
        let mut incr = IncrementalDetector::new(g, sigma, IncrConfig::with_workers(2));

        // Equalize one pair: two incident violations disappear (edges
        // 4→5 and 5→6 both become clean... only 5's incident ones).
        let mut batch = DeltaBatch::new();
        batch.set_attr(NodeId::new(5), a, Value::int(1));
        let rep = incr.apply(&batch);
        assert_eq!(rep.dirty_nodes, 1);
        assert!(rep.evicted >= 1);
        assert_matches_full_detect(&incr);

        // Break a previously-clean pair far away.
        let mut batch = DeltaBatch::new();
        batch.set_attr(NodeId::new(10), a, Value::int(7));
        incr.apply(&batch);
        assert_matches_full_detect(&incr);
    }

    #[test]
    fn edge_insertions_and_new_nodes_create_violations() {
        let (g, sigma, mut vocab) = chain_setup(12);
        let t = vocab.label("t");
        let e = vocab.label("e");
        let a = vocab.attr("a");
        let mut incr = IncrementalDetector::new(g, sigma, IncrConfig::with_workers(2));
        let before = incr.violations().len();

        // A new node with a clashing value, wired into the chain.
        let mut batch = DeltaBatch::new();
        batch.add_node(t); // n12
        batch.set_attr(NodeId::new(12), a, Value::int(9));
        batch.add_edge(NodeId::new(0), e, NodeId::new(12));
        let rep = incr.apply(&batch);
        assert_eq!(rep.violations_total, before + 1);
        assert_matches_full_detect(&incr);
    }

    #[test]
    fn edge_deletions_evict_their_violations() {
        let (g, sigma, mut vocab) = chain_setup(16);
        let e = vocab.label("e");
        let mut incr = IncrementalDetector::new(g, sigma, IncrConfig::with_workers(2));
        let before = incr.violations().len();

        let mut batch = DeltaBatch::new();
        batch.del_edge(NodeId::new(3), e, NodeId::new(4));
        batch.del_edge(NodeId::new(7), e, NodeId::new(8));
        let rep = incr.apply(&batch);
        assert_eq!(rep.violations_total, before - 2);
        assert_matches_full_detect(&incr);
    }

    #[test]
    fn noop_batches_change_nothing() {
        let (g, sigma, mut vocab) = chain_setup(8);
        let e = vocab.label("e");
        let mut incr = IncrementalDetector::new(g, sigma, IncrConfig::with_workers(2));
        let before = incr.violations().len();

        let mut batch = DeltaBatch::new();
        batch.add_edge(NodeId::new(0), e, NodeId::new(1)); // duplicate
        batch.del_edge(NodeId::new(0), e, NodeId::new(5)); // absent
        let rep = incr.apply(&batch);
        assert_eq!(rep.dirty_nodes, 0);
        assert_eq!(rep.rerun_pivots, 0);
        assert_eq!(rep.violations_total, before);
        assert_matches_full_detect(&incr);
    }

    #[test]
    fn compaction_triggers_and_preserves_exactness() {
        let (g, sigma, mut vocab) = chain_setup(10);
        let t = vocab.label("t");
        let e = vocab.label("e");
        let a = vocab.attr("a");
        let mut incr = IncrementalDetector::new(
            g,
            sigma,
            IncrConfig {
                compact_fraction: 0.1,
                ..IncrConfig::with_workers(2)
            },
        );
        // Grow the overlay well past 10% of the 9-edge base.
        let mut compacted = false;
        for i in 0..6 {
            let mut batch = DeltaBatch::new();
            batch.add_node(t);
            let fresh = NodeId::new(10 + i);
            batch.set_attr(fresh, a, Value::int(5));
            batch.add_edge(NodeId::new(i), e, fresh);
            let rep = incr.apply(&batch);
            compacted |= rep.compacted;
            assert_matches_full_detect(&incr);
        }
        assert!(compacted, "overlay never compacted");
        assert!(incr.delta_fraction() < 0.2, "compaction did not reset");
    }

    #[test]
    fn zero_compact_fraction_compacts_after_every_batch() {
        let (g, sigma, mut vocab) = chain_setup(10);
        let t = vocab.label("t");
        let e = vocab.label("e");
        let a = vocab.attr("a");
        let mut incr = IncrementalDetector::new(
            g,
            sigma,
            IncrConfig {
                compact_fraction: 0.0,
                ..IncrConfig::with_workers(2)
            },
        );
        // Topology batches: each must fold its overlay away immediately.
        for i in 0..4 {
            let mut batch = DeltaBatch::new();
            batch.add_node(t);
            batch.set_attr(NodeId::new(10 + i), a, Value::int(3));
            batch.add_edge(NodeId::new(i), e, NodeId::new(10 + i));
            let rep = incr.apply(&batch);
            assert!(rep.compacted, "batch {i} did not compact at threshold 0.0");
            assert_eq!(
                incr.index.delta().delta_size(),
                0,
                "overlay not empty after apply {i}"
            );
            assert_eq!(incr.delta_fraction(), 0.0);
            assert_matches_full_detect(&incr);
        }
        // An attribute-only batch leaves no overlay: nothing to fold, no
        // wasted re-freeze.
        let mut batch = DeltaBatch::new();
        batch.set_attr(NodeId::new(0), a, Value::int(9));
        let rep = incr.apply(&batch);
        assert!(!rep.compacted);
        assert_eq!(incr.index.delta().delta_size(), 0);
        assert_matches_full_detect(&incr);
    }

    #[test]
    #[should_panic(expected = "invalid IncrConfig")]
    fn nan_compact_fraction_is_rejected() {
        let (g, sigma, _) = chain_setup(4);
        let _ = IncrementalDetector::new(
            g,
            sigma,
            IncrConfig {
                compact_fraction: f64::NAN,
                ..IncrConfig::with_workers(1)
            },
        );
    }

    #[test]
    fn negative_and_nan_fractions_fail_validation() {
        for bad in [-0.1, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let cfg = IncrConfig {
                compact_fraction: bad,
                ..IncrConfig::default()
            };
            assert!(cfg.validate().is_err(), "{bad} accepted");
        }
        for ok in [0.0, 0.25, 7.5] {
            let cfg = IncrConfig {
                compact_fraction: ok,
                ..IncrConfig::default()
            };
            assert!(cfg.validate().is_ok(), "{ok} rejected");
        }
    }

    /// The stale-statistics regression: a delta batch inverts which label
    /// is rare, and the next detection pass must *plan* against the
    /// overlay-adjusted frequencies — the pivot moves to the newly rare
    /// label even though no compaction has re-frozen the base.
    #[test]
    fn plans_follow_delta_adjusted_statistics() {
        let mut vocab = Vocab::new();
        let a_lbl = vocab.label("a");
        let b_lbl = vocab.label("b");
        let e = vocab.label("e");
        let val = vocab.attr("v");
        let mut g = Graph::new();
        let ra = g.add_node(a_lbl);
        for _ in 0..10 {
            let nb = g.add_node(b_lbl);
            g.add_edge(ra, e, nb);
        }
        let mut p = Pattern::new();
        let x = p.add_node(a_lbl, "x");
        let y = p.add_node(b_lbl, "y");
        p.add_edge(x, e, y);
        let gfd = Gfd::new("r", p, vec![], vec![Literal::eq_attr(x, val, y, val)]);
        let sigma = GfdSet::from_vec(vec![gfd]);

        let mut incr = IncrementalDetector::new(
            g,
            sigma,
            IncrConfig {
                // High threshold: no compaction, the overlay must carry
                // the statistics on its own.
                compact_fraction: 100.0,
                ..IncrConfig::with_workers(2)
            },
        );
        assert_eq!(incr.plans.pivots[0], x, "seed pivot should be the rare `a`");

        // Flood the graph with `a` nodes: `b` becomes the rare label.
        let mut batch = DeltaBatch::new();
        for i in 0..30 {
            batch.add_node(a_lbl);
            batch.add_edge(NodeId::new(11 + i), e, NodeId::new(1));
        }
        let rep = incr.apply(&batch);
        assert!(!rep.compacted, "test needs the overlay path");
        assert_eq!(
            incr.plans.pivots[0], y,
            "pivot did not move to the delta-rare label"
        );
        assert_eq!(incr.plans.plans[0].var_at(0), y);
        assert_matches_full_detect(&incr);
    }

    #[test]
    fn disconnected_patterns_fall_back_to_full_rerun() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let u = vocab.label("u");
        let a = vocab.attr("a");
        // Disconnected pattern: one t-var and one u-var, no edge. The
        // consequence ties their attributes together across the whole
        // graph — no locality.
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(u, "y");
        let gfd = Gfd::new("cross", p, vec![], vec![Literal::eq_attr(x, a, y, a)]);
        let sigma = GfdSet::from_vec(vec![gfd]);

        let mut g = Graph::new();
        let n0 = g.add_node(t);
        let n1 = g.add_node(u);
        g.set_attr(n0, a, Value::int(1));
        g.set_attr(n1, a, Value::int(1));
        let mut incr = IncrementalDetector::new(g, sigma, IncrConfig::with_workers(2));
        assert!(incr.is_clean());

        // An attr write on the u-node flips every (t, u) pair.
        let mut batch = DeltaBatch::new();
        batch.set_attr(n1, a, Value::int(2));
        let rep = incr.apply(&batch);
        assert_eq!(rep.full_rerun_rules, 1);
        assert_eq!(incr.violations().len(), 1);
        assert_matches_full_detect(&incr);
    }

    /// Generating rules have no locality bound: realization extensions
    /// can bind fresh variables anywhere, so the engine must fall back
    /// to full per-rule re-runs — and stay exact — for GGDs.
    #[test]
    fn generating_rules_full_rerun_and_stay_exact() {
        let mut vocab = Vocab::new();
        let person = vocab.label("person");
        let dept = vocab.label("dept");
        let member = vocab.label("memberOf");
        // GGD: every person must be a member of some dept node.
        let mut p = Pattern::new();
        let x = p.add_node(person, "x");
        let mut gen = GenerateConsequence::over(&p);
        let d = gen.add_fresh(dept, "d");
        gen.add_edge(x, member, d);
        let ggd = Dependency::new("has_dept", p, vec![], Consequence::Generate(gen));
        let sigma = DepSet::from_vec(vec![ggd]);

        let mut g = Graph::new();
        let p0 = g.add_node(person);
        let _p1 = g.add_node(person);
        let d0 = g.add_node(dept);
        g.add_edge(p0, member, d0);

        let mut incr = IncrementalDetector::new(g, sigma, IncrConfig::with_workers(2));
        // p1 has no dept: one violation.
        assert_eq!(incr.violations().len(), 1);
        assert_matches_full_detect(&incr);

        // Wiring p1 to the existing dept realizes the target.
        let mut batch = DeltaBatch::new();
        batch.add_edge(NodeId::new(1), member, NodeId::new(2));
        let rep = incr.apply(&batch);
        assert_eq!(rep.full_rerun_rules, 1, "GGDs must fully re-run");
        assert!(incr.is_clean());
        assert_matches_full_detect(&incr);

        // Deleting the *other* person's membership re-violates — even
        // though the deletion is far from p0's pivot under any radius.
        let mut batch = DeltaBatch::new();
        batch.del_edge(NodeId::new(0), member, NodeId::new(2));
        incr.apply(&batch);
        assert_eq!(incr.violations().len(), 1);
        assert_matches_full_detect(&incr);
    }

    #[test]
    fn deletion_heavy_stream_stays_exact() {
        let (g, sigma, mut vocab) = chain_setup(30);
        let e = vocab.label("e");
        let mut incr = IncrementalDetector::new(g, sigma, IncrConfig::with_workers(4));
        for start in [0usize, 5, 10, 15, 20, 25] {
            let mut batch = DeltaBatch::new();
            for i in start..(start + 5).min(29) {
                batch.del_edge(NodeId::new(i), e, NodeId::new(i + 1));
            }
            incr.apply(&batch);
            assert_matches_full_detect(&incr);
        }
        assert!(incr.is_clean(), "all edges deleted, nothing to violate");
    }
}
