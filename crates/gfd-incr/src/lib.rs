//! Incremental GFD violation detection for streaming graphs.
//!
//! The static pipeline (`gfd-detect`) assumes build → freeze → detect:
//! any topology change forces a full `Graph::freeze` plus a from-scratch
//! detection pass. This crate keeps a detection result **live** under a
//! stream of [`DeltaBatch`]es instead, exploiting the same data-locality
//! argument that makes pivoted work units correct (§V-B of the paper,
//! and parallel independence in attributed graph rewriting): a match
//! pivoted at `z` lives entirely within the pattern radius `dQ` of `z`,
//! so an update can only affect matches whose pivot lies within `dQ`
//! (undirected) hops of a node the update touched. Everything outside
//! that **dirty frontier** is carried over from the cached result.
//!
//! Per batch, [`IncrementalDetector::apply`]:
//!
//! 1. applies the batch to the builder graph and the
//!    [`gfd_graph::DeltaCsr`] overlay in lockstep (no re-freeze), and
//!    compacts — re-freezes base + delta — once the overlay passes a
//!    threshold fraction of the base;
//! 2. computes the dirty frontier by one bounded multi-source BFS from
//!    the touched nodes, and regenerates pivoted work units only for
//!    frontier pivots (rules with disconnected patterns fall back to a
//!    full per-rule re-run — no locality bound exists for them);
//! 3. runs the units as ordinary detection tasks on the shared
//!    `gfd-runtime` work-stealing scheduler, over the overlay view;
//! 4. evicts cached violations pivoted inside the re-run region and
//!    merges in the fresh results.
//!
//! The result after every batch is **identical** to a full re-freeze +
//! [`gfd_detect::detect`] on the mutated graph (the
//! `incremental_equivalence` suite pins this), at a per-batch cost
//! proportional to the dirty region rather than the whole graph
//! (`exp6_incremental` measures the gap). DESIGN.md §8 documents the
//! lifecycle and the frontier-soundness argument.

#![warn(missing_docs)]

pub mod detector;
pub mod frontier;

pub use detector::{BatchReport, IncrConfig, IncrementalDetector};
pub use frontier::bounded_frontier;
pub use gfd_graph::{DeltaBatch, DeltaOp};
