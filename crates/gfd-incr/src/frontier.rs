//! The dirty frontier: which pivots a delta batch can affect.
//!
//! **Soundness argument** (DESIGN.md §8). Let a rule's pattern be
//! connected with pivot variable `x` and radius `dQ = radius_at(x)`, and
//! let `D` be the batch's dirty nodes: endpoints of inserted *and*
//! deleted edges, attribute-write targets, and created nodes. Any match
//! whose violation status the batch could change — an old match that
//! disappeared or flipped, or a new match that appeared — has an
//! embedding touching some `u ∈ D`:
//!
//! * a new match must use an inserted edge, a created node, or a changed
//!   attribute (otherwise it existed before with the same status);
//! * a vanished match must have used a deleted edge; a flipped match
//!   reads a rewritten attribute.
//!
//! Its pivot image `z` is within `dQ` undirected hops of `u` *in the
//! graph the match lives in*. For post-batch matches that graph is the
//! current one, so `z` is in the current-graph ball around `u`. For
//! pre-batch matches the witnessing path may use a deleted edge
//! `{a, b}` — but then its prefix up to the first contact with `{a, b}`
//! is a current-graph path of length ≤ dQ ending at `a` or `b`, and
//! *both deletion endpoints are dirty*. Either way `z` lies within `dQ`
//! current-graph hops of some dirty node, so one bounded multi-source
//! BFS from `D` over the **post-batch** graph covers every affected
//! pivot, and every cached violation pivoted outside it is untouched.

use gfd_graph::{Graph, NodeId};
use rustc_hash::FxHashSet;
use std::collections::VecDeque;

/// All nodes within `max_radius` undirected hops of any node in `dirty`,
/// as `(node, distance to the nearest dirty node)` pairs — one
/// multi-source BFS over the post-batch builder graph.
///
/// Visited bookkeeping is a hash set, not a dense `O(|V|)` array: the
/// whole point of the incremental path is per-batch cost proportional
/// to the dirty region, and a tiny batch on a huge graph must not pay
/// for every node it never looks at.
///
/// `dirty` must be duplicate-free (as produced by
/// [`gfd_graph::DeltaIndex::apply`]); out-of-range ids are ignored.
pub fn bounded_frontier(graph: &Graph, dirty: &[NodeId], max_radius: u32) -> Vec<(NodeId, u32)> {
    let n = graph.node_count();
    let mut seen: FxHashSet<NodeId> = FxHashSet::default();
    let mut queue = VecDeque::with_capacity(dirty.len());
    let mut out = Vec::with_capacity(dirty.len());
    for &d in dirty {
        if d.index() < n && seen.insert(d) {
            queue.push_back((d, 0u32));
            out.push((d, 0));
        }
    }
    while let Some((v, d)) = queue.pop_front() {
        if d == max_radius {
            continue;
        }
        for &(_, u) in graph.out_edges(v).iter().chain(graph.in_edges(v)) {
            if seen.insert(u) {
                out.push((u, d + 1));
                queue.push_back((u, d + 1));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::Vocab;

    /// Path graph 0 → 1 → … → n-1.
    fn path(n: usize) -> Graph {
        let mut v = Vocab::new();
        let t = v.label("t");
        let e = v.label("e");
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_node(t)).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], e, w[1]);
        }
        g
    }

    #[test]
    fn single_source_matches_ball() {
        let g = path(7);
        let f = bounded_frontier(&g, &[NodeId::new(3)], 2);
        let mut nodes: Vec<usize> = f.iter().map(|(n, _)| n.index()).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![1, 2, 3, 4, 5]);
        assert!(f.contains(&(NodeId::new(3), 0)));
        assert!(f.contains(&(NodeId::new(1), 2)));
    }

    #[test]
    fn multi_source_takes_nearest_distance() {
        let g = path(10);
        let f = bounded_frontier(&g, &[NodeId::new(0), NodeId::new(9)], 1);
        let mut nodes: Vec<usize> = f.iter().map(|(n, _)| n.index()).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 8, 9]);
    }

    #[test]
    fn radius_zero_is_the_dirty_set() {
        let g = path(4);
        let f = bounded_frontier(&g, &[NodeId::new(2)], 0);
        assert_eq!(f, vec![(NodeId::new(2), 0)]);
    }

    #[test]
    fn out_of_range_and_duplicate_sources_are_tolerated() {
        let g = path(3);
        let f = bounded_frontier(&g, &[NodeId::new(1), NodeId::new(1), NodeId::new(99)], 0);
        assert_eq!(f, vec![(NodeId::new(1), 0)]);
    }
}
