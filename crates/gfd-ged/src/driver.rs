//! The branch-parallel GED reasoning driver: one [`Task`] implementation
//! on the shared `gfd-runtime` work-stealing scheduler serves both
//! satisfiability ([`crate::sat`]) and implication ([`crate::imp`]).
//!
//! The natural work unit of the GED small-model search is the **open
//! branch**: a [`GedStore`] holding everything asserted on one path of
//! the choice tree (consequence disjuncts, premise-literal splits). The
//! driver runs each branch to its next choice point via the shared
//! deterministic-enforcement scan (`crate::chase::fixpoint_round`) and
//! turns the children into further branches — **copy-on-branch**: the
//! store is cloned per child, so branches share nothing mutable and any
//! worker can run any branch.
//!
//! Scheduling discipline (mirrors `gfd_core::driver::ReasonTask`):
//!
//! * a worker explores its unit's subtree **depth-first** on a local
//!   stack — with one worker and no TTL expiry this is exactly the old
//!   recursive search, so the sequential algorithms are the `workers = 1`
//!   instantiation of this driver, not a separate code path;
//! * **TTL straggler splitting** — when a unit runs past the TTL, the
//!   worker drains its entire open-branch stack into split units pushed
//!   to the front of its own deque in DFS order: the head unit resumes
//!   exactly where the straggler stopped (priority inheritance), while
//!   idle workers steal the *back* half — the shallowest branches, which
//!   carry the largest subtrees;
//! * **early termination** — satisfiability raises the scheduler's stop
//!   flag on the first quiescent (model) branch, implication on the first
//!   counterexample leaf; both quantifiers need only one witness;
//! * a shared **branch budget** bounds the exponential worst case; an
//!   exhausted budget stops the run and reports `outcome: None` instead
//!   of looping (or panicking from a worker thread).
//!
//! Outcomes are deterministic under any steal order: the choice tree is a
//! function of (Σ, ψ) alone, and SAT/UNSAT (resp. implied/not) is an
//! existential (resp. universal) quantifier over its leaves — workers
//! merely traverse the same fixed tree in a different order. The one
//! exception is *which* witness model is extracted, and budget-capped
//! runs whose budget falls inside the tree (DESIGN.md §9).

use crate::chase::{fixpoint_round, NextStep};
use crate::ged::{Ged, GedLiteral, GedSet};
use crate::imp::GedImpOutcome;
use crate::sat::{extract_witness, GedSatOutcome};
use crate::store::GedStore;
use gfd_core::{Budget, Interrupt};
use gfd_graph::{Graph, NodeId};
use gfd_runtime::sched::{run_scheduler_with, Task, WorkerCtx};
use gfd_runtime::{DispatchMode, EventKind, RunMetrics, TraceSpec};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Tuning knobs of the branch-parallel GED driver.
#[derive(Clone, Debug)]
pub struct GedReasonConfig {
    /// Number of workers `p`. `1` runs inline on the calling thread — the
    /// sequential search.
    pub workers: usize,
    /// Straggler threshold: a unit exploring longer than this drains its
    /// open branches into split units other workers can steal.
    pub ttl: Duration,
    /// Branch splitting on TTL expiry; with `false` every seed unit runs
    /// its whole subtree on one worker.
    pub split: bool,
    /// How units reach the workers: per-worker deques with stealing
    /// (default) or the centralized-queue baseline.
    pub dispatch: DispatchMode,
    /// Budget on explored branches. The exact search is exponential in
    /// pathological inputs; exceeding the budget ends the run with
    /// `outcome: None` rather than looping. Shared across all workers.
    pub max_branches: usize,
    /// Unified resource budget (DESIGN.md §11.2): wall-clock deadline and
    /// scheduler unit cap, checked cooperatively at branch boundaries, plus
    /// an optional branch cap that tightens `max_branches`. Exhaustion
    /// degrades to `outcome: None` with the [`Interrupt`] reason attached.
    pub budget: Budget,
    /// Structured tracing (DESIGN.md §13): per-unit `GedBranch` spans
    /// counting the branches each scheduled subtree explored, plus the
    /// scheduler's own events. Off by default.
    pub trace: TraceSpec,
}

impl Default for GedReasonConfig {
    fn default() -> Self {
        GedReasonConfig {
            workers: 1,
            ttl: Duration::from_millis(100),
            split: true,
            dispatch: DispatchMode::WorkStealing,
            max_branches: 1_000_000,
            budget: Budget::unlimited(),
            trace: TraceSpec::disabled(),
        }
    }
}

impl GedReasonConfig {
    /// Default configuration with `p` workers.
    pub fn with_workers(workers: usize) -> Self {
        GedReasonConfig {
            workers,
            ..Self::default()
        }
    }

    /// Override the TTL.
    pub fn with_ttl(mut self, ttl: Duration) -> Self {
        self.ttl = ttl;
        self
    }

    /// Override the dispatch mode.
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Override the branch budget.
    pub fn with_max_branches(mut self, max_branches: usize) -> Self {
        self.max_branches = max_branches;
        self
    }

    /// Attach a unified resource budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The effective branch cap: the legacy `max_branches` knob tightened
    /// by the budget's branch axis, whichever is smaller.
    fn effective_max_branches(&self) -> usize {
        match self.budget.max_branches {
            Some(b) => self
                .max_branches
                .min(usize::try_from(b).unwrap_or(usize::MAX)),
            None => self.max_branches,
        }
    }
}

/// A satisfiability run: outcome plus unified scheduler metrics.
#[derive(Debug)]
pub struct GedSatRun {
    /// `None` when the run degraded — branch budget, deadline, unit
    /// budget, or a panic abort — before the search completed (the answer
    /// is unknown).
    pub outcome: Option<GedSatOutcome>,
    /// Why the outcome is `None`; always `Some` exactly when it is.
    pub interrupt: Option<Interrupt>,
    /// Unified scheduler counters (branches, splits, steals, idle time).
    pub metrics: RunMetrics,
}

/// An implication run: outcome plus unified scheduler metrics.
#[derive(Debug)]
pub struct GedImpRun {
    /// `None` when the run degraded — branch budget, deadline, unit
    /// budget, or a panic abort — before the search completed (the answer
    /// is unknown).
    pub outcome: Option<GedImpOutcome>,
    /// Why the outcome is `None`; always `Some` exactly when it is.
    pub interrupt: Option<Interrupt>,
    /// Unified scheduler counters (branches, splits, steals, idle time).
    pub metrics: RunMetrics,
}

/// What a run is trying to decide.
enum GedGoal<'a> {
    /// Does some branch reach a quiescent (model) leaf?
    Sat,
    /// Does every branch reach the goal (conflict or `Y` entailed)?
    Imp {
        /// The candidate consequence ψ.
        phi: &'a Ged,
        /// Identity mapping of ψ's variables onto `G^X_Q` nodes.
        identity: Vec<NodeId>,
    },
}

/// One open branch of the choice tree — a schedulable unit.
struct BranchUnit {
    store: GedStore,
}

/// Per-worker state: just counters; branches carry all search state.
struct GedWorker {
    branches_explored: u64,
}

/// The branch-and-bound workload run by the scheduler.
struct GedTask<'a> {
    sigma: &'a GedSet,
    base: &'a Graph,
    goal: GedGoal<'a>,
    cfg: &'a GedReasonConfig,
    stop: &'a AtomicBool,
    /// Branches explored across all workers (the budget counter).
    branches: AtomicUsize,
    /// The effective branch cap ([`GedReasonConfig::effective_max_branches`]).
    max_branches: usize,
    budget_exceeded: AtomicBool,
    deadline_exceeded: AtomicBool,
    /// Satisfiability: the first quiescent store (first writer wins).
    witness: Mutex<Option<GedStore>>,
    /// Implication: a counterexample leaf was found.
    refuted: AtomicBool,
}

impl GedTask<'_> {
    /// Run one branch to its next choice point and push the children.
    fn step(&self, stack: &mut Vec<GedStore>, mut store: GedStore) {
        match fixpoint_round(self.sigma, self.base, &mut store) {
            // Inconsistent: the branch dies. For satisfiability that
            // prunes one candidate model; for implication the conflict
            // case of Corollary 4 holds vacuously.
            NextStep::Fail => {}
            NextStep::Quiescent => match &self.goal {
                GedGoal::Sat => {
                    // First witness wins; everyone else stops searching.
                    let mut slot = self.witness.lock();
                    if slot.is_none() {
                        *slot = Some(store);
                    }
                    self.stop.store(true, Ordering::Relaxed);
                }
                GedGoal::Imp { phi, identity } => self.imp_leaf(stack, store, phi, identity),
            },
            NextStep::ChooseDisjunct(ged_idx, m) => {
                // Both quantifiers branch identically over consistent
                // disjuncts — only the leaf test differs. Pushed in
                // reverse so disjunct 0 is explored first (DFS order of
                // the sequential search).
                let disjuncts = &self.sigma.get(gfd_graph::GfdId::new(ged_idx)).disjuncts;
                for disjunct in disjuncts.iter().rev() {
                    let mut branch = store.clone();
                    if disjunct
                        .iter()
                        .all(|lit| branch.assert_literal(lit, &m).is_ok())
                    {
                        stack.push(branch);
                    }
                }
            }
            NextStep::BranchPremise(ged_idx, lit_idx, m) => {
                let lit = self.sigma.get(gfd_graph::GfdId::new(ged_idx)).premise[lit_idx].clone();
                self.both_ways(stack, store, &lit, &m);
            }
        }
    }

    /// Split the model family on a grounded literal: every model satisfies
    /// `lit` or `¬lit`, so both sides become branches (an inconsistent
    /// side is empty and needs none). `¬lit` lands on top of the stack —
    /// a falsified premise needs no enforcement, so it is explored first,
    /// as in the sequential search.
    fn both_ways(
        &self,
        stack: &mut Vec<GedStore>,
        store: GedStore,
        lit: &GedLiteral,
        m: &[NodeId],
    ) {
        let mut pos = store.clone();
        if pos.assert_literal(lit, m).is_ok() {
            stack.push(pos);
        }
        let mut neg = store;
        if neg.assert_negation(lit, m).is_ok() {
            stack.push(neg);
        }
    }

    /// Implication's quiescent-leaf test (the paper's Corollary 4 cases).
    fn imp_leaf(
        &self,
        stack: &mut Vec<GedStore>,
        mut store: GedStore,
        phi: &Ged,
        identity: &[NodeId],
    ) {
        // Some disjunct fully entailed → Y deduced on this branch.
        let entailed = phi
            .disjuncts
            .iter()
            .any(|d| d.iter().all(|lit| store.literal_entailed(lit, identity)));
        if entailed {
            return;
        }
        // A disjunct blocked only by an undetermined grounded attribute
        // literal (possible with order predicates): the family contains
        // models on both sides — split and require the goal on both.
        for disjunct in &phi.disjuncts {
            for lit in disjunct {
                if matches!(lit, GedLiteral::Id { .. }) {
                    continue; // falsified by keeping nodes distinct
                }
                if store.literal_grounded(lit, identity)
                    && !store.literal_entailed(lit, identity)
                    && !store.literal_refuted(lit, identity)
                {
                    let lit = lit.clone();
                    self.both_ways(stack, store, &lit, identity);
                    return;
                }
            }
        }
        // Every disjunct has a literal the generic minimal model
        // falsifies: this branch is a counterexample — Σ ̸|= ψ.
        self.refuted.store(true, Ordering::Relaxed);
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl Task for GedTask<'_> {
    type Unit = BranchUnit;
    type Worker = GedWorker;

    fn worker(&self, _id: usize) -> GedWorker {
        GedWorker {
            branches_explored: 0,
        }
    }

    fn run_unit(&self, w: &mut GedWorker, unit: BranchUnit, ctx: &WorkerCtx<'_, BranchUnit>) {
        let span = ctx.trace_start();
        let explored0 = w.branches_explored;
        self.explore(w, unit, ctx);
        ctx.trace_span(
            EventKind::GedBranch,
            0,
            span,
            w.branches_explored - explored0,
            0,
        );
    }
}

impl GedTask<'_> {
    /// One scheduled unit's depth-first subtree walk (the body of
    /// [`Task::run_unit`], factored out so the trace span wraps every
    /// exit path uniformly).
    fn explore(&self, w: &mut GedWorker, unit: BranchUnit, ctx: &WorkerCtx<'_, BranchUnit>) {
        let mut stack: Vec<GedStore> = vec![unit.store];
        let deadline = self.cfg.split.then(|| Instant::now() + self.cfg.ttl);
        while let Some(store) = stack.pop() {
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            // The scheduler checks the wall clock only between units; a
            // unit exploring a large subtree must check cooperatively.
            if self.cfg.budget.expired() {
                self.deadline_exceeded.store(true, Ordering::Relaxed);
                self.stop.store(true, Ordering::Relaxed);
                return;
            }
            if self.branches.fetch_add(1, Ordering::Relaxed) >= self.max_branches {
                self.budget_exceeded.store(true, Ordering::Relaxed);
                self.stop.store(true, Ordering::Relaxed);
                return;
            }
            w.branches_explored += 1;
            self.step(&mut stack, store);
            // Straggler: drain every open branch into split units, DFS
            // order preserved (front of the deque = the branch this loop
            // would have popped next), and end the unit — idle workers
            // steal the shallowest branches from the back.
            if let Some(d) = deadline {
                if Instant::now() >= d && !stack.is_empty() {
                    let units: Vec<BranchUnit> = stack
                        .drain(..)
                        .rev()
                        .map(|store| BranchUnit { store })
                        .collect();
                    ctx.split(units);
                    return;
                }
            }
        }
    }
}

/// What the scheduler run resolved to, before goal-specific mapping.
struct GedRunOutput {
    witness: Option<GedStore>,
    refuted: bool,
    /// Why the run degraded, if it did (branch/deadline/unit budget or a
    /// panic abort); `None` for a run that searched to completion.
    interrupt: Option<Interrupt>,
    metrics: RunMetrics,
}

/// Run the branch search over a prepared canonical graph.
fn run_ged(
    sigma: &GedSet,
    base: &Graph,
    goal: GedGoal<'_>,
    seed: GedStore,
    cfg: &GedReasonConfig,
) -> GedRunOutput {
    let start = Instant::now();
    let p = cfg.workers.max(1);
    let stop = AtomicBool::new(false);
    let task = GedTask {
        sigma,
        base,
        goal,
        cfg,
        stop: &stop,
        branches: AtomicUsize::new(0),
        max_branches: cfg.effective_max_branches(),
        budget_exceeded: AtomicBool::new(false),
        deadline_exceeded: AtomicBool::new(false),
        witness: Mutex::new(None),
        refuted: AtomicBool::new(false),
    };
    let seed_units = vec![BranchUnit { store: seed }];

    let mut metrics = RunMetrics {
        workers: p,
        units_generated: seed_units.len(),
        ..Default::default()
    };
    let mut opts = cfg.budget.sched_options();
    opts.trace = cfg.trace;
    let run = run_scheduler_with(&task, seed_units, p, cfg.dispatch, &stop, opts);
    metrics.trace = run.trace;
    metrics.units_dispatched = run.units_executed;
    metrics.units_split = run.units_split;
    metrics.units_stolen = run.units_stolen;
    metrics.worker_busy = run.worker_busy;
    metrics.worker_idle = run.worker_idle;
    metrics.units_panicked = run.units_panicked;
    metrics.units_retried = run.units_retried;
    metrics.branches = run.workers.iter().map(|w| w.branches_explored).sum();
    metrics.early_terminated = stop.load(Ordering::Relaxed);
    metrics.elapsed = start.elapsed();
    metrics.deadline_slack_ms = cfg.budget.deadline_slack_ms();

    // Panic aborts outrank budget reasons (the run did not merely run
    // out of resources); the cooperative flags cover exhaustion detected
    // inside a unit, the scheduler outcome covers unit boundaries.
    let interrupt = Interrupt::from_outcome(&run.outcome)
        .or_else(|| {
            task.deadline_exceeded
                .load(Ordering::Relaxed)
                .then_some(Interrupt::Deadline)
        })
        .or_else(|| {
            task.budget_exceeded
                .load(Ordering::Relaxed)
                .then_some(Interrupt::Branches)
        });

    GedRunOutput {
        witness: task.witness.into_inner(),
        refuted: task.refuted.load(Ordering::Relaxed),
        interrupt,
        metrics,
    }
}

/// Check satisfiability of a set of GEDs on the shared scheduler.
///
/// `cfg.workers == 1` is the sequential small-model search;
/// [`crate::sat::ged_sat`] is exactly that instantiation.
pub fn ged_sat_with_config(sigma: &GedSet, cfg: &GedReasonConfig) -> GedSatRun {
    if sigma.is_empty() {
        // The empty set is modelled by any single-node graph.
        let mut g = Graph::new();
        g.add_node(gfd_graph::LabelId::WILDCARD);
        return GedSatRun {
            outcome: Some(GedSatOutcome::Satisfiable { witness: Some(g) }),
            interrupt: None,
            metrics: RunMetrics {
                workers: cfg.workers.max(1),
                ..Default::default()
            },
        };
    }
    // Canonical graph: disjoint union of all patterns.
    let mut base = Graph::new();
    for (_, ged) in sigma.iter() {
        base.append_disjoint(&ged.pattern.to_graph());
    }
    let seed = GedStore::new(&base);
    let out = run_ged(sigma, &base, GedGoal::Sat, seed, cfg);
    // A found model is definitive regardless of the budget flag: near
    // the budget, one worker can record the witness while another's
    // counter crosses the cap before observing stop. Only an
    // *inconclusive* interrupted run is "unknown".
    let outcome = if let Some(mut store) = out.witness {
        let witness = extract_witness(&mut store, &base);
        Some(GedSatOutcome::Satisfiable { witness })
    } else if out.interrupt.is_some() {
        None
    } else {
        Some(GedSatOutcome::Unsatisfiable)
    };
    let interrupt = if outcome.is_none() {
        out.interrupt
    } else {
        None
    };
    GedSatRun {
        outcome,
        interrupt,
        metrics: out.metrics,
    }
}

/// Decide whether `sigma` implies `phi` on the shared scheduler.
///
/// `cfg.workers == 1` is the sequential search;
/// [`crate::imp::ged_implies`] is exactly that instantiation.
pub fn ged_implies_with_config(sigma: &GedSet, phi: &Ged, cfg: &GedReasonConfig) -> GedImpRun {
    let base = phi.pattern.to_graph();
    let identity: Vec<NodeId> = (0..phi.pattern.node_count()).map(NodeId::new).collect();
    let mut store = GedStore::new(&base);
    // Assert X; an inconsistent premise makes ψ vacuously true.
    for lit in &phi.premise {
        if store.assert_literal(lit, &identity).is_err() {
            return GedImpRun {
                outcome: Some(GedImpOutcome::Implied),
                interrupt: None,
                metrics: RunMetrics {
                    workers: cfg.workers.max(1),
                    ..Default::default()
                },
            };
        }
    }
    let out = run_ged(sigma, &base, GedGoal::Imp { phi, identity }, store, cfg);
    // As in Sat: a found counterexample is definitive even when the
    // budget flag raced in; only exhaustion without one is "unknown".
    let outcome = if out.refuted {
        Some(GedImpOutcome::NotImplied)
    } else if out.interrupt.is_some() {
        None
    } else {
        Some(GedImpOutcome::Implied)
    };
    let interrupt = if outcome.is_none() {
        out.interrupt
    } else {
        None
    };
    GedImpRun {
        outcome,
        interrupt,
        metrics: out.metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ged::CmpOp;
    use gfd_graph::{LabelId, Pattern, VarId, Vocab};

    fn wildcard_node() -> Pattern {
        let mut p = Pattern::new();
        p.add_node(LabelId::WILDCARD, "x");
        p
    }

    /// Σ whose whole choice tree must be explored (unsatisfiable through
    /// disjunctions over one attribute): root + two disjunct branches.
    fn unsat_disjunctive(vocab: &mut Vocab, rules: usize) -> GedSet {
        let a = vocab.attr("A");
        let x = VarId::new(0);
        let mut out = Vec::new();
        for i in 0..rules {
            let lo = 2 * i as i64;
            out.push(Ged::new(
                format!("r{i}"),
                wildcard_node(),
                vec![],
                vec![
                    vec![GedLiteral::eq_const(x, a, lo)],
                    vec![GedLiteral::eq_const(x, a, lo + 1)],
                ],
            ));
        }
        GedSet::from_vec(out)
    }

    #[test]
    fn parallel_workers_agree_on_unsat_tree() {
        let mut vocab = Vocab::new();
        let sigma = unsat_disjunctive(&mut vocab, 3);
        for p in [1usize, 2, 8] {
            for dispatch in [DispatchMode::WorkStealing, DispatchMode::Coordinator] {
                let cfg = GedReasonConfig::with_workers(p)
                    .with_ttl(Duration::ZERO)
                    .with_dispatch(dispatch);
                let run = ged_sat_with_config(&sigma, &cfg);
                let out = run.outcome.expect("within budget");
                assert!(!out.is_satisfiable(), "p={p} {dispatch:?}");
                assert!(run.metrics.branches >= 3, "tree not explored");
            }
        }
    }

    #[test]
    fn forced_splitting_reports_split_units() {
        let mut vocab = Vocab::new();
        let sigma = unsat_disjunctive(&mut vocab, 4);
        let cfg = GedReasonConfig::with_workers(2).with_ttl(Duration::ZERO);
        let run = ged_sat_with_config(&sigma, &cfg);
        assert!(!run.outcome.unwrap().is_satisfiable());
        assert!(run.metrics.units_split > 0, "TTL=0 never split");
    }

    #[test]
    fn budget_exhaustion_reports_unknown_not_panic() {
        let mut vocab = Vocab::new();
        // Exhausting the tree needs 3 branch visits (root + 2 children);
        // a budget of 2 cannot finish, at any worker count.
        let sigma = unsat_disjunctive(&mut vocab, 2);
        for p in [1usize, 2, 8] {
            let cfg = GedReasonConfig::with_workers(p).with_max_branches(2);
            let run = ged_sat_with_config(&sigma, &cfg);
            assert!(run.outcome.is_none(), "p={p}: budget should be unknown");
            assert!(run.metrics.early_terminated);
        }
    }

    #[test]
    fn expired_deadline_degrades_to_unknown() {
        let mut vocab = Vocab::new();
        let sigma = unsat_disjunctive(&mut vocab, 6);
        for p in [1usize, 2] {
            let cfg = GedReasonConfig::with_workers(p).with_budget(
                Budget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1)),
            );
            let run = ged_sat_with_config(&sigma, &cfg);
            assert!(run.outcome.is_none(), "p={p}");
            assert_eq!(run.interrupt, Some(Interrupt::Deadline), "p={p}");
            assert!(run.metrics.deadline_slack_ms.unwrap() < 0);
        }
    }

    #[test]
    fn budget_branch_axis_tightens_the_legacy_knob() {
        let mut vocab = Vocab::new();
        let sigma = unsat_disjunctive(&mut vocab, 2);
        let cfg =
            GedReasonConfig::with_workers(1).with_budget(Budget::unlimited().with_max_branches(2));
        let run = ged_sat_with_config(&sigma, &cfg);
        assert!(run.outcome.is_none());
        assert_eq!(run.interrupt, Some(Interrupt::Branches));
    }

    #[test]
    fn first_witness_cancels_the_search() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let x = VarId::new(0);
        // Satisfiable immediately: one conjunctive rule, one branch.
        let sigma = GedSet::from_vec(vec![Ged::conjunctive(
            "r",
            wildcard_node(),
            vec![],
            vec![GedLiteral::cmp_const(x, a, CmpOp::Ge, 0i64)],
        )]);
        let run = ged_sat_with_config(&sigma, &GedReasonConfig::with_workers(4));
        assert!(run.outcome.unwrap().is_satisfiable());
        assert!(run.metrics.early_terminated, "witness should raise stop");
    }

    #[test]
    fn imp_runs_report_metrics() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let x = VarId::new(0);
        let sigma = GedSet::from_vec(vec![Ged::conjunctive(
            "r",
            wildcard_node(),
            vec![],
            vec![GedLiteral::eq_const(x, a, 1i64)],
        )]);
        let phi = Ged::conjunctive(
            "q",
            wildcard_node(),
            vec![],
            vec![GedLiteral::cmp_const(x, a, CmpOp::Ge, 1i64)],
        );
        for p in [1usize, 4] {
            let run = ged_implies_with_config(&sigma, &phi, &GedReasonConfig::with_workers(p));
            assert!(run.outcome.expect("within budget").is_implied(), "p={p}");
            assert!(run.metrics.branches >= 1);
            assert_eq!(run.metrics.workers, p);
        }
    }
}
