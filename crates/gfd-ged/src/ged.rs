//! The GED model: patterns plus extended literals with disjunction.

use gfd_core::{Gfd, Literal, Operand};
use gfd_graph::{AttrId, GfdId, Pattern, Value, ValueId, ValueTable, VarId, Vocab};
use std::fmt;

/// A comparison operator of a built-in predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// Evaluate the operator on two concrete values, using the total order
    /// on [`Value`] (ints before bools before strings; each variant ordered
    /// naturally).
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
        }
    }

    /// Evaluate on interned ids. Equality is a raw `u32` compare; the
    /// order operators use the id order, which matches [`Value`]'s.
    pub fn eval_id(self, left: ValueId, right: ValueId) -> bool {
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
        }
    }

    /// The operator with its operands swapped: `a op b ⇔ b op.flip() a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation: `¬(a op b) ⇔ a op.negate() b`.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Render the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A GED literal.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum GedLiteral {
    /// `x.A op c` — attribute against constant.
    AttrConst {
        /// Variable on the left.
        var: VarId,
        /// Attribute of that variable.
        attr: AttrId,
        /// Comparison operator.
        op: CmpOp,
        /// Constant right-hand side (interned).
        value: ValueId,
    },
    /// `x.A op y.B` — attribute against attribute.
    AttrAttr {
        /// Variable on the left.
        var: VarId,
        /// Attribute on the left.
        attr: AttrId,
        /// Comparison operator.
        op: CmpOp,
        /// Variable on the right.
        other_var: VarId,
        /// Attribute on the right.
        other_attr: AttrId,
    },
    /// `x.id = y.id` — the two variables denote the same node.
    Id {
        /// Left variable.
        left: VarId,
        /// Right variable.
        right: VarId,
    },
}

impl GedLiteral {
    /// `x.A = c`.
    pub fn eq_const(var: VarId, attr: AttrId, value: impl Into<Value>) -> Self {
        GedLiteral::AttrConst {
            var,
            attr,
            op: CmpOp::Eq,
            value: ValueTable::intern(&value.into()),
        }
    }

    /// `x.A op c`.
    pub fn cmp_const(var: VarId, attr: AttrId, op: CmpOp, value: impl Into<Value>) -> Self {
        GedLiteral::AttrConst {
            var,
            attr,
            op,
            value: ValueTable::intern(&value.into()),
        }
    }

    /// `x.A op c` from an already-interned id.
    pub fn cmp_id(var: VarId, attr: AttrId, op: CmpOp, value: ValueId) -> Self {
        GedLiteral::AttrConst {
            var,
            attr,
            op,
            value,
        }
    }

    /// `x.A = y.B`.
    pub fn eq_attr(var: VarId, attr: AttrId, other_var: VarId, other_attr: AttrId) -> Self {
        GedLiteral::AttrAttr {
            var,
            attr,
            op: CmpOp::Eq,
            other_var,
            other_attr,
        }
    }

    /// `x.A op y.B`.
    pub fn cmp_attr(
        var: VarId,
        attr: AttrId,
        op: CmpOp,
        other_var: VarId,
        other_attr: AttrId,
    ) -> Self {
        GedLiteral::AttrAttr {
            var,
            attr,
            op,
            other_var,
            other_attr,
        }
    }

    /// `x.id = y.id`.
    pub fn id(left: VarId, right: VarId) -> Self {
        GedLiteral::Id { left, right }
    }

    /// Variables mentioned by the literal.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        let (a, b) = match self {
            GedLiteral::AttrConst { var, .. } => (*var, None),
            GedLiteral::AttrAttr { var, other_var, .. } => (*var, Some(*other_var)),
            GedLiteral::Id { left, right } => (*left, Some(*right)),
        };
        std::iter::once(a).chain(b)
    }

    /// Is this a plain-GFD literal (equality on attributes, no id)?
    pub fn is_gfd_compatible(&self) -> bool {
        matches!(
            self,
            GedLiteral::AttrConst { op: CmpOp::Eq, .. }
                | GedLiteral::AttrAttr { op: CmpOp::Eq, .. }
        )
    }

    /// Convert a plain GFD literal.
    pub fn from_gfd(lit: &Literal) -> Self {
        match &lit.rhs {
            Operand::Const(c) => GedLiteral::AttrConst {
                var: lit.var,
                attr: lit.attr,
                op: CmpOp::Eq,
                value: *c,
            },
            Operand::Attr(v, a) => GedLiteral::eq_attr(lit.var, lit.attr, *v, *a),
        }
    }

    /// Render with variable and attribute names.
    pub fn display<'a>(&'a self, pattern: &'a Pattern, vocab: &'a Vocab) -> GedLiteralDisplay<'a> {
        GedLiteralDisplay {
            literal: self,
            pattern,
            vocab,
        }
    }
}

/// Helper for rendering a GED literal with names.
pub struct GedLiteralDisplay<'a> {
    literal: &'a GedLiteral,
    pattern: &'a Pattern,
    vocab: &'a Vocab,
}

impl fmt::Display for GedLiteralDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.literal {
            GedLiteral::AttrConst {
                var,
                attr,
                op,
                value,
            } => write!(
                f,
                "{}.{} {} {value:?}",
                self.pattern.var_name(*var),
                self.vocab.attr_name(*attr),
                op.symbol(),
            ),
            GedLiteral::AttrAttr {
                var,
                attr,
                op,
                other_var,
                other_attr,
            } => write!(
                f,
                "{}.{} {} {}.{}",
                self.pattern.var_name(*var),
                self.vocab.attr_name(*attr),
                op.symbol(),
                self.pattern.var_name(*other_var),
                self.vocab.attr_name(*other_attr),
            ),
            GedLiteral::Id { left, right } => write!(
                f,
                "{}.id = {}.id",
                self.pattern.var_name(*left),
                self.pattern.var_name(*right),
            ),
        }
    }
}

/// A graph entity dependency `Q[x̄](X → Y₁ ∨ … ∨ Yₙ)`.
///
/// The premise `X` is a conjunction; the consequence is a disjunction of
/// conjunctions (DNF). A plain GFD corresponds to a single disjunct. An
/// empty disjunct list encodes the consequence `false` (a denial); a
/// disjunct that is an empty conjunction encodes `true`.
#[derive(Clone, Debug)]
pub struct Ged {
    /// Human-readable name.
    pub name: String,
    /// The pattern `Q[x̄]`.
    pub pattern: Pattern,
    /// Premise conjunction `X`.
    pub premise: Vec<GedLiteral>,
    /// Consequence disjuncts `Y₁ ∨ … ∨ Yₙ`; each disjunct is a conjunction.
    pub disjuncts: Vec<Vec<GedLiteral>>,
}

impl Ged {
    /// Build a GED, validating variable references.
    pub fn new(
        name: impl Into<String>,
        pattern: Pattern,
        premise: Vec<GedLiteral>,
        disjuncts: Vec<Vec<GedLiteral>>,
    ) -> Self {
        let ged = Ged {
            name: name.into(),
            pattern,
            premise,
            disjuncts,
        };
        ged.assert_well_formed();
        ged
    }

    /// A single-disjunct GED (conjunctive consequence, like a GFD).
    pub fn conjunctive(
        name: impl Into<String>,
        pattern: Pattern,
        premise: Vec<GedLiteral>,
        consequence: Vec<GedLiteral>,
    ) -> Self {
        Ged::new(name, pattern, premise, vec![consequence])
    }

    /// A denial GED: the pattern (with premise) must not occur.
    pub fn denial(name: impl Into<String>, pattern: Pattern, premise: Vec<GedLiteral>) -> Self {
        Ged::new(name, pattern, premise, Vec::new())
    }

    fn assert_well_formed(&self) {
        let n = self.pattern.node_count();
        assert!(n > 0, "GED `{}` has an empty pattern", self.name);
        let all = self.premise.iter().chain(self.disjuncts.iter().flatten());
        for lit in all {
            for v in lit.vars() {
                assert!(
                    v.index() < n,
                    "GED `{}` references unknown variable {v}",
                    self.name
                );
            }
        }
    }

    /// Lift a plain GFD into a GED.
    pub fn from_gfd(gfd: &Gfd) -> Self {
        Ged {
            name: gfd.name.clone(),
            pattern: gfd.pattern.clone(),
            premise: gfd.premise.iter().map(GedLiteral::from_gfd).collect(),
            disjuncts: vec![gfd.consequence.iter().map(GedLiteral::from_gfd).collect()],
        }
    }

    /// True iff the premise is empty.
    pub fn has_empty_premise(&self) -> bool {
        self.premise.is_empty()
    }

    /// True iff the consequence is `false` (no disjunct).
    pub fn is_denial(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Size `|ψ|` for small-model bounds: pattern size plus two per literal.
    pub fn size(&self) -> usize {
        self.pattern.size()
            + 2 * self.premise.len()
            + 2 * self.disjuncts.iter().map(Vec::len).sum::<usize>()
    }

    /// Render with names resolved through `vocab`.
    pub fn display<'a>(&'a self, vocab: &'a Vocab) -> GedDisplay<'a> {
        GedDisplay { ged: self, vocab }
    }
}

/// Helper for rendering a GED with human-readable names.
pub struct GedDisplay<'a> {
    ged: &'a Ged,
    vocab: &'a Vocab,
}

impl fmt::Display for GedDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.ged;
        write!(f, "{}: Q[", g.name)?;
        for (i, v) in g.pattern.vars().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{}:{}",
                g.pattern.var_name(v),
                self.vocab.label_name(g.pattern.label(v))
            )?;
        }
        write!(f, "](")?;
        if g.premise.is_empty() {
            write!(f, "∅")?;
        }
        for (i, l) in g.premise.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{}", l.display(&g.pattern, self.vocab))?;
        }
        write!(f, " → ")?;
        if g.disjuncts.is_empty() {
            write!(f, "false")?;
        }
        for (i, disjunct) in g.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            if g.disjuncts.len() > 1 {
                write!(f, "(")?;
            }
            if disjunct.is_empty() {
                write!(f, "true")?;
            }
            for (j, l) in disjunct.iter().enumerate() {
                if j > 0 {
                    write!(f, " ∧ ")?;
                }
                write!(f, "{}", l.display(&g.pattern, self.vocab))?;
            }
            if g.disjuncts.len() > 1 {
                write!(f, ")")?;
            }
        }
        write!(f, ")")
    }
}

/// An ordered set of GEDs.
#[derive(Clone, Debug, Default)]
pub struct GedSet {
    geds: Vec<Ged>,
}

impl GedSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a vector.
    pub fn from_vec(geds: Vec<Ged>) -> Self {
        GedSet { geds }
    }

    /// Append, returning the new id.
    pub fn push(&mut self, ged: Ged) -> GfdId {
        let id = GfdId::new(self.geds.len());
        self.geds.push(ged);
        id
    }

    /// Look up by id.
    pub fn get(&self, id: GfdId) -> &Ged {
        &self.geds[id.index()]
    }

    /// Number of GEDs.
    pub fn len(&self) -> usize {
        self.geds.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.geds.is_empty()
    }

    /// Iterate with ids.
    pub fn iter(&self) -> impl Iterator<Item = (GfdId, &Ged)> {
        self.geds
            .iter()
            .enumerate()
            .map(|(i, g)| (GfdId::new(i), g))
    }

    /// Total size `|Σ|`.
    pub fn total_size(&self) -> usize {
        self.geds.iter().map(Ged::size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person_pattern(vocab: &mut Vocab) -> (Pattern, VarId, VarId) {
        let person = vocab.label("person");
        let knows = vocab.label("knows");
        let mut p = Pattern::new();
        let x = p.add_node(person, "x");
        let y = p.add_node(person, "y");
        p.add_edge(x, knows, y);
        (p, x, y)
    }

    #[test]
    fn cmp_op_eval_covers_all_ops() {
        let a = Value::int(1);
        let b = Value::int(2);
        assert!(CmpOp::Eq.eval(&a, &a));
        assert!(!CmpOp::Eq.eval(&a, &b));
        assert!(CmpOp::Ne.eval(&a, &b));
        assert!(CmpOp::Lt.eval(&a, &b));
        assert!(CmpOp::Le.eval(&a, &a));
        assert!(CmpOp::Gt.eval(&b, &a));
        assert!(CmpOp::Ge.eval(&b, &b));
    }

    #[test]
    fn flip_and_negate_are_involutions_on_eval() {
        let vals = [Value::int(1), Value::int(2), Value::str("a")];
        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        for op in ops {
            assert_eq!(op.flip().flip(), op);
            assert_eq!(op.negate().negate(), op);
            for a in &vals {
                for b in &vals {
                    assert_eq!(op.eval(a, b), op.flip().eval(b, a), "{op:?} flip");
                    assert_eq!(op.eval(a, b), !op.negate().eval(a, b), "{op:?} negate");
                }
            }
        }
    }

    #[test]
    fn build_and_display_a_key() {
        let mut vocab = Vocab::new();
        let (p, x, y) = person_pattern(&mut vocab);
        let email = vocab.attr("email");
        let key = Ged::conjunctive(
            "person-key",
            p,
            vec![GedLiteral::eq_attr(x, email, y, email)],
            vec![GedLiteral::id(x, y)],
        );
        let shown = key.display(&vocab).to_string();
        assert!(shown.contains("x.email = y.email"), "{shown}");
        assert!(shown.contains("x.id = y.id"), "{shown}");
        assert!(!key.is_denial());
        assert!(!key.has_empty_premise());
    }

    #[test]
    fn disjunctive_display_parenthesizes() {
        let mut vocab = Vocab::new();
        let (p, x, _) = person_pattern(&mut vocab);
        let age = vocab.attr("age");
        let ged = Ged::new(
            "adult-or-minor",
            p,
            vec![],
            vec![
                vec![GedLiteral::cmp_const(x, age, CmpOp::Ge, 18i64)],
                vec![GedLiteral::cmp_const(x, age, CmpOp::Lt, 18i64)],
            ],
        );
        let shown = ged.display(&vocab).to_string();
        assert!(shown.contains(") ∨ ("), "{shown}");
        assert!(shown.contains("x.age >= 18"), "{shown}");
    }

    #[test]
    fn denial_displays_false() {
        let mut vocab = Vocab::new();
        let (p, _, _) = person_pattern(&mut vocab);
        let ged = Ged::denial("no-self", p, vec![]);
        assert!(ged.is_denial());
        assert!(ged.display(&vocab).to_string().contains("false"));
    }

    #[test]
    fn from_gfd_round_trips_literals() {
        let mut vocab = Vocab::new();
        let (p, x, y) = person_pattern(&mut vocab);
        let a = vocab.attr("a");
        let gfd = Gfd::new(
            "g",
            p,
            vec![Literal::eq_const(x, a, 5i64)],
            vec![Literal::eq_attr(x, a, y, a)],
        );
        let ged = Ged::from_gfd(&gfd);
        assert_eq!(ged.premise.len(), 1);
        assert_eq!(ged.disjuncts.len(), 1);
        assert!(ged.premise[0].is_gfd_compatible());
        assert!(ged.disjuncts[0][0].is_gfd_compatible());
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn foreign_variable_panics() {
        let mut vocab = Vocab::new();
        let (p, _, _) = person_pattern(&mut vocab);
        let a = vocab.attr("a");
        let _ = Ged::conjunctive(
            "bad",
            p,
            vec![],
            vec![GedLiteral::eq_const(VarId::new(7), a, 1i64)],
        );
    }

    #[test]
    fn ged_set_push_get_iter() {
        let mut vocab = Vocab::new();
        let (p, _, _) = person_pattern(&mut vocab);
        let mut set = GedSet::new();
        assert!(set.is_empty());
        let id = set.push(Ged::denial("d", p, vec![]));
        assert_eq!(set.len(), 1);
        assert_eq!(set.get(id).name, "d");
        assert_eq!(set.iter().count(), 1);
        assert!(set.total_size() > 0);
    }
}
