//! The GED constraint store: node merging plus an order network.
//!
//! [`GedStore`] generalizes `gfd-core`'s equivalence relation `Eq` in two
//! directions required by GEDs:
//!
//! * **node merging** — id literals `x.id = y.id` quotient the canonical
//!   graph; the store keeps a union-find over nodes, with label
//!   unification (wildcard ⊔ concrete = concrete; two distinct concrete
//!   labels clash);
//! * **order constraints** — attribute classes live in an [`OrderNet`]
//!   instead of a constants-only equivalence relation, so `<, ≤, ≠`
//!   facts accumulate and are checked by the strict-cycle criterion.
//!
//! Everything is monotone: facts are only ever added, which is what the
//! backtracking searches in [`crate::sat`] and [`crate::imp`] rely on
//! (they clone the store at choice points).

use crate::ged::{CmpOp, GedLiteral};
use crate::order::{OrderConflict, OrderNet, OrderVar};
use gfd_graph::{AttrId, Graph, LabelId, NodeId};
use rustc_hash::FxHashMap;
use std::fmt;

/// A conflict raised by the store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreConflict {
    /// The order network became inconsistent.
    Order(OrderConflict),
    /// Two nodes with distinct concrete labels were merged.
    LabelClash(LabelId, LabelId),
}

impl fmt::Display for StoreConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreConflict::Order(c) => write!(f, "order conflict: {c}"),
            StoreConflict::LabelClash(a, b) => {
                write!(f, "merged nodes with incompatible labels {a:?} / {b:?}")
            }
        }
    }
}

impl From<OrderConflict> for StoreConflict {
    fn from(c: OrderConflict) -> Self {
        StoreConflict::Order(c)
    }
}

/// The constraint store over a fixed set of canonical-graph nodes.
#[derive(Clone, Debug)]
pub struct GedStore {
    /// Union-find parents over node indices.
    parent: Vec<u32>,
    /// Label of each *root* (unified under wildcard subsumption).
    label: Vec<LabelId>,
    /// Attribute class per (root, attribute).
    attr_vars: FxHashMap<(u32, AttrId), OrderVar>,
    /// The order network over attribute classes and constants.
    net: OrderNet,
    /// Bumped on every mutation; lets fixpoint loops detect quiescence.
    version: u64,
}

impl GedStore {
    /// A store over the nodes of `graph` (initially all distinct).
    pub fn new(graph: &Graph) -> Self {
        GedStore {
            parent: (0..graph.node_count() as u32).collect(),
            label: graph.nodes().map(|v| graph.label(v)).collect(),
            attr_vars: FxHashMap::default(),
            net: OrderNet::new(),
            version: 0,
        }
    }

    /// The mutation counter.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Representative of `n`'s merge class.
    pub fn find(&mut self, n: NodeId) -> NodeId {
        let mut i = n.index() as u32;
        // Path halving.
        while self.parent[i as usize] != i {
            let p = self.parent[i as usize];
            self.parent[i as usize] = self.parent[p as usize];
            i = self.parent[i as usize];
        }
        NodeId::new(i as usize)
    }

    /// Are `a` and `b` merged?
    pub fn same_node(&mut self, a: NodeId, b: NodeId) -> bool {
        self.find(a) == self.find(b)
    }

    /// The unified label of `n`'s class.
    pub fn label_of(&mut self, n: NodeId) -> LabelId {
        let r = self.find(n);
        self.label[r.index()]
    }

    /// Merge the classes of `a` and `b`. Returns `Ok(true)` when the store
    /// changed, `Ok(false)` when they were already merged.
    pub fn merge_nodes(&mut self, a: NodeId, b: NodeId) -> Result<bool, StoreConflict> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Ok(false);
        }
        // Unify labels under wildcard subsumption.
        let la = self.label[ra.index()];
        let lb = self.label[rb.index()];
        let unified = if la == lb || lb.is_wildcard() {
            la
        } else if la.is_wildcard() {
            lb
        } else {
            return Err(StoreConflict::LabelClash(la, lb));
        };
        // ra becomes the root.
        self.parent[rb.index()] = ra.index() as u32;
        self.label[ra.index()] = unified;
        // Re-home rb's attribute classes, equating duplicates.
        let moved: Vec<(AttrId, OrderVar)> = self
            .attr_vars
            .iter()
            .filter(|((root, _), _)| *root == rb.index() as u32)
            .map(|((_, attr), var)| (*attr, *var))
            .collect();
        for (attr, var) in moved {
            self.attr_vars.remove(&(rb.index() as u32, attr));
            match self.attr_vars.entry((ra.index() as u32, attr)) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    self.net.assert_cmp(*e.get(), CmpOp::Eq, var);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(var);
                }
            }
        }
        self.version += 1;
        self.net.check().map_err(StoreConflict::from)?;
        Ok(true)
    }

    /// The order variable of attribute `attr` at node `n`'s class,
    /// creating it on first use (the "generate new attributes" behaviour
    /// of the paper's Expand).
    pub fn attr_var(&mut self, n: NodeId, attr: AttrId) -> OrderVar {
        let root = self.find(n).index() as u32;
        if let Some(&v) = self.attr_vars.get(&(root, attr)) {
            return v;
        }
        let v = self.net.new_var();
        self.attr_vars.insert((root, attr), v);
        self.version += 1;
        v
    }

    /// The order variable of `attr` at `n`, if it already exists.
    pub fn existing_attr_var(&mut self, n: NodeId, attr: AttrId) -> Option<OrderVar> {
        let root = self.find(n).index() as u32;
        self.attr_vars.get(&(root, attr)).copied()
    }

    /// Direct access to the order network.
    pub fn net(&self) -> &OrderNet {
        &self.net
    }

    /// Iterate the attribute classes as `(root node, attribute, variable)`
    /// triples. Keys are maintained on current roots across merges.
    pub fn attr_assignments(&self) -> impl Iterator<Item = (NodeId, AttrId, OrderVar)> + '_ {
        self.attr_vars
            .iter()
            .map(|(&(root, attr), &var)| (NodeId::new(root as usize), attr, var))
    }

    /// Assert a literal at match `m` (variable `i` ↦ `m[i]`). Returns
    /// `Ok(true)` when new information was added.
    pub fn assert_literal(
        &mut self,
        lit: &GedLiteral,
        m: &[NodeId],
    ) -> Result<bool, StoreConflict> {
        match lit {
            GedLiteral::Id { left, right } => self.merge_nodes(m[left.index()], m[right.index()]),
            GedLiteral::AttrConst {
                var,
                attr,
                op,
                value,
            } => {
                let a = self.attr_var(m[var.index()], *attr);
                let c = self.net.const_var(&value.resolve());
                self.assert_cmp_tracked(a, *op, c)
            }
            GedLiteral::AttrAttr {
                var,
                attr,
                op,
                other_var,
                other_attr,
            } => {
                let a = self.attr_var(m[var.index()], *attr);
                let b = self.attr_var(m[other_var.index()], *other_attr);
                self.assert_cmp_tracked(a, *op, b)
            }
        }
    }

    /// Assert `a op b`, skipping when already entailed; checks consistency.
    fn assert_cmp_tracked(
        &mut self,
        a: OrderVar,
        op: CmpOp,
        b: OrderVar,
    ) -> Result<bool, StoreConflict> {
        if self.net.entails(a, op, b) {
            return Ok(false);
        }
        self.net.assert_cmp(a, op, b);
        self.version += 1;
        self.net.check().map_err(StoreConflict::from)?;
        Ok(true)
    }

    /// Is the literal entailed at match `m`?
    ///
    /// Attribute literals over classes that do not yet exist are *not*
    /// entailed (the attribute may simply be absent in a model).
    pub fn literal_entailed(&mut self, lit: &GedLiteral, m: &[NodeId]) -> bool {
        match lit {
            GedLiteral::Id { left, right } => self.same_node(m[left.index()], m[right.index()]),
            GedLiteral::AttrConst {
                var,
                attr,
                op,
                value,
            } => {
                let Some(a) = self.existing_attr_var(m[var.index()], *attr) else {
                    return false;
                };
                match self.net.lookup_const(&value.resolve()) {
                    Some(c) => self.net.entails(a, *op, c),
                    // Constant never mentioned: intern it lazily (harmless
                    // — only adds chain edges among constants) and query.
                    None => self.entails_against_new_const(a, *op, &value.resolve()),
                }
            }
            GedLiteral::AttrAttr {
                var,
                attr,
                op,
                other_var,
                other_attr,
            } => {
                let Some(a) = self.existing_attr_var(m[var.index()], *attr) else {
                    return false;
                };
                let Some(b) = self.existing_attr_var(m[other_var.index()], *other_attr) else {
                    return false;
                };
                self.net.entails(a, *op, b)
            }
        }
    }

    /// Entailment against a constant not yet interned: intern it (harmless
    /// — adds only chain edges among constants) and query.
    fn entails_against_new_const(
        &mut self,
        a: OrderVar,
        op: CmpOp,
        value: &gfd_graph::Value,
    ) -> bool {
        let c = self.net.const_var(value);
        self.net.entails(a, op, c)
    }

    /// Is the *negation* of the literal entailed at `m`?
    pub fn literal_refuted(&mut self, lit: &GedLiteral, m: &[NodeId]) -> bool {
        match lit {
            // Node classes can always be kept distinct in a model, but a
            // merge is never retracted — so an id literal is "refuted" only
            // in the sense of not being entailed; structurally it has no
            // negation in the store.
            GedLiteral::Id { .. } => false,
            GedLiteral::AttrConst {
                var,
                attr,
                op,
                value,
            } => {
                let Some(a) = self.existing_attr_var(m[var.index()], *attr) else {
                    return false;
                };
                let c = self.net.const_var(&value.resolve());
                self.net.entails(a, op.negate(), c)
            }
            GedLiteral::AttrAttr {
                var,
                attr,
                op,
                other_var,
                other_attr,
            } => {
                let Some(a) = self.existing_attr_var(m[var.index()], *attr) else {
                    return false;
                };
                let Some(b) = self.existing_attr_var(m[other_var.index()], *other_attr) else {
                    return false;
                };
                self.net.entails(a, op.negate(), b)
            }
        }
    }

    /// Assert the negation of an (attribute) literal. Panics on id
    /// literals — node classes are separated by construction, never by
    /// assertion.
    pub fn assert_negation(
        &mut self,
        lit: &GedLiteral,
        m: &[NodeId],
    ) -> Result<bool, StoreConflict> {
        match lit {
            GedLiteral::Id { .. } => {
                panic!("id literals are falsified by keeping nodes distinct, not asserted")
            }
            GedLiteral::AttrConst {
                var,
                attr,
                op,
                value,
            } => {
                let a = self.attr_var(m[var.index()], *attr);
                let c = self.net.const_var(&value.resolve());
                self.assert_cmp_tracked(a, op.negate(), c)
            }
            GedLiteral::AttrAttr {
                var,
                attr,
                op,
                other_var,
                other_attr,
            } => {
                let a = self.attr_var(m[var.index()], *attr);
                let b = self.attr_var(m[other_var.index()], *other_attr);
                self.assert_cmp_tracked(a, op.negate(), b)
            }
        }
    }

    /// Does the literal mention only attribute classes that already exist
    /// (so that omission cannot falsify it)?
    pub fn literal_grounded(&mut self, lit: &GedLiteral, m: &[NodeId]) -> bool {
        match lit {
            GedLiteral::Id { .. } => true,
            GedLiteral::AttrConst { var, attr, .. } => {
                self.existing_attr_var(m[var.index()], *attr).is_some()
            }
            GedLiteral::AttrAttr {
                var,
                attr,
                other_var,
                other_attr,
                ..
            } => {
                self.existing_attr_var(m[var.index()], *attr).is_some()
                    && self
                        .existing_attr_var(m[other_var.index()], *other_attr)
                        .is_some()
            }
        }
    }

    /// Full consistency check.
    pub fn check(&self) -> Result<(), StoreConflict> {
        self.net.check().map_err(StoreConflict::from)
    }

    /// Build the quotient graph: one node per merge class, edges and the
    /// class structure mapped through `find`. Returns the graph and the
    /// old-node → new-node mapping.
    pub fn quotient(&mut self, base: &Graph) -> (Graph, Vec<NodeId>) {
        let n = base.node_count();
        let mut root_to_new: FxHashMap<u32, NodeId> = FxHashMap::default();
        let mut mapping = vec![NodeId::new(0); n];
        let mut q = Graph::new();
        for v in base.nodes() {
            let root = self.find(v);
            let new = *root_to_new
                .entry(root.index() as u32)
                .or_insert_with(|| q.add_node(self.label[root.index()]));
            mapping[v.index()] = new;
        }
        for (src, label, dst) in base.edges() {
            q.add_edge(mapping[src.index()], label, mapping[dst.index()]);
        }
        (q, mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::Vocab;

    fn base_graph() -> (Graph, Vocab) {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let e = vocab.label("e");
        let mut g = Graph::new();
        let a = g.add_node(t);
        let b = g.add_node(t);
        let c = g.add_node(LabelId::WILDCARD);
        g.add_edge(a, e, b);
        g.add_edge(b, e, c);
        (g, vocab)
    }

    #[test]
    fn merge_is_idempotent_and_transitive() {
        let (g, _) = base_graph();
        let mut store = GedStore::new(&g);
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        let n2 = NodeId::new(2);
        assert!(store.merge_nodes(n0, n1).unwrap());
        assert!(!store.merge_nodes(n0, n1).unwrap());
        assert!(store.merge_nodes(n1, n2).unwrap());
        assert!(store.same_node(n0, n2));
    }

    #[test]
    fn wildcard_label_unifies_with_concrete() {
        let (g, mut vocab) = base_graph();
        let mut store = GedStore::new(&g);
        let t = vocab.label("t");
        // Node 2 is wildcard-labelled; merging with node 0 (t) unifies to t.
        store.merge_nodes(NodeId::new(2), NodeId::new(0)).unwrap();
        assert_eq!(store.label_of(NodeId::new(2)), t);
    }

    #[test]
    fn distinct_concrete_labels_clash() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let u = vocab.label("u");
        let mut g = Graph::new();
        g.add_node(t);
        g.add_node(u);
        let mut store = GedStore::new(&g);
        let err = store
            .merge_nodes(NodeId::new(0), NodeId::new(1))
            .unwrap_err();
        assert!(matches!(err, StoreConflict::LabelClash(..)));
    }

    #[test]
    fn merging_nodes_equates_their_attribute_classes() {
        let (g, mut vocab) = base_graph();
        let mut store = GedStore::new(&g);
        let a = vocab.attr("a");
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        let v0 = store.attr_var(n0, a);
        let v1 = store.attr_var(n1, a);
        assert_ne!(v0, v1);
        store.merge_nodes(n0, n1).unwrap();
        assert!(store.net().entails(v0, CmpOp::Eq, v1));
    }

    #[test]
    fn conflicting_constants_surface_through_merge() {
        let (g, mut vocab) = base_graph();
        let mut store = GedStore::new(&g);
        let a = vocab.attr("a");
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        let lit0 = GedLiteral::eq_const(gfd_graph::VarId::new(0), a, 1i64);
        let lit1 = GedLiteral::eq_const(gfd_graph::VarId::new(0), a, 2i64);
        store.assert_literal(&lit0, &[n0]).unwrap();
        store.assert_literal(&lit1, &[n1]).unwrap();
        // Each node separately is fine; merging forces 1 = 2.
        assert!(store.merge_nodes(n0, n1).is_err());
    }

    #[test]
    fn assert_literal_is_monotone_and_change_tracked() {
        let (g, mut vocab) = base_graph();
        let mut store = GedStore::new(&g);
        let a = vocab.attr("a");
        let x = gfd_graph::VarId::new(0);
        let m = [NodeId::new(0)];
        let lit = GedLiteral::cmp_const(x, a, CmpOp::Le, 10i64);
        let v_before = store.version();
        assert!(store.assert_literal(&lit, &m).unwrap());
        assert!(store.version() > v_before);
        // Re-asserting an entailed fact changes nothing.
        let v_mid = store.version();
        assert!(!store.assert_literal(&lit, &m).unwrap());
        assert_eq!(store.version(), v_mid);
    }

    #[test]
    fn entailment_and_refutation_of_order_literals() {
        let (g, mut vocab) = base_graph();
        let mut store = GedStore::new(&g);
        let a = vocab.attr("a");
        let x = gfd_graph::VarId::new(0);
        let m = [NodeId::new(0)];
        store
            .assert_literal(&GedLiteral::cmp_const(x, a, CmpOp::Lt, 5i64), &m)
            .unwrap();
        assert!(store.literal_entailed(&GedLiteral::cmp_const(x, a, CmpOp::Lt, 7i64), &m));
        assert!(store.literal_entailed(&GedLiteral::cmp_const(x, a, CmpOp::Le, 5i64), &m));
        assert!(store.literal_refuted(&GedLiteral::cmp_const(x, a, CmpOp::Gt, 5i64), &m));
        assert!(!store.literal_entailed(&GedLiteral::cmp_const(x, a, CmpOp::Lt, 3i64), &m));
        assert!(!store.literal_refuted(&GedLiteral::cmp_const(x, a, CmpOp::Lt, 3i64), &m));
    }

    #[test]
    fn ungrounded_literals_are_neither_entailed_nor_refuted() {
        let (g, mut vocab) = base_graph();
        let mut store = GedStore::new(&g);
        let a = vocab.attr("missing");
        let x = gfd_graph::VarId::new(0);
        let m = [NodeId::new(0)];
        let lit = GedLiteral::eq_const(x, a, 1i64);
        assert!(!store.literal_grounded(&lit, &m));
        assert!(!store.literal_entailed(&lit, &m));
        assert!(!store.literal_refuted(&lit, &m));
    }

    #[test]
    fn assert_negation_flips_the_operator() {
        let (g, mut vocab) = base_graph();
        let mut store = GedStore::new(&g);
        let a = vocab.attr("a");
        let x = gfd_graph::VarId::new(0);
        let m = [NodeId::new(0)];
        let lit = GedLiteral::cmp_const(x, a, CmpOp::Lt, 5i64);
        store.assert_negation(&lit, &m).unwrap();
        assert!(store.literal_entailed(&GedLiteral::cmp_const(x, a, CmpOp::Ge, 5i64), &m));
        assert!(store.literal_refuted(&lit, &m));
    }

    #[test]
    fn quotient_rewires_edges_through_merges() {
        let (g, _) = base_graph();
        let mut store = GedStore::new(&g);
        store.merge_nodes(NodeId::new(0), NodeId::new(2)).unwrap();
        let (q, mapping) = store.quotient(&g);
        assert_eq!(q.node_count(), 2);
        assert_eq!(mapping[0], mapping[2]);
        // Edges 0→1 and 1→2 become m0→m1 and m1→m0.
        assert_eq!(q.edge_count(), 2);
    }

    #[test]
    fn quotient_without_merges_is_isomorphic() {
        let (g, _) = base_graph();
        let mut store = GedStore::new(&g);
        let (q, mapping) = store.quotient(&g);
        assert_eq!(q.node_count(), g.node_count());
        assert_eq!(q.edge_count(), g.edge_count());
        let mut sorted = mapping.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), g.node_count());
    }
}
