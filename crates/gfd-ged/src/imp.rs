//! GED implication: `Σ |= ψ` with disjunction, order predicates and id
//! literals.
//!
//! The algorithm generalizes `SeqImp` (§VI-B). Build the canonical graph
//! `G^X_Q` of ψ (the pattern as a graph, variable `i` = node `i`) and
//! assert the premise `X` into a [`GedStore`](crate::store::GedStore); if `X` is already
//! inconsistent, ψ holds vacuously. Then run the shared enforcement scan
//! (`crate::chase`) — but where satisfiability asks *does some branch
//! survive*, implication asks *does every branch reach the goal*:
//!
//! * an inconsistent branch is vacuously fine (the paper's "conflict"
//!   case of Corollary 4);
//! * at a quiescent leaf, the goal holds when some consequence disjunct of
//!   ψ is fully entailed (the `Y ⊆ EqH` case);
//! * a quiescent leaf where every disjunct can be *simultaneously
//!   falsified* by the generic minimal model — omitted attributes,
//!   unmerged nodes, refuted facts — is a counterexample: `Σ ̸|= ψ`;
//! * a disjunct blocked only by an **undetermined grounded attribute
//!   literal** (possible with order predicates, e.g. `Y = x.A ≤ 5 ∨
//!   x.A ≥ 3` which every model satisfies) is resolved by branching both
//!   ways; implication must hold in both.

//!
//! Since the scheduler port, the branch search lives in [`crate::driver`]
//! (each open branch is a work unit on the shared `gfd-runtime`
//! scheduler) and [`ged_implies`] is the `workers = 1` instantiation.

use crate::driver::{ged_implies_with_config, GedReasonConfig};
use crate::ged::{Ged, GedSet};

/// The result of an implication check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GedImpOutcome {
    /// `Σ |= ψ`.
    Implied,
    /// A counterexample family exists.
    NotImplied,
}

impl GedImpOutcome {
    /// Is ψ implied?
    pub fn is_implied(self) -> bool {
        matches!(self, GedImpOutcome::Implied)
    }
}

/// Decide whether `sigma` implies `phi` — the sequential (`workers = 1`)
/// instantiation of the shared scheduler driver.
///
/// # Panics
///
/// If the default branch budget (10⁶) is exhausted. Use
/// [`ged_implies_with_config`]
/// to choose the budget and observe exhaustion as `outcome: None`.
pub fn ged_implies(sigma: &GedSet, phi: &Ged) -> GedImpOutcome {
    ged_implies_with_config(sigma, phi, &GedReasonConfig::default())
        .outcome
        .expect("GED implication search exceeded the branch budget")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ged::{CmpOp, GedLiteral, GedSet};
    use gfd_graph::{LabelId, Pattern, Vocab};

    fn wildcard_node() -> Pattern {
        let mut p = Pattern::new();
        p.add_node(LabelId::WILDCARD, "x");
        p
    }

    /// `Σ = {∅ → x.A = 1}` implies `x.A = 1` and `x.A ≥ 1`.
    #[test]
    fn constant_consequence_is_implied_with_order() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let x = gfd_graph::VarId::new(0);
        let sigma = GedSet::from_vec(vec![Ged::conjunctive(
            "r",
            wildcard_node(),
            vec![],
            vec![GedLiteral::eq_const(x, a, 1i64)],
        )]);
        let eq = Ged::conjunctive(
            "q1",
            wildcard_node(),
            vec![],
            vec![GedLiteral::eq_const(x, a, 1i64)],
        );
        let ge = Ged::conjunctive(
            "q2",
            wildcard_node(),
            vec![],
            vec![GedLiteral::cmp_const(x, a, CmpOp::Ge, 1i64)],
        );
        let gt0 = Ged::conjunctive(
            "q3",
            wildcard_node(),
            vec![],
            vec![GedLiteral::cmp_const(x, a, CmpOp::Gt, 0i64)],
        );
        let wrong = Ged::conjunctive(
            "q4",
            wildcard_node(),
            vec![],
            vec![GedLiteral::eq_const(x, a, 2i64)],
        );
        assert!(ged_implies(&sigma, &eq).is_implied());
        assert!(ged_implies(&sigma, &ge).is_implied());
        assert!(ged_implies(&sigma, &gt0).is_implied());
        assert!(!ged_implies(&sigma, &wrong).is_implied());
    }

    /// The paper's Example 8, ϕ14 flavour: X inconsistent with Σ ⇒
    /// implied.
    #[test]
    fn inconsistent_premise_means_implied() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let b = vocab.attr("B");
        let x = gfd_graph::VarId::new(0);
        let sigma = GedSet::from_vec(vec![Ged::conjunctive(
            "forces-one",
            wildcard_node(),
            vec![],
            vec![GedLiteral::eq_const(x, a, 1i64)],
        )]);
        // X says x.A = 0: together with Σ (x.A = 1), inconsistent.
        let phi = Ged::conjunctive(
            "phi14",
            wildcard_node(),
            vec![GedLiteral::eq_const(x, a, 0i64)],
            vec![GedLiteral::eq_const(x, b, 2i64)],
        );
        assert!(ged_implies(&sigma, &phi).is_implied());
    }

    /// Transitive deduction through two rules (Example 8, ϕ13 flavour).
    #[test]
    fn chained_rules_deduce_consequence() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let b = vocab.attr("B");
        let c = vocab.attr("C");
        let x = gfd_graph::VarId::new(0);
        let r1 = Ged::conjunctive(
            "r1",
            wildcard_node(),
            vec![GedLiteral::eq_const(x, a, 1i64)],
            vec![GedLiteral::eq_const(x, b, 2i64)],
        );
        let r2 = Ged::conjunctive(
            "r2",
            wildcard_node(),
            vec![GedLiteral::eq_const(x, b, 2i64)],
            vec![GedLiteral::eq_const(x, c, 3i64)],
        );
        let sigma = GedSet::from_vec(vec![r1, r2]);
        let phi = Ged::conjunctive(
            "phi",
            wildcard_node(),
            vec![GedLiteral::eq_const(x, a, 1i64)],
            vec![GedLiteral::eq_const(x, c, 3i64)],
        );
        assert!(ged_implies(&sigma, &phi).is_implied());
        // Without r2 the chain breaks.
        let sigma1 = GedSet::from_vec(vec![Ged::conjunctive(
            "r1",
            wildcard_node(),
            vec![GedLiteral::eq_const(x, a, 1i64)],
            vec![GedLiteral::eq_const(x, b, 2i64)],
        )]);
        assert!(!ged_implies(&sigma1, &phi).is_implied());
    }

    /// A tautological disjunction is implied by the empty Σ — this is the
    /// case that *requires* Y-literal branching.
    #[test]
    fn tautological_disjunction_is_implied_by_nothing() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let x = gfd_graph::VarId::new(0);
        // Premise forces x.A to exist; consequence x.A ≤ 5 ∨ x.A ≥ 3 is a
        // tautology over any value.
        let phi = Ged::new(
            "taut",
            wildcard_node(),
            vec![GedLiteral::cmp_const(x, a, CmpOp::Ge, 0i64)],
            vec![
                vec![GedLiteral::cmp_const(x, a, CmpOp::Le, 5i64)],
                vec![GedLiteral::cmp_const(x, a, CmpOp::Ge, 3i64)],
            ],
        );
        assert!(ged_implies(&GedSet::new(), &phi).is_implied());
        // A non-tautological disjunction is not.
        let narrow = Ged::new(
            "narrow",
            wildcard_node(),
            vec![GedLiteral::cmp_const(x, a, CmpOp::Ge, 0i64)],
            vec![
                vec![GedLiteral::cmp_const(x, a, CmpOp::Le, 3i64)],
                vec![GedLiteral::cmp_const(x, a, CmpOp::Ge, 5i64)],
            ],
        );
        assert!(!ged_implies(&GedSet::new(), &narrow).is_implied());
    }

    /// Keys: Σ = { same email → same entity } implies the two-hop variant.
    #[test]
    fn key_implication_via_node_merging() {
        let mut vocab = Vocab::new();
        let person = vocab.label("person");
        let email = vocab.attr("email");
        let mk2 = || {
            let mut p = Pattern::new();
            p.add_node(person, "x");
            p.add_node(person, "y");
            p
        };
        let x = gfd_graph::VarId::new(0);
        let y = gfd_graph::VarId::new(1);
        let key = Ged::conjunctive(
            "email-key",
            mk2(),
            vec![GedLiteral::eq_attr(x, email, y, email)],
            vec![GedLiteral::id(x, y)],
        );
        let sigma = GedSet::from_vec(vec![key]);

        // Three-variable transitivity: x.email = y.email ∧ y.email =
        // z.email → x.id = z.id.
        let mut p3 = Pattern::new();
        p3.add_node(person, "x");
        p3.add_node(person, "y");
        p3.add_node(person, "z");
        let z = gfd_graph::VarId::new(2);
        let phi = Ged::conjunctive(
            "trans",
            p3,
            vec![
                GedLiteral::eq_attr(x, email, y, email),
                GedLiteral::eq_attr(y, email, z, email),
            ],
            vec![GedLiteral::id(x, z)],
        );
        assert!(ged_implies(&sigma, &phi).is_implied());

        // Without the key, no merging happens.
        assert!(!ged_implies(&GedSet::new(), &phi).is_implied());
    }

    /// An id consequence that Σ cannot force is not implied.
    #[test]
    fn unforced_id_is_not_implied() {
        let mut vocab = Vocab::new();
        let person = vocab.label("person");
        let mut p = Pattern::new();
        p.add_node(person, "x");
        p.add_node(person, "y");
        let x = gfd_graph::VarId::new(0);
        let y = gfd_graph::VarId::new(1);
        let phi = Ged::conjunctive("merge-all", p, vec![], vec![GedLiteral::id(x, y)]);
        assert!(!ged_implies(&GedSet::new(), &phi).is_implied());
    }

    /// Denial GEDs in Σ make any premise-sharing ψ vacuous.
    #[test]
    fn denial_in_sigma_blocks_the_premise() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let b = vocab.attr("B");
        let x = gfd_graph::VarId::new(0);
        let sigma = GedSet::from_vec(vec![Ged::denial(
            "no-a1",
            wildcard_node(),
            vec![GedLiteral::eq_const(x, a, 1i64)],
        )]);
        let phi = Ged::conjunctive(
            "phi",
            wildcard_node(),
            vec![GedLiteral::eq_const(x, a, 1i64)],
            vec![GedLiteral::eq_const(x, b, 9i64)],
        );
        // X = {x.A = 1} fires the denial: conflict, so implied.
        assert!(ged_implies(&sigma, &phi).is_implied());
    }

    /// Order-predicate premises interact with Σ's bounds.
    #[test]
    fn order_premise_conflicts_with_sigma_bound() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let b = vocab.attr("B");
        let x = gfd_graph::VarId::new(0);
        // Σ: every node has x.A < 5.
        let sigma = GedSet::from_vec(vec![Ged::conjunctive(
            "bound",
            wildcard_node(),
            vec![],
            vec![GedLiteral::cmp_const(x, a, CmpOp::Lt, 5i64)],
        )]);
        // ψ: x.A > 7 → x.B = 1. Premise conflicts with Σ: implied.
        let phi = Ged::conjunctive(
            "phi",
            wildcard_node(),
            vec![GedLiteral::cmp_const(x, a, CmpOp::Gt, 7i64)],
            vec![GedLiteral::eq_const(x, b, 1i64)],
        );
        assert!(ged_implies(&sigma, &phi).is_implied());
        // ψ′: x.A > 2 → x.B = 1 is consistent with the bound but B is
        // never forced: not implied.
        let phi2 = Ged::conjunctive(
            "phi2",
            wildcard_node(),
            vec![GedLiteral::cmp_const(x, a, CmpOp::Gt, 2i64)],
            vec![GedLiteral::eq_const(x, b, 1i64)],
        );
        assert!(!ged_implies(&sigma, &phi2).is_implied());
    }

    /// Disjunctive Σ-rules require the goal on every branch.
    #[test]
    fn disjunctive_sigma_implies_only_common_consequences() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let b = vocab.attr("B");
        let x = gfd_graph::VarId::new(0);
        // Σ: ∅ → (x.A = 1 ∧ x.B = 1) ∨ (x.A = 2 ∧ x.B = 1).
        let sigma = GedSet::from_vec(vec![Ged::new(
            "dis",
            wildcard_node(),
            vec![],
            vec![
                vec![
                    GedLiteral::eq_const(x, a, 1i64),
                    GedLiteral::eq_const(x, b, 1i64),
                ],
                vec![
                    GedLiteral::eq_const(x, a, 2i64),
                    GedLiteral::eq_const(x, b, 1i64),
                ],
            ],
        )]);
        // x.B = 1 holds on both branches: implied.
        let common = Ged::conjunctive(
            "common",
            wildcard_node(),
            vec![],
            vec![GedLiteral::eq_const(x, b, 1i64)],
        );
        assert!(ged_implies(&sigma, &common).is_implied());
        // x.A = 1 holds on one branch only: not implied.
        let partial = Ged::conjunctive(
            "partial",
            wildcard_node(),
            vec![],
            vec![GedLiteral::eq_const(x, a, 1i64)],
        );
        assert!(!ged_implies(&sigma, &partial).is_implied());
        // The disjunction x.A = 1 ∨ x.A = 2 is implied.
        let either = Ged::new(
            "either",
            wildcard_node(),
            vec![],
            vec![
                vec![GedLiteral::eq_const(x, a, 1i64)],
                vec![GedLiteral::eq_const(x, a, 2i64)],
            ],
        );
        assert!(ged_implies(&sigma, &either).is_implied());
    }
}
