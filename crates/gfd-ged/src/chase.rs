//! The shared deterministic-enforcement scan used by both GED
//! satisfiability ([`crate::sat`]) and implication ([`crate::imp`]).
//!
//! One call to [`fixpoint_round`] repeatedly re-quotients the canonical
//! graph, matches every GED pattern, and enforces single-disjunct
//! consequences whose premise is entailed, until nothing changes. It then
//! reports what (if anything) requires *branching*: a fired disjunctive
//! consequence, or an undetermined grounded premise literal. The two
//! callers differ only in the quantifier they apply over branches —
//! existential for satisfiability, universal for implication.

use crate::ged::{Ged, GedLiteral, GedSet};
use crate::store::GedStore;
use gfd_graph::{Graph, LabelIndex, NodeId};
use gfd_match::find_all_matches;
use rustc_hash::FxHashSet;

/// What the fixpoint scan decided must happen next.
pub(crate) enum NextStep {
    /// The branch is inconsistent (a denial fired or an assertion
    /// conflicted).
    Fail,
    /// Fixpoint reached; nothing to branch on.
    Quiescent,
    /// Branch over the consequence disjuncts of GED `.0` at match `.1`.
    ChooseDisjunct(usize, Vec<NodeId>),
    /// Branch on premise literal `.1` of GED `.0` at match `.2`.
    BranchPremise(usize, usize, Vec<NodeId>),
}

enum MatchStep {
    Ok,
    Fail,
    Choice,
    Premise(usize),
}

/// Run deterministic enforcement to quiescence; see the module docs.
pub(crate) fn fixpoint_round(sigma: &GedSet, base: &Graph, store: &mut GedStore) -> NextStep {
    loop {
        let version_before = store.version();
        let (quotient, mapping) = store.quotient(base);
        // Representative base node per quotient node.
        let sentinel = NodeId::new(u32::MAX as usize);
        let mut rep = vec![sentinel; quotient.node_count()];
        for v in base.nodes() {
            let q = mapping[v.index()];
            if rep[q.index()] == sentinel {
                rep[q.index()] = v;
            }
        }
        let index = LabelIndex::build(&quotient);

        let mut pending_choice: Option<(usize, Vec<NodeId>)> = None;
        let mut pending_premise: Option<(usize, usize, Vec<NodeId>)> = None;
        let mut seen: FxHashSet<(usize, Vec<NodeId>)> = FxHashSet::default();

        'scan: for (id, ged) in sigma.iter() {
            for m in find_all_matches(&quotient, &index, &ged.pattern) {
                let mb: Vec<NodeId> = m.iter().map(|qn| rep[qn.index()]).collect();
                if !seen.insert((id.index(), mb.clone())) {
                    continue;
                }
                match process_match(store, ged, &mb) {
                    MatchStep::Ok => {}
                    MatchStep::Fail => return NextStep::Fail,
                    MatchStep::Choice => {
                        if pending_choice.is_none() {
                            pending_choice = Some((id.index(), mb));
                        }
                    }
                    MatchStep::Premise(lit_idx) => {
                        if pending_premise.is_none() {
                            pending_premise = Some((id.index(), lit_idx, mb));
                        }
                    }
                }
                // Any store change may invalidate the quotient matching
                // (node merges rewire it); restart the scan.
                if store.version() != version_before {
                    break 'scan;
                }
            }
        }

        if store.version() != version_before {
            continue;
        }
        if let Some((g, m)) = pending_choice {
            return NextStep::ChooseDisjunct(g, m);
        }
        if let Some((g, l, m)) = pending_premise {
            return NextStep::BranchPremise(g, l, m);
        }
        return NextStep::Quiescent;
    }
}

/// Enforce one GED at one (base-representative) match.
fn process_match(store: &mut GedStore, ged: &Ged, mb: &[NodeId]) -> MatchStep {
    // Premise status: entailed / refuted / falsifiable / undetermined.
    let mut undetermined: Option<usize> = None;
    for (i, lit) in ged.premise.iter().enumerate() {
        if store.literal_entailed(lit, mb) {
            continue;
        }
        if store.literal_refuted(lit, mb) {
            return MatchStep::Ok; // premise dead
        }
        match lit {
            // Id premises are falsified by keeping the nodes distinct —
            // the minimal model never merges what the chase did not merge.
            GedLiteral::Id { .. } => return MatchStep::Ok,
            _ => {
                if store.literal_grounded(lit, mb) {
                    if undetermined.is_none() {
                        undetermined = Some(i);
                    }
                } else {
                    // Absent attribute: falsified by omission (§III
                    // schemaless semantics).
                    return MatchStep::Ok;
                }
            }
        }
    }
    if let Some(i) = undetermined {
        return MatchStep::Premise(i);
    }
    // Premise entailed: enforce the consequence.
    if ged
        .disjuncts
        .iter()
        .any(|d| d.iter().all(|lit| store.literal_entailed(lit, mb)))
    {
        return MatchStep::Ok; // already satisfied
    }
    match ged.disjuncts.len() {
        0 => MatchStep::Fail, // denial fired
        1 => {
            for lit in &ged.disjuncts[0] {
                if store.assert_literal(lit, mb).is_err() {
                    return MatchStep::Fail;
                }
            }
            MatchStep::Ok
        }
        _ => MatchStep::Choice,
    }
}
