//! Direct GED validation `G |= ψ` on data graphs.

use crate::ged::{Ged, GedLiteral, GedSet};
use gfd_graph::{GfdId, Graph, LabelIndex, NodeId};
use gfd_match::{HomSearch, MatchPlan, SearchLimits};
use std::ops::ControlFlow;

/// A witnessed GED violation.
#[derive(Clone, Debug)]
pub struct GedViolation {
    /// The violated GED.
    pub ged: GfdId,
    /// The violating match.
    pub m: Box<[NodeId]>,
}

/// Does match `m` satisfy a single GED literal on concrete data?
///
/// Missing attributes follow the paper's semantics: a literal mentioning a
/// missing attribute is *not satisfied* (so in a premise it makes the GED
/// vacuous; in a consequence it is a violation).
pub fn ged_literal_holds(graph: &Graph, lit: &GedLiteral, m: &[NodeId]) -> bool {
    match lit {
        GedLiteral::AttrConst {
            var,
            attr,
            op,
            value,
        } => graph
            .attr(m[var.index()], *attr)
            .is_some_and(|v| op.eval_id(v, *value)),
        GedLiteral::AttrAttr {
            var,
            attr,
            op,
            other_var,
            other_attr,
        } => {
            let left = graph.attr(m[var.index()], *attr);
            let right = graph.attr(m[other_var.index()], *other_attr);
            matches!((left, right), (Some(a), Some(b)) if op.eval_id(a, b))
        }
        GedLiteral::Id { left, right } => m[left.index()] == m[right.index()],
    }
}

/// Does `m` satisfy the premise of `ged`?
pub fn ged_premise_holds(graph: &Graph, ged: &Ged, m: &[NodeId]) -> bool {
    ged.premise.iter().all(|l| ged_literal_holds(graph, l, m))
}

/// Does `m` satisfy the (disjunctive) consequence of `ged`?
pub fn ged_consequence_holds(graph: &Graph, ged: &Ged, m: &[NodeId]) -> bool {
    ged.disjuncts
        .iter()
        .any(|dis| dis.iter().all(|l| ged_literal_holds(graph, l, m)))
}

/// `G |= ψ`: every match satisfying the premise satisfies some disjunct.
pub fn ged_graph_satisfies(graph: &Graph, ged: &Ged) -> bool {
    let index = LabelIndex::build(graph);
    ged_graph_satisfies_indexed(graph, &index, ged)
}

/// [`ged_graph_satisfies`] with a prebuilt index.
pub fn ged_graph_satisfies_indexed(graph: &Graph, index: &LabelIndex, ged: &Ged) -> bool {
    let plan = MatchPlan::build(&ged.pattern, None, Some(index));
    let mut ok = true;
    let mut search = HomSearch::new(graph, index, &ged.pattern, &plan);
    search.run(
        |m| {
            if ged_premise_holds(graph, ged, &m) && !ged_consequence_holds(graph, ged, &m) {
                ok = false;
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        },
        SearchLimits::none(),
    );
    ok
}

/// Collect up to `limit` GED violations in `graph`.
pub fn ged_find_violations(graph: &Graph, sigma: &GedSet, limit: usize) -> Vec<GedViolation> {
    let index = LabelIndex::build(graph);
    let mut out = Vec::new();
    for (id, ged) in sigma.iter() {
        if out.len() >= limit {
            break;
        }
        let plan = MatchPlan::build(&ged.pattern, None, Some(&index));
        let mut search = HomSearch::new(graph, &index, &ged.pattern, &plan);
        search.run(
            |m| {
                if ged_premise_holds(graph, ged, &m) && !ged_consequence_holds(graph, ged, &m) {
                    out.push(GedViolation { ged: id, m });
                    if out.len() >= limit {
                        return ControlFlow::Break(());
                    }
                }
                ControlFlow::Continue(())
            },
            SearchLimits::none(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ged::{CmpOp, GedLiteral};
    use gfd_graph::{Pattern, Value, Vocab};

    /// Two `person` nodes connected by `knows`, with ages 15 and 30.
    fn two_people() -> (Graph, Vocab) {
        let mut vocab = Vocab::new();
        let person = vocab.label("person");
        let knows = vocab.label("knows");
        let age = vocab.attr("age");
        let mut g = Graph::new();
        let a = g.add_node(person);
        let b = g.add_node(person);
        g.add_edge(a, knows, b);
        g.set_attr(a, age, Value::int(15));
        g.set_attr(b, age, Value::int(30));
        (g, vocab)
    }

    fn knows_pattern(vocab: &mut Vocab) -> Pattern {
        let person = vocab.label("person");
        let knows = vocab.label("knows");
        let mut p = Pattern::new();
        let x = p.add_node(person, "x");
        let y = p.add_node(person, "y");
        p.add_edge(x, knows, y);
        p
    }

    #[test]
    fn order_predicate_detects_minor() {
        let (g, mut vocab) = two_people();
        let p = knows_pattern(&mut vocab);
        let age = vocab.attr("age");
        let x = p.var_by_name("x").unwrap();
        // Everyone in a knows-relation must be an adult.
        let ged = Ged::conjunctive(
            "adults-only",
            p,
            vec![],
            vec![GedLiteral::cmp_const(x, age, CmpOp::Ge, 18i64)],
        );
        assert!(!ged_graph_satisfies(&g, &ged));
    }

    #[test]
    fn disjunction_allows_either_branch() {
        let (g, mut vocab) = two_people();
        let p = knows_pattern(&mut vocab);
        let age = vocab.attr("age");
        let x = p.var_by_name("x").unwrap();
        // Age must be < 18 or ≥ 18: trivially satisfied by any aged node.
        let ged = Ged::new(
            "total",
            p,
            vec![],
            vec![
                vec![GedLiteral::cmp_const(x, age, CmpOp::Lt, 18i64)],
                vec![GedLiteral::cmp_const(x, age, CmpOp::Ge, 18i64)],
            ],
        );
        assert!(ged_graph_satisfies(&g, &ged));
    }

    #[test]
    fn disjunction_fails_when_no_branch_holds() {
        let (g, mut vocab) = two_people();
        let p = knows_pattern(&mut vocab);
        let age = vocab.attr("age");
        let x = p.var_by_name("x").unwrap();
        let ged = Ged::new(
            "narrow",
            p,
            vec![],
            vec![
                vec![GedLiteral::eq_const(x, age, 40i64)],
                vec![GedLiteral::eq_const(x, age, 50i64)],
            ],
        );
        assert!(!ged_graph_satisfies(&g, &ged));
        let sigma = GedSet::from_vec(vec![ged]);
        let violations = ged_find_violations(&g, &sigma, 10);
        // Both the (a,b) match and any other premise-holding match violate;
        // with one knows edge there is exactly one match.
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn id_literal_on_data_compares_node_identity() {
        let (mut g, mut vocab) = two_people();
        let knows = vocab.label("knows");
        let p = knows_pattern(&mut vocab);
        let x = p.var_by_name("x").unwrap();
        let y = p.var_by_name("y").unwrap();
        // "knows is irreflexive": a self-loop violates x.id != y.id...
        // expressed as denial with premise x.id = y.id.
        let ged = Ged::denial("no-self-knows", p, vec![GedLiteral::id(x, y)]);
        assert!(ged_graph_satisfies(&g, &ged));
        g.add_edge(NodeId::new(0), knows, NodeId::new(0));
        assert!(!ged_graph_satisfies(&g, &ged));
    }

    #[test]
    fn missing_attribute_in_premise_is_vacuous() {
        let (g, mut vocab) = two_people();
        let p = knows_pattern(&mut vocab);
        let missing = vocab.attr("salary");
        let x = p.var_by_name("x").unwrap();
        let ged = Ged::conjunctive(
            "vacuous",
            p,
            vec![GedLiteral::cmp_const(x, missing, CmpOp::Gt, 0i64)],
            vec![GedLiteral::eq_const(x, missing, 1i64)],
        );
        assert!(ged_graph_satisfies(&g, &ged));
    }

    #[test]
    fn missing_attribute_in_consequence_violates() {
        let (g, mut vocab) = two_people();
        let p = knows_pattern(&mut vocab);
        let missing = vocab.attr("salary");
        let x = p.var_by_name("x").unwrap();
        let ged = Ged::conjunctive(
            "must-have-salary",
            p,
            vec![],
            vec![GedLiteral::cmp_const(x, missing, CmpOp::Ge, 0i64)],
        );
        assert!(!ged_graph_satisfies(&g, &ged));
    }

    #[test]
    fn ne_predicate_works_between_attrs() {
        let (g, mut vocab) = two_people();
        let p = knows_pattern(&mut vocab);
        let age = vocab.attr("age");
        let x = p.var_by_name("x").unwrap();
        let y = p.var_by_name("y").unwrap();
        let ged = Ged::conjunctive(
            "distinct-ages",
            p,
            vec![],
            vec![GedLiteral::cmp_attr(x, age, CmpOp::Ne, y, age)],
        );
        assert!(ged_graph_satisfies(&g, &ged));
        // Make ages equal: now violated.
        let mut g2 = g.clone();
        g2.set_attr(NodeId::new(1), age, Value::int(15));
        assert!(!ged_graph_satisfies(&g2, &ged));
    }
}
