//! Property-based tests for the GED substrates.
//!
//! * the order network's conflict check is sound: any constraint system
//!   it accepts has a concrete integer assignment (when one is extracted)
//!   satisfying every asserted fact;
//! * entailment is sound with respect to that assignment;
//! * the store's node merging maintains union-find laws and label
//!   unification;
//! * GED validation agrees with a naive per-literal evaluator.

#![cfg(test)]

use crate::ged::CmpOp;
use crate::order::{solve_integers, OrderNet, OrderVar};
use proptest::prelude::*;

/// A random constraint: (left var index, op, right var index) over a
/// fixed pool of `vars` variables and `consts` interned constants.
#[derive(Clone, Debug)]
enum Constraint {
    VarVar(usize, CmpOp, usize),
    VarConst(usize, CmpOp, i64),
}

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_constraints(vars: usize) -> impl Strategy<Value = Vec<Constraint>> {
    proptest::collection::vec(
        prop_oneof![
            ((0..vars), arb_op(), (0..vars)).prop_map(|(a, op, b)| Constraint::VarVar(a, op, b)),
            ((0..vars), arb_op(), -3i64..4).prop_map(|(a, op, c)| Constraint::VarConst(a, op, c)),
        ],
        0..12,
    )
}

/// Build a network from the constraint list.
fn build(vars: usize, constraints: &[Constraint]) -> (OrderNet, Vec<OrderVar>) {
    let mut net = OrderNet::new();
    let vs: Vec<OrderVar> = (0..vars).map(|_| net.new_var()).collect();
    for c in constraints {
        match c {
            Constraint::VarVar(a, op, b) => net.assert_cmp(vs[*a], *op, vs[*b]),
            Constraint::VarConst(a, op, k) => {
                let c = net.const_var(&gfd_graph::Value::int(*k));
                net.assert_cmp(vs[*a], *op, c);
            }
        }
    }
    (net, vs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any extracted integer assignment satisfies every asserted
    /// constraint — so `check()` accepting was correct for that system.
    #[test]
    fn extracted_assignment_satisfies_all_constraints(
        constraints in arb_constraints(5),
    ) {
        let (net, vs) = build(5, &constraints);
        if net.check().is_err() {
            return Ok(()); // rejected; nothing to verify here
        }
        let Some(assignment) = solve_integers(&net) else {
            return Ok(()); // dense-only or integer-tight: allowed to decline
        };
        for c in &constraints {
            match c {
                Constraint::VarVar(a, op, b) => {
                    let (x, y) = (&assignment[vs[*a].index()], &assignment[vs[*b].index()]);
                    prop_assert!(
                        op.eval(x, y),
                        "{x:?} {op:?} {y:?} violated by assignment"
                    );
                }
                Constraint::VarConst(a, op, k) => {
                    let x = &assignment[vs[*a].index()];
                    prop_assert!(
                        op.eval(x, &gfd_graph::Value::int(*k)),
                        "{x:?} {op:?} {k} violated by assignment"
                    );
                }
            }
        }
    }

    /// Entailment soundness: whatever the network entails is true in the
    /// extracted assignment.
    #[test]
    fn entailment_is_sound_for_the_assignment(
        constraints in arb_constraints(4),
        qa in 0usize..4,
        qb in 0usize..4,
    ) {
        let (net, vs) = build(4, &constraints);
        if net.check().is_err() {
            return Ok(());
        }
        let Some(assignment) = solve_integers(&net) else {
            return Ok(());
        };
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            if net.entails(vs[qa], op, vs[qb]) {
                let (x, y) = (&assignment[vs[qa].index()], &assignment[vs[qb].index()]);
                prop_assert!(
                    op.eval(x, y),
                    "entailed {op:?} but assignment has {x:?} vs {y:?}"
                );
            }
        }
    }

    /// Conflict monotonicity: adding constraints never turns an
    /// inconsistent network consistent.
    #[test]
    fn conflicts_are_monotone(
        constraints in arb_constraints(4),
        extra in arb_constraints(4),
    ) {
        let (net, _) = build(4, &constraints);
        if net.check().is_ok() {
            return Ok(());
        }
        let mut all = constraints.clone();
        all.extend(extra);
        let (bigger, _) = build(4, &all);
        prop_assert!(bigger.check().is_err(), "conflict vanished after adding facts");
    }

    /// Tautologies entailed reflexively; contradictions never.
    #[test]
    fn reflexive_entailments(constraints in arb_constraints(4), q in 0usize..4) {
        let (net, vs) = build(4, &constraints);
        prop_assert!(net.entails(vs[q], CmpOp::Eq, vs[q]));
        prop_assert!(net.entails(vs[q], CmpOp::Le, vs[q]));
        prop_assert!(net.entails(vs[q], CmpOp::Ge, vs[q]));
        prop_assert!(!net.entails(vs[q], CmpOp::Lt, vs[q]) || net.check().is_err());
        prop_assert!(!net.entails(vs[q], CmpOp::Ne, vs[q]) || net.check().is_err());
    }
}

mod store_props {
    use super::*;
    use crate::store::GedStore;
    use gfd_graph::{Graph, LabelId, NodeId};

    // Random merge sequences on a wildcard-labelled graph keep
    // union-find laws: reflexive, symmetric, transitive closure of the
    // merge pairs.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn merges_compute_the_transitive_closure(
            pairs in proptest::collection::vec((0usize..8, 0usize..8), 0..12),
        ) {
            let mut g = Graph::new();
            for _ in 0..8 {
                g.add_node(LabelId::WILDCARD);
            }
            let mut store = GedStore::new(&g);
            for &(a, b) in &pairs {
                store
                    .merge_nodes(NodeId::new(a), NodeId::new(b))
                    .expect("wildcard labels never clash");
            }
            // Reference closure: brute-force union-find.
            let mut class: Vec<usize> = (0..8).collect();
            for &(a, b) in &pairs {
                let (ca, cb) = (class[a], class[b]);
                if ca != cb {
                    for c in class.iter_mut() {
                        if *c == cb {
                            *c = ca;
                        }
                    }
                }
            }
            for i in 0..8 {
                for j in 0..8 {
                    prop_assert_eq!(
                        store.same_node(NodeId::new(i), NodeId::new(j)),
                        class[i] == class[j],
                        "divergence at ({}, {})", i, j
                    );
                }
            }
        }

        /// The quotient graph has exactly one node per merge class and
        /// preserves every edge image.
        #[test]
        fn quotient_counts_classes(
            pairs in proptest::collection::vec((0usize..6, 0usize..6), 0..8),
            edges in proptest::collection::vec((0usize..6, 0usize..6), 0..8),
        ) {
            let mut g = Graph::new();
            for _ in 0..6 {
                g.add_node(LabelId::WILDCARD);
            }
            let e = LabelId(3);
            for &(s, d) in &edges {
                g.add_edge(NodeId::new(s), e, NodeId::new(d));
            }
            let mut store = GedStore::new(&g);
            for &(a, b) in &pairs {
                store.merge_nodes(NodeId::new(a), NodeId::new(b)).unwrap();
            }
            let (q, mapping) = store.quotient(&g);
            let mut reps: Vec<NodeId> = (0..6).map(|i| mapping[i]).collect();
            reps.sort();
            reps.dedup();
            prop_assert_eq!(q.node_count(), reps.len());
            for &(s, d) in &edges {
                prop_assert!(q.has_edge(mapping[s], e, mapping[d]));
            }
        }
    }
}
