//! Recursively-defined keys and entity resolution.
//!
//! A *key* for graphs (Fan et al., PVLDB 2015 — reference \[27\] of the
//! paper) is a GED whose consequence is an id literal: when the pattern
//! matches two candidate entities and the premise holds, the two entities
//! are the *same* real-world object. Keys are **recursively defined**:
//! identifying two artists may enable identifying two albums (whose key
//! pattern requires *the same* artist node), which may enable further
//! identifications — a fixpoint over node merging.
//!
//! [`resolve_entities`] runs that fixpoint over a data graph: in each
//! round it matches every key against the current quotient graph, merges
//! the nodes its id literals connect, and rebuilds the quotient (merging
//! attribute tuples, recording clashes) until no key fires.

use crate::ged::{Ged, GedLiteral};
use crate::validate::{ged_literal_holds, ged_premise_holds};
use gfd_graph::{AttrId, Graph, LabelIndex, NodeId, ValueId};
#[allow(unused_imports)]
use gfd_graph::ValueTable as _;
use gfd_match::find_all_matches;

/// A key: a GED whose consequence is a single conjunction of id literals.
#[derive(Clone, Debug)]
pub struct Key {
    /// The underlying GED.
    pub ged: Ged,
}

impl Key {
    /// Wrap a GED as a key, checking its consequence shape.
    ///
    /// # Panics
    /// Panics unless the consequence is exactly one disjunct consisting of
    /// id literals only.
    pub fn new(ged: Ged) -> Self {
        assert_eq!(
            ged.disjuncts.len(),
            1,
            "key `{}` must have a single consequence disjunct",
            ged.name
        );
        assert!(
            ged.disjuncts[0]
                .iter()
                .all(|l| matches!(l, GedLiteral::Id { .. })),
            "key `{}` consequence must contain only id literals",
            ged.name
        );
        assert!(
            !ged.disjuncts[0].is_empty(),
            "key `{}` must identify something",
            ged.name
        );
        Key { ged }
    }

    /// The id pairs `(x, y)` the key equates.
    fn id_pairs(&self) -> impl Iterator<Item = (gfd_graph::VarId, gfd_graph::VarId)> + '_ {
        self.ged.disjuncts[0].iter().map(|l| match l {
            GedLiteral::Id { left, right } => (*left, *right),
            _ => unreachable!("checked in Key::new"),
        })
    }
}

/// An attribute clash discovered while merging entities.
#[derive(Clone, Debug)]
pub struct AttrConflict {
    /// The resolved node carrying the clash.
    pub node: NodeId,
    /// The attribute with two values.
    pub attr: AttrId,
    /// The value kept.
    pub kept: ValueId,
    /// The value discarded.
    pub dropped: ValueId,
}

/// The result of entity resolution.
#[derive(Clone, Debug)]
pub struct ResolutionResult {
    /// The resolved (quotient) graph with merged attribute tuples.
    pub resolved: Graph,
    /// Mapping from original node to resolved node.
    pub class_of: Vec<NodeId>,
    /// Number of merge operations performed.
    pub merges: usize,
    /// Number of fixpoint rounds (≥ 1; > 1 demonstrates recursion).
    pub rounds: usize,
    /// Attribute clashes between merged entities (data-quality signal).
    pub conflicts: Vec<AttrConflict>,
}

/// Union-find over data-graph nodes.
struct Uf {
    parent: Vec<u32>,
}

impl Uf {
    fn new(n: usize) -> Self {
        Uf {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, i: u32) -> u32 {
        let mut i = i;
        while self.parent[i as usize] != i {
            let p = self.parent[i as usize];
            self.parent[i as usize] = self.parent[p as usize];
            i = self.parent[i as usize];
        }
        i
    }

    /// Union by root index (smaller root wins, for determinism).
    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi as usize] = lo;
        true
    }
}

/// Build the quotient of `graph` under `uf`, merging attribute tuples.
fn quotient_with_attrs(
    graph: &Graph,
    uf: &mut Uf,
    conflicts: &mut Vec<AttrConflict>,
) -> (Graph, Vec<NodeId>) {
    let n = graph.node_count();
    let mut root_to_new: rustc_hash::FxHashMap<u32, NodeId> = rustc_hash::FxHashMap::default();
    let mut mapping = vec![NodeId::new(0); n];
    let mut q = Graph::new();
    for v in graph.nodes() {
        let root = uf.find(v.index() as u32);
        let new = *root_to_new
            .entry(root)
            .or_insert_with(|| q.add_node(graph.label(NodeId::new(root as usize))));
        mapping[v.index()] = new;
    }
    for (src, label, dst) in graph.edges() {
        q.add_edge(mapping[src.index()], label, mapping[dst.index()]);
    }
    for v in graph.nodes() {
        let new = mapping[v.index()];
        for &(attr, value) in graph.attrs(v) {
            match q.attr(new, attr) {
                None => q.set_attr_id(new, attr, value),
                Some(existing) if existing == value => {}
                Some(existing) => conflicts.push(AttrConflict {
                    node: new,
                    attr,
                    kept: existing,
                    dropped: value,
                }),
            }
        }
    }
    (q, mapping)
}

/// Run entity resolution with `keys` over `graph` to a fixpoint.
///
/// Key labels must be concrete enough for matching; premises are checked
/// on the *current* quotient's concrete attributes (so a premise
/// `x.email = y.email` uses merged attribute tuples).
pub fn resolve_entities(graph: &Graph, keys: &[Key]) -> ResolutionResult {
    let mut uf = Uf::new(graph.node_count());
    let mut merges = 0usize;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut throwaway = Vec::new();
        let (q, mapping) = quotient_with_attrs(graph, &mut uf, &mut throwaway);
        // Representative original node per quotient node (for union ops).
        let sentinel = NodeId::new(u32::MAX as usize);
        let mut rep = vec![sentinel; q.node_count()];
        for v in graph.nodes() {
            let m = mapping[v.index()];
            if rep[m.index()] == sentinel {
                rep[m.index()] = v;
            }
        }
        let index = LabelIndex::build(&q);
        let mut changed = false;
        for key in keys {
            for m in find_all_matches(&q, &index, &key.ged.pattern) {
                if !ged_premise_holds(&q, &key.ged, &m) {
                    continue;
                }
                for (x, y) in key.id_pairs() {
                    if ged_literal_holds(&q, &GedLiteral::id(x, y), &m) {
                        continue; // already the same quotient node
                    }
                    let a = rep[m[x.index()].index()];
                    let b = rep[m[y.index()].index()];
                    if uf.union(a.index() as u32, b.index() as u32) {
                        merges += 1;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            // Final quotient, now collecting attribute conflicts.
            let mut conflicts = Vec::new();
            let (resolved, class_of) = quotient_with_attrs(graph, &mut uf, &mut conflicts);
            return ResolutionResult {
                resolved,
                class_of,
                merges,
                rounds,
                conflicts,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::{Pattern, Value, Vocab};

    /// Two artist nodes with the same name, each with an album of the same
    /// title pointing at *their own* artist node. The album key requires
    /// the same artist entity, so albums can only merge *after* artists
    /// merge: resolution takes two effective rounds.
    fn music_graph(vocab: &mut Vocab) -> Graph {
        let artist = vocab.label("artist");
        let album = vocab.label("album");
        let by = vocab.label("by");
        let name = vocab.attr("name");
        let title = vocab.attr("title");
        let mut g = Graph::new();
        let a1 = g.add_node(artist);
        let a2 = g.add_node(artist);
        g.set_attr(a1, name, Value::str("Miles"));
        g.set_attr(a2, name, Value::str("Miles"));
        let b1 = g.add_node(album);
        let b2 = g.add_node(album);
        g.set_attr(b1, title, Value::str("Kind of Blue"));
        g.set_attr(b2, title, Value::str("Kind of Blue"));
        g.add_edge(b1, by, a1);
        g.add_edge(b2, by, a2);
        g
    }

    fn artist_key(vocab: &mut Vocab) -> Key {
        let artist = vocab.label("artist");
        let name = vocab.attr("name");
        let mut p = Pattern::new();
        let x = p.add_node(artist, "x");
        let y = p.add_node(artist, "y");
        Key::new(Ged::conjunctive(
            "artist-by-name",
            p,
            vec![GedLiteral::eq_attr(x, name, y, name)],
            vec![GedLiteral::id(x, y)],
        ))
    }

    fn album_key(vocab: &mut Vocab) -> Key {
        let artist = vocab.label("artist");
        let album = vocab.label("album");
        let by = vocab.label("by");
        let title = vocab.attr("title");
        let mut p = Pattern::new();
        let x = p.add_node(album, "x");
        let y = p.add_node(album, "y");
        let a = p.add_node(artist, "a");
        p.add_edge(x, by, a);
        p.add_edge(y, by, a);
        Key::new(Ged::conjunctive(
            "album-by-title-and-artist",
            p,
            vec![GedLiteral::eq_attr(x, title, y, title)],
            vec![GedLiteral::id(x, y)],
        ))
    }

    #[test]
    fn recursive_keys_need_multiple_rounds() {
        let mut vocab = Vocab::new();
        let g = music_graph(&mut vocab);
        let keys = [artist_key(&mut vocab), album_key(&mut vocab)];
        let r = resolve_entities(&g, &keys);
        // Both artists and both albums merge: 4 nodes → 2.
        assert_eq!(r.resolved.node_count(), 2);
        assert_eq!(r.merges, 2);
        assert!(r.rounds >= 2, "albums can only merge after artists");
        assert!(r.conflicts.is_empty());
        // The mapping sends both artists to one class.
        assert_eq!(r.class_of[0], r.class_of[1]);
        assert_eq!(r.class_of[2], r.class_of[3]);
    }

    #[test]
    fn album_key_alone_cannot_merge() {
        let mut vocab = Vocab::new();
        let g = music_graph(&mut vocab);
        let keys = [album_key(&mut vocab)];
        let r = resolve_entities(&g, &keys);
        assert_eq!(r.resolved.node_count(), 4);
        assert_eq!(r.merges, 0);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn premise_gates_merging() {
        let mut vocab = Vocab::new();
        let mut g = music_graph(&mut vocab);
        // Rename one artist: the name key no longer fires.
        let name = vocab.attr("name");
        g.set_attr(NodeId::new(1), name, Value::str("Trane"));
        let keys = [artist_key(&mut vocab), album_key(&mut vocab)];
        let r = resolve_entities(&g, &keys);
        assert_eq!(r.merges, 0);
        assert_eq!(r.resolved.node_count(), 4);
    }

    #[test]
    fn attribute_conflicts_are_reported() {
        let mut vocab = Vocab::new();
        let mut g = music_graph(&mut vocab);
        // Give the two artists different birth years: merging keeps one
        // and reports the clash.
        let born = vocab.attr("born");
        g.set_attr(NodeId::new(0), born, Value::int(1926));
        g.set_attr(NodeId::new(1), born, Value::int(1927));
        let keys = [artist_key(&mut vocab)];
        let r = resolve_entities(&g, &keys);
        assert_eq!(r.merges, 1);
        assert_eq!(r.conflicts.len(), 1);
        let c = &r.conflicts[0];
        assert_eq!(vocab.attr_name(c.attr), "born");
        assert_ne!(c.kept, c.dropped);
    }

    #[test]
    fn resolution_is_idempotent() {
        let mut vocab = Vocab::new();
        let g = music_graph(&mut vocab);
        let keys = [artist_key(&mut vocab), album_key(&mut vocab)];
        let r1 = resolve_entities(&g, &keys);
        let r2 = resolve_entities(&r1.resolved, &keys);
        assert_eq!(r2.merges, 0);
        assert_eq!(r2.resolved.node_count(), r1.resolved.node_count());
    }

    #[test]
    #[should_panic(expected = "single consequence disjunct")]
    fn key_rejects_disjunctive_consequence() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        Key::new(Ged::new(
            "bad",
            p,
            vec![],
            vec![vec![GedLiteral::id(x, y)], vec![GedLiteral::id(y, x)]],
        ));
    }

    #[test]
    #[should_panic(expected = "only id literals")]
    fn key_rejects_attribute_consequence() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let a = vocab.attr("a");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        Key::new(Ged::conjunctive(
            "bad",
            p,
            vec![],
            vec![GedLiteral::eq_const(x, a, 1i64)],
        ));
    }
}
