//! GED satisfiability: the small-model search with disjunction branching.
//!
//! The algorithm generalizes `SeqSat` (§IV-C) along the lines of the GED
//! chase (Fan & Lu, PODS 2017):
//!
//! 1. Build the canonical graph `GΣ` (disjoint union of all patterns).
//! 2. Run a **deterministic fixpoint**: find matches of every pattern in
//!    the current *quotient* of `GΣ` (id literals merge nodes, so matching
//!    re-runs whenever the quotient changes); for a match whose premise is
//!    entailed by the store, enforce the consequence when it is a single
//!    conjunction, fail the branch on a denial, and record a **choice
//!    point** when it is a proper disjunction.
//! 3. At the fixpoint, branch: first over recorded consequence disjuncts,
//!    then over *undetermined grounded premise literals* — a premise
//!    literal whose attribute classes all exist but which is neither
//!    entailed nor refuted is branched both ways (`¬ℓ` first, since a
//!    falsified premise needs no enforcement). Premise literals mentioning
//!    absent attributes are falsified by omission, exactly like the
//!    paper's schemaless semantics; premise id literals are falsified by
//!    keeping nodes distinct.
//!
//! The search is exact and exponential in the worst case, as it must be
//! (GFD satisfiability is already coNP-complete). Every branch asserts at
//! least one new fact over a finite fact space, so it terminates.
//!
//! Since the scheduler port, the search itself lives in
//! [`crate::driver`]: each open branch is a work unit on the shared
//! `gfd-runtime` work-stealing scheduler, and [`ged_sat`] is simply the
//! `workers = 1` instantiation of that driver — there is no separate
//! sequential code path.

use crate::driver::{ged_sat_with_config, GedReasonConfig};
use crate::ged::GedSet;
use crate::store::GedStore;
use gfd_graph::{Graph, NodeId};

/// The result of a satisfiability check.
#[derive(Clone, Debug)]
pub enum GedSatOutcome {
    /// A model exists. `witness` is a concrete model when integer value
    /// assignment succeeded (see [`GedSatOutcome::witness`]).
    Satisfiable {
        /// A concrete model of Σ, when one could be extracted.
        witness: Option<Graph>,
    },
    /// No model exists.
    Unsatisfiable,
}

impl GedSatOutcome {
    /// Is the set satisfiable?
    pub fn is_satisfiable(&self) -> bool {
        matches!(self, GedSatOutcome::Satisfiable { .. })
    }

    /// The extracted witness model, if any.
    pub fn witness(&self) -> Option<&Graph> {
        match self {
            GedSatOutcome::Satisfiable { witness } => witness.as_ref(),
            GedSatOutcome::Unsatisfiable => None,
        }
    }
}

/// Check satisfiability of a set of GEDs — the sequential (`workers = 1`)
/// instantiation of the shared scheduler driver.
///
/// # Panics
///
/// If the default branch budget (10⁶, far above anything the tests or
/// generators produce) is exhausted. Use
/// [`ged_sat_with_config`] to choose
/// the budget and observe exhaustion as `outcome: None` instead.
pub fn ged_sat(sigma: &GedSet) -> GedSatOutcome {
    ged_sat_with_config(sigma, &GedReasonConfig::default())
        .outcome
        .expect("GED satisfiability search exceeded the branch budget")
}

/// Try to extract a concrete model: assign every attribute class a value
/// consistent with the order network (constants pinned, distinct classes
/// distinct values), and decline with `None` when the network needs
/// non-integer in-between values (see [`crate::order::solve_integers`]).
pub(crate) fn extract_witness(store: &mut GedStore, base: &Graph) -> Option<Graph> {
    let assignment = crate::order::solve_integers(store.net())?;
    let (mut g, mapping) = store.quotient(base);
    let pairs: Vec<(NodeId, gfd_graph::AttrId, crate::order::OrderVar)> =
        store.attr_assignments().collect();
    for (root, attr, var) in pairs {
        let value = assignment[var.index()].clone();
        g.set_attr(mapping[root.index()], attr, value);
    }
    Some(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ged::{CmpOp, Ged, GedLiteral};
    use crate::validate::ged_graph_satisfies;
    use gfd_graph::{LabelId, Pattern, VarId, Vocab};

    #[test]
    fn empty_set_is_satisfiable() {
        assert!(ged_sat(&GedSet::new()).is_satisfiable());
    }

    #[test]
    fn papers_example2_phi5_phi6_conflict() {
        // ϕ5 = Q5[x](∅ → x.A = 0), ϕ6 = Q5[x](∅ → x.A = 1) with a
        // wildcard single-node pattern: unsatisfiable.
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let mut p1 = Pattern::new();
        let x1 = p1.add_node(LabelId::WILDCARD, "x");
        let mut p2 = Pattern::new();
        let x2 = p2.add_node(LabelId::WILDCARD, "x");
        let phi5 = Ged::conjunctive("phi5", p1, vec![], vec![GedLiteral::eq_const(x1, a, 0i64)]);
        let phi6 = Ged::conjunctive("phi6", p2, vec![], vec![GedLiteral::eq_const(x2, a, 1i64)]);
        assert!(ged_sat(&GedSet::from_vec(vec![phi5.clone()])).is_satisfiable());
        assert!(ged_sat(&GedSet::from_vec(vec![phi6.clone()])).is_satisfiable());
        assert!(!ged_sat(&GedSet::from_vec(vec![phi5, phi6])).is_satisfiable());
    }

    #[test]
    fn order_bounds_conflict() {
        // x.A < 5 and x.A > 7 on the same wildcard node: unsatisfiable.
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let mk = |name: &str, op: CmpOp, c: i64| {
            let mut p = Pattern::new();
            let x = p.add_node(LabelId::WILDCARD, "x");
            Ged::conjunctive(name, p, vec![], vec![GedLiteral::cmp_const(x, a, op, c)])
        };
        let lo = mk("lo", CmpOp::Lt, 5);
        let hi = mk("hi", CmpOp::Gt, 7);
        assert!(!ged_sat(&GedSet::from_vec(vec![lo, hi])).is_satisfiable());
    }

    #[test]
    fn order_bounds_compatible() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let mut p1 = Pattern::new();
        let x1 = p1.add_node(LabelId::WILDCARD, "x");
        let mut p2 = Pattern::new();
        let x2 = p2.add_node(LabelId::WILDCARD, "x");
        let lo = Ged::conjunctive(
            "lo",
            p1,
            vec![],
            vec![GedLiteral::cmp_const(x1, a, CmpOp::Ge, 5i64)],
        );
        let hi = Ged::conjunctive(
            "hi",
            p2,
            vec![],
            vec![GedLiteral::cmp_const(x2, a, CmpOp::Le, 9i64)],
        );
        let out = ged_sat(&GedSet::from_vec(vec![lo, hi]));
        assert!(out.is_satisfiable());
    }

    #[test]
    fn disjunction_rescues_satisfiability() {
        // ∅ → (x.A = 0) with a second rule ∅ → (x.A = 1 ∨ x.B = 2):
        // the second disjunct avoids the clash.
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let b = vocab.attr("B");
        let mut p1 = Pattern::new();
        let x1 = p1.add_node(LabelId::WILDCARD, "x");
        let mut p2 = Pattern::new();
        let x2 = p2.add_node(LabelId::WILDCARD, "x");
        let base = Ged::conjunctive("base", p1, vec![], vec![GedLiteral::eq_const(x1, a, 0i64)]);
        let dis = Ged::new(
            "dis",
            p2,
            vec![],
            vec![
                vec![GedLiteral::eq_const(x2, a, 1i64)],
                vec![GedLiteral::eq_const(x2, b, 2i64)],
            ],
        );
        assert!(ged_sat(&GedSet::from_vec(vec![base, dis])).is_satisfiable());
    }

    #[test]
    fn disjunction_with_all_branches_conflicting_is_unsat() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let mut p1 = Pattern::new();
        let x1 = p1.add_node(LabelId::WILDCARD, "x");
        let mut p2 = Pattern::new();
        let x2 = p2.add_node(LabelId::WILDCARD, "x");
        let base = Ged::conjunctive("base", p1, vec![], vec![GedLiteral::eq_const(x1, a, 0i64)]);
        let dis = Ged::new(
            "dis",
            p2,
            vec![],
            vec![
                vec![GedLiteral::eq_const(x2, a, 1i64)],
                vec![GedLiteral::eq_const(x2, a, 2i64)],
            ],
        );
        assert!(!ged_sat(&GedSet::from_vec(vec![base, dis])).is_satisfiable());
    }

    #[test]
    fn id_literal_merges_and_propagates_conflict() {
        // Pattern x --e--> y (same label). Rule 1: merge x and y.
        // Rule 2 on a single node with a self-loop: after merging, the
        // self-loop exists in the quotient... instead, force a conflict
        // through merged attributes: x.A = 1 and y.A = 2 plus x.id = y.id.
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let e = vocab.label("e");
        let a = vocab.attr("A");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        p.add_edge(x, e, y);
        let rule = Ged::conjunctive(
            "merge-and-clash",
            p,
            vec![],
            vec![
                GedLiteral::id(x, y),
                GedLiteral::eq_const(x, a, 1i64),
                GedLiteral::eq_const(y, a, 2i64),
            ],
        );
        assert!(!ged_sat(&GedSet::from_vec(vec![rule])).is_satisfiable());
    }

    #[test]
    fn id_merge_without_attribute_clash_is_satisfiable() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let e = vocab.label("e");
        let a = vocab.attr("A");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let y = p.add_node(t, "y");
        p.add_edge(x, e, y);
        let rule = Ged::conjunctive(
            "merge",
            p,
            vec![],
            vec![GedLiteral::id(x, y), GedLiteral::eq_const(x, a, 1i64)],
        );
        let sigma = GedSet::from_vec(vec![rule]);
        let out = ged_sat(&sigma);
        assert!(out.is_satisfiable());
        let w = out.witness().expect("witness should extract");
        // The witness quotients x and y into one node with a self-loop.
        assert_eq!(w.node_count(), 1);
        assert!(ged_graph_satisfies(w, sigma.get(gfd_graph::GfdId::new(0))));
    }

    #[test]
    fn premise_falsified_by_omission_keeps_sat() {
        // ψ: x.A = 1 → x.B = 1 ∧ x.B = 2 (conflicting consequence). The
        // premise can be falsified by omitting A: satisfiable.
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let b = vocab.attr("B");
        let mut p = Pattern::new();
        let x = p.add_node(LabelId::WILDCARD, "x");
        let rule = Ged::conjunctive(
            "guarded-clash",
            p,
            vec![GedLiteral::eq_const(x, a, 1i64)],
            vec![
                GedLiteral::eq_const(x, b, 1i64),
                GedLiteral::eq_const(x, b, 2i64),
            ],
        );
        assert!(ged_sat(&GedSet::from_vec(vec![rule])).is_satisfiable());
    }

    #[test]
    fn grounded_premise_branching_finds_the_escape() {
        // Rule 1 forces x.A to exist with x.A ≥ 0. Rule 2: x.A = 5 →
        // conflict. The search must pick x.A ≠ 5 (premise falsified).
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let b = vocab.attr("B");
        let mut p1 = Pattern::new();
        let x1 = p1.add_node(LabelId::WILDCARD, "x");
        let mut p2 = Pattern::new();
        let x2 = p2.add_node(LabelId::WILDCARD, "x");
        let force = Ged::conjunctive(
            "force",
            p1,
            vec![],
            vec![GedLiteral::cmp_const(x1, a, CmpOp::Ge, 0i64)],
        );
        let guard = Ged::conjunctive(
            "guard",
            p2,
            vec![GedLiteral::eq_const(x2, a, 5i64)],
            vec![
                GedLiteral::eq_const(x2, b, 1i64),
                GedLiteral::eq_const(x2, b, 2i64),
            ],
        );
        assert!(ged_sat(&GedSet::from_vec(vec![force, guard])).is_satisfiable());
    }

    #[test]
    fn covering_premises_over_forced_attribute_are_unsat() {
        // x.A forced to exist; ψ1: x.A < 5 → false; ψ2: x.A ≥ 5 → false.
        // Every value of x.A fires one of them: unsatisfiable. (This is
        // exactly the case premise branching exists for.)
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let mk_pat = || {
            let mut p = Pattern::new();
            p.add_node(LabelId::WILDCARD, "x");
            p
        };
        let p1 = mk_pat();
        let p2 = mk_pat();
        let p3 = mk_pat();
        let x = VarId::new(0);
        let force = Ged::conjunctive(
            "force",
            p1,
            vec![],
            vec![GedLiteral::cmp_const(x, a, CmpOp::Ge, 0i64)],
        );
        let low = Ged::denial(
            "low",
            p2,
            vec![GedLiteral::cmp_const(x, a, CmpOp::Lt, 5i64)],
        );
        let high = Ged::denial(
            "high",
            p3,
            vec![GedLiteral::cmp_const(x, a, CmpOp::Ge, 5i64)],
        );
        assert!(!ged_sat(&GedSet::from_vec(vec![force, low, high])).is_satisfiable());
    }

    #[test]
    fn witness_satisfies_sigma_when_extracted() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let a = vocab.attr("A");
        let b = vocab.attr("B");
        let mut p = Pattern::new();
        let x = p.add_node(t, "x");
        let rule = Ged::conjunctive(
            "two-attrs",
            p,
            vec![],
            vec![
                GedLiteral::eq_const(x, a, 3i64),
                GedLiteral::cmp_const(x, b, CmpOp::Gt, 10i64),
            ],
        );
        let sigma = GedSet::from_vec(vec![rule]);
        let out = ged_sat(&sigma);
        assert!(out.is_satisfiable());
        let w = out.witness().expect("integer witness should extract");
        for (_, ged) in sigma.iter() {
            assert!(ged_graph_satisfies(w, ged), "witness violates {}", ged.name);
        }
    }
}
