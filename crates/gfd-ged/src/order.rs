//! An order-constraint network over attribute classes.
//!
//! Built-in predicates (`<, ≤, >, ≥, ≠`) between attribute classes and
//! constants form a constraint network. Satisfiability over a *dense,
//! unbounded* ordered domain (the standard setting for dependency
//! reasoning with order, e.g. ℚ) has a classical characterization:
//!
//! * model `a ≤ b` and `a < b` as directed edges;
//! * the network is consistent iff **no cycle contains a strict edge** and
//!   no `≠`-pair (nor two distinct constants) lies in the same
//!   `≤`-strongly-connected component.
//!
//! Constants participate as interned nodes chained by strict edges in
//! sorted order, so `x ≤ 3 ∧ x ≥ 5` closes a strict cycle through
//! `3 < 5`.
//!
//! The same machinery answers *entailment* queries (`does the network
//! force a op b?`) used by the implication checker's `Y ⊆ EqH` test.
//!
//! ## Density caveat
//!
//! Over a discrete domain (pure integers) `x > 3 ∧ x < 4` is unsatisfiable
//! but this network reports it consistent; conflicts reported are always
//! real, i.e. the check is sound for conflicts and complete over dense
//! domains. This mirrors the usual treatment of order predicates in the
//! GED literature.

use crate::ged::CmpOp;
use gfd_graph::Value;
use rustc_hash::FxHashMap;
use std::fmt;

/// A variable of the order network (an attribute class or a constant).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OrderVar(u32);

impl OrderVar {
    /// The variable's dense index (for indexing assignment vectors).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A conflict found by the consistency check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrderConflict {
    /// A cycle of `≤`/`<` edges contains a strict edge.
    StrictCycle,
    /// Two variables required to be equal and distinct at once.
    NeViolated,
    /// Two distinct constants forced equal.
    ConstantsMerged(Value, Value),
}

impl fmt::Display for OrderConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderConflict::StrictCycle => write!(f, "strict inequality cycle"),
            OrderConflict::NeViolated => write!(f, "x != y contradicts forced equality"),
            OrderConflict::ConstantsMerged(a, b) => {
                write!(f, "constants {a:?} and {b:?} forced equal")
            }
        }
    }
}

/// The constraint network.
#[derive(Clone, Debug, Default)]
pub struct OrderNet {
    /// Edges `a → b` meaning `a ≤ b` (strict = `a < b`).
    edges: Vec<Vec<(u32, bool)>>,
    /// Disequality pairs.
    ne: Vec<(u32, u32)>,
    /// Constant value of a node, for interned constants.
    constant: Vec<Option<Value>>,
    /// Interning table for constants.
    const_ids: FxHashMap<Value, u32>,
    /// Sorted list of interned constants (for chain edges).
    sorted_consts: Vec<Value>,
}

impl OrderNet {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of variables (including constant nodes).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Is the network empty?
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Add a fresh (unconstrained) variable.
    pub fn new_var(&mut self) -> OrderVar {
        let id = self.edges.len() as u32;
        self.edges.push(Vec::new());
        self.constant.push(None);
        OrderVar(id)
    }

    /// Intern a constant node, adding chain edges to its sorted neighbours.
    pub fn const_var(&mut self, value: &Value) -> OrderVar {
        if let Some(&id) = self.const_ids.get(value) {
            return OrderVar(id);
        }
        let var = self.new_var();
        self.constant[var.index()] = Some(value.clone());
        self.const_ids.insert(value.clone(), var.0);
        // Chain into the sorted constant order: prev < value < next.
        let pos = self.sorted_consts.binary_search(value).unwrap_err();
        if pos > 0 {
            let prev = self.const_ids[&self.sorted_consts[pos - 1]];
            self.edges[prev as usize].push((var.0, true));
        }
        if pos < self.sorted_consts.len() {
            let next = self.const_ids[&self.sorted_consts[pos]];
            self.edges[var.index()].push((next, true));
        }
        self.sorted_consts.insert(pos, value.clone());
        var
    }

    /// The constant bound to `v`, if `v` is a constant node.
    pub fn constant_of(&self, v: OrderVar) -> Option<&Value> {
        self.constant[v.index()].as_ref()
    }

    /// Look up an already-interned constant without mutating the network.
    pub fn lookup_const(&self, value: &Value) -> Option<OrderVar> {
        self.const_ids.get(value).map(|&id| OrderVar(id))
    }

    /// Assert `a op b`.
    pub fn assert_cmp(&mut self, a: OrderVar, op: CmpOp, b: OrderVar) {
        match op {
            CmpOp::Eq => {
                self.edges[a.index()].push((b.0, false));
                self.edges[b.index()].push((a.0, false));
            }
            CmpOp::Ne => self.ne.push((a.0, b.0)),
            CmpOp::Le => self.edges[a.index()].push((b.0, false)),
            CmpOp::Lt => self.edges[a.index()].push((b.0, true)),
            CmpOp::Ge => self.edges[b.index()].push((a.0, false)),
            CmpOp::Gt => self.edges[b.index()].push((a.0, true)),
        }
    }

    /// Strongly connected components over all (`≤` and `<`) edges.
    /// Returns the component id per node (components in reverse
    /// topological order, per Tarjan).
    fn sccs(&self) -> Vec<u32> {
        // Iterative Tarjan.
        let n = self.len();
        let mut index = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut comp = vec![u32::MAX; n];
        let mut next_index = 0u32;
        let mut comp_count = 0u32;
        // DFS frames: (node, edge cursor).
        let mut frames: Vec<(u32, usize)> = Vec::new();

        for root in 0..n as u32 {
            if index[root as usize] != u32::MAX {
                continue;
            }
            frames.push((root, 0));
            index[root as usize] = next_index;
            low[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;

            while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
                if *cursor < self.edges[v as usize].len() {
                    let (w, _) = self.edges[v as usize][*cursor];
                    *cursor += 1;
                    if index[w as usize] == u32::MAX {
                        index[w as usize] = next_index;
                        low[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        frames.push((w, 0));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index[w as usize]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent as usize] = low[parent as usize].min(low[v as usize]);
                    }
                    if low[v as usize] == index[v as usize] {
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp[w as usize] = comp_count;
                            if w == v {
                                break;
                            }
                        }
                        comp_count += 1;
                    }
                }
            }
        }
        comp
    }

    /// Check consistency over a dense ordered domain.
    pub fn check(&self) -> Result<(), OrderConflict> {
        let comp = self.sccs();
        // Strict edge inside an SCC = strict cycle.
        for (v, adj) in self.edges.iter().enumerate() {
            for &(w, strict) in adj {
                if strict && comp[v] == comp[w as usize] {
                    return Err(OrderConflict::StrictCycle);
                }
            }
        }
        // Distinct constants in one SCC.
        let mut const_in_comp: FxHashMap<u32, &Value> = FxHashMap::default();
        for (v, c) in self.constant.iter().enumerate() {
            if let Some(c) = c {
                if let Some(prev) = const_in_comp.insert(comp[v], c) {
                    if prev != c {
                        return Err(OrderConflict::ConstantsMerged(prev.clone(), c.clone()));
                    }
                }
            }
        }
        // ≠ inside an SCC.
        for &(a, b) in &self.ne {
            if comp[a as usize] == comp[b as usize] {
                return Err(OrderConflict::NeViolated);
            }
        }
        Ok(())
    }

    /// Reachability `a →* b`; when `need_strict`, some edge on the path
    /// must be strict.
    fn reaches(&self, a: OrderVar, b: OrderVar, need_strict: bool) -> bool {
        // BFS over (node, strict-seen) states.
        let n = self.len();
        let mut seen = vec![[false; 2]; n];
        let mut queue = std::collections::VecDeque::new();
        seen[a.index()][0] = true;
        queue.push_back((a.0, false));
        while let Some((v, s)) = queue.pop_front() {
            if v == b.0 && (s || !need_strict) {
                return true;
            }
            for &(w, strict) in &self.edges[v as usize] {
                let ns = s || strict;
                if !seen[w as usize][ns as usize] {
                    seen[w as usize][ns as usize] = true;
                    queue.push_back((w, ns));
                }
            }
        }
        false
    }

    /// Does the network entail `a op b`?
    ///
    /// Sound but (for `Ne`) not complete: `≠` is entailed when a strict
    /// relation holds either way, when an explicit `≠` links the two
    /// equality classes, or when the two sides are distinct constants.
    pub fn entails(&self, a: OrderVar, op: CmpOp, b: OrderVar) -> bool {
        match op {
            CmpOp::Le => self.reaches(a, b, false),
            CmpOp::Lt => self.reaches(a, b, true),
            CmpOp::Ge => self.reaches(b, a, false),
            CmpOp::Gt => self.reaches(b, a, true),
            CmpOp::Eq => self.reaches(a, b, false) && self.reaches(b, a, false),
            CmpOp::Ne => {
                if self.reaches(a, b, true) || self.reaches(b, a, true) {
                    return true;
                }
                // Explicit ≠ between the equality classes of a and b.
                self.ne.iter().any(|&(x, y)| {
                    let x = OrderVar(x);
                    let y = OrderVar(y);
                    (self.entails(a, CmpOp::Eq, x) && self.entails(b, CmpOp::Eq, y))
                        || (self.entails(a, CmpOp::Eq, y) && self.entails(b, CmpOp::Eq, x))
                })
            }
        }
    }
}

/// Try to assign a concrete integer to every variable of the network such
/// that every edge, every `≠` pair, and every constant pin is respected,
/// with **distinct values for distinct equality classes** (so facts the
/// network does not entail are falsified by the assignment).
///
/// Returns `None` when the network mentions non-integer constants or when
/// no integer assignment fits (e.g. three classes strictly between 3
/// and 5) — the network may still be satisfiable over a dense domain.
pub fn solve_integers(net: &OrderNet) -> Option<Vec<Value>> {
    if net.check().is_err() {
        return None;
    }
    let ints: Vec<Option<i64>> = net
        .constant
        .iter()
        .map(|c| c.as_ref().map(Value::as_int))
        .map(|c| c.flatten())
        .collect();
    if net
        .constant
        .iter()
        .zip(&ints)
        .any(|(c, i)| c.is_some() && i.is_none())
    {
        return None; // non-integer constant
    }

    let comp = net.sccs();
    let comp_count = comp.iter().copied().max().map_or(0, |m| m as usize + 1);
    // Constant per SCC (consistency already guarantees uniqueness).
    let mut scc_const: Vec<Option<i64>> = vec![None; comp_count];
    for (v, i) in ints.iter().enumerate() {
        if let Some(i) = i {
            scc_const[comp[v] as usize] = Some(*i);
        }
    }
    // Condensed edges: (from SCC, to SCC, strict).
    let mut scc_in: Vec<Vec<(u32, bool)>> = vec![Vec::new(); comp_count];
    for (v, adj) in net.edges.iter().enumerate() {
        for &(w, strict) in adj {
            let (cv, cw) = (comp[v], comp[w as usize]);
            if cv != cw {
                scc_in[cw as usize].push((cv, strict));
            }
        }
    }
    // Tarjan numbers components in reverse topological order: for an edge
    // u → v, comp[v] < comp[u]. Descending ids therefore visit sources
    // (smallest values) first.
    let base = scc_const
        .iter()
        .flatten()
        .min()
        .copied()
        .unwrap_or(0)
        .saturating_sub(comp_count as i64 + 1);
    let mut value: Vec<Option<i64>> = vec![None; comp_count];
    let mut used: std::collections::BTreeSet<i64> = ints.iter().flatten().copied().collect();
    for scc in (0..comp_count).rev() {
        let min_req = scc_in[scc]
            .iter()
            .map(|&(pred, strict)| {
                value[pred as usize].expect("topological order violated") + i64::from(strict)
            })
            .max();
        match scc_const[scc] {
            Some(c) => {
                if min_req.is_some_and(|m| m > c) {
                    return None; // integer gap too tight
                }
                value[scc] = Some(c);
            }
            None => {
                let mut candidate = min_req.unwrap_or(base);
                while used.contains(&candidate) {
                    candidate += 1;
                }
                used.insert(candidate);
                value[scc] = Some(candidate);
            }
        }
    }
    // Full verification (greedy bumps may have violated an edge whose
    // target was assigned earlier — impossible in topo order, but keep the
    // checks as a safety net, including ≠ pairs).
    for (v, adj) in net.edges.iter().enumerate() {
        let a = value[comp[v] as usize]?;
        for &(w, strict) in adj {
            let b = value[comp[w as usize] as usize]?;
            if a > b || (strict && a == b) {
                return None;
            }
        }
    }
    for &(a, b) in &net.ne {
        if value[comp[a as usize] as usize] == value[comp[b as usize] as usize] {
            return None;
        }
    }
    Some(
        (0..net.len())
            .map(|v| Value::int(value[comp[v] as usize].expect("assigned")))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_net_is_consistent() {
        let net = OrderNet::new();
        assert!(net.is_empty());
        assert_eq!(net.check(), Ok(()));
    }

    #[test]
    fn le_cycle_is_fine_strict_cycle_is_not() {
        let mut net = OrderNet::new();
        let a = net.new_var();
        let b = net.new_var();
        net.assert_cmp(a, CmpOp::Le, b);
        net.assert_cmp(b, CmpOp::Le, a);
        assert_eq!(net.check(), Ok(()));
        net.assert_cmp(a, CmpOp::Lt, b);
        assert_eq!(net.check(), Err(OrderConflict::StrictCycle));
    }

    #[test]
    fn bounds_through_constants_conflict() {
        // x ≤ 3 and x ≥ 5 → strict cycle through 3 < 5.
        let mut net = OrderNet::new();
        let x = net.new_var();
        let c3 = net.const_var(&Value::int(3));
        let c5 = net.const_var(&Value::int(5));
        net.assert_cmp(x, CmpOp::Le, c3);
        net.assert_cmp(x, CmpOp::Ge, c5);
        assert_eq!(net.check(), Err(OrderConflict::StrictCycle));
    }

    #[test]
    fn constant_interning_is_stable() {
        let mut net = OrderNet::new();
        let a = net.const_var(&Value::int(1));
        let b = net.const_var(&Value::int(1));
        assert_eq!(a, b);
        assert_eq!(net.constant_of(a), Some(&Value::int(1)));
    }

    #[test]
    fn chain_edges_order_constants_regardless_of_insertion_order() {
        let mut net = OrderNet::new();
        let c5 = net.const_var(&Value::int(5));
        let c1 = net.const_var(&Value::int(1));
        let c3 = net.const_var(&Value::int(3));
        assert!(net.entails(c1, CmpOp::Lt, c3));
        assert!(net.entails(c3, CmpOp::Lt, c5));
        assert!(net.entails(c1, CmpOp::Lt, c5));
        assert!(!net.entails(c5, CmpOp::Le, c1));
        assert_eq!(net.check(), Ok(()));
    }

    #[test]
    fn ne_with_forced_equality_conflicts() {
        let mut net = OrderNet::new();
        let a = net.new_var();
        let b = net.new_var();
        net.assert_cmp(a, CmpOp::Eq, b);
        net.assert_cmp(a, CmpOp::Ne, b);
        assert_eq!(net.check(), Err(OrderConflict::NeViolated));
    }

    #[test]
    fn distinct_constants_forced_equal_conflict() {
        let mut net = OrderNet::new();
        let x = net.new_var();
        let c1 = net.const_var(&Value::int(1));
        let c2 = net.const_var(&Value::int(2));
        net.assert_cmp(x, CmpOp::Eq, c1);
        net.assert_cmp(x, CmpOp::Eq, c2);
        // The cycle 1 ≤ x ≤ 2 plus chain edge 1 < 2 makes a strict cycle;
        // either conflict kind is a correct refusal.
        assert!(net.check().is_err());
    }

    #[test]
    fn entailment_le_lt_eq() {
        let mut net = OrderNet::new();
        let a = net.new_var();
        let b = net.new_var();
        let c = net.new_var();
        net.assert_cmp(a, CmpOp::Lt, b);
        net.assert_cmp(b, CmpOp::Le, c);
        assert!(net.entails(a, CmpOp::Lt, c));
        assert!(net.entails(a, CmpOp::Le, c));
        assert!(net.entails(c, CmpOp::Gt, a));
        assert!(net.entails(c, CmpOp::Ge, a));
        assert!(!net.entails(a, CmpOp::Eq, c));
        assert!(net.entails(a, CmpOp::Ne, c), "strict implies distinct");
    }

    #[test]
    fn entailment_eq_via_mutual_le() {
        let mut net = OrderNet::new();
        let a = net.new_var();
        let b = net.new_var();
        net.assert_cmp(a, CmpOp::Le, b);
        net.assert_cmp(b, CmpOp::Le, a);
        assert!(net.entails(a, CmpOp::Eq, b));
        assert!(!net.entails(a, CmpOp::Ne, b));
    }

    #[test]
    fn explicit_ne_lifts_to_equality_classes() {
        let mut net = OrderNet::new();
        let a = net.new_var();
        let b = net.new_var();
        let a2 = net.new_var();
        net.assert_cmp(a, CmpOp::Eq, a2);
        net.assert_cmp(a2, CmpOp::Ne, b);
        assert!(net.entails(a, CmpOp::Ne, b));
        assert!(net.entails(b, CmpOp::Ne, a));
    }

    #[test]
    fn no_spurious_entailments_on_fresh_vars() {
        let mut net = OrderNet::new();
        let a = net.new_var();
        let b = net.new_var();
        for op in [CmpOp::Lt, CmpOp::Gt, CmpOp::Ne, CmpOp::Eq] {
            assert!(!net.entails(a, op, b), "{op:?} must not be entailed");
        }
        // Reflexive Le/Eq hold trivially.
        assert!(net.entails(a, CmpOp::Le, a));
        assert!(net.entails(a, CmpOp::Eq, a));
    }

    #[test]
    fn string_constants_are_ordered_lexicographically() {
        let mut net = OrderNet::new();
        let ca = net.const_var(&Value::str("apple"));
        let cb = net.const_var(&Value::str("banana"));
        assert!(net.entails(ca, CmpOp::Lt, cb));
        assert_eq!(net.check(), Ok(()));
    }
}
