//! Graph entity dependencies (GEDs): the extension sketched in §IX of the
//! paper.
//!
//! A GED `ψ = Q[x̄](X → Y)` generalizes a GFD in three ways:
//!
//! 1. **id literals** `x.id = y.id` assert that two pattern variables
//!    denote the *same* node — equality-generating on entities rather than
//!    attribute values. Keys for graphs (recursively-defined keys) are GEDs
//!    whose consequence is an id literal.
//! 2. **built-in predicates**: attribute literals may compare with
//!    `=, ≠, <, ≤, >, ≥` instead of equality only.
//! 3. **disjunction**: the consequence may be a disjunction of conjunctions
//!    (DNF); a match satisfies it when at least one disjunct holds.
//!
//! The crate provides the GED model ([`ged`]), direct validation on data
//! graphs ([`validate`]), the constraint store generalizing `EqRel` with
//! node merging and order constraints ([`store`], [`order`]), satisfiability
//! and implication checking ([`sat`], [`imp`]), and entity resolution with
//! recursively-defined keys ([`keys`]).
//!
//! ## Scope note
//!
//! The reasoning procedures here are the natural generalization of the
//! paper's small-model algorithms: enforce GEDs over the canonical graph,
//! now with (a) node merging (id literals force a quotient of the canonical
//! graph, re-matched to a fixpoint, as in the GED chase of Fan & Lu,
//! PODS 2017), (b) an order-constraint network solved by SCC condensation,
//! and (c) backtracking over consequence disjuncts. Satisfiability remains
//! coNP — the branching search is exact, not heuristic.
//!
//! Both searches run as branch-and-bound [`gfd_runtime::Task`] workloads
//! on the shared work-stealing scheduler ([`driver`]): each open branch
//! is a work unit carrying its own copy-on-branch [`GedStore`], the stop
//! flag cancels the run on the first SAT witness (or first implication
//! counterexample), and TTL straggler splitting hands open branches to
//! idle workers. [`ged_sat`]/[`ged_implies`] are the `workers = 1`
//! instantiation; [`ged_sat_with_config`]/[`ged_implies_with_config`]
//! expose the worker count, TTL, dispatch mode and branch budget, and
//! report the unified [`gfd_runtime::RunMetrics`].

#![warn(missing_docs)]

mod chase;
pub mod driver;
pub mod ged;
pub mod imp;
pub mod keys;
pub mod order;
mod proptests;
pub mod sat;
pub mod store;
pub mod validate;

pub use driver::{
    ged_implies_with_config, ged_sat_with_config, GedImpRun, GedReasonConfig, GedSatRun,
};
pub use ged::{CmpOp, Ged, GedLiteral, GedSet};
pub use imp::{ged_implies, GedImpOutcome};
pub use keys::{resolve_entities, AttrConflict, Key, ResolutionResult};
pub use order::{solve_integers, OrderConflict, OrderNet, OrderVar};
pub use sat::{ged_sat, GedSatOutcome};
pub use store::{GedStore, StoreConflict};
pub use validate::{ged_find_violations, ged_graph_satisfies, GedViolation};
