//! `ParSat` — parallel scalable satisfiability checking (§V).

use crate::ParConfig;
use gfd_core::GfdSet;
use gfd_core::{sat_with_config, SatOutcome};
use gfd_runtime::RunMetrics;

/// Result of a `ParSat` run.
#[derive(Clone, Debug)]
pub struct ParSatResult {
    /// Satisfiable (with a model, a Σ-bounded population of `GΣ`) or the
    /// witnessing conflict.
    pub outcome: SatOutcome,
    /// Parallel run metrics.
    pub metrics: RunMetrics,
}

impl ParSatResult {
    /// True iff Σ was found satisfiable.
    pub fn is_satisfiable(&self) -> bool {
        matches!(self.outcome, SatOutcome::Satisfiable(_))
    }
}

/// Check the satisfiability of Σ with `cfg.workers` parallel workers.
///
/// Parallel scalable relative to `SeqSat`: runtime `O(t(|Σ|)/p)` via
/// work-stealing workload balancing and straggler splitting. `SeqSat` is
/// this same driver at `workers = 1`.
pub fn par_sat(sigma: &GfdSet, cfg: &ParConfig) -> ParSatResult {
    let r = sat_with_config(sigma, cfg);
    ParSatResult {
        outcome: r.outcome,
        metrics: r.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::{seq_sat, Gfd, Literal};
    use gfd_graph::{LabelId, Pattern, VarId, Vocab};

    fn wildcard_unary(name: &str, lits: Vec<Literal>, premise: Vec<Literal>) -> Gfd {
        let mut p = Pattern::new();
        p.add_node(LabelId::WILDCARD, "x");
        Gfd::new(name, p, premise, lits)
    }

    #[test]
    fn agrees_with_seq_sat_on_unsat_wildcard_conflict() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let x = VarId::new(0);
        let sigma = GfdSet::from_vec(vec![
            wildcard_unary("phi5", vec![Literal::eq_const(x, a, 0i64)], vec![]),
            wildcard_unary("phi6", vec![Literal::eq_const(x, a, 1i64)], vec![]),
        ]);
        assert!(!seq_sat(&sigma).is_satisfiable());
        for p in [1, 2, 4] {
            let r = par_sat(&sigma, &ParConfig::with_workers(p));
            assert!(!r.is_satisfiable(), "p={p}");
            assert!(r.metrics.early_terminated);
        }
    }

    #[test]
    fn agrees_with_seq_sat_on_satisfiable_set() {
        let mut vocab = Vocab::new();
        let t = vocab.label("t");
        let e = vocab.label("e");
        let a = vocab.attr("a");
        let b = vocab.attr("b");
        let mut gfds = Vec::new();
        for i in 0..6 {
            let mut p = Pattern::new();
            let x = p.add_node(t, "x");
            let y = p.add_node(t, "y");
            p.add_edge(x, e, y);
            gfds.push(Gfd::new(
                format!("g{i}"),
                p,
                if i % 2 == 0 {
                    vec![]
                } else {
                    vec![Literal::eq_const(x, a, 1i64)]
                },
                vec![Literal::eq_const(x, a, 1i64), Literal::eq_attr(x, b, y, b)],
            ));
        }
        let sigma = GfdSet::from_vec(gfds);
        let seq = seq_sat(&sigma);
        assert!(seq.is_satisfiable());
        for p in [1, 2, 4, 8] {
            let r = par_sat(&sigma, &ParConfig::with_workers(p));
            assert!(r.is_satisfiable(), "p={p}");
            // The model must satisfy Σ.
            let model = match &r.outcome {
                SatOutcome::Satisfiable(m) => m,
                _ => unreachable!(),
            };
            assert!(gfd_core::graph_satisfies_all(model, &sigma));
        }
    }

    #[test]
    fn variants_agree() {
        let mut vocab = Vocab::new();
        let a = vocab.attr("A");
        let b = vocab.attr("B");
        let x = VarId::new(0);
        // Chain: seed a=1; a=1 → b=1; b=1 ∧ a=1 → conflict on a.
        let sigma = GfdSet::from_vec(vec![
            wildcard_unary("seed", vec![Literal::eq_const(x, a, 1i64)], vec![]),
            wildcard_unary(
                "prop",
                vec![Literal::eq_const(x, b, 1i64)],
                vec![Literal::eq_const(x, a, 1i64)],
            ),
            wildcard_unary(
                "deny",
                vec![Literal::eq_const(x, a, 2i64)],
                vec![Literal::eq_const(x, b, 1i64)],
            ),
        ]);
        let expect = seq_sat(&sigma).is_satisfiable();
        let base = ParConfig::with_workers(3);
        assert_eq!(par_sat(&sigma, &base).is_satisfiable(), expect);
        assert_eq!(
            par_sat(&sigma, &base.clone().without_pipeline()).is_satisfiable(),
            expect
        );
        assert_eq!(
            par_sat(&sigma, &base.clone().without_split()).is_satisfiable(),
            expect
        );
        let no_order = ParConfig {
            use_dependency_order: false,
            ..base.clone()
        };
        assert_eq!(par_sat(&sigma, &no_order).is_satisfiable(), expect);
        let coordinator = base.with_dispatch(crate::DispatchMode::Coordinator);
        assert_eq!(par_sat(&sigma, &coordinator).is_satisfiable(), expect);
    }

    #[test]
    fn empty_sigma_is_satisfiable() {
        let r = par_sat(&GfdSet::new(), &ParConfig::with_workers(2));
        assert!(r.is_satisfiable());
    }
}
