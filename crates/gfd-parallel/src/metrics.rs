//! Run metrics reported by the parallel algorithms (used by the benchmark
//! harness and the ablation experiments).

use std::time::Duration;

/// Counters and timings for one `ParSat`/`ParImp` run.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Wall-clock time of the whole run (including setup and the final
    /// convergence phase).
    pub elapsed: Duration,
    /// Number of workers used.
    pub workers: usize,
    /// Initial work units generated from pivot candidates.
    pub units_generated: usize,
    /// Units handed to workers (initial + split).
    pub units_dispatched: u64,
    /// Units created by TTL straggler splitting.
    pub units_split: u64,
    /// Matches found and enforced across all workers.
    pub matches: u64,
    /// ΔEq ops broadcast between workers.
    pub delta_ops_broadcast: u64,
    /// Busy time per worker (only populated on quiescent runs).
    pub worker_busy: Vec<Duration>,
    /// Did the run end early (conflict / consequence reached)?
    pub early_terminated: bool,
}

impl RunMetrics {
    /// The simulated parallel makespan: the maximum per-worker busy (CPU)
    /// time. On a machine with ≥ p free cores this approximates wall
    /// time; on fewer cores it still reflects what dedicated processors
    /// would achieve, which is what the scalability experiments compare.
    pub fn makespan(&self) -> Option<Duration> {
        self.worker_busy.iter().max().copied()
    }

    /// Total busy (CPU) time across workers.
    pub fn total_busy(&self) -> Duration {
        self.worker_busy.iter().sum()
    }

    /// Load imbalance: max busy time over mean busy time (1.0 = perfectly
    /// balanced). `None` when per-worker times were not collected.
    pub fn imbalance(&self) -> Option<f64> {
        if self.worker_busy.is_empty() {
            return None;
        }
        let max = self.worker_busy.iter().max()?.as_secs_f64();
        let mean = self
            .worker_busy
            .iter()
            .map(Duration::as_secs_f64)
            .sum::<f64>()
            / self.worker_busy.len() as f64;
        if mean == 0.0 {
            return Some(1.0);
        }
        Some(max / mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_of_balanced_run_is_one() {
        let m = RunMetrics {
            worker_busy: vec![Duration::from_millis(10); 4],
            ..Default::default()
        };
        assert!((m.imbalance().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_detects_straggler() {
        let m = RunMetrics {
            worker_busy: vec![
                Duration::from_millis(10),
                Duration::from_millis(10),
                Duration::from_millis(40),
            ],
            ..Default::default()
        };
        assert!(m.imbalance().unwrap() > 1.5);
    }

    #[test]
    fn imbalance_none_without_data() {
        assert!(RunMetrics::default().imbalance().is_none());
    }
}
