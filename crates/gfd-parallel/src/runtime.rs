//! The coordinator/worker runtime shared by `ParSat` and `ParImp` (§V-B).
//!
//! Topology: one coordinator (the calling thread) and `p` worker threads.
//! The canonical graph is replicated (shared read-only); each worker owns a
//! local [`EnforceEngine`] whose `ΔEq` op log is broadcast asynchronously
//! to the other workers — the paper's peer-to-peer `∆Eq` exchange.
//!
//! * **Dynamic assignment**: the coordinator pops batches off a priority
//!   queue of work units and hands them to whichever worker reports
//!   `BatchDone` (the `f_d` flag).
//! * **Straggler splitting**: a worker whose unit exceeds the TTL splits
//!   the untried sibling branches into prefix units and ships them back
//!   (`Split`); the coordinator pushes them to the *front* of the queue.
//! * **Early termination**: a conflict (`f_c`), or for implication a
//!   deduced consequence, raises the global stop flag and ends the run.
//! * **Final convergence**: once the queue drains and every worker is
//!   idle, workers ship their full op logs and unresolved pending matches;
//!   the coordinator replays them into one engine and runs the (cheap,
//!   match-free) enforcement fixpoint. This closes the window where a
//!   pending premise was satisfied by a `ΔEq` that arrived after its
//!   worker went idle — required for exactness (see DESIGN.md).

use crate::config::ParConfig;
use crate::metrics::RunMetrics;
use crate::unit::{generate_units, order_units, WorkUnit};
use crossbeam_channel::{unbounded, Receiver, Sender};
use gfd_core::{
    build_plans_lazy, consequence_deducible, CanonicalGraph, Conflict, EnforceEngine, EqOp, EqRel,
    Gfd, GfdSet,
};
use gfd_graph::GfdId;
use gfd_match::{HomSearch, Match, MatchPlan, RunOutcome, SearchLimits};
use rustc_hash::FxHashSet;
use std::collections::VecDeque;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// What the run is trying to decide.
#[derive(Clone, Copy)]
pub(crate) enum Goal<'a> {
    /// Satisfiability over `GΣ`.
    Sat,
    /// Implication of `ϕ` over `G^X_Q`.
    Imp(&'a Gfd),
}

/// A run-ending event raised by a worker or the final convergence phase.
#[derive(Clone, Debug)]
pub(crate) enum TerminalEvent {
    /// Distinct constants forced onto one class (the `f_c` flag).
    Conflict(Conflict),
    /// `Y ⊆ EqH` reached (implication only).
    Consequence,
}

enum ToWorker {
    Units(Vec<WorkUnit>),
    Drain,
    Stop,
}

#[derive(Clone, Copy, Debug, Default)]
struct WorkerStats {
    units: u64,
    matches: u64,
    splits: u64,
    ops_sent: u64,
    busy: std::time::Duration,
}

enum ToCoord {
    BatchDone {
        worker: usize,
    },
    Terminal {
        event: TerminalEvent,
    },
    Split {
        units: Vec<WorkUnit>,
    },
    Drained {
        delta: Vec<EqOp>,
        pending: Vec<(GfdId, Match)>,
        stats: WorkerStats,
    },
}

/// The outcome of a parallel run, before goal-specific interpretation.
pub(crate) struct ParRun {
    /// Early or final terminal event, if any.
    pub terminal: Option<TerminalEvent>,
    /// The merged engine after the convergence phase (absent when the run
    /// terminated early).
    pub engine: Option<EnforceEngine>,
    /// Run counters.
    pub metrics: RunMetrics,
}

struct Worker<'a> {
    id: usize,
    sigma: &'a GfdSet,
    canon: &'a CanonicalGraph,
    plans: &'a [Option<MatchPlan>],
    goal: Goal<'a>,
    cfg: &'a ParConfig,
    engine: EnforceEngine,
    broadcast_cursor: usize,
    rx_tasks: Receiver<ToWorker>,
    tx_coord: Sender<ToCoord>,
    rx_delta: Receiver<Arc<[EqOp]>>,
    tx_delta: Vec<Sender<Arc<[EqOp]>>>,
    stop: &'a AtomicBool,
    stats: WorkerStats,
    last_y_version: u64,
    terminal_sent: bool,
}

impl<'a> Worker<'a> {
    fn run(mut self) {
        loop {
            match self.rx_tasks.recv() {
                Err(_) | Ok(ToWorker::Stop) => return,
                Ok(ToWorker::Drain) => {
                    self.apply_inbox();
                    let engine = std::mem::take(&mut self.engine);
                    let (delta, pending) = engine.into_state();
                    let _ = self.tx_coord.send(ToCoord::Drained {
                        delta,
                        pending,
                        stats: self.stats,
                    });
                }
                Ok(ToWorker::Units(units)) => {
                    let timer = crate::cputime::BusyTimer::start();
                    for unit in units {
                        if self.terminal_sent || self.stop.load(Ordering::Relaxed) {
                            break;
                        }
                        self.apply_inbox();
                        if self.terminal_sent {
                            break;
                        }
                        self.process_unit(unit);
                    }
                    self.broadcast();
                    self.stats.busy += timer.elapsed();
                    let _ = self.tx_coord.send(ToCoord::BatchDone { worker: self.id });
                }
            }
        }
    }

    /// Raise a terminal event: set the global stop flag so every worker
    /// aborts its search, and notify the coordinator.
    fn terminal(&mut self, event: TerminalEvent) {
        if self.terminal_sent {
            return;
        }
        self.terminal_sent = true;
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.tx_coord.send(ToCoord::Terminal { event });
    }

    /// Apply queued remote deltas (cascading local pending rechecks), then
    /// re-test the consequence for implication goals.
    fn apply_inbox(&mut self) {
        while let Ok(ops) = self.rx_delta.try_recv() {
            if let Err(c) = self.engine.apply_remote_ops(self.sigma, &ops) {
                self.terminal(TerminalEvent::Conflict(c));
                return;
            }
        }
        self.check_consequence();
    }

    fn check_consequence(&mut self) {
        if self.terminal_sent {
            return;
        }
        if let Goal::Imp(phi) = self.goal {
            let v = self.engine.eq.version();
            if v != self.last_y_version {
                self.last_y_version = v;
                if consequence_deducible(&mut self.engine.eq, phi) {
                    self.terminal(TerminalEvent::Consequence);
                }
            }
        }
    }

    /// Ship ops recorded since the last broadcast to every other worker.
    /// The payload is shared as one `Arc<[EqOp]>`: a single allocation
    /// however many peers there are, instead of a `Vec` clone per peer.
    fn broadcast(&mut self) {
        let new = self.engine.delta_since(self.broadcast_cursor);
        if new.is_empty() {
            return;
        }
        let ops: Arc<[EqOp]> = Arc::from(new);
        self.broadcast_cursor = self.engine.delta_len();
        self.stats.ops_sent += ops.len() as u64;
        for tx in &self.tx_delta {
            let _ = tx.send(Arc::clone(&ops));
        }
    }

    fn process_unit(&mut self, unit: WorkUnit) {
        self.stats.units += 1;
        let gfd_id = unit.gfd;
        let gfd = &self.sigma[gfd_id];
        let plan = self.plans[gfd_id.index()]
            .as_ref()
            .expect("a unit exists, so its GFD has pivot candidates and a plan");
        let mut search = HomSearch::new(&self.canon.graph, &self.canon.index, &gfd.pattern, plan)
            .with_prefix(&unit.prefix);

        if self.cfg.pipeline {
            self.run_streaming(&mut search, gfd_id, unit.priority);
        } else {
            self.run_collect_then_check(&mut search, gfd_id, unit.priority);
        }
    }

    /// Pipelined mode: enforce each match the moment `HomMatch` produces
    /// it (streaming `HomMatch ∥ CheckAttr`).
    fn run_streaming(&mut self, search: &mut HomSearch<'_>, gfd_id: GfdId, priority: u32) {
        loop {
            let deadline = self.cfg.split.then(|| Instant::now() + self.cfg.ttl);
            let limits = SearchLimits {
                deadline,
                stop: Some(self.stop),
            };
            let sigma = self.sigma;
            let engine = &mut self.engine;
            let stats = &mut self.stats;
            let goal = self.goal;
            let mut last_version = self.last_y_version;
            let mut conflict: Option<Conflict> = None;
            let mut y_hit = false;
            let outcome = search.run(
                |m| {
                    stats.matches += 1;
                    match engine.process_match(sigma, gfd_id, m) {
                        Err(c) => {
                            conflict = Some(c);
                            ControlFlow::Break(())
                        }
                        Ok(()) => {
                            if let Goal::Imp(phi) = goal {
                                let v = engine.eq.version();
                                if v != last_version {
                                    last_version = v;
                                    if consequence_deducible(&mut engine.eq, phi) {
                                        y_hit = true;
                                        return ControlFlow::Break(());
                                    }
                                }
                            }
                            ControlFlow::Continue(())
                        }
                    }
                },
                limits,
            );
            self.last_y_version = last_version;
            if let Some(c) = conflict {
                self.terminal(TerminalEvent::Conflict(c));
                return;
            }
            if y_hit {
                self.terminal(TerminalEvent::Consequence);
                return;
            }
            match outcome {
                RunOutcome::Exhausted | RunOutcome::Stopped => return,
                RunOutcome::Deadline => {
                    self.split_straggler(search, gfd_id, priority);
                    // Broadcast between TTL periods so long units still
                    // propagate their enforcements promptly.
                    self.broadcast();
                }
            }
        }
    }

    /// Non-pipelined (`*np`) mode: first enumerate every match of the
    /// unit, then enforce them one by one — the ablation baseline of
    /// Exp-1/Exp-4.
    fn run_collect_then_check(&mut self, search: &mut HomSearch<'_>, gfd_id: GfdId, priority: u32) {
        let mut matches: Vec<Match> = Vec::new();
        loop {
            let deadline = self.cfg.split.then(|| Instant::now() + self.cfg.ttl);
            let limits = SearchLimits {
                deadline,
                stop: Some(self.stop),
            };
            let stats = &mut self.stats;
            let outcome = search.run(
                |m| {
                    stats.matches += 1;
                    matches.push(m);
                    ControlFlow::Continue(())
                },
                limits,
            );
            match outcome {
                RunOutcome::Exhausted | RunOutcome::Stopped => break,
                RunOutcome::Deadline => {
                    self.split_straggler(search, gfd_id, priority);
                    self.broadcast();
                }
            }
        }
        for m in matches {
            if self.terminal_sent || self.stop.load(Ordering::Relaxed) {
                return;
            }
            if let Err(c) = self.engine.process_match(self.sigma, gfd_id, m) {
                self.terminal(TerminalEvent::Conflict(c));
                return;
            }
            self.check_consequence();
        }
    }

    /// TTL expired: carve the shallowest untried sibling branches into
    /// prefix units and ship them to the coordinator (paper's Example 6).
    fn split_straggler(&mut self, search: &mut HomSearch<'_>, gfd_id: GfdId, priority: u32) {
        if !self.cfg.split {
            return;
        }
        let prefixes = search.split_shallowest();
        if prefixes.is_empty() {
            return;
        }
        self.stats.splits += prefixes.len() as u64;
        let units: Vec<WorkUnit> = prefixes
            .into_iter()
            .map(|prefix| WorkUnit {
                gfd: gfd_id,
                prefix,
                priority,
            })
            .collect();
        let _ = self.tx_coord.send(ToCoord::Split { units });
    }
}

fn pop_batch(queue: &mut VecDeque<WorkUnit>, batch: usize) -> Vec<WorkUnit> {
    let take = batch.min(queue.len());
    queue.drain(..take).collect()
}

/// Execute a parallel reasoning run over a prepared canonical graph.
pub(crate) fn run_parallel(
    sigma: &GfdSet,
    goal: Goal<'_>,
    eq0: EqRel,
    canon: &CanonicalGraph,
    cfg: &ParConfig,
) -> ParRun {
    let start = Instant::now();
    let mut metrics = RunMetrics {
        workers: cfg.workers.max(1),
        ..Default::default()
    };

    let (pivots, plans) = build_plans_lazy(sigma, &canon.index);
    let mut units = generate_units(sigma, canon, &pivots, cfg.prune_components);
    if cfg.use_dependency_order {
        let boosted: Option<Vec<bool>> = match goal {
            Goal::Sat => None,
            Goal::Imp(phi) => {
                let x_attrs: FxHashSet<_> = phi.premise_attrs().collect();
                Some(
                    sigma
                        .iter()
                        .map(|(_, g)| g.premise_attrs().all(|a| x_attrs.contains(&a)))
                        .collect(),
                )
            }
        };
        order_units(&mut units, sigma, canon, &pivots, boosted.as_deref());
    }
    metrics.units_generated = units.len();
    let batch = cfg.batch_size(units.len());
    let mut queue: VecDeque<WorkUnit> = units.into();

    let p = cfg.workers.max(1);
    let stop = AtomicBool::new(false);
    let (tx_coord, rx_coord) = unbounded::<ToCoord>();
    let mut task_txs = Vec::with_capacity(p);
    let mut task_rxs = Vec::with_capacity(p);
    let mut delta_txs = Vec::with_capacity(p);
    let mut delta_rxs = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded::<ToWorker>();
        task_txs.push(tx);
        task_rxs.push(rx);
        let (tx, rx) = unbounded::<Arc<[EqOp]>>();
        delta_txs.push(tx);
        delta_rxs.push(rx);
    }

    let mut terminal: Option<TerminalEvent> = None;
    let mut merged: Option<EnforceEngine> = None;

    std::thread::scope(|scope| {
        for (id, rx_tasks) in task_rxs.into_iter().enumerate() {
            let worker = Worker {
                id,
                sigma,
                canon,
                plans: &plans,
                goal,
                cfg,
                engine: EnforceEngine::with_eq(eq0.clone()),
                broadcast_cursor: 0,
                rx_tasks,
                tx_coord: tx_coord.clone(),
                rx_delta: delta_rxs.remove(0),
                tx_delta: delta_txs
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != id)
                    .map(|(_, tx)| tx.clone())
                    .collect(),
                stop: &stop,
                stats: WorkerStats::default(),
                last_y_version: 0,
                terminal_sent: false,
            };
            scope.spawn(move || worker.run());
        }

        // ---- coordinator ----
        let mut idle = vec![false; p];
        for w in 0..p {
            let units = pop_batch(&mut queue, batch);
            if units.is_empty() {
                idle[w] = true;
            } else {
                metrics.units_dispatched += units.len() as u64;
                let _ = task_txs[w].send(ToWorker::Units(units));
            }
        }

        while !(queue.is_empty() && idle.iter().all(|&i| i)) {
            match rx_coord.recv().expect("workers alive") {
                ToCoord::BatchDone { worker } => {
                    let units = pop_batch(&mut queue, batch);
                    if units.is_empty() {
                        idle[worker] = true;
                    } else {
                        idle[worker] = false;
                        metrics.units_dispatched += units.len() as u64;
                        let _ = task_txs[worker].send(ToWorker::Units(units));
                    }
                }
                ToCoord::Split { units } => {
                    metrics.units_split += units.len() as u64;
                    for u in units.into_iter().rev() {
                        queue.push_front(u);
                    }
                    // Feed idle workers immediately.
                    for w in 0..p {
                        if idle[w] && !queue.is_empty() {
                            let units = pop_batch(&mut queue, batch);
                            metrics.units_dispatched += units.len() as u64;
                            idle[w] = false;
                            let _ = task_txs[w].send(ToWorker::Units(units));
                        }
                    }
                }
                ToCoord::Terminal { event } => {
                    terminal = Some(event);
                    metrics.early_terminated = true;
                    break;
                }
                ToCoord::Drained { .. } => unreachable!("no drain requested yet"),
            }
        }

        if terminal.is_some() {
            stop.store(true, Ordering::Relaxed);
            for tx in &task_txs {
                let _ = tx.send(ToWorker::Stop);
            }
            return;
        }

        // ---- final convergence phase ----
        for tx in &task_txs {
            let _ = tx.send(ToWorker::Drain);
        }
        let mut deltas: Vec<Vec<EqOp>> = Vec::with_capacity(p);
        let mut pendings: Vec<(GfdId, Match)> = Vec::new();
        let mut drained = 0usize;
        while drained < p {
            match rx_coord.recv().expect("workers alive") {
                ToCoord::Drained {
                    delta,
                    pending,
                    stats,
                } => {
                    drained += 1;
                    metrics.matches += stats.matches;
                    metrics.delta_ops_broadcast += stats.ops_sent;
                    metrics.worker_busy.push(stats.busy);
                    deltas.push(delta);
                    pendings.extend(pending);
                }
                ToCoord::Terminal { event } => {
                    // A conflict surfaced while applying the final inbox.
                    terminal = Some(event);
                }
                ToCoord::BatchDone { .. } | ToCoord::Split { .. } => {
                    // Quiescence holds, but a worker that observed the stop
                    // flag may still flush a last (empty) report; ignore.
                }
            }
        }

        let mut engine = EnforceEngine::with_eq(eq0.clone());
        if terminal.is_none() {
            'merge: {
                for delta in &deltas {
                    if let Err(c) = engine.apply_remote_ops(sigma, delta) {
                        terminal = Some(TerminalEvent::Conflict(c));
                        break 'merge;
                    }
                }
                for (gfd, m) in pendings {
                    if let Err(c) = engine.process_match(sigma, gfd, m) {
                        terminal = Some(TerminalEvent::Conflict(c));
                        break 'merge;
                    }
                }
                if let Goal::Imp(phi) = goal {
                    if consequence_deducible(&mut engine.eq, phi) {
                        terminal = Some(TerminalEvent::Consequence);
                    }
                }
            }
        }
        merged = Some(engine);

        for tx in &task_txs {
            let _ = tx.send(ToWorker::Stop);
        }
    });

    metrics.elapsed = start.elapsed();
    ParRun {
        terminal,
        engine: merged,
        metrics,
    }
}
