//! Configuration of the parallel runtime.

use std::time::Duration;

/// Tuning knobs for `ParSat` / `ParImp` (§V-B, §VI-C).
#[derive(Clone, Debug)]
pub struct ParConfig {
    /// Number of workers `p`. The coordinator runs on the calling thread.
    pub workers: usize,
    /// Straggler threshold: a work unit matching longer than this is split
    /// (the paper's TTL, Exp-4 varies it from 0.1 s to 8 s).
    pub ttl: Duration,
    /// Pipelined parallelism: enforce each match as soon as it is found.
    /// With `false` (the paper's `*np` variants) a unit first enumerates
    /// *all* its matches, then enforces them.
    pub pipeline: bool,
    /// Work-unit splitting on TTL expiry. With `false` (the `*nb`
    /// variants) stragglers run to completion on one worker.
    pub split: bool,
    /// Units per assignment message (paper: "assigned in a small batch to
    /// reduce communication"). `None` picks a size from the unit count.
    pub batch: Option<usize>,
    /// Order work units by the dependency-graph topological order. With
    /// `false`, input order is used.
    pub use_dependency_order: bool,
    /// Skip units whose pivot component cannot host the pattern.
    pub prune_components: bool,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            workers: 4,
            ttl: Duration::from_secs(2),
            pipeline: true,
            split: true,
            batch: None,
            use_dependency_order: true,
            prune_components: true,
        }
    }
}

impl ParConfig {
    /// Default configuration with `p` workers.
    pub fn with_workers(workers: usize) -> Self {
        ParConfig {
            workers,
            ..Self::default()
        }
    }

    /// The `*np` ablation: no pipelining.
    pub fn without_pipeline(mut self) -> Self {
        self.pipeline = false;
        self
    }

    /// The `*nb` ablation: no work-unit splitting.
    pub fn without_split(mut self) -> Self {
        self.split = false;
        self
    }

    /// Override the TTL.
    pub fn with_ttl(mut self, ttl: Duration) -> Self {
        self.ttl = ttl;
        self
    }

    /// Effective batch size for a given total unit count.
    pub fn batch_size(&self, unit_count: usize) -> usize {
        match self.batch {
            Some(b) => b.max(1),
            None => (unit_count / (self.workers.max(1) * 16)).clamp(1, 64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = ParConfig::default();
        assert_eq!(c.ttl, Duration::from_secs(2));
        assert!(c.pipeline);
        assert!(c.split);
        assert!(c.use_dependency_order);
    }

    #[test]
    fn ablation_builders() {
        let c = ParConfig::with_workers(8).without_pipeline();
        assert_eq!(c.workers, 8);
        assert!(!c.pipeline);
        assert!(c.split);
        let c = ParConfig::with_workers(2).without_split();
        assert!(c.pipeline);
        assert!(!c.split);
    }

    #[test]
    fn auto_batch_is_bounded() {
        let c = ParConfig::with_workers(4);
        assert_eq!(c.batch_size(10), 1);
        assert!(c.batch_size(100_000) <= 64);
        assert!(c.batch_size(0) >= 1);
        let c = ParConfig {
            batch: Some(7),
            ..ParConfig::default()
        };
        assert_eq!(c.batch_size(1_000_000), 7);
    }
}
