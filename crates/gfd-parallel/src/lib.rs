//! Parallel scalable GFD reasoning: `ParSat` (§V) and `ParImp` (§VI-C).
//!
//! Both algorithms are the `workers = p` instantiation of the unified
//! reasoning driver (`gfd_core::driver`) on the `gfd-runtime`
//! work-stealing scheduler, combining:
//!
//! * **data-partitioned parallelism** — pivot-based work units seeded in
//!   dependency-priority order across per-worker deques, balanced by work
//!   stealing instead of a central coordinator;
//! * **pipelined parallelism** — matches are enforced as they stream out
//!   of the matcher (disable for the paper's `*np` ablations);
//! * **straggler handling** — TTL-based work-unit splitting with priority
//!   inheritance (disable for the `*nb` ablations);
//! * **asynchronous `ΔEq` broadcast** with a final convergence phase, and
//!   **early termination** on conflicts (and deduced consequences, for
//!   implication).
//!
//! Relative to the sequential algorithms of `gfd-core` — the `workers = 1`
//! instantiation of the *same* driver — the runtime is *parallel scalable*
//! in the sense of Kruskal et al.: wall time scales as `O(t_seq / p)`,
//! verified empirically by the Exp-1 benches.

#![warn(missing_docs)]

pub mod par_imp;
pub mod par_sat;

/// Configuration of the parallel runtime (the unified driver's
/// [`gfd_core::ReasonConfig`] under its historical name).
pub use gfd_core::driver::ReasonConfig as ParConfig;
/// Work units and their dependency ordering now live in `gfd_core::unit`.
pub use gfd_core::unit::WorkUnit;
/// The scheduler's dispatch policy (work stealing vs the centralized
/// coordinator baseline).
pub use gfd_runtime::DispatchMode;
/// The unified run metrics.
pub use gfd_runtime::RunMetrics;
/// The structured-tracing vocabulary (see `gfd_trace` and DESIGN.md §13),
/// re-exported so CLI-level consumers need only this crate.
pub use gfd_runtime::{EventKind, Trace, TraceBuf, TraceSpec, CONTROL_WORKER};

pub use par_imp::{par_imp, ParImpResult};
pub use par_sat::{par_sat, ParSatResult};
