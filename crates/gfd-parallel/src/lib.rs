//! Parallel scalable GFD reasoning: `ParSat` (§V) and `ParImp` (§VI-C).
//!
//! Both algorithms run a coordinator plus `p` worker threads over a
//! replicated canonical graph, combining:
//!
//! * **data-partitioned parallelism** — pivot-based work units dispatched
//!   dynamically from a dependency-ordered priority queue;
//! * **pipelined parallelism** — matches are enforced as they stream out
//!   of the matcher (disable for the paper's `*np` ablations);
//! * **straggler handling** — TTL-based work-unit splitting (disable for
//!   the `*nb` ablations);
//! * **asynchronous `ΔEq` broadcast** with a final convergence phase, and
//!   **early termination** on conflicts (and deduced consequences, for
//!   implication).
//!
//! Relative to the sequential algorithms of `gfd-core`, the runtime is
//! *parallel scalable* in the sense of Kruskal et al.: wall time scales as
//! `O(t_seq / p)`, verified empirically by the Exp-1 benches.

#![warn(missing_docs)]

pub mod config;
pub mod cputime;
pub mod metrics;
pub mod par_imp;
pub mod par_sat;
mod runtime;
pub mod unit;

pub use config::ParConfig;
pub use metrics::RunMetrics;
pub use par_imp::{par_imp, ParImpResult};
pub use par_sat::{par_sat, ParSatResult};
pub use unit::WorkUnit;
