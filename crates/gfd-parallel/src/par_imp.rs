//! `ParImp` — parallel scalable implication checking (§VI-C).

use crate::ParConfig;
use gfd_core::{imp_with_config, Gfd, GfdSet, ImpOutcome};
use gfd_runtime::RunMetrics;

/// Result of a `ParImp` run.
#[derive(Clone, Debug)]
pub struct ParImpResult {
    /// Implied (with the reason) or not.
    pub outcome: ImpOutcome,
    /// Parallel run metrics.
    pub metrics: RunMetrics,
}

impl ParImpResult {
    /// True iff `Σ |= ϕ`.
    pub fn is_implied(&self) -> bool {
        matches!(self.outcome, ImpOutcome::Implied(_))
    }
}

/// Check `Σ |= ϕ` with `cfg.workers` parallel workers.
///
/// Shares the work-stealing driver of `ParSat` (and of `SeqImp`, its
/// `workers = 1` form) with two differences: units whose premise is
/// subsumed by `X` get the highest priority, and workers terminate early
/// when `Y ⊆ EqH` (not just on conflicts).
pub fn par_imp(sigma: &GfdSet, phi: &Gfd, cfg: &ParConfig) -> ParImpResult {
    let r = imp_with_config(sigma, phi, cfg);
    ParImpResult {
        outcome: r.outcome,
        metrics: r.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::{seq_imp, ImpliedVia, Literal};
    use gfd_graph::{Pattern, VarId, Vocab};

    /// The Example 8 fixture shared with the sequential tests.
    fn example8() -> (GfdSet, Gfd, Gfd) {
        let mut vocab = Vocab::new();
        let a_lbl = vocab.label("a");
        let b_lbl = vocab.label("b");
        let c_lbl = vocab.label("c");
        let p_lbl = vocab.label("p");
        let attr_a = vocab.attr("A");
        let attr_b = vocab.attr("B");
        let attr_c = vocab.attr("C");

        let mut q8 = Pattern::new();
        let x8 = q8.add_node(a_lbl, "x");
        let y8 = q8.add_node(b_lbl, "y");
        q8.add_edge(x8, p_lbl, y8);

        let mut q9 = Pattern::new();
        let x9 = q9.add_node(a_lbl, "x");
        let y9 = q9.add_node(c_lbl, "y");
        q9.add_edge(x9, p_lbl, y9);

        let mut q7 = Pattern::new();
        let x7 = q7.add_node(a_lbl, "x");
        let y7 = q7.add_node(b_lbl, "y");
        let z7 = q7.add_node(c_lbl, "z");
        let w7 = q7.add_node(c_lbl, "w");
        q7.add_edge(x7, p_lbl, y7);
        q7.add_edge(x7, p_lbl, z7);
        q7.add_edge(x7, p_lbl, w7);

        let phi11 = Gfd::new(
            "phi11",
            q8,
            vec![],
            vec![Literal::eq_const(x8, attr_a, 1i64)],
        );
        let phi12 = Gfd::new(
            "phi12",
            q9,
            vec![
                Literal::eq_const(x9, attr_a, 1i64),
                Literal::eq_const(y9, attr_b, 2i64),
            ],
            vec![Literal::eq_const(y9, attr_c, 2i64)],
        );
        let phi13 = Gfd::new(
            "phi13",
            q7.clone(),
            vec![Literal::eq_const(VarId::new(2), attr_b, 2i64)],
            vec![Literal::eq_const(VarId::new(2), attr_c, 2i64)],
        );
        let phi14 = Gfd::new(
            "phi14",
            q7,
            vec![Literal::eq_const(VarId::new(0), attr_a, 0i64)],
            vec![Literal::eq_const(VarId::new(2), attr_c, 2i64)],
        );
        (GfdSet::from_vec(vec![phi11, phi12]), phi13, phi14)
    }

    #[test]
    fn example8_matches_sequential_across_worker_counts() {
        let (sigma, phi13, phi14) = example8();
        assert!(seq_imp(&sigma, &phi13).is_implied());
        assert!(seq_imp(&sigma, &phi14).is_implied());
        for p in [1, 2, 4] {
            let cfg = ParConfig::with_workers(p);
            let r13 = par_imp(&sigma, &phi13, &cfg);
            assert!(r13.is_implied(), "phi13 p={p}: {:?}", r13.outcome);
            let r14 = par_imp(&sigma, &phi14, &cfg);
            assert!(r14.is_implied(), "phi14 p={p}: {:?}", r14.outcome);
        }
    }

    #[test]
    fn not_implied_matches_sequential() {
        let (sigma, phi13, _) = example8();
        // Remove phi12: phi13 no longer follows.
        let smaller = GfdSet::from_vec(vec![sigma.as_slice()[0].clone()]);
        assert!(!seq_imp(&smaller, &phi13).is_implied());
        for p in [1, 3] {
            let r = par_imp(&smaller, &phi13, &ParConfig::with_workers(p));
            assert!(!r.is_implied(), "p={p}");
        }
    }

    #[test]
    fn ablation_variants_agree() {
        let (sigma, phi13, phi14) = example8();
        let base = ParConfig::with_workers(2);
        for phi in [&phi13, &phi14] {
            assert!(par_imp(&sigma, phi, &base).is_implied());
            assert!(par_imp(&sigma, phi, &base.clone().without_pipeline()).is_implied());
            assert!(par_imp(&sigma, phi, &base.clone().without_split()).is_implied());
            let coordinator = base.clone().with_dispatch(crate::DispatchMode::Coordinator);
            assert!(par_imp(&sigma, phi, &coordinator).is_implied());
        }
    }

    #[test]
    fn trivial_cases_short_circuit() {
        let (sigma, _, _) = example8();
        let mut vocab = Vocab::new();
        let mut q = Pattern::new();
        let x = q.add_node(vocab.label("a"), "x");
        let a = vocab.attr("A");
        // Empty consequence.
        let trivial = Gfd::new("t", q.clone(), vec![], vec![]);
        let r = par_imp(&sigma, &trivial, &ParConfig::with_workers(2));
        assert!(r.is_implied());
        assert_eq!(r.metrics.units_dispatched, 0);
        // Inconsistent premise.
        let inconsistent = Gfd::new(
            "i",
            q,
            vec![Literal::eq_const(x, a, 1i64), Literal::eq_const(x, a, 2i64)],
            vec![Literal::eq_const(x, a, 3i64)],
        );
        let r = par_imp(&sigma, &inconsistent, &ParConfig::with_workers(2));
        assert!(matches!(
            r.outcome,
            ImpOutcome::Implied(ImpliedVia::PremiseInconsistent)
        ));
    }
}
