//! Interchange formats for GFD reasoning.
//!
//! Two ways data and rules enter or leave the system:
//!
//! * [`json`] — a self-describing JSON representation of graphs and GFD
//!   sets (labels and attribute names as strings, resolved through a
//!   [`gfd_graph::Vocab`] on load). Stable across processes and languages;
//!   the natural export target for dashboards and notebooks.
//! * [`edgelist`] — SNAP-style whitespace-separated edge lists plus a
//!   simple node-table format. This is how the paper's datasets actually
//!   ship (Pokec is distributed as `soc-pokec-relationships.txt`), so a
//!   downstream user can load real data without writing a parser.
//! * [`deltalog`] — a replayable line-oriented stream of graph update
//!   batches, the wire form of `gfd detect --stream` and the `gfd-incr`
//!   engine.
//! * [`checkpoint`] — the resumable state of a streaming detection run
//!   (graph + violation cache + batch cursor), written atomically so a
//!   crash mid-write never loses the previous checkpoint.
//!
//! The DSL in `gfd-dsl` remains the *human-authored* format; this crate
//! covers the machine-interchange cases.
//!
//! Dependency note (DESIGN.md §5): the workspace builds fully offline,
//! so JSON is hand-rolled in [`jsonval`] — the wire format matches what
//! the earlier serde-based encoder produced.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod deltalog;
pub mod edgelist;
pub mod json;
pub mod jsonval;
mod proptests;

pub use checkpoint::{
    checkpoint_to_string, load_checkpoint, parse_checkpoint, save_checkpoint, Checkpoint,
};
pub use deltalog::{
    delta_log_to_string, parse_delta_log, parse_delta_log_for, parse_delta_log_lenient,
    LenientParse,
};
pub use edgelist::{load_edge_list, load_node_table, EdgeListOptions};
pub use json::{graph_from_json, graph_to_json, sigma_from_json, sigma_to_json, JsonError};
