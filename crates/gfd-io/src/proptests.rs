//! Property-based round-trip tests for the interchange formats.

#![cfg(test)]

use crate::json::{graph_from_json, graph_to_json};
use gfd_graph::{Graph, NodeId, Value, Vocab};
use proptest::prelude::*;

/// Random graphs with string-named labels/attrs drawn from small pools,
/// and all three value types.
fn arb_named_graph() -> impl Strategy<Value = (Graph, Vocab)> {
    let label_pool = ["person", "place", "thing", "_"];
    let attr_pool = ["age", "name", "flag"];
    (1usize..7).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0usize..label_pool.len(), n);
        let edges = proptest::collection::vec(((0..n), 0usize..2, (0..n)), 0..(2 * n));
        let attrs = proptest::collection::vec(
            proptest::collection::vec(
                (
                    0usize..attr_pool.len(),
                    prop_oneof![
                        (-5i64..5).prop_map(Value::Int),
                        any::<bool>().prop_map(Value::Bool),
                        "[a-z ]{0,6}".prop_map(|s| Value::str(&s)),
                    ],
                ),
                0..3,
            ),
            n,
        );
        (labels, edges, attrs).prop_map(move |(labels, edges, attrs)| {
            let mut vocab = Vocab::new();
            let edge_labels = [vocab.label("knows"), vocab.label("near")];
            let mut g = Graph::new();
            for l in &labels {
                g.add_node(vocab.label(label_pool[*l]));
            }
            for (s, l, d) in edges {
                g.add_edge(NodeId::new(s), edge_labels[l], NodeId::new(d));
            }
            for (i, node_attrs) in attrs.iter().enumerate() {
                for (a, v) in node_attrs {
                    g.set_attr(NodeId::new(i), vocab.attr(attr_pool[*a]), v.clone());
                }
            }
            (g, vocab)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// JSON round trips preserve structure, labels and attribute values
    /// exactly (modulo vocabulary renumbering).
    #[test]
    fn graph_json_round_trip((g, vocab) in arb_named_graph()) {
        let json = graph_to_json(&g, &vocab);
        let mut vocab2 = Vocab::new();
        let g2 = graph_from_json(&json, &mut vocab2).unwrap();
        prop_assert_eq!(g2.node_count(), g.node_count());
        prop_assert_eq!(g2.edge_count(), g.edge_count());
        prop_assert_eq!(g2.attr_count(), g.attr_count());
        for v in g.nodes() {
            // Labels match by *name*.
            prop_assert_eq!(
                vocab.label_name(g.label(v)),
                vocab2.label_name(g2.label(v))
            );
            // Attributes match by name and value.
            for (a, val) in g.attrs(v) {
                let name = vocab.attr_name(*a);
                let a2 = vocab2.attr(name);
                prop_assert_eq!(g2.attr(v, a2), Some(*val), "attr {} diverged", name);
            }
        }
        for (s, l, d) in g.edges() {
            let l2 = vocab2.label(vocab.label_name(l));
            prop_assert!(g2.has_edge(s, l2, d));
        }
        // Wildcards stay wildcards.
        for v in g.nodes() {
            prop_assert_eq!(g.label(v).is_wildcard(), g2.label(v).is_wildcard());
        }
    }

    /// Serialization is deterministic: same graph, same bytes.
    #[test]
    fn graph_json_is_deterministic((g, vocab) in arb_named_graph()) {
        prop_assert_eq!(graph_to_json(&g, &vocab), graph_to_json(&g, &vocab));
    }
}

mod edgelist_props {
    use super::*;
    use crate::edgelist::{load_edge_list, EdgeListOptions};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Loading an edge list yields exactly the (deduplicated) edge
        /// multiset, regardless of id sparsity and ordering.
        #[test]
        fn edge_list_preserves_edges(
            pairs in proptest::collection::vec((0u64..50, 0u64..50), 1..20),
        ) {
            let src: String = pairs
                .iter()
                .map(|(a, b)| format!("{a} {b}\n"))
                .collect();
            let mut vocab = Vocab::new();
            let (g, ids) =
                load_edge_list(&src, &mut vocab, &EdgeListOptions::default()).unwrap();
            // Every distinct endpoint got a node.
            let mut endpoints: Vec<u64> =
                pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
            endpoints.sort();
            endpoints.dedup();
            prop_assert_eq!(g.node_count(), endpoints.len());
            // Every pair is present as an edge.
            let e = vocab.label("edge");
            for &(a, b) in &pairs {
                prop_assert!(g.has_edge(ids[&a], e, ids[&b]));
            }
            // Edge count equals the deduplicated pair count.
            let mut dedup = pairs.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(g.edge_count(), dedup.len());
        }
    }
}

/// Fuzz the text readers: arbitrary input must produce `Ok` or a
/// structured `Err`, never a panic (DESIGN.md §11). Two input shapes:
/// fully arbitrary text, and "near-miss" corruptions of valid documents
/// (the kind a torn write or fat-fingered edit actually produces), which
/// reach much deeper into the parsers than random bytes do.
mod fuzz_props {
    use super::*;
    use crate::checkpoint::parse_checkpoint;
    use crate::deltalog::{parse_delta_log, parse_delta_log_lenient};

    /// Lines assembled from delta-log-ish tokens: mostly valid fragments
    /// with ids, values and keywords in wrong slots.
    fn arb_deltaish() -> impl Strategy<Value = String> {
        const POOL: [&str; 9] = [
            "batch", "node", "edge", "del", "attr", "person", "#", "=", "\"",
        ];
        let token = prop_oneof![
            (0usize..POOL.len()).prop_map(|i| POOL[i].to_string()),
            (0u64..20).prop_map(|n| n.to_string()),
            (0u64..5).prop_map(|n| format!("a{n}=1")),
            "[a-z=\"]{0,4}".prop_map(|s| s),
        ];
        proptest::collection::vec(proptest::collection::vec(token, 0..6), 0..12).prop_map(|lines| {
            lines
                .iter()
                .map(|toks| toks.join(" "))
                .collect::<Vec<_>>()
                .join("\n")
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The strict delta-log reader is panic-free on arbitrary text.
        #[test]
        fn delta_log_never_panics(src in "\\PC*") {
            let mut vocab = Vocab::new();
            let _ = parse_delta_log(&src, &mut vocab);
        }

        /// …and on token-soup near-misses, where every keyword arm runs.
        #[test]
        fn delta_log_never_panics_on_token_soup(src in arb_deltaish()) {
            let mut vocab = Vocab::new();
            let _ = parse_delta_log(&src, &mut vocab);
        }

        /// The lenient reader is *total*: any input yields batches plus a
        /// skip list, and what it keeps agrees with a strict re-parse of
        /// its own rendering (the salvaged log is well-formed).
        #[test]
        fn lenient_delta_log_is_total_and_salvage_is_replayable(src in arb_deltaish()) {
            let mut vocab = Vocab::new();
            let lenient = parse_delta_log_lenient(&src, &mut vocab, None).unwrap();
            let rendered = crate::delta_log_to_string(&lenient.batches, &vocab);
            let strict = parse_delta_log(&rendered, &mut vocab).unwrap();
            prop_assert_eq!(strict.len(), lenient.batches.len());
        }

        /// The checkpoint reader is panic-free on arbitrary text…
        #[test]
        fn checkpoint_never_panics(src in "\\PC*") {
            let mut vocab = Vocab::new();
            let _ = parse_checkpoint(&src, &mut vocab);
        }

        /// …and on single-point corruptions of a valid checkpoint:
        /// truncation, line deletion and byte edits all yield a
        /// structured error or a still-consistent parse — never a panic.
        #[test]
        fn corrupted_checkpoint_never_panics(
            cut in 0usize..400,
            drop_line in 0usize..16,
            flip in 0usize..400,
        ) {
            let mut vocab = Vocab::new();
            let mut g = Graph::new();
            let t = vocab.label("t");
            let a = g.add_node(t);
            let b = g.add_node(t);
            g.add_edge(a, vocab.label("e"), b);
            g.set_attr(a, vocab.attr("v"), Value::Int(1));
            let src = crate::checkpoint_to_string(
                &crate::Checkpoint { batches_applied: 2, graph: g, violations: vec![] },
                &vocab,
            );

            let truncated: String = src.chars().take(cut % (src.len() + 1)).collect();
            let _ = parse_checkpoint(&truncated, &mut vocab);

            let dropped: String = src
                .lines()
                .enumerate()
                .filter(|(i, _)| *i != drop_line)
                .map(|(_, l)| format!("{l}\n"))
                .collect();
            let _ = parse_checkpoint(&dropped, &mut vocab);

            let mut bytes: Vec<char> = src.chars().collect();
            let i = flip % bytes.len();
            bytes[i] = 'Z';
            let flipped: String = bytes.into_iter().collect();
            let _ = parse_checkpoint(&flipped, &mut vocab);
        }
    }
}
