//! Property-based round-trip tests for the interchange formats.

#![cfg(test)]

use crate::json::{graph_from_json, graph_to_json};
use gfd_graph::{Graph, NodeId, Value, Vocab};
use proptest::prelude::*;

/// Random graphs with string-named labels/attrs drawn from small pools,
/// and all three value types.
fn arb_named_graph() -> impl Strategy<Value = (Graph, Vocab)> {
    let label_pool = ["person", "place", "thing", "_"];
    let attr_pool = ["age", "name", "flag"];
    (1usize..7).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0usize..label_pool.len(), n);
        let edges = proptest::collection::vec(((0..n), 0usize..2, (0..n)), 0..(2 * n));
        let attrs = proptest::collection::vec(
            proptest::collection::vec(
                (
                    0usize..attr_pool.len(),
                    prop_oneof![
                        (-5i64..5).prop_map(Value::Int),
                        any::<bool>().prop_map(Value::Bool),
                        "[a-z ]{0,6}".prop_map(|s| Value::str(&s)),
                    ],
                ),
                0..3,
            ),
            n,
        );
        (labels, edges, attrs).prop_map(move |(labels, edges, attrs)| {
            let mut vocab = Vocab::new();
            let edge_labels = [vocab.label("knows"), vocab.label("near")];
            let mut g = Graph::new();
            for l in &labels {
                g.add_node(vocab.label(label_pool[*l]));
            }
            for (s, l, d) in edges {
                g.add_edge(NodeId::new(s), edge_labels[l], NodeId::new(d));
            }
            for (i, node_attrs) in attrs.iter().enumerate() {
                for (a, v) in node_attrs {
                    g.set_attr(NodeId::new(i), vocab.attr(attr_pool[*a]), v.clone());
                }
            }
            (g, vocab)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// JSON round trips preserve structure, labels and attribute values
    /// exactly (modulo vocabulary renumbering).
    #[test]
    fn graph_json_round_trip((g, vocab) in arb_named_graph()) {
        let json = graph_to_json(&g, &vocab);
        let mut vocab2 = Vocab::new();
        let g2 = graph_from_json(&json, &mut vocab2).unwrap();
        prop_assert_eq!(g2.node_count(), g.node_count());
        prop_assert_eq!(g2.edge_count(), g.edge_count());
        prop_assert_eq!(g2.attr_count(), g.attr_count());
        for v in g.nodes() {
            // Labels match by *name*.
            prop_assert_eq!(
                vocab.label_name(g.label(v)),
                vocab2.label_name(g2.label(v))
            );
            // Attributes match by name and value.
            for (a, val) in g.attrs(v) {
                let name = vocab.attr_name(*a);
                let a2 = vocab2.attr(name);
                prop_assert_eq!(g2.attr(v, a2), Some(val), "attr {} diverged", name);
            }
        }
        for (s, l, d) in g.edges() {
            let l2 = vocab2.label(vocab.label_name(l));
            prop_assert!(g2.has_edge(s, l2, d));
        }
        // Wildcards stay wildcards.
        for v in g.nodes() {
            prop_assert_eq!(g.label(v).is_wildcard(), g2.label(v).is_wildcard());
        }
    }

    /// Serialization is deterministic: same graph, same bytes.
    #[test]
    fn graph_json_is_deterministic((g, vocab) in arb_named_graph()) {
        prop_assert_eq!(graph_to_json(&g, &vocab), graph_to_json(&g, &vocab));
    }
}

mod edgelist_props {
    use super::*;
    use crate::edgelist::{load_edge_list, EdgeListOptions};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Loading an edge list yields exactly the (deduplicated) edge
        /// multiset, regardless of id sparsity and ordering.
        #[test]
        fn edge_list_preserves_edges(
            pairs in proptest::collection::vec((0u64..50, 0u64..50), 1..20),
        ) {
            let src: String = pairs
                .iter()
                .map(|(a, b)| format!("{a} {b}\n"))
                .collect();
            let mut vocab = Vocab::new();
            let (g, ids) =
                load_edge_list(&src, &mut vocab, &EdgeListOptions::default()).unwrap();
            // Every distinct endpoint got a node.
            let mut endpoints: Vec<u64> =
                pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
            endpoints.sort();
            endpoints.dedup();
            prop_assert_eq!(g.node_count(), endpoints.len());
            // Every pair is present as an edge.
            let e = vocab.label("edge");
            for &(a, b) in &pairs {
                prop_assert!(g.has_edge(ids[&a], e, ids[&b]));
            }
            // Edge count equals the deduplicated pair count.
            let mut dedup = pairs.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(g.edge_count(), dedup.len());
        }
    }
}
