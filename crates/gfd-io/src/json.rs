//! JSON interchange for graphs and GFD sets.
//!
//! Names (labels, attributes, variables) travel as strings and are
//! re-interned on load, so files are portable across processes with
//! different vocabularies. The wildcard label is spelled `"_"`, matching
//! the DSL.
//!
//! Serialization is built on the in-crate [`crate::jsonval`] tree rather
//! than serde (DESIGN.md §5: the workspace builds offline); the wire
//! format is unchanged.

use crate::jsonval::{parse, Json, ParseError};
use gfd_core::{Gfd, GfdSet, Literal, Operand};
use gfd_graph::{Graph, NodeId, Pattern, Value, ValueId, Vocab};
use std::fmt;

/// An import/export error.
#[derive(Debug)]
pub enum JsonError {
    /// Malformed JSON.
    Syntax(ParseError),
    /// Structurally valid JSON with inconsistent content.
    Semantic(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax(e) => write!(f, "json syntax: {e}"),
            JsonError::Semantic(m) => write!(f, "json content: {m}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl From<ParseError> for JsonError {
    fn from(e: ParseError) -> Self {
        JsonError::Syntax(e)
    }
}

fn semantic(msg: impl Into<String>) -> JsonError {
    JsonError::Semantic(msg.into())
}

fn value_id_to_json(v: ValueId) -> Json {
    value_to_json(&v.resolve())
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Int(i) => Json::Int(*i),
        Value::Bool(b) => Json::Bool(*b),
        Value::Str(s) => Json::Str(s.to_string()),
    }
}

fn value_from_json(j: &Json) -> Result<Value, JsonError> {
    match j {
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Str(s) => Ok(Value::str(s)),
        other => Err(semantic(format!(
            "attribute values must be int, bool or string, got {other:?}"
        ))),
    }
}

fn field<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, JsonError> {
    obj.get(key)
        .ok_or_else(|| semantic(format!("{ctx}: missing field `{key}`")))
}

fn str_field(obj: &Json, key: &str, ctx: &str) -> Result<String, JsonError> {
    field(obj, key, ctx)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| semantic(format!("{ctx}: field `{key}` must be a string")))
}

fn index_field(obj: &Json, key: &str, ctx: &str) -> Result<usize, JsonError> {
    let i = field(obj, key, ctx)?
        .as_int()
        .ok_or_else(|| semantic(format!("{ctx}: field `{key}` must be an integer")))?;
    usize::try_from(i).map_err(|_| semantic(format!("{ctx}: field `{key}` must be non-negative")))
}

/// A required array field.
fn array_field<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a [Json], JsonError> {
    field(obj, key, ctx)?
        .as_array()
        .ok_or_else(|| semantic(format!("{ctx}: field `{key}` must be an array")))
}

/// An optional array field; a missing field reads as empty (the writer
/// omits empty collections).
fn opt_array_field<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a [Json], JsonError> {
    match obj.get(key) {
        None => Ok(&[]),
        Some(j) => j
            .as_array()
            .ok_or_else(|| semantic(format!("{ctx}: field `{key}` must be an array"))),
    }
}

/// Serialize a graph to a pretty JSON string.
pub fn graph_to_json(graph: &Graph, vocab: &Vocab) -> String {
    let nodes: Vec<Json> = graph
        .nodes()
        .map(|v| {
            let mut fields = vec![(
                "label".to_string(),
                Json::Str(vocab.label_name(graph.label(v)).to_string()),
            )];
            // Name-sorted attributes, as the previous BTreeMap encoding
            // produced; omitted when empty.
            let mut attrs: Vec<(String, Json)> = graph
                .attrs(v)
                .iter()
                .map(|(a, val)| (vocab.attr_name(*a).to_string(), value_id_to_json(*val)))
                .collect();
            attrs.sort_by(|(a, _), (b, _)| a.cmp(b));
            if !attrs.is_empty() {
                fields.push(("attrs".to_string(), Json::Object(attrs)));
            }
            Json::Object(fields)
        })
        .collect();
    let edges: Vec<Json> = graph
        .edges()
        .map(|(s, l, d)| {
            Json::Object(vec![
                ("src".to_string(), Json::Int(s.index() as i64)),
                (
                    "label".to_string(),
                    Json::Str(vocab.label_name(l).to_string()),
                ),
                ("dst".to_string(), Json::Int(d.index() as i64)),
            ])
        })
        .collect();
    Json::Object(vec![
        ("nodes".to_string(), Json::Array(nodes)),
        ("edges".to_string(), Json::Array(edges)),
    ])
    .pretty()
}

/// Load a graph from JSON, interning names into `vocab`.
pub fn graph_from_json(src: &str, vocab: &mut Vocab) -> Result<Graph, JsonError> {
    let doc = parse(src)?;
    let nodes = array_field(&doc, "nodes", "graph")?;
    let edges = array_field(&doc, "edges", "graph")?;
    let mut g = Graph::with_capacity(nodes.len());
    for n in nodes {
        let label = str_field(n, "label", "node")?;
        let id = g.add_node(vocab.label(&label));
        if let Some(attrs) = n.get("attrs") {
            let Json::Object(fields) = attrs else {
                return Err(semantic("node field `attrs` must be an object"));
            };
            for (attr, value) in fields {
                g.set_attr(id, vocab.attr(attr), value_from_json(value)?);
            }
        }
    }
    for e in edges {
        let src = index_field(e, "src", "edge")?;
        let dst = index_field(e, "dst", "edge")?;
        let label = str_field(e, "label", "edge")?;
        if src >= nodes.len() || dst >= nodes.len() {
            return Err(semantic(format!(
                "edge {src} -> {dst} references a missing node"
            )));
        }
        g.add_edge(NodeId::new(src), vocab.label(&label), NodeId::new(dst));
    }
    Ok(g)
}

fn literal_to_json(lit: &Literal, pattern: &Pattern, vocab: &Vocab) -> Json {
    let mut fields = vec![
        (
            "var".to_string(),
            Json::Str(pattern.var_name(lit.var).to_string()),
        ),
        (
            "attr".to_string(),
            Json::Str(vocab.attr_name(lit.attr).to_string()),
        ),
    ];
    match &lit.rhs {
        Operand::Const(c) => fields.push(("value".to_string(), value_id_to_json(*c))),
        Operand::Attr(v, a) => {
            fields.push((
                "rhs_var".to_string(),
                Json::Str(pattern.var_name(*v).to_string()),
            ));
            fields.push((
                "rhs_attr".to_string(),
                Json::Str(vocab.attr_name(*a).to_string()),
            ));
        }
    }
    Json::Object(fields)
}

fn literal_from_json(
    j: &Json,
    pattern: &Pattern,
    vocab: &mut Vocab,
    rule: &str,
) -> Result<Literal, JsonError> {
    let ctx = format!("rule {rule}");
    let var_name = str_field(j, "var", &ctx)?;
    let var = pattern
        .var_by_name(&var_name)
        .ok_or_else(|| semantic(format!("rule {rule}: unknown variable `{var_name}`")))?;
    let attr = vocab.attr(&str_field(j, "attr", &ctx)?);
    match (j.get("value"), j.get("rhs_var"), j.get("rhs_attr")) {
        (Some(v), None, None) => Ok(Literal::eq_const(var, attr, value_from_json(v)?)),
        (None, Some(v2), Some(a2)) => {
            let v2 = v2
                .as_str()
                .ok_or_else(|| semantic(format!("rule {rule}: `rhs_var` must be a string")))?;
            let a2 = a2
                .as_str()
                .ok_or_else(|| semantic(format!("rule {rule}: `rhs_attr` must be a string")))?
                .to_string();
            let var2 = pattern
                .var_by_name(v2)
                .ok_or_else(|| semantic(format!("rule {rule}: unknown variable `{v2}`")))?;
            Ok(Literal::eq_attr(var, attr, var2, vocab.attr(&a2)))
        }
        _ => Err(semantic(format!(
            "rule {rule}: literal needs either `value` or both `rhs_var` and `rhs_attr`"
        ))),
    }
}

/// Serialize a rule set to a pretty JSON string.
pub fn sigma_to_json(sigma: &GfdSet, vocab: &Vocab) -> String {
    let gfds: Vec<Json> = sigma
        .iter()
        .map(|(_, g)| {
            let nodes: Vec<Json> = g
                .pattern
                .vars()
                .map(|v| {
                    Json::Object(vec![
                        (
                            "var".to_string(),
                            Json::Str(g.pattern.var_name(v).to_string()),
                        ),
                        (
                            "label".to_string(),
                            Json::Str(vocab.label_name(g.pattern.label(v)).to_string()),
                        ),
                    ])
                })
                .collect();
            let edges: Vec<Json> = g
                .pattern
                .edges()
                .iter()
                .map(|e| {
                    Json::Object(vec![
                        (
                            "src".to_string(),
                            Json::Str(g.pattern.var_name(e.src).to_string()),
                        ),
                        (
                            "label".to_string(),
                            Json::Str(vocab.label_name(e.label).to_string()),
                        ),
                        (
                            "dst".to_string(),
                            Json::Str(g.pattern.var_name(e.dst).to_string()),
                        ),
                    ])
                })
                .collect();
            let when: Vec<Json> = g
                .premise
                .iter()
                .map(|l| literal_to_json(l, &g.pattern, vocab))
                .collect();
            let then: Vec<Json> = g
                .consequence
                .iter()
                .map(|l| literal_to_json(l, &g.pattern, vocab))
                .collect();
            let mut fields = vec![
                ("name".to_string(), Json::Str(g.name.clone())),
                ("nodes".to_string(), Json::Array(nodes)),
            ];
            if !edges.is_empty() {
                fields.push(("edges".to_string(), Json::Array(edges)));
            }
            if !when.is_empty() {
                fields.push(("when".to_string(), Json::Array(when)));
            }
            fields.push(("then".to_string(), Json::Array(then)));
            Json::Object(fields)
        })
        .collect();
    Json::Object(vec![("gfds".to_string(), Json::Array(gfds))]).pretty()
}

/// Load a rule set from JSON, interning names into `vocab`.
pub fn sigma_from_json(src: &str, vocab: &mut Vocab) -> Result<GfdSet, JsonError> {
    let doc = parse(src)?;
    let gfds = array_field(&doc, "gfds", "sigma")?;
    let mut out = GfdSet::new();
    for jg in gfds {
        let name = str_field(jg, "name", "rule")?;
        let ctx = format!("rule {name}");
        let nodes = array_field(jg, "nodes", &ctx)?;
        if nodes.is_empty() {
            return Err(semantic(format!("{ctx}: empty pattern")));
        }
        let mut pattern = Pattern::new();
        for n in nodes {
            let var = str_field(n, "var", &ctx)?;
            let label = str_field(n, "label", &ctx)?;
            if pattern.var_by_name(&var).is_some() {
                return Err(semantic(format!("{ctx}: duplicate variable `{var}`")));
            }
            pattern.add_node(vocab.label(&label), var);
        }
        for e in opt_array_field(jg, "edges", &ctx)? {
            let src_name = str_field(e, "src", &ctx)?;
            let dst_name = str_field(e, "dst", &ctx)?;
            let label = str_field(e, "label", &ctx)?;
            let src = pattern
                .var_by_name(&src_name)
                .ok_or_else(|| semantic(format!("{ctx}: unknown variable `{src_name}`")))?;
            let dst = pattern
                .var_by_name(&dst_name)
                .ok_or_else(|| semantic(format!("{ctx}: unknown variable `{dst_name}`")))?;
            pattern.add_edge(src, vocab.label(&label), dst);
        }
        let premise = opt_array_field(jg, "when", &ctx)?
            .iter()
            .map(|l| literal_from_json(l, &pattern, vocab, &name))
            .collect::<Result<Vec<_>, _>>()?;
        let consequence = array_field(jg, "then", &ctx)?
            .iter()
            .map(|l| literal_from_json(l, &pattern, vocab, &name))
            .collect::<Result<Vec<_>, _>>()?;
        out.push(Gfd::new(name, pattern, premise, consequence));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::LabelId;

    fn sample_graph() -> (Graph, Vocab) {
        let mut vocab = Vocab::new();
        let person = vocab.label("person");
        let knows = vocab.label("knows");
        let age = vocab.attr("age");
        let name = vocab.attr("name");
        let mut g = Graph::new();
        let a = g.add_node(person);
        let b = g.add_node(person);
        g.add_edge(a, knows, b);
        g.set_attr(a, age, Value::int(30));
        g.set_attr(a, name, Value::str("ann"));
        g.set_attr(b, age, Value::Bool(true));
        (g, vocab)
    }

    #[test]
    fn graph_round_trips() {
        let (g, vocab) = sample_graph();
        let json = graph_to_json(&g, &vocab);
        let mut vocab2 = Vocab::new();
        let g2 = graph_from_json(&json, &mut vocab2).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.attr_count(), g.attr_count());
        let age2 = vocab2.attr("age");
        assert_eq!(g2.attr(NodeId::new(0), age2), Some(ValueId::of(30i64)));
        assert_eq!(g2.attr(NodeId::new(1), age2), Some(ValueId::of(true)));
    }

    #[test]
    fn wildcard_label_round_trips() {
        let mut vocab = Vocab::new();
        let mut g = Graph::new();
        g.add_node(LabelId::WILDCARD);
        let json = graph_to_json(&g, &vocab);
        assert!(json.contains("\"_\""), "{json}");
        let mut vocab2 = Vocab::new();
        let g2 = graph_from_json(&json, &mut vocab2).unwrap();
        assert!(g2.label(NodeId::new(0)).is_wildcard());
        let _ = &mut vocab;
    }

    #[test]
    fn bad_edge_reference_is_semantic_error() {
        let src = r#"{"nodes": [{"label": "t"}], "edges": [{"src": 0, "label": "e", "dst": 5}]}"#;
        let mut vocab = Vocab::new();
        let err = graph_from_json(src, &mut vocab).unwrap_err();
        assert!(matches!(err, JsonError::Semantic(_)));
    }

    #[test]
    fn malformed_json_is_syntax_error() {
        let mut vocab = Vocab::new();
        let err = graph_from_json("{nodes: oops", &mut vocab).unwrap_err();
        assert!(matches!(err, JsonError::Syntax(_)));
    }

    fn sample_sigma() -> (GfdSet, Vocab) {
        let mut vocab = Vocab::new();
        let place = vocab.label("place");
        let locate = vocab.label("locateIn");
        let pop = vocab.attr("pop");
        let mut p = Pattern::new();
        let x = p.add_node(place, "x");
        let y = p.add_node(place, "y");
        p.add_edge(x, locate, y);
        let g1 = Gfd::new(
            "g1",
            p.clone(),
            vec![Literal::eq_const(x, pop, 5i64)],
            vec![Literal::eq_attr(x, pop, y, pop)],
        );
        let g2 = Gfd::new("g2", p, vec![], vec![Literal::eq_const(y, pop, 7i64)]);
        (GfdSet::from_vec(vec![g1, g2]), vocab)
    }

    #[test]
    fn sigma_round_trips_and_preserves_reasoning() {
        let (sigma, vocab) = sample_sigma();
        let json = sigma_to_json(&sigma, &vocab);
        let mut vocab2 = Vocab::new();
        let sigma2 = sigma_from_json(&json, &mut vocab2).unwrap();
        assert_eq!(sigma2.len(), sigma.len());
        // Structure is preserved literal-for-literal.
        for ((_, a), (_, b)) in sigma.iter().zip(sigma2.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.premise.len(), b.premise.len());
            assert_eq!(a.consequence.len(), b.consequence.len());
            assert_eq!(a.pattern.node_count(), b.pattern.node_count());
            assert_eq!(a.pattern.edge_count(), b.pattern.edge_count());
        }
        // Reasoning outcome is identical.
        assert_eq!(
            gfd_core::seq_sat(&sigma).is_satisfiable(),
            gfd_core::seq_sat(&sigma2).is_satisfiable()
        );
    }

    #[test]
    fn literal_without_rhs_is_rejected() {
        let src = r#"{"gfds": [{
            "name": "bad",
            "nodes": [{"var": "x", "label": "t"}],
            "then": [{"var": "x", "attr": "a"}]
        }]}"#;
        let mut vocab = Vocab::new();
        let err = sigma_from_json(src, &mut vocab).unwrap_err();
        assert!(err.to_string().contains("rhs_var"), "{err}");
    }

    #[test]
    fn unknown_variable_in_literal_is_rejected() {
        let src = r#"{"gfds": [{
            "name": "bad",
            "nodes": [{"var": "x", "label": "t"}],
            "then": [{"var": "zz", "attr": "a", "value": 1}]
        }]}"#;
        let mut vocab = Vocab::new();
        let err = sigma_from_json(src, &mut vocab).unwrap_err();
        assert!(err.to_string().contains("zz"), "{err}");
    }

    #[test]
    fn duplicate_variable_is_rejected() {
        let src = r#"{"gfds": [{
            "name": "bad",
            "nodes": [{"var": "x", "label": "t"}, {"var": "x", "label": "t"}],
            "then": [{"var": "x", "attr": "a", "value": 1}]
        }]}"#;
        let mut vocab = Vocab::new();
        assert!(sigma_from_json(src, &mut vocab).is_err());
    }
}
